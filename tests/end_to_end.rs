//! Cross-crate integration tests: full pipelines spanning the dataset
//! generators, the text processor, the SQL engine, BornSQL, the oracle, and
//! the baselines.

use born::{BornClassifier, HyperParams, TrainItem};
use bornsql::{BornSqlModel, DataSpec, Dialect, ModelOptions, Params};
use datasets::scopus::{self, ScopusConfig};
use datasets::{adult_like, TabularConfig};
use sqlengine::{Database, EngineConfig, Value};
use textproc::CountVectorizer;

fn scopus_db(n: usize, config: EngineConfig) -> Database {
    let data = scopus::generate(&ScopusConfig {
        n_publications: n,
        ..ScopusConfig::tiny(7)
    });
    let db = Database::with_config(config);
    data.load_into(&db).unwrap();
    db
}

fn scopus_spec(qn: Option<&str>) -> DataSpec {
    let mut spec = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        spec = spec.with_features(arm);
    }
    spec = spec.with_targets(scopus::qy());
    if let Some(qn) = qn {
        spec = spec.with_items(qn);
    }
    spec
}

fn scopus_options() -> ModelOptions {
    ModelOptions {
        class_type: "INTEGER",
        ..Default::default()
    }
}

#[test]
fn full_pipeline_accuracy_on_all_engine_profiles() {
    for config in [
        EngineConfig::profile_a(),
        EngineConfig::profile_b(),
        EngineConfig::profile_c(),
    ] {
        let db = scopus_db(600, config);
        let model = BornSqlModel::create(&db, "m", scopus_options()).unwrap();
        model
            .fit(&scopus_spec(Some(
                "SELECT id AS n FROM publication WHERE id % 5 > 0",
            )))
            .unwrap();
        model.deploy().unwrap();

        let mut test = DataSpec::default();
        for arm in scopus::qx_arms(false) {
            test = test.with_features(arm);
        }
        let test = test.with_items("SELECT id AS n FROM publication WHERE id % 5 = 0");
        let preds = model.predict(&test).unwrap();
        assert!(preds.len() >= 100, "predicted {}", preds.len());

        let truth = db
            .query("SELECT id, asjc / 100 FROM publication WHERE id % 5 = 0")
            .unwrap();
        let truth: std::collections::HashMap<i64, i64> = truth
            .rows
            .iter()
            .map(|r| {
                (
                    r[0].as_i64().unwrap().unwrap(),
                    r[1].as_i64().unwrap().unwrap(),
                )
            })
            .collect();
        let hits = preds
            .iter()
            .filter(|(n, k)| {
                truth.get(&n.as_i64().unwrap().unwrap()) == k.as_i64().unwrap().as_ref()
            })
            .count();
        let acc = hits as f64 / preds.len() as f64;
        assert!(acc > 0.75, "accuracy {acc} under {config:?}");
    }
}

#[test]
fn engine_profiles_agree_exactly_on_predictions() {
    let mut reference: Option<Vec<(Value, Value)>> = None;
    for config in [
        EngineConfig::profile_a(),
        EngineConfig::profile_b(),
        EngineConfig::profile_c(),
    ] {
        let db = scopus_db(300, config);
        let model = BornSqlModel::create(&db, "m", scopus_options()).unwrap();
        model.fit(&scopus_spec(None)).unwrap();
        model.deploy().unwrap();
        let mut test = DataSpec::default();
        for arm in scopus::qx_arms(false) {
            test = test.with_features(arm);
        }
        let test = test.with_items("SELECT id AS n FROM publication WHERE id <= 50");
        let preds = model.predict(&test).unwrap();
        match &reference {
            None => reference = Some(preds),
            Some(r) => assert_eq!(r, &preds, "profiles must agree"),
        }
    }
}

#[test]
fn textproc_vectorizer_feeds_bornsql() {
    // Raw text → textproc vectorization → long table → BornSQL, end to end.
    let docs = [
        (1i64, "robots and robot vision with neural control", "ai"),
        (2, "neural networks for image vision tasks", "ai"),
        (
            3,
            "the variance of the sample mean and poisson models",
            "stats",
        ),
        (4, "sampling variance in statistical estimation", "stats"),
    ];
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE terms (n INTEGER, j TEXT, w REAL);
         CREATE TABLE labels (n INTEGER, k TEXT);",
    )
    .unwrap();
    let v = CountVectorizer::default();
    for (id, text, label) in &docs {
        for (term, count) in v.vectorize(text) {
            db.execute_with(
                "INSERT INTO terms VALUES (?, ?, ?)",
                &[Value::Int(*id), Value::text(&term), Value::Float(count)],
            )
            .unwrap();
        }
        db.execute_with(
            "INSERT INTO labels VALUES (?, ?)",
            &[Value::Int(*id), Value::text(*label)],
        )
        .unwrap();
    }
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model
        .fit(
            &DataSpec::new("SELECT n, j, w FROM terms")
                .with_targets("SELECT n, k AS k, 1.0 AS w FROM labels"),
        )
        .unwrap();
    model.deploy().unwrap();

    // Classify an unseen sentence.
    db.execute("CREATE TABLE query_terms (n INTEGER, j TEXT, w REAL)")
        .unwrap();
    for (term, count) in v.vectorize("estimating the variance of a sample") {
        db.execute_with(
            "INSERT INTO query_terms VALUES (9, ?, ?)",
            &[Value::text(&term), Value::Float(count)],
        )
        .unwrap();
    }
    let preds = model
        .predict(&DataSpec::new("SELECT n, j, w FROM query_terms"))
        .unwrap();
    assert_eq!(preds[0].1, Value::text("stats"));
}

#[test]
fn multiple_models_coexist_in_one_database() {
    let db = scopus_db(200, EngineConfig::profile_a());
    let abstract_model = BornSqlModel::create(&db, "abst", scopus_options()).unwrap();
    let full_model = BornSqlModel::create(&db, "full", scopus_options()).unwrap();

    // Different feature sets, same database, distinct table prefixes.
    let mut abstract_spec = DataSpec::default();
    for arm in scopus::qx_arms(true) {
        abstract_spec = abstract_spec.with_features(arm);
    }
    abstract_model
        .fit(&abstract_spec.with_targets(scopus::qy()))
        .unwrap();
    full_model.fit(&scopus_spec(None)).unwrap();

    assert!(full_model.n_features().unwrap() > abstract_model.n_features().unwrap());
    // Both share the single `params` table, keyed by model name.
    let r = db.query("SELECT COUNT(*) FROM params").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(2));
    // Dropping one model's corpus does not affect the other.
    db.execute("DROP TABLE abst_corpus").unwrap();
    assert!(full_model.n_features().unwrap() > 0);
}

#[test]
fn external_data_training_via_direct_corpus_writes() {
    // Paper §7 "External data": compute P_jk outside the database and write
    // it into {model}_corpus directly; the model must behave identically.
    let items = vec![
        TrainItem::labeled(
            vec![("a".to_string(), 2.0), ("b".to_string(), 1.0)],
            "x".to_string(),
        ),
        TrainItem::labeled(
            vec![("b".to_string(), 1.0), ("c".to_string(), 1.0)],
            "y".to_string(),
        ),
        TrainItem::labeled(vec![("a".to_string(), 1.0)], "x".to_string()),
    ];
    let oracle = BornClassifier::fit(&items);

    let db = Database::new();
    let model = BornSqlModel::create(&db, "ext", ModelOptions::default()).unwrap();
    // Write the externally computed weights straight into the corpus.
    for (j, k, w) in oracle.corpus_entries() {
        db.execute_with(
            "INSERT INTO ext_corpus (j, k, w) VALUES (?, ?, ?) \
             ON CONFLICT (j, k) DO UPDATE SET w = ext_corpus.w + excluded.w",
            &[Value::text(j), Value::text(k), Value::Float(w)],
        )
        .unwrap();
    }
    model.deploy().unwrap();

    // Inference on an external item written to a temporary table.
    db.execute_script(
        "CREATE TABLE tmp_item (n INTEGER, j TEXT, w REAL);
         INSERT INTO tmp_item VALUES (1, 'a', 1.0), (1, 'c', 0.5);",
    )
    .unwrap();
    let preds = model
        .predict(&DataSpec::new("SELECT n, j, w FROM tmp_item"))
        .unwrap();
    let oracle_pred = oracle
        .deploy(HyperParams::default())
        .unwrap()
        .predict(&[("a".to_string(), 1.0), ("c".to_string(), 0.5)])
        .unwrap();
    assert_eq!(preds[0].1.to_string(), oracle_pred);
}

#[test]
fn mysql_dialect_text_is_emitted_but_not_executed() {
    // The portability artifact: MySQL statements are rendered with the
    // MySQL upsert idiom; they are goldens, not executable here.
    let db = Database::new();
    let model = BornSqlModel::create(
        &db,
        "my",
        ModelOptions {
            dialect: Dialect::MySql,
            ..Default::default()
        },
    )
    .unwrap();
    let spec = DataSpec::new("SELECT 1 AS n, 'f' AS j, 1.0 AS w")
        .with_targets("SELECT 1 AS n, 'k' AS k, 1.0 AS w");
    let sql = model.generator().partial_fit(&spec, 1.0);
    assert!(sql.contains("ON DUPLICATE KEY UPDATE"));
    assert!(!Dialect::MySql.executable());
    // Executing it against our engine fails at the parser, as expected.
    assert!(model.partial_fit(&spec).is_err());
}

#[test]
fn hyperparameters_change_predictions_without_refit() {
    let adult = adult_like(&TabularConfig::new(800, 5));
    let db = Database::new();
    adult.load_into(&db, "a").unwrap();
    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    model
        .fit(
            &DataSpec::new("SELECT n, j, w FROM a_features")
                .with_targets("SELECT n, k AS k, 1.0 AS w FROM a_labels"),
        )
        .unwrap();
    let cells = model.corpus_cells().unwrap();

    let spec = DataSpec::new("SELECT n, j, w FROM a_features")
        .with_items("SELECT n FROM a_labels WHERE n <= 50");
    model.deploy().unwrap();
    let proba_default = model.predict_proba(&spec).unwrap();

    // h = 0 disables entropy weighting → different probabilities, same corpus.
    model
        .set_params(Params {
            a: 0.5,
            b: 1.0,
            h: 0.0,
        })
        .unwrap();
    model.deploy().unwrap();
    let proba_h0 = model.predict_proba(&spec).unwrap();
    assert_eq!(
        model.corpus_cells().unwrap(),
        cells,
        "no retraining happened"
    );
    assert_ne!(proba_default, proba_h0, "hyper-parameters must matter");
}

#[test]
fn incremental_learning_commutes_with_engine_profiles() {
    // Batch-split training on profile A equals one-shot training on
    // profile C: storage state is engine-independent.
    let db_a = scopus_db(240, EngineConfig::profile_a());
    let inc = BornSqlModel::create(&db_a, "m", scopus_options()).unwrap();
    inc.partial_fit(&scopus_spec(Some(
        "SELECT id AS n FROM publication WHERE id <= 120",
    )))
    .unwrap();
    inc.partial_fit(&scopus_spec(Some(
        "SELECT id AS n FROM publication WHERE id > 120",
    )))
    .unwrap();

    let db_c = scopus_db(240, EngineConfig::profile_c());
    let batch = BornSqlModel::create(&db_c, "m", scopus_options()).unwrap();
    batch.fit(&scopus_spec(None)).unwrap();

    let a = inc.corpus().unwrap();
    let b = batch.corpus().unwrap();
    assert_eq!(a.len(), b.len());
    for ((j1, k1, w1), (j2, k2, w2)) in a.iter().zip(&b) {
        assert_eq!(j1, j2);
        assert_eq!(k1, k2);
        assert!((w1 - w2).abs() < 1e-9, "{j1}/{k1}: {w1} vs {w2}");
    }
}

#[test]
fn postgres_dialect_text_also_executes_on_the_engine() {
    // PostgreSQL text (POWER instead of POW, same ON CONFLICT) is
    // executable by the bundled engine too — only MySQL's upsert differs.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE d (n INTEGER, j TEXT, w REAL);
         CREATE TABLE l (n INTEGER, k TEXT);
         INSERT INTO d VALUES (1, 'robot', 1.0), (2, 'poisson', 1.0);
         INSERT INTO l VALUES (1, 'ai'), (2, 'stats');",
    )
    .unwrap();
    let model = BornSqlModel::create(
        &db,
        "pg",
        ModelOptions {
            dialect: Dialect::Postgres,
            ..Default::default()
        },
    )
    .unwrap();
    let spec =
        DataSpec::new("SELECT n, j, w FROM d").with_targets("SELECT n, k AS k, 1.0 AS w FROM l");
    model.fit(&spec).unwrap();
    model.deploy().unwrap();
    let preds = model
        .predict(&DataSpec::new("SELECT n, j, w FROM d").with_items("SELECT 1 AS n"))
        .unwrap();
    assert_eq!(preds[0].1, Value::text("ai"));
}

#[test]
fn model_survives_database_save_and_open() {
    // Cost-effective serving (§7): a database snapshot carries the trained
    // and deployed model; reopening serves identical predictions.
    let db = scopus_db(200, EngineConfig::profile_a());
    let model = BornSqlModel::create(&db, "m", scopus_options()).unwrap();
    model.fit(&scopus_spec(None)).unwrap();
    model.deploy().unwrap();
    let mut test = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        test = test.with_features(arm);
    }
    let test = test.with_items("SELECT id AS n FROM publication WHERE id <= 20");
    let before = model.predict(&test).unwrap();

    let path = std::env::temp_dir().join(format!("bornsql_e2e_{}.json", std::process::id()));
    db.save(&path).unwrap();
    let db2 = Database::open_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();

    let reattached = BornSqlModel::attach(&db2, "m", scopus_options()).unwrap();
    let after = reattached.predict(&test).unwrap();
    assert_eq!(before, after);
}

#[test]
fn concurrent_inference_while_learning_continues() {
    // Paper §7: the model is served by querying the database, "leveraging
    // the concurrency of the database". Readers predict while a writer
    // keeps partial-fitting; every prediction must come from a consistent
    // snapshot (no torn corpus reads).
    use std::sync::Arc;
    let db = Arc::new(scopus_db(400, EngineConfig::profile_a()));
    let model = BornSqlModel::create(db.as_ref(), "live", scopus_options()).unwrap();
    model
        .fit(&scopus_spec(Some(
            "SELECT id AS n FROM publication WHERE id <= 200",
        )))
        .unwrap();
    model.deploy().unwrap();

    let writer_db = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        let model = BornSqlModel::attach(writer_db.as_ref(), "live", scopus_options()).unwrap();
        for batch in 0..5i64 {
            let lo = 200 + batch * 40;
            model
                .partial_fit(&scopus_spec(Some(&format!(
                    "SELECT id AS n FROM publication WHERE id > {lo} AND id <= {}",
                    lo + 40
                ))))
                .unwrap();
        }
    });

    let mut readers = Vec::new();
    for t in 0..3 {
        let reader_db = Arc::clone(&db);
        readers.push(std::thread::spawn(move || {
            let model = BornSqlModel::attach(reader_db.as_ref(), "live", scopus_options()).unwrap();
            let mut test = DataSpec::default();
            for arm in scopus::qx_arms(false) {
                test = test.with_features(arm);
            }
            let test = test.with_items(format!(
                "SELECT id AS n FROM publication WHERE id % 3 = {t} AND id <= 30"
            ));
            for _ in 0..10 {
                let preds = model.predict(&test).unwrap();
                assert!(!preds.is_empty());
                for (_, k) in &preds {
                    let class = k.as_i64().unwrap().unwrap();
                    assert!([17, 18, 26].contains(&class), "bogus class {class}");
                }
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
}
