//! Model-level crash recovery: a BornSQL model trained across injected
//! crashes must recover to a state whose predictions match the `born`
//! oracle fit on the surviving prefix of the training stream.
//!
//! This is the paper's durability argument made concrete: the model *is*
//! tables, so WAL-prefix consistency for tables is exactly incremental-fit
//! prefix consistency for the classifier.

use std::collections::BTreeMap;
use std::sync::Arc;

use born::{BornClassifier, HyperParams, TrainItem};
use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use sqlengine::{Database, EngineConfig, FaultKind, FaultyIo, MemIo, StorageIo, SyncPolicy};

/// The training stream: `(doc id, body, label)`. The first `BASE` docs go
/// in via `fit`; the rest arrive one at a time via `partial_fit`, so every
/// doc past `BASE` is its own WAL batch (one statement each).
const DOCS: &[(i64, &str, &str)] = &[
    (1, "robot vision control", "ai"),
    (2, "poisson variance estimate", "stats"),
    (3, "robot planning control", "ai"),
    (4, "variance of estimators", "stats"),
    (5, "neural robot grasping", "ai"),
    (6, "bayes variance poisson", "stats"),
];
const BASE: usize = 3;
const MODEL: &str = "crashy";

/// Probe items for inference, `(n, feature, weight)`. Every feature occurs
/// in the first `BASE` docs so each training prefix yields a prediction;
/// weights are asymmetric so no prefix produces an argmax tie.
const PROBE: &[(i64, &str, f64)] = &[
    (101, "robot", 1.0),
    (101, "control", 0.5),
    (102, "variance", 1.0),
    (102, "poisson", 0.5),
    (103, "robot", 2.0),
    (103, "variance", 1.0),
];

fn open_always(io: Arc<dyn StorageIo>) -> Database {
    Database::open_with_io(
        io,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_checkpoint_after_bytes(0),
    )
    .unwrap()
}

/// Seed the raw tables the model trains from and the probe table it
/// predicts on. One word per `docs` row keeps tokenisation out of SQL.
fn setup_sql() -> String {
    let mut sql = String::from(
        "CREATE TABLE docs (n INTEGER, j TEXT, w REAL);\n\
         CREATE TABLE labels (n INTEGER, k TEXT);\n\
         CREATE TABLE probe (n INTEGER, j TEXT, w REAL);\n",
    );
    for (n, body, label) in DOCS {
        for word in body.split_whitespace() {
            sql.push_str(&format!("INSERT INTO docs VALUES ({n}, '{word}', 1.0);\n"));
        }
        sql.push_str(&format!("INSERT INTO labels VALUES ({n}, '{label}');\n"));
    }
    for (n, j, w) in PROBE {
        sql.push_str(&format!("INSERT INTO probe VALUES ({n}, '{j}', {w});\n"));
    }
    sql
}

fn spec_for(filter: &str) -> DataSpec {
    DataSpec::new(format!("SELECT n, j, w FROM docs WHERE {filter}"))
        .with_targets(format!("SELECT n, k, 1.0 AS w FROM labels WHERE {filter}"))
}

/// Drive setup + create + fit + one `partial_fit` per remaining doc,
/// stopping at the first error like a real process would.
fn run_training(db: &Database) -> Result<(), String> {
    db.execute_script(&setup_sql()).map_err(|e| e.to_string())?;
    let model =
        BornSqlModel::create(db, MODEL, ModelOptions::default()).map_err(|e| e.to_string())?;
    model
        .fit(&spec_for(&format!("n <= {BASE}")))
        .map_err(|e| e.to_string())?;
    for d in BASE + 1..=DOCS.len() {
        model
            .partial_fit(&spec_for(&format!("n = {d}")))
            .map_err(|e| e.to_string())?;
    }
    Ok(())
}

/// Oracle predictions for the probe set after training on `DOCS[..upto]`.
fn oracle_predictions(upto: usize) -> BTreeMap<String, String> {
    let items: Vec<TrainItem<String, String>> = DOCS[..upto]
        .iter()
        .map(|(_, body, label)| {
            TrainItem::labeled(
                body.split_whitespace()
                    .map(|w| (w.to_string(), 1.0))
                    .collect(),
                label.to_string(),
            )
        })
        .collect();
    let deployed = BornClassifier::fit(&items)
        .deploy(HyperParams::default())
        .expect("non-empty corpus");
    let mut by_item: BTreeMap<i64, Vec<(String, f64)>> = BTreeMap::new();
    for (n, j, w) in PROBE {
        by_item.entry(*n).or_default().push((j.to_string(), *w));
    }
    by_item
        .into_iter()
        .map(|(n, x)| {
            let k = deployed.predict(&x).expect("probe features are known");
            (n.to_string(), k)
        })
        .collect()
}

/// The SQL model's predictions for the probe set (no deployment: computed
/// on the fly from the corpus table, i.e. purely from recovered state).
fn sql_predictions(model: &BornSqlModel<'_, Database>) -> BTreeMap<String, String> {
    model
        .predict(&DataSpec::new("SELECT n, j, w FROM probe"))
        .unwrap()
        .into_iter()
        .map(|(n, k)| (n.to_string(), k.to_string()))
        .collect()
}

/// The recovered corpus must be the corpus after some training prefix.
/// Returns `reference[p]` = corpus after `p` docs, for `p = BASE..=len`.
fn reference_corpora(db: &Database) -> BTreeMap<usize, Vec<(String, String, f64)>> {
    let corpus = |m: &BornSqlModel<'_, Database>| {
        m.corpus()
            .unwrap()
            .into_iter()
            .map(|(j, k, w)| (j.to_string(), k.to_string(), w))
            .collect::<Vec<_>>()
    };
    db.execute_script(&setup_sql()).unwrap();
    let model = BornSqlModel::create(db, MODEL, ModelOptions::default()).unwrap();
    let mut reference = BTreeMap::new();
    model.fit(&spec_for(&format!("n <= {BASE}"))).unwrap();
    reference.insert(BASE, corpus(&model));
    for d in BASE + 1..=DOCS.len() {
        model.partial_fit(&spec_for(&format!("n = {d}"))).unwrap();
        reference.insert(d, corpus(&model));
    }
    // Sanity: the fault-free model agrees with the oracle on the full
    // stream, so the crash assertions below compare against a meaningful
    // reference. Earlier prefixes are checked when a crash lands on them.
    assert_eq!(sql_predictions(&model), oracle_predictions(DOCS.len()));
    reference
}

fn recovered_corpus(model: &BornSqlModel<'_, Database>) -> Option<Vec<(String, String, f64)>> {
    model.corpus().ok().map(|rows| {
        rows.into_iter()
            .map(|(j, k, w)| (j.to_string(), k.to_string(), w))
            .collect()
    })
}

#[test]
fn model_predictions_after_crash_match_oracle_on_surviving_prefix() {
    // Fault-free reference run: corpus contents after each training prefix.
    let reference = {
        let io = Arc::new(MemIo::new());
        let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
        reference_corpora(&db)
    };

    let mut crash_seen = false;
    let mut prefixes_hit: BTreeMap<usize, usize> = BTreeMap::new();
    for n in 0.. {
        let io = Arc::new(FaultyIo::new());
        io.arm(n, FaultKind::Crash);
        let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
        let clean = run_training(&db).is_ok();
        if clean && !io.crashed() {
            assert!(crash_seen, "failpoint never fired");
            break;
        }
        crash_seen = true;

        // "Reboot" from whatever survived the crash and reattach the model.
        let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
        let recovered = open_always(survivor as Arc<dyn StorageIo>);
        let model = BornSqlModel::attach(&recovered, MODEL, ModelOptions::default()).unwrap();
        assert!(!model.is_deployed(), "workload never deploys");

        match recovered_corpus(&model) {
            // Crash before the corpus table was durable: nothing to serve,
            // but recovery itself must not fail (attach above succeeded).
            None => {}
            Some(corpus) => {
                if let Some((&p, _)) = reference.iter().find(|(_, c)| **c == corpus) {
                    // The surviving corpus is exactly a training prefix:
                    // serving from it must match the oracle on that prefix.
                    assert_eq!(
                        sql_predictions(&model),
                        oracle_predictions(p),
                        "crash at write {n}: predictions diverge from the \
                         oracle on the surviving {p}-doc prefix"
                    );
                    *prefixes_hit.entry(p).or_insert(0) += 1;
                } else {
                    // Mid-`fit` the corpus is legitimately empty (between
                    // the rebuild's CREATE and its first partial_fit); any
                    // other survivor would be a torn, non-prefix state.
                    assert!(
                        corpus.is_empty(),
                        "crash at write {n}: corpus is neither empty nor a \
                         training prefix ({} cells)",
                        corpus.len()
                    );
                }
            }
        }
    }

    // The sweep must actually have landed on several distinct prefixes —
    // otherwise the oracle comparison above never ran.
    assert!(
        prefixes_hit.len() >= 2,
        "crash sweep hit too few training prefixes: {prefixes_hit:?}"
    );
}
