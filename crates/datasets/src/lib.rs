//! # datasets — simulated benchmark data
//!
//! The paper evaluates on proprietary or external datasets we do not have:
//! the Elsevier Scopus citation database (2,359,828 publications), UCI Adult,
//! UCI RLCP record-linkage comparison patterns, and the 20 Newsgroups /
//! Reuters text corpora. Per the reproduction's substitution rule (see
//! DESIGN.md), this crate provides *seeded synthetic generators* that mirror
//! each dataset's statistical shape — class priors, feature cardinalities,
//! Zipfian token distributions, class-conditional vocabularies, and (for the
//! chronological-split experiment) distribution drift — so that every
//! experiment exercises the same code paths at configurable scale.
//!
//! All generators are deterministic given a seed.

#![forbid(unsafe_code)]

pub mod scopus;
pub mod sparse;
pub mod tabular;
pub mod textsets;
pub mod zipf;

pub use scopus::{ScopusConfig, ScopusData, ASJC_AI, ASJC_DS, ASJC_STATS};
pub use sparse::{SparseDataset, SparseItem};
pub use tabular::{adult_like, rlcp_like, TabularConfig};
pub use textsets::{newsgroups_like, reuters_like, TextSetConfig};
pub use zipf::Zipf;
