//! Synthetic analogues of the 20 Newsgroups and Reuters (R8 / R52) text
//! corpora (paper Section 5.3).
//!
//! The paper reports BornSQL accuracies of 87.3% (20NG), 95.4% (R8), and
//! 88.0% (R52), replicating the NeurIPS results. These generators produce
//! multi-class text datasets whose separability is tuned (via the
//! class-token mixing ratio and vocabulary overlap) so a Born classifier
//! lands in the same accuracy regime — preserving the *shape* of the
//! result (R8 easiest, 20NG/R52 harder with many confusable classes).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse::{SparseDataset, SparseItem};
use crate::zipf::Zipf;

/// Configuration of a synthetic text classification corpus.
#[derive(Debug, Clone)]
pub struct TextSetConfig {
    pub n_classes: usize,
    pub n_items: usize,
    /// Probability that a token is a *signal* token (from some class's
    /// vocabulary) rather than shared filler.
    pub class_signal: f64,
    /// Probability that a signal token comes from the document's true class
    /// (otherwise a uniformly random class — misleading evidence). This is
    /// the knob that sets the irreducible Bayes error, keeping accuracies in
    /// the paper's 0.85–0.95 band instead of a trivial 1.0.
    pub signal_fidelity: f64,
    /// Tokens per class vocabulary.
    pub class_vocab: usize,
    /// Tokens in the shared vocabulary.
    pub shared_vocab: usize,
    /// Mean document length in tokens.
    pub doc_len: usize,
    /// Class imbalance exponent: class c has prior ∝ 1/(c+1)^imbalance.
    pub imbalance: f64,
    pub seed: u64,
}

/// Generate a corpus from the configuration.
pub fn generate(config: &TextSetConfig, name: &str) -> SparseDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let class_prior = Zipf::new(config.n_classes, config.imbalance);
    let class_tok = Zipf::new(config.class_vocab, 1.0);
    let shared_tok = Zipf::new(config.shared_vocab, 1.0);

    let mut items = Vec::with_capacity(config.n_items);
    for id in 1..=(config.n_items as i64) {
        let class = class_prior.sample(&mut rng);
        let len = (config.doc_len / 2) + rng.gen_range(0..config.doc_len.max(1));
        let mut counts: std::collections::BTreeMap<String, f64> = Default::default();
        for _ in 0..len.max(3) {
            let u: f64 = rng.gen();
            let tok = if u < config.class_signal {
                // Signal token — usually from the true class, sometimes from
                // a random class (misleading evidence).
                let c = if rng.gen_bool(config.signal_fidelity) {
                    class
                } else {
                    rng.gen_range(0..config.n_classes)
                };
                format!("c{c}_t{}", class_tok.sample(&mut rng))
            } else {
                format!("shared_t{}", shared_tok.sample(&mut rng))
            };
            *counts.entry(tok).or_insert(0.0) += 1.0;
        }
        items.push(SparseItem {
            id,
            features: counts.into_iter().collect(),
            label: format!("class{class}"),
        });
    }
    SparseDataset {
        name: name.into(),
        items,
    }
}

/// 20-Newsgroups-like: 20 moderately confusable, roughly balanced classes.
pub fn newsgroups_like(n_items: usize, seed: u64) -> SparseDataset {
    generate(
        &TextSetConfig {
            n_classes: 20,
            n_items,
            class_signal: 0.45,
            signal_fidelity: 0.58,
            class_vocab: 300,
            shared_vocab: 2_000,
            doc_len: 18,
            imbalance: 0.1,
            seed,
        },
        "20ng-like",
    )
}

/// Reuters-like: `r8` (8 classes, strong signal → mid-90s accuracy) or
/// `r52` (52 classes, skewed priors → high-80s).
pub fn reuters_like(variant: &str, n_items: usize, seed: u64) -> SparseDataset {
    match variant {
        "r8" => generate(
            &TextSetConfig {
                n_classes: 8,
                n_items,
                class_signal: 0.55,
                signal_fidelity: 0.74,
                class_vocab: 250,
                shared_vocab: 1_500,
                doc_len: 16,
                imbalance: 0.8,
                seed,
            },
            "r8-like",
        ),
        "r52" => generate(
            &TextSetConfig {
                n_classes: 52,
                n_items,
                class_signal: 0.5,
                signal_fidelity: 0.60,
                class_vocab: 150,
                shared_vocab: 1_500,
                doc_len: 16,
                imbalance: 1.0,
                seed,
            },
            "r52-like",
        ),
        other => panic!("unknown Reuters variant '{other}' (use r8 or r52)"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn newsgroups_has_20_classes() {
        let d = newsgroups_like(2_000, 1);
        assert_eq!(d.labels().len(), 20);
        assert_eq!(d.items.len(), 2_000);
    }

    #[test]
    fn r52_is_skewed() {
        let d = reuters_like("r52", 5_000, 2);
        let labels = d.labels();
        assert!(labels.len() >= 40, "saw {} classes", labels.len());
        let count = |l: &str| d.items.iter().filter(|i| i.label == l).count();
        assert!(count("class0") > count("class30") * 3);
    }

    #[test]
    #[should_panic(expected = "unknown Reuters variant")]
    fn bad_variant_panics() {
        reuters_like("r9", 10, 0);
    }

    #[test]
    fn documents_contain_class_tokens() {
        let d = reuters_like("r8", 500, 3);
        let item = &d.items[0];
        let class_idx = item.label.strip_prefix("class").unwrap();
        let has_own = item
            .features
            .iter()
            .any(|(j, _)| j.starts_with(&format!("c{class_idx}_")));
        assert!(has_own || item.features.iter().any(|(j, _)| j.starts_with("shared")));
    }
}
