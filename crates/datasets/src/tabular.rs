//! Synthetic analogues of the UCI Adult and RLCP datasets (paper Section 5).
//!
//! * **Adult-like** — binary income classification from one-hot encoded
//!   census categoricals: 102 one-hot features over 8 attribute families,
//!   ~24% positive rate, 32,561 train / 16,281 test at full scale.
//! * **RLCP-like** — record-linkage comparison patterns: 18 binary
//!   match/non-match features, extreme imbalance (~0.36% positive),
//!   5,749,132 instances at full scale (scaled down by default).
//!
//! Both generators plant a class-conditional structure whose strength is
//! tuned so that linear baselines and BornSQL land in the accuracy regime
//! the paper reports (Table 5): high-90s on RLCP, ~0.7 macro-F1 on Adult.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::sparse::{SparseDataset, SparseItem};

/// Scale configuration shared by the tabular generators.
#[derive(Debug, Clone)]
pub struct TabularConfig {
    pub n_items: usize,
    pub seed: u64,
}

impl TabularConfig {
    pub fn new(n_items: usize, seed: u64) -> Self {
        TabularConfig { n_items, seed }
    }
}

/// Attribute families of the Adult-like dataset: (name, cardinality).
/// Cardinalities sum to 102, the paper's one-hot feature count.
const ADULT_ATTRIBUTES: [(&str, usize); 8] = [
    ("workclass", 9),
    ("education", 16),
    ("marital_status", 7),
    ("occupation", 15),
    ("relationship", 6),
    ("race", 5),
    ("sex", 2),
    ("native_country", 42),
];

/// Generate an Adult-like census dataset. Labels are `">50K"` / `"<=50K"`
/// with the UCI positive rate (~24%).
pub fn adult_like(config: &TabularConfig) -> SparseDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let total_card: usize = ADULT_ATTRIBUTES.iter().map(|(_, c)| c).sum();
    debug_assert_eq!(total_card, 102);

    let mut items = Vec::with_capacity(config.n_items);
    for id in 1..=(config.n_items as i64) {
        let positive = rng.gen_bool(11_687.0 / 48_842.0); // UCI class prior
        let mut features = Vec::with_capacity(ADULT_ATTRIBUTES.len());
        for (attr, card) in ADULT_ATTRIBUTES {
            // Class-conditional categorical draw: the positive class skews
            // toward low category indexes, the negative toward high ones,
            // with heavy overlap (this is what caps F1 around the paper's
            // ~0.7 level rather than making the task trivial).
            let skew: f64 = if positive { 0.40 } else { 0.60 };
            let u: f64 = rng.gen::<f64>() * 0.66 + skew * 0.34;
            let idx = ((u * card as f64) as usize).min(card - 1);
            features.push((format!("{attr}:v{idx}"), 1.0));
        }
        // Rare categories appear in the negative class only — the bias the
        // paper's Section 5.4 explainability example detects.
        if !positive && rng.gen_bool(0.0006) {
            features.push(("native_country:Holand-Netherlands".to_string(), 1.0));
        }
        items.push(SparseItem {
            id,
            features,
            label: if positive { ">50K" } else { "<=50K" }.to_string(),
        });
    }
    SparseDataset {
        name: "adult-like".into(),
        items,
    }
}

/// Generate an RLCP-like record-linkage dataset: 18 binary comparison
/// features (`cmp_i:match` present when field i agrees), labels
/// `"match"` / `"nonmatch"` with ~0.36% positive rate. True matches agree on
/// almost all fields; non-matches agree rarely.
pub fn rlcp_like(config: &TabularConfig) -> SparseDataset {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut items = Vec::with_capacity(config.n_items);
    for id in 1..=(config.n_items as i64) {
        let is_match = rng.gen_bool(20_931.0 / 5_749_132.0);
        let agree_p = if is_match { 0.93 } else { 0.08 };
        let mut features = Vec::new();
        for field in 0..18 {
            if rng.gen_bool(agree_p) {
                features.push((format!("cmp_{field}:match"), 1.0));
            } else {
                features.push((format!("cmp_{field}:nonmatch"), 1.0));
            }
        }
        items.push(SparseItem {
            id,
            features,
            label: if is_match { "match" } else { "nonmatch" }.to_string(),
        });
    }
    SparseDataset {
        name: "rlcp-like".into(),
        items,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adult_has_102_possible_features_and_right_prior() {
        let d = adult_like(&TabularConfig::new(20_000, 1));
        assert!(d.n_features() <= 103); // 102 + the planted rare country
        let pos = d.items.iter().filter(|i| i.label == ">50K").count();
        let rate = pos as f64 / d.items.len() as f64;
        assert!((rate - 0.2393).abs() < 0.02, "positive rate {rate}");
        // Every item has exactly one value per attribute family.
        assert!(d.items.iter().all(|i| i.features.len() >= 8));
    }

    #[test]
    fn rlcp_is_extremely_imbalanced() {
        let d = rlcp_like(&TabularConfig::new(100_000, 2));
        let pos = d.items.iter().filter(|i| i.label == "match").count();
        let rate = pos as f64 / d.items.len() as f64;
        assert!(rate < 0.01, "positive rate {rate}");
        assert!(pos > 0, "some matches must exist at this scale");
        assert_eq!(d.n_features(), 36); // 18 fields × match/nonmatch
    }

    #[test]
    fn matches_agree_more_than_nonmatches() {
        let d = rlcp_like(&TabularConfig::new(200_000, 3));
        let avg_agree = |label: &str| {
            let sel: Vec<_> = d.items.iter().filter(|i| i.label == label).collect();
            let agrees: usize = sel
                .iter()
                .map(|i| {
                    i.features
                        .iter()
                        .filter(|(j, _)| j.ends_with(":match"))
                        .count()
                })
                .sum();
            agrees as f64 / sel.len().max(1) as f64
        };
        assert!(avg_agree("match") > 14.0);
        assert!(avg_agree("nonmatch") < 4.0);
    }

    #[test]
    fn deterministic() {
        let a = adult_like(&TabularConfig::new(100, 7));
        let b = adult_like(&TabularConfig::new(100, 7));
        assert_eq!(a.items[50].features, b.items[50].features);
        assert_eq!(a.items[50].label, b.items[50].label);
    }
}
