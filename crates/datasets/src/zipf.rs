//! A small Zipf-law sampler.
//!
//! Real-world categorical attributes (publication venues, keywords, word
//! frequencies) follow heavy-tailed rank-frequency laws; the paper's feature
//! growth curves (Figure 5) only reproduce if the synthetic data does too.

use rand::Rng;

/// Samples ranks `0..n` with probability proportional to `1 / (rank+1)^s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Create a sampler over `n` ranks with exponent `s` (s = 1 is the
    /// classic Zipf law; larger s concentrates more mass on low ranks).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0;
        for rank in 0..n {
            total += 1.0 / ((rank + 1) as f64).powf(s);
            cdf.push(total);
        }
        let norm = total;
        for c in &mut cdf {
            *c /= norm;
        }
        Zipf { cdf }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draw one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        // First rank whose CDF value exceeds u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn low_ranks_dominate() {
        let z = Zipf::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[10], "rank 0 must beat rank 10");
        assert!(counts[0] > counts[99] * 5, "head must dominate tail");
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 0.5);
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 5];
        for _ in 0..5_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn deterministic_under_seed() {
        let z = Zipf::new(50, 1.2);
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            assert_eq!(z.sample(&mut a), z.sample(&mut b));
        }
    }

    #[test]
    fn single_rank() {
        let z = Zipf::new(1, 1.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }
}
