//! Synthetic Scopus-like publication database (paper Section 4.1).
//!
//! The real benchmark is 2,359,828 Scopus publications in three subject
//! areas with 3,942,559 distinct features. We cannot redistribute Scopus, so
//! this generator reproduces the database's *shape* at configurable scale:
//!
//! * the paper's class priors — Artificial Intelligence (ASJC 1702, 43.4%),
//!   Decision Sciences (18XX, 38.5%), Statistics & Probability (2613, 18.1%);
//! * the star schema of Figure 2 — `publication` fact table plus
//!   `pub_author` / `pub_keyword` dimension tables;
//! * Zipf-distributed venues, authors, keywords and abstract lexemes with
//!   class-conditional vocabularies (so the classification task is
//!   learnable and venue names dominate the global explanation, as in the
//!   paper's Table 3);
//! * an optional *chronological drift* mode where later publications carry
//!   more authors, more keywords, longer abstracts, and ever-fresh feature
//!   values — the regime of Figure 5, panels (b)/(e).
//!
//! Abstracts are generated as text and also pre-vectorized into a
//! `pub_lexeme(pubid, lexeme, cnt)` table. This substitutes PostgreSQL's
//! `tsvector` machinery (see the `textproc` crate), which our engine does
//! not provide; the `(j, w)` rows it feeds to BornSQL are identical in
//! form to the paper's `unnest(abstract)` query.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use sqlengine::{Database, Value};

use crate::zipf::Zipf;

/// ASJC macro code for Artificial Intelligence (17 after `/ 100`).
pub const ASJC_AI: i64 = 1702;
/// ASJC macro prefix for Decision Sciences (18 after `/ 100`).
pub const ASJC_DS: i64 = 1800;
/// ASJC macro code for Statistics and Probability (26 after `/ 100`).
pub const ASJC_STATS: i64 = 2613;

/// Class priors from the paper's Table 1.
const PRIORS: [(usize, f64); 3] = [
    (0, 1_024_703.0 / 2_359_828.0), // AI
    (1, 908_784.0 / 2_359_828.0),   // Decision Sciences
    (2, 426_341.0 / 2_359_828.0),   // Statistics
];

const CLASS_TAGS: [&str; 3] = ["ai", "ds", "st"];

/// Generator configuration.
#[derive(Debug, Clone)]
pub struct ScopusConfig {
    /// Number of publications to generate (the paper uses 2,359,828; the
    /// default is laptop-scale — experiments sweep this).
    pub n_publications: usize,
    pub seed: u64,
    /// Chronological drift: later items have more authors/keywords, longer
    /// abstracts, and continually fresh feature values (Figure 5(b)).
    pub drift: bool,
    /// Venues per class.
    pub venues_per_class: usize,
    /// Size of each class's author pool.
    pub authors_per_class: usize,
    /// Size of each class's keyword pool.
    pub keywords_per_class: usize,
    /// Size of each class's abstract vocabulary (plus a shared pool of the
    /// same size). Kept finite so the abstract-only scenario (Figure 5(c))
    /// saturates.
    pub abstract_vocab: usize,
    /// Mean abstract length in tokens.
    pub abstract_len: usize,
    /// Probability that a publication's recorded ASJC class differs from
    /// the class that generated its content. Real subject areas overlap
    /// (an ML-for-OR paper may be indexed under Decision Sciences), which
    /// is why the paper's classifiers do not reach 100% accuracy.
    pub label_noise: f64,
}

impl Default for ScopusConfig {
    fn default() -> Self {
        ScopusConfig {
            n_publications: 5_000,
            seed: 42,
            drift: false,
            venues_per_class: 150,
            authors_per_class: 2_000,
            keywords_per_class: 1_200,
            abstract_vocab: 800,
            abstract_len: 40,
            label_noise: 0.06,
        }
    }
}

impl ScopusConfig {
    /// A small configuration for unit tests.
    pub fn tiny(seed: u64) -> Self {
        ScopusConfig {
            n_publications: 300,
            seed,
            venues_per_class: 20,
            authors_per_class: 100,
            keywords_per_class: 60,
            abstract_vocab: 80,
            abstract_len: 15,
            drift: false,
            label_noise: 0.06,
        }
    }
}

/// One generated publication.
#[derive(Debug, Clone)]
pub struct Publication {
    pub id: i64,
    pub pubname: String,
    pub asjc: i64,
    pub abstract_text: String,
}

/// The generated database content (Figure 2's schema plus the pre-vectorized
/// abstract table).
#[derive(Debug, Clone)]
pub struct ScopusData {
    pub publications: Vec<Publication>,
    pub pub_author: Vec<(i64, i64)>,
    pub pub_keyword: Vec<(i64, String)>,
    /// `(pubid, lexeme, count)` — the vectorized abstracts.
    pub pub_lexeme: Vec<(i64, String, f64)>,
}

/// Draw from a Poisson(λ) (Knuth's method; λ is small here).
fn poisson<R: Rng>(rng: &mut R, lambda: f64) -> usize {
    let l = (-lambda).exp();
    let mut k = 0usize;
    let mut p = 1.0;
    loop {
        p *= rng.gen::<f64>();
        if p <= l {
            return k;
        }
        k += 1;
        if k > 1000 {
            return k; // guard against pathological λ
        }
    }
}

/// Generate a Scopus-like database.
pub fn generate(config: &ScopusConfig) -> ScopusData {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let n = config.n_publications;

    let venue_zipf = Zipf::new(config.venues_per_class, 1.1);
    let author_zipf = Zipf::new(config.authors_per_class, 1.05);
    let keyword_zipf = Zipf::new(config.keywords_per_class, 1.05);
    let vocab_zipf = Zipf::new(config.abstract_vocab, 1.0);

    let mut publications = Vec::with_capacity(n);
    let mut pub_author = Vec::new();
    let mut pub_keyword = Vec::new();
    let mut pub_lexeme = Vec::new();

    // Fresh-value counters for the drift regime.
    let mut fresh_author = 9_000_000i64;
    let mut fresh_keyword = 0u64;
    let mut fresh_lexeme = 0u64;

    for id in 1..=(n as i64) {
        // Chronological position in [0, 1] (ids are ordered by date).
        let t = id as f64 / n as f64;

        // Class by the paper's priors.
        let u: f64 = rng.gen();
        let class = {
            let mut acc = 0.0;
            let mut chosen = 2;
            for (c, p) in PRIORS {
                acc += p;
                if u < acc {
                    chosen = c;
                    break;
                }
            }
            chosen
        };
        let tag = CLASS_TAGS[class];
        // Content is generated from `class`; the *recorded* label may be a
        // different (overlapping) subject area with probability label_noise.
        let label_class = if rng.gen_bool(config.label_noise) {
            rng.gen_range(0..3)
        } else {
            class
        };
        let asjc = match label_class {
            0 => ASJC_AI,
            1 => ASJC_DS + rng.gen_range(1..5), // 1801..1804 sub-fields
            _ => ASJC_STATS,
        };

        // Venue: mostly class-conditional, sometimes cross-listed.
        let venue_class = if rng.gen_bool(0.9) {
            class
        } else {
            rng.gen_range(0..3)
        };
        let pubname = format!(
            "journal of {} studies {}",
            CLASS_TAGS[venue_class],
            venue_zipf.sample(&mut rng)
        );

        // Authors.
        let (author_lambda, fresh_author_p) = if config.drift {
            (1.5 + 4.0 * t, 0.10 + 0.35 * t)
        } else {
            (3.0, 0.0)
        };
        let n_authors = 1 + poisson(&mut rng, author_lambda);
        for _ in 0..n_authors {
            let authid = if config.drift && rng.gen_bool(fresh_author_p) {
                fresh_author += 1;
                fresh_author
            } else {
                // Class pools are disjoint ranges of author ids.
                (class * config.authors_per_class + author_zipf.sample(&mut rng)) as i64 + 1_000_000
            };
            pub_author.push((id, authid));
        }

        // Keywords.
        let (kw_lambda, fresh_kw_p) = if config.drift {
            (1.5 + 4.0 * t, 0.10 + 0.30 * t)
        } else {
            (3.5, 0.0)
        };
        let n_keywords = 1 + poisson(&mut rng, kw_lambda);
        for _ in 0..n_keywords {
            let kw = if config.drift && rng.gen_bool(fresh_kw_p) {
                fresh_keyword += 1;
                format!("emerging topic {fresh_keyword}")
            } else if rng.gen_bool(0.75) {
                format!("{tag} keyword {}", keyword_zipf.sample(&mut rng))
            } else {
                format!("shared keyword {}", keyword_zipf.sample(&mut rng))
            };
            pub_keyword.push((id, kw));
        }

        // Abstract: class vocabulary mixed with a shared vocabulary.
        let len_scale = if config.drift { 0.5 + 1.5 * t } else { 1.0 };
        let n_tokens = ((config.abstract_len as f64) * len_scale).round() as usize;
        let fresh_tok_p = if config.drift { 0.01 + 0.04 * t } else { 0.0 };
        let mut counts: std::collections::BTreeMap<String, f64> = Default::default();
        let mut words = Vec::with_capacity(n_tokens.max(1));
        for _ in 0..n_tokens.max(3) {
            let tok = if config.drift && rng.gen_bool(fresh_tok_p) {
                fresh_lexeme += 1;
                format!("neolog{fresh_lexeme}")
            } else if rng.gen_bool(0.55) {
                format!("{tag}term{}", vocab_zipf.sample(&mut rng))
            } else {
                format!("word{}", vocab_zipf.sample(&mut rng))
            };
            *counts.entry(tok.clone()).or_insert(0.0) += 1.0;
            words.push(tok);
        }
        let abstract_text = words.join(" ");
        for (lexeme, cnt) in counts {
            pub_lexeme.push((id, lexeme, cnt));
        }

        publications.push(Publication {
            id,
            pubname,
            asjc,
            abstract_text,
        });
    }

    ScopusData {
        publications,
        pub_author,
        pub_keyword,
        pub_lexeme,
    }
}

impl ScopusData {
    /// Create the schema of Figure 2 (plus the vectorized-abstract table)
    /// and load all rows.
    pub fn load_into(&self, db: &Database) -> sqlengine::Result<()> {
        db.execute(
            "CREATE TABLE publication (id INTEGER PRIMARY KEY, pubname TEXT, asjc INTEGER, abstract TEXT)",
        )?;
        db.execute("CREATE TABLE pub_author (pubid INTEGER, authid INTEGER)")?;
        db.execute("CREATE TABLE pub_keyword (pubid INTEGER, keyword TEXT)")?;
        db.execute("CREATE TABLE pub_lexeme (pubid INTEGER, lexeme TEXT, cnt REAL)")?;
        db.insert_rows(
            "publication",
            self.publications
                .iter()
                .map(|p| {
                    vec![
                        Value::Int(p.id),
                        Value::text(&p.pubname),
                        Value::Int(p.asjc),
                        Value::text(&p.abstract_text),
                    ]
                })
                .collect(),
        )?;
        db.insert_rows(
            "pub_author",
            self.pub_author
                .iter()
                .map(|(p, a)| vec![Value::Int(*p), Value::Int(*a)])
                .collect(),
        )?;
        db.insert_rows(
            "pub_keyword",
            self.pub_keyword
                .iter()
                .map(|(p, k)| vec![Value::Int(*p), Value::text(k)])
                .collect(),
        )?;
        db.insert_rows(
            "pub_lexeme",
            self.pub_lexeme
                .iter()
                .map(|(p, l, c)| vec![Value::Int(*p), Value::text(l), Value::Float(*c)])
                .collect(),
        )?;
        Ok(())
    }

    /// Count of items per macro class (`asjc / 100`), for Table 1.
    pub fn class_distribution(&self) -> Vec<(i64, usize)> {
        let mut counts: std::collections::BTreeMap<i64, usize> = Default::default();
        for p in &self.publications {
            *counts.entry(p.asjc / 100).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }
}

/// The paper's `q_x` arms (Section 4.2): one `SELECT` per attribute family,
/// each prefixed to avoid feature collisions.
pub fn qx_arms(abstract_only: bool) -> Vec<String> {
    let mut arms = Vec::new();
    if !abstract_only {
        arms.push(
            "SELECT id AS n, 'pubname:' || pubname AS j, 1.0 AS w FROM publication".to_string(),
        );
        arms.push(
            "SELECT pubid AS n, 'authid:' || authid AS j, 1.0 AS w FROM pub_author".to_string(),
        );
        arms.push(
            "SELECT pubid AS n, 'keyword:' || keyword AS j, 1.0 AS w FROM pub_keyword".to_string(),
        );
    }
    arms.push(
        "SELECT pubid AS n, 'abstract:' || lexeme AS j, cnt AS w FROM pub_lexeme".to_string(),
    );
    arms
}

/// The paper's `q_y`: the macro subject area is the first two ASJC digits.
pub fn qy() -> String {
    "SELECT id AS n, asjc / 100 AS k, 1.0 AS w FROM publication".to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn priors_roughly_match_table_1() {
        let data = generate(&ScopusConfig {
            n_publications: 4_000,
            ..ScopusConfig::tiny(1)
        });
        let dist = data.class_distribution();
        let total: usize = dist.iter().map(|(_, c)| c).sum();
        assert_eq!(total, 4_000);
        let frac = |k: i64| {
            dist.iter()
                .find(|(c, _)| *c == k)
                .map(|(_, n)| *n as f64 / total as f64)
                .unwrap_or(0.0)
        };
        assert!((frac(17) - 0.434).abs() < 0.04, "AI prior {}", frac(17));
        assert!((frac(18) - 0.385).abs() < 0.04, "DS prior {}", frac(18));
        assert!((frac(26) - 0.181).abs() < 0.04, "Stats prior {}", frac(26));
    }

    #[test]
    fn deterministic_per_seed() {
        let a = generate(&ScopusConfig::tiny(9));
        let b = generate(&ScopusConfig::tiny(9));
        assert_eq!(a.publications.len(), b.publications.len());
        assert_eq!(a.publications[5].pubname, b.publications[5].pubname);
        assert_eq!(a.pub_keyword, b.pub_keyword);
    }

    #[test]
    fn drift_grows_features_per_item() {
        let cfg = ScopusConfig {
            drift: true,
            n_publications: 2_000,
            ..ScopusConfig::tiny(3)
        };
        let data = generate(&cfg);
        // Average authors per publication in the first vs last decile.
        let count_in = |lo: i64, hi: i64| {
            data.pub_author
                .iter()
                .filter(|(p, _)| *p > lo && *p <= hi)
                .count() as f64
                / (hi - lo) as f64
        };
        let early = count_in(0, 200);
        let late = count_in(1800, 2000);
        assert!(
            late > early * 1.5,
            "drift must add authors over time: early {early}, late {late}"
        );
    }

    #[test]
    fn loads_into_database() {
        let data = generate(&ScopusConfig::tiny(4));
        let db = Database::new();
        data.load_into(&db).unwrap();
        assert_eq!(db.table_rows("publication").unwrap(), 300);
        assert!(db.table_rows("pub_author").unwrap() > 300);
        assert!(db.table_rows("pub_keyword").unwrap() > 300);
        assert!(db.table_rows("pub_lexeme").unwrap() > 300);
        // q_y yields the three macro classes.
        let r = db
            .query("SELECT DISTINCT asjc / 100 AS k FROM publication ORDER BY k")
            .unwrap();
        let ks: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row[0].as_i64().unwrap().unwrap())
            .collect();
        assert_eq!(ks, vec![17, 18, 26]);
    }

    #[test]
    fn qx_arms_cover_all_families() {
        let arms = qx_arms(false);
        assert_eq!(arms.len(), 4);
        assert!(arms[0].contains("pubname:"));
        assert!(arms[3].contains("abstract:"));
        assert_eq!(qx_arms(true).len(), 1);
    }
}
