//! A generic sparse classification dataset and its database loaders.

use sqlengine::{Database, Value};

/// One item: identifier, sparse features, single label.
#[derive(Debug, Clone)]
pub struct SparseItem {
    pub id: i64,
    pub features: Vec<(String, f64)>,
    pub label: String,
}

/// A sparse single-label classification dataset.
#[derive(Debug, Clone)]
pub struct SparseDataset {
    pub name: String,
    pub items: Vec<SparseItem>,
}

impl SparseDataset {
    /// Split by position into (train, test).
    pub fn split_at(&self, n_train: usize) -> (&[SparseItem], &[SparseItem]) {
        let n = n_train.min(self.items.len());
        (&self.items[..n], &self.items[n..])
    }

    /// Number of distinct features.
    pub fn n_features(&self) -> usize {
        let mut names: Vec<&str> = self
            .items
            .iter()
            .flat_map(|i| i.features.iter().map(|(j, _)| j.as_str()))
            .collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }

    /// Distinct labels, sorted.
    pub fn labels(&self) -> Vec<String> {
        let mut labels: Vec<String> = self.items.iter().map(|i| i.label.clone()).collect();
        labels.sort();
        labels.dedup();
        labels
    }

    /// Load into `db` as two long-format tables:
    /// `{prefix}_features (n, j, w)` and `{prefix}_labels (n, k)`.
    ///
    /// This is the *normalized* representation BornSQL consumes directly —
    /// the whole point of the paper's Section 5.1 comparison.
    pub fn load_into(&self, db: &Database, prefix: &str) -> sqlengine::Result<()> {
        db.execute(&format!(
            "CREATE TABLE {prefix}_features (n INTEGER, j TEXT, w REAL)"
        ))?;
        db.execute(&format!("CREATE TABLE {prefix}_labels (n INTEGER, k TEXT)"))?;
        let mut frows = Vec::new();
        let mut lrows = Vec::new();
        for item in &self.items {
            for (j, w) in &item.features {
                frows.push(vec![Value::Int(item.id), Value::text(j), Value::Float(*w)]);
            }
            lrows.push(vec![Value::Int(item.id), Value::text(&item.label)]);
        }
        db.insert_rows(&format!("{prefix}_features"), frows)?;
        db.insert_rows(&format!("{prefix}_labels"), lrows)?;
        Ok(())
    }

    /// Total number of non-zero feature entries.
    pub fn nnz(&self) -> usize {
        self.items.iter().map(|i| i.features.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SparseDataset {
        SparseDataset {
            name: "tiny".into(),
            items: vec![
                SparseItem {
                    id: 1,
                    features: vec![("a".into(), 1.0), ("b".into(), 2.0)],
                    label: "x".into(),
                },
                SparseItem {
                    id: 2,
                    features: vec![("b".into(), 1.0)],
                    label: "y".into(),
                },
            ],
        }
    }

    #[test]
    fn stats() {
        let d = tiny();
        assert_eq!(d.n_features(), 2);
        assert_eq!(d.labels(), vec!["x".to_string(), "y".to_string()]);
        assert_eq!(d.nnz(), 3);
        let (train, test) = d.split_at(1);
        assert_eq!(train.len(), 1);
        assert_eq!(test.len(), 1);
    }

    #[test]
    fn loads_into_db() {
        let d = tiny();
        let db = Database::new();
        d.load_into(&db, "t").unwrap();
        assert_eq!(db.table_rows("t_features").unwrap(), 3);
        assert_eq!(db.table_rows("t_labels").unwrap(), 2);
    }
}
