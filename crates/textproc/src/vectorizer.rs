//! Count vectorization: text → sparse `(lexeme, count)` pairs, plus an
//! optional shared vocabulary for stable integer feature ids.

use std::collections::HashMap;

use crate::tokenizer::Tokenizer;

/// Turns a text into term counts, the `tsvector`-equivalent the paper uses
/// to vectorize abstracts (Section 4.2: `array_length(positions, 1)` is the
/// per-lexeme occurrence count).
///
/// `ngram_range = (lo, hi)` emits every n-gram with `lo ≤ n ≤ hi` tokens;
/// multi-token grams are joined with a single space (so a bigram feature
/// reads `"sampling efficiency"`, like the paper's keyword features).
#[derive(Debug, Clone)]
pub struct CountVectorizer {
    pub tokenizer: Tokenizer,
    pub ngram_range: (usize, usize),
}

impl Default for CountVectorizer {
    fn default() -> Self {
        CountVectorizer {
            tokenizer: Tokenizer::default(),
            ngram_range: (1, 1),
        }
    }
}

impl CountVectorizer {
    pub fn new(tokenizer: Tokenizer) -> Self {
        CountVectorizer {
            tokenizer,
            ngram_range: (1, 1),
        }
    }

    /// Set the n-gram range (inclusive). Panics on an empty/invalid range.
    pub fn with_ngrams(mut self, lo: usize, hi: usize) -> Self {
        assert!(lo >= 1 && hi >= lo, "invalid n-gram range ({lo}, {hi})");
        self.ngram_range = (lo, hi);
        self
    }

    /// Vectorize one text into sorted `(lexeme, count)` pairs.
    ///
    /// Output order is lexicographic, making downstream SQL inserts and
    /// explanations deterministic.
    pub fn vectorize(&self, text: &str) -> Vec<(String, f64)> {
        let tokens = self.tokenizer.tokenize(text);
        let (lo, hi) = self.ngram_range;
        let mut counts: HashMap<String, f64> = HashMap::new();
        for n in lo..=hi {
            if n > tokens.len() {
                break;
            }
            for window in tokens.windows(n) {
                let gram = window.join(" ");
                *counts.entry(gram).or_insert(0.0) += 1.0;
            }
        }
        let mut out: Vec<(String, f64)> = counts.into_iter().collect();
        out.sort_by(|a, b| a.0.cmp(&b.0));
        out
    }
}

/// An insertion-ordered string-interning vocabulary mapping terms to dense
/// ids. Used by the dense baselines (MADlib stand-ins) that need fixed
/// column positions.
#[derive(Debug, Clone, Default)]
pub struct Vocabulary {
    terms: Vec<String>,
    index: HashMap<String, usize>,
}

impl Vocabulary {
    pub fn new() -> Self {
        Self::default()
    }

    /// Intern a term, returning its stable id.
    pub fn intern(&mut self, term: &str) -> usize {
        if let Some(&id) = self.index.get(term) {
            return id;
        }
        let id = self.terms.len();
        self.terms.push(term.to_string());
        self.index.insert(term.to_string(), id);
        id
    }

    /// Look up an existing term id without interning.
    pub fn get(&self, term: &str) -> Option<usize> {
        self.index.get(term).copied()
    }

    /// The term for an id.
    pub fn term(&self, id: usize) -> Option<&str> {
        self.terms.get(id).map(|s| s.as_str())
    }

    pub fn len(&self) -> usize {
        self.terms.len()
    }

    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_repeated_terms() {
        let v = CountVectorizer::default();
        let counts = v.vectorize("sample sample sample variance");
        assert_eq!(
            counts,
            vec![("sample".to_string(), 3.0), ("variance".to_string(), 1.0)]
        );
    }

    #[test]
    fn output_is_sorted() {
        let v = CountVectorizer::default();
        let counts = v.vectorize("zeta alpha median");
        let terms: Vec<&str> = counts.iter().map(|(t, _)| t.as_str()).collect();
        assert_eq!(terms, vec!["alpha", "median", "zeta"]);
    }

    #[test]
    fn vocabulary_interning_is_stable() {
        let mut vocab = Vocabulary::new();
        let a = vocab.intern("robot");
        let b = vocab.intern("vision");
        assert_eq!(vocab.intern("robot"), a);
        assert_ne!(a, b);
        assert_eq!(vocab.term(a), Some("robot"));
        assert_eq!(vocab.get("vision"), Some(b));
        assert_eq!(vocab.get("nope"), None);
        assert_eq!(vocab.len(), 2);
    }

    #[test]
    fn empty_text_gives_empty_vector() {
        let v = CountVectorizer::default();
        assert!(v.vectorize("").is_empty());
    }

    #[test]
    fn bigrams_join_with_space() {
        let v = CountVectorizer::default().with_ngrams(1, 2);
        let counts = v.vectorize("sampling efficiency matters");
        let terms: Vec<&str> = counts.iter().map(|(t, _)| t.as_str()).collect();
        assert!(terms.contains(&"sampling"));
        assert!(terms.contains(&"sampling efficiency"));
        assert!(terms.contains(&"efficiency matters"));
        assert!(!terms.contains(&"sampling efficiency matters"));
    }

    #[test]
    fn bigram_only_range() {
        let v = CountVectorizer::default().with_ngrams(2, 2);
        let counts = v.vectorize("alpha beta alpha beta");
        assert_eq!(
            counts,
            vec![
                ("alpha beta".to_string(), 2.0),
                ("beta alpha".to_string(), 1.0)
            ]
        );
    }

    #[test]
    #[should_panic(expected = "invalid n-gram range")]
    fn invalid_range_panics() {
        let _ = CountVectorizer::default().with_ngrams(2, 1);
    }

    #[test]
    fn ngrams_longer_than_text_are_skipped() {
        let v = CountVectorizer::default().with_ngrams(1, 3);
        let counts = v.vectorize("solo");
        assert_eq!(counts, vec![("solo".to_string(), 1.0)]);
    }
}
