//! # textproc — text preprocessing substrate
//!
//! The paper vectorizes abstracts inside the DBMS with engine-specific
//! machinery (`tsvector` on PostgreSQL, `json_table` on MySQL, `json_each`
//! on SQLite). Our engine has no such extension, so this crate provides the
//! equivalent transformation in Rust: a deterministic tokenizer and a count
//! vectorizer producing `(lexeme, count)` pairs — exactly the `(j, w)` rows
//! the paper's `q_x` query emits for the `abstract:` feature family.
//!
//! ```
//! use textproc::CountVectorizer;
//!
//! let v = CountVectorizer::default();
//! let counts = v.vectorize("The sample variance of the sample mean.");
//! assert!(counts.iter().any(|(t, c)| t == "sample" && *c == 2.0));
//! assert!(!counts.iter().any(|(t, _)| t == "the")); // stop word
//! ```

#![forbid(unsafe_code)]

pub mod stopwords;
pub mod tfidf;
pub mod tokenizer;
pub mod vectorizer;

pub use tfidf::TfIdf;
pub use tokenizer::{TokenFilter, Tokenizer};
pub use vectorizer::{CountVectorizer, Vocabulary};
