//! TF-IDF weighting.
//!
//! The Born classifier consumes any non-negative feature weights; the
//! NeurIPS paper evaluates both raw counts and TF-IDF-weighted inputs.
//! This transformer computes smoothed IDF over a fitted corpus and rescales
//! count vectors, so pipelines can feed `(term, tf·idf)` rows to BornSQL
//! instead of raw counts.

use std::collections::HashMap;

/// Smoothed TF-IDF: `idf(t) = ln((1 + N) / (1 + df(t))) + 1`
/// (scikit-learn's `smooth_idf=True` formula, which the paper's artifacts
/// use).
#[derive(Debug, Clone, Default)]
pub struct TfIdf {
    n_docs: usize,
    doc_freq: HashMap<String, usize>,
}

impl TfIdf {
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate document frequencies from one document's term counts
    /// (call once per document; terms may appear in any order).
    pub fn fit_document(&mut self, counts: &[(String, f64)]) {
        self.n_docs += 1;
        for (term, c) in counts {
            if *c > 0.0 {
                *self.doc_freq.entry(term.clone()).or_insert(0) += 1;
            }
        }
    }

    /// Fit a whole corpus at once.
    pub fn fit<'a>(docs: impl IntoIterator<Item = &'a [(String, f64)]>) -> Self {
        let mut t = Self::new();
        for d in docs {
            t.fit_document(d);
        }
        t
    }

    /// Number of fitted documents.
    pub fn n_docs(&self) -> usize {
        self.n_docs
    }

    /// The smoothed inverse document frequency of a term. Unseen terms get
    /// the maximum IDF (df = 0).
    pub fn idf(&self, term: &str) -> f64 {
        let df = self.doc_freq.get(term).copied().unwrap_or(0);
        ((1.0 + self.n_docs as f64) / (1.0 + df as f64)).ln() + 1.0
    }

    /// Transform one document's counts into TF-IDF weights with L2
    /// normalization (again matching the common scikit-learn default).
    pub fn transform(&self, counts: &[(String, f64)]) -> Vec<(String, f64)> {
        let mut weighted: Vec<(String, f64)> = counts
            .iter()
            .map(|(t, c)| (t.clone(), c * self.idf(t)))
            .collect();
        let norm: f64 = weighted.iter().map(|(_, w)| w * w).sum::<f64>().sqrt();
        if norm > 0.0 {
            for (_, w) in &mut weighted {
                *w /= norm;
            }
        }
        weighted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(terms: &[(&str, f64)]) -> Vec<(String, f64)> {
        terms.iter().map(|(t, c)| (t.to_string(), *c)).collect()
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let docs = [
            doc(&[("the", 1.0), ("robot", 1.0)]),
            doc(&[("the", 1.0), ("poisson", 1.0)]),
            doc(&[("the", 1.0), ("sample", 1.0)]),
        ];
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        assert!(tfidf.idf("robot") > tfidf.idf("the"));
        let out = tfidf.transform(&docs[0]);
        let get = |t: &str| out.iter().find(|(x, _)| x == t).unwrap().1;
        assert!(get("robot") > get("the"));
    }

    #[test]
    fn transform_is_l2_normalized() {
        let docs = [doc(&[("a", 2.0), ("b", 1.0)])];
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        let out = tfidf.transform(&docs[0]);
        let norm: f64 = out.iter().map(|(_, w)| w * w).sum();
        assert!((norm - 1.0).abs() < 1e-12);
    }

    #[test]
    fn unseen_terms_get_max_idf() {
        let docs = [doc(&[("a", 1.0)]), doc(&[("a", 1.0)])];
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        assert!(tfidf.idf("never_seen") > tfidf.idf("a"));
    }

    #[test]
    fn empty_document_transforms_to_empty() {
        let tfidf = TfIdf::fit(std::iter::empty());
        assert!(tfidf.transform(&[]).is_empty());
        assert_eq!(tfidf.n_docs(), 0);
    }

    #[test]
    fn idf_formula_matches_smooth_variant() {
        // 3 docs, df("x") = 1 → idf = ln(4/2) + 1.
        let docs = [doc(&[("x", 1.0)]), doc(&[("y", 1.0)]), doc(&[("y", 1.0)])];
        let tfidf = TfIdf::fit(docs.iter().map(|d| d.as_slice()));
        assert!((tfidf.idf("x") - (2.0f64.ln() + 1.0)).abs() < 1e-12);
    }
}
