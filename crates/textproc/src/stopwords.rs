//! A compact English stop-word list (the usual suspects found in default
//! DBMS text-search configurations).

/// Words excluded by [`crate::Tokenizer`] when stop-word filtering is on.
pub const ENGLISH: &[&str] = &[
    "a", "about", "above", "after", "again", "all", "also", "an", "and", "any", "are", "as", "at",
    "be", "because", "been", "before", "being", "below", "between", "both", "but", "by", "can",
    "could", "did", "do", "does", "doing", "down", "during", "each", "few", "for", "from",
    "further", "had", "has", "have", "having", "he", "her", "here", "hers", "him", "his", "how",
    "i", "if", "in", "into", "is", "it", "its", "just", "me", "more", "most", "my", "no", "nor",
    "not", "now", "of", "off", "on", "once", "only", "or", "other", "our", "out", "over", "own",
    "same", "she", "should", "so", "some", "such", "than", "that", "the", "their", "them", "then",
    "there", "these", "they", "this", "those", "through", "to", "too", "under", "until", "up",
    "very", "was", "we", "were", "what", "when", "where", "which", "while", "who", "whom", "why",
    "will", "with", "would", "you", "your",
];

/// Binary-search membership test (the list above is sorted).
pub fn is_stopword(word: &str) -> bool {
    ENGLISH.binary_search(&word).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn list_is_sorted_for_binary_search() {
        let mut sorted = ENGLISH.to_vec();
        sorted.sort_unstable();
        assert_eq!(sorted, ENGLISH, "stop-word list must stay sorted");
    }

    #[test]
    fn membership() {
        assert!(is_stopword("the"));
        assert!(is_stopword("with"));
        assert!(!is_stopword("robot"));
        assert!(!is_stopword("variance"));
    }
}
