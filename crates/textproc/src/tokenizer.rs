//! Deterministic word tokenizer.

use crate::stopwords::is_stopword;

/// Token filtering options.
#[derive(Debug, Clone)]
pub struct TokenFilter {
    /// Drop tokens shorter than this many characters.
    pub min_len: usize,
    /// Drop tokens longer than this many characters.
    pub max_len: usize,
    /// Drop English stop words.
    pub remove_stopwords: bool,
    /// Drop tokens that are purely numeric.
    pub remove_numbers: bool,
}

impl Default for TokenFilter {
    fn default() -> Self {
        TokenFilter {
            min_len: 2,
            max_len: 40,
            remove_stopwords: true,
            remove_numbers: true,
        }
    }
}

/// Splits text into lower-cased alphanumeric tokens and applies a
/// [`TokenFilter`]. Splitting happens on every non-alphanumeric character,
/// which matches the behaviour of default DBMS text-search parsers closely
/// enough for the workloads in the paper.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    pub filter: TokenFilter,
}

impl Tokenizer {
    pub fn new(filter: TokenFilter) -> Self {
        Tokenizer { filter }
    }

    /// Tokenize into owned lower-case strings.
    pub fn tokenize(&self, text: &str) -> Vec<String> {
        let mut out = Vec::new();
        for raw in text.split(|c: char| !c.is_alphanumeric()) {
            if raw.is_empty() {
                continue;
            }
            let token = raw.to_lowercase();
            if token.chars().count() < self.filter.min_len
                || token.chars().count() > self.filter.max_len
            {
                continue;
            }
            if self.filter.remove_numbers && token.chars().all(|c| c.is_ascii_digit()) {
                continue;
            }
            if self.filter.remove_stopwords && is_stopword(&token) {
                continue;
            }
            out.push(token);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_and_lowercases() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("Robot-based Vision, and CONTROL!"),
            vec!["robot", "based", "vision", "control"]
        );
    }

    #[test]
    fn removes_stopwords_and_numbers() {
        let t = Tokenizer::default();
        assert_eq!(
            t.tokenize("the variance of 1000 samples in 2022"),
            vec!["variance", "samples"]
        );
    }

    #[test]
    fn keeps_numbers_when_disabled() {
        let t = Tokenizer::new(TokenFilter {
            remove_numbers: false,
            ..TokenFilter::default()
        });
        assert!(t.tokenize("run 1000 times").contains(&"1000".to_string()));
    }

    #[test]
    fn min_length_filters_single_chars() {
        let t = Tokenizer::default();
        assert_eq!(t.tokenize("x y variance z"), vec!["variance"]);
    }

    #[test]
    fn unicode_text_survives() {
        let t = Tokenizer::default();
        let toks = t.tokenize("naïve Bayes — probabilité");
        assert!(toks.contains(&"naïve".to_string()));
        assert!(toks.contains(&"probabilité".to_string()));
    }

    #[test]
    fn empty_input() {
        let t = Tokenizer::default();
        assert!(t.tokenize("").is_empty());
        assert!(t.tokenize("   ,,, !!!").is_empty());
    }
}
