//! Criterion bench for Figure 4: deployment time versus model size
//! (number of features).

use bench::scopus_exp::{scopus_model_options, setup, train_spec};
use bornsql::BornSqlModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlengine::EngineConfig;

fn deploy_scaling(c: &mut Criterion) {
    let n = 4_000;
    let db = setup(n, false, EngineConfig::profile_a());
    let mut group = c.benchmark_group("figure4_deploy");
    group.sample_size(10);
    for pct in [20usize, 60, 100] {
        let model = BornSqlModel::create(&db, "bench_deploy", scopus_model_options()).unwrap();
        model
            .fit(&train_spec(
                Some(format!(
                    "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                    (pct / 10) as i64 - 1
                )),
                false,
            ))
            .unwrap();
        let features = model.n_features().unwrap();
        group.bench_function(BenchmarkId::new("features", features), |b| {
            b.iter(|| model.deploy().unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, deploy_scaling);
criterion_main!(benches);
