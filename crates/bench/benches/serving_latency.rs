//! Criterion bench for the serving hot path: repeated single-item and
//! small-batch `predict` calls against a deployed model, comparing the
//! cold-plan path (plan cache disabled, every call re-parses and re-plans)
//! with the default cached-plan path (repeat calls skip straight to
//! execution). Run on 1 CPU this isolates planning overhead; the index-scan
//! access path is identical in both configurations.

use bench::scopus_exp::{scopus_model_options, setup, test_spec, train_spec};
use bornsql::BornSqlModel;
use criterion::{criterion_group, criterion_main, Criterion};
use sqlengine::{EngineConfig, Value};

fn serving_latency(c: &mut Criterion) {
    let n = 2_000;
    let one = test_spec("SELECT 13 AS n".to_string());
    // 20 items out of 2000 — a realistic small serving batch.
    let batch = test_spec("SELECT id AS n FROM publication WHERE id % 100 = 13".to_string());

    let mut group = c.benchmark_group("serving_latency");
    group.sample_size(20);
    let mut summary = bench::report::Summary::new("serving_latency");

    for (label, config) in [
        (
            "cold_plan",
            EngineConfig::profile_a().with_plan_cache(false),
        ),
        ("cached_plan", EngineConfig::profile_a()),
    ] {
        let db = setup(n, false, config);
        let model = BornSqlModel::create(&db, "bench_serve", scopus_model_options()).unwrap();
        model.fit(&train_spec(None, false)).unwrap();
        model.deploy().unwrap();

        group.bench_function(format!("single_item_{label}"), |b| {
            b.iter(|| model.predict(&one).unwrap())
        });
        group.bench_function(format!("batch_20_{label}"), |b| {
            b.iter(|| model.predict(&batch).unwrap())
        });

        summary.time_us(&format!("single_item_{label}_us"), 50, || {
            model.predict(&one).unwrap();
        });
        summary.time_us(&format!("batch_20_{label}_us"), 50, || {
            model.predict(&batch).unwrap();
        });
    }

    // Parameterized template: the item id is a `?` bound at execution, so
    // every call after the first binds into one cached plan instead of
    // re-parsing a fresh statement text per id.
    let db = setup(n, false, EngineConfig::profile_a());
    let model = BornSqlModel::create(&db, "bench_serve", scopus_model_options()).unwrap();
    model.fit(&train_spec(None, false)).unwrap();
    model.deploy().unwrap();
    let param_sql = model
        .generator()
        .predict(&test_spec("SELECT ? AS n".to_string()), true);
    let mut id = 0i64;
    group.bench_function("single_item_parameterized", |b| {
        b.iter(|| {
            id = (id + 1) % n as i64;
            db.query_with(&param_sql, &[Value::Int(id)]).unwrap()
        })
    });
    summary.time_us("single_item_parameterized_us", 50, || {
        id = (id + 1) % n as i64;
        db.query_with(&param_sql, &[Value::Int(id)]).unwrap();
    });

    // Batched predict: one statement classifies 64 ids, amortizing the
    // per-call parse/plan/scan overhead across the whole batch.
    let items: Vec<Value> = (0..64i64).map(|i| Value::Int(i * 31 % n as i64)).collect();
    group.bench_function("batch_64_predict_batch", |b| {
        b.iter(|| model.predict_batch(&one, &items).unwrap())
    });
    summary.time_us("batch_64_predict_batch_us", 20, || {
        model.predict_batch(&one, &items).unwrap();
    });

    group.finish();
    summary.write();
}

criterion_group!(benches, serving_latency);
criterion_main!(benches);
