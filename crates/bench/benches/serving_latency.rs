//! Criterion bench for the serving hot path: repeated single-item and
//! small-batch `predict` calls against a deployed model, comparing the
//! cold-plan path (plan cache disabled, every call re-parses and re-plans)
//! with the default cached-plan path (repeat calls skip straight to
//! execution). Run on 1 CPU this isolates planning overhead; the index-scan
//! access path is identical in both configurations.

use bench::scopus_exp::{scopus_model_options, setup, test_spec, train_spec};
use bornsql::BornSqlModel;
use criterion::{criterion_group, criterion_main, Criterion};
use sqlengine::EngineConfig;

fn serving_latency(c: &mut Criterion) {
    let n = 2_000;
    let one = test_spec("SELECT 13 AS n".to_string());
    // 20 items out of 2000 — a realistic small serving batch.
    let batch = test_spec("SELECT id AS n FROM publication WHERE id % 100 = 13".to_string());

    let mut group = c.benchmark_group("serving_latency");
    group.sample_size(20);
    let mut summary = bench::report::Summary::new("serving_latency");

    for (label, config) in [
        (
            "cold_plan",
            EngineConfig::profile_a().with_plan_cache(false),
        ),
        ("cached_plan", EngineConfig::profile_a()),
    ] {
        let db = setup(n, false, config);
        let model = BornSqlModel::create(&db, "bench_serve", scopus_model_options()).unwrap();
        model.fit(&train_spec(None, false)).unwrap();
        model.deploy().unwrap();

        group.bench_function(format!("single_item_{label}"), |b| {
            b.iter(|| model.predict(&one).unwrap())
        });
        group.bench_function(format!("batch_20_{label}"), |b| {
            b.iter(|| model.predict(&batch).unwrap())
        });

        summary.time_us(&format!("single_item_{label}_us"), 50, || {
            model.predict(&one).unwrap();
        });
        summary.time_us(&format!("batch_20_{label}_us"), 50, || {
            model.predict(&batch).unwrap();
        });
    }

    group.finish();
    summary.write();
}

criterion_group!(benches, serving_latency);
criterion_main!(benches);
