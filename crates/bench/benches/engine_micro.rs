//! Engine micro-benchmarks: the cost of the SQL machinery itself (parse,
//! plan+execute of each operator class), independent of BornSQL workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use sqlengine::{Database, Value};

fn setup(rows: usize) -> Database {
    let db = Database::new();
    db.execute("CREATE TABLE t (g INTEGER, x INTEGER, w REAL)")
        .unwrap();
    let data: Vec<Vec<Value>> = (0..rows as i64)
        .map(|i| {
            vec![
                Value::Int(i % 50),
                Value::Int(i),
                Value::Float((i % 97) as f64 / 7.0),
            ]
        })
        .collect();
    db.insert_rows("t", data).unwrap();
    db
}

fn parsing(c: &mut Criterion) {
    let sql = "WITH xy AS (SELECT a.n AS n, a.j AS j, b.k AS k, a.w * b.w AS w \
               FROM x AS a, y AS b WHERE a.n = b.n), \
               s AS (SELECT n, SUM(w) AS w FROM xy GROUP BY n) \
               SELECT xy.j, xy.k, SUM(xy.w / s.w) AS w FROM xy, s \
               WHERE xy.n = s.n GROUP BY xy.j, xy.k ORDER BY w DESC LIMIT 10";
    c.bench_function("micro_parse_cte_pipeline", |b| {
        b.iter(|| sqlengine::parser::parse_statement(std::hint::black_box(sql)).unwrap())
    });
}

fn operators(c: &mut Criterion) {
    let db = setup(20_000);
    let mut group = c.benchmark_group("micro_operators");
    group.sample_size(20);
    group.bench_function("filter_scan_20k", |b| {
        b.iter(|| {
            db.query("SELECT x FROM t WHERE x % 7 = 3 AND w > 2.0")
                .unwrap()
        })
    });
    group.bench_function("hash_aggregate_20k", |b| {
        b.iter(|| {
            db.query("SELECT g, SUM(w), COUNT(*) FROM t GROUP BY g")
                .unwrap()
        })
    });
    group.bench_function("self_hash_join_20k", |b| {
        b.iter(|| {
            db.query("SELECT COUNT(*) FROM t AS a, t AS b WHERE a.x = b.x")
                .unwrap()
        })
    });
    group.bench_function("sort_20k", |b| {
        b.iter(|| {
            db.query("SELECT x FROM t ORDER BY w DESC LIMIT 100")
                .unwrap()
        })
    });
    group.bench_function("window_row_number_20k", |b| {
        b.iter(|| {
            db.query("SELECT g, ROW_NUMBER() OVER (PARTITION BY g ORDER BY w DESC) AS r FROM t")
                .unwrap()
        })
    });
    group.finish();
}

fn prepared_vs_adhoc(c: &mut Criterion) {
    let db = setup(5_000);
    let mut group = c.benchmark_group("micro_prepared");
    group.bench_function("adhoc_point_query", |b| {
        b.iter(|| {
            db.query_with("SELECT w FROM t WHERE x = ?", &[Value::Int(123)])
                .unwrap()
        })
    });
    let prepared = db.prepare("SELECT w FROM t WHERE x = ?").unwrap();
    group.bench_function("prepared_point_query", |b| {
        b.iter(|| prepared.query(&[Value::Int(123)]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, parsing, operators, prepared_vs_adhoc);
criterion_main!(benches);
