//! Criterion bench for Figure 6: single-item inference before and after
//! deployment, plus per-item cost on a 1000-item batch.

use bench::scopus_exp::{scopus_model_options, setup, test_spec, train_spec};
use bornsql::BornSqlModel;
use criterion::{criterion_group, criterion_main, Criterion};
use sqlengine::EngineConfig;

fn inference(c: &mut Criterion) {
    let n = 4_000;
    let db = setup(n, false, EngineConfig::profile_a());
    let model = BornSqlModel::create(&db, "bench_inf", scopus_model_options()).unwrap();
    model.fit(&train_spec(None, false)).unwrap();

    let one = test_spec("SELECT 13 AS n".to_string());
    let batch = test_spec("SELECT id AS n FROM publication WHERE id <= 1000".to_string());

    let mut group = c.benchmark_group("figure6_inference");
    group.sample_size(10);

    model.undeploy().unwrap();
    group.bench_function("single_item_undeployed", |b| {
        b.iter(|| model.predict(&one).unwrap())
    });

    model.deploy().unwrap();
    group.bench_function("single_item_deployed", |b| {
        b.iter(|| model.predict(&one).unwrap())
    });

    group.bench_function("batch_1000_deployed", |b| {
        b.iter(|| model.predict(&batch).unwrap())
    });

    group.finish();
}

criterion_group!(benches, inference);
criterion_main!(benches);
