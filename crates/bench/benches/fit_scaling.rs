//! Criterion bench for Figure 3: training time (fit and partial-fit) as a
//! function of the number of training items, per engine profile.

use bench::scopus_exp::{scopus_model_options, setup, train_spec};
use bornsql::BornSqlModel;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlengine::EngineConfig;

fn fit_scaling(c: &mut Criterion) {
    let n = 4_000;
    let mut group = c.benchmark_group("figure3_fit");
    group.sample_size(10);
    for (profile, config) in [
        ("hash_pipelined", EngineConfig::profile_a()),
        ("hash_materialized", EngineConfig::profile_b()),
        ("sort_merge", EngineConfig::profile_c()),
    ] {
        let db = setup(n, false, config);
        for pct in [20usize, 60, 100] {
            let spec = train_spec(
                Some(format!(
                    "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                    (pct / 10) as i64 - 1
                )),
                false,
            );
            group.bench_with_input(BenchmarkId::new(profile, pct), &spec, |b, spec| {
                b.iter(|| {
                    let model =
                        BornSqlModel::create(&db, "bench_fit", scopus_model_options()).unwrap();
                    model.fit(spec).unwrap();
                })
            });
        }
    }
    group.finish();
}

fn partial_fit_constant(c: &mut Criterion) {
    // Figure 3's second claim: partial-fit cost is constant per
    // equally-sized batch regardless of how much was learned before.
    let n = 4_000;
    let db = setup(n, false, EngineConfig::profile_a());
    let mut group = c.benchmark_group("figure3_partial_fit");
    group.sample_size(10);
    for decile in [1i64, 5, 9] {
        let model = BornSqlModel::create(&db, "bench_pf", scopus_model_options()).unwrap();
        // Pre-train on everything before this decile.
        if decile > 0 {
            model
                .fit(&train_spec(
                    Some(format!(
                        "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                        decile - 1
                    )),
                    false,
                ))
                .unwrap();
        }
        let batch = train_spec(
            Some(format!(
                "SELECT id AS n FROM publication WHERE id % 10 = {decile}"
            )),
            false,
        );
        group.bench_with_input(
            BenchmarkId::new("after_deciles", decile),
            &batch,
            |b, batch| b.iter(|| model.partial_fit(batch).unwrap()),
        );
    }
    group.finish();
}

criterion_group!(benches, fit_scaling, partial_fit_constant);
criterion_main!(benches);
