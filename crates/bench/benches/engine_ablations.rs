//! Ablation benches for the design choices called out in DESIGN.md:
//! hash vs nested-loop joins, pipelined vs materialized CTEs, indexed
//! upsert throughput, sparse vs dense feature handling, and columnar
//! (vectorized) vs row-at-a-time execution.

use baselines::densify;
use bench::scopus_exp::{scopus_model_options, setup, train_spec};
use bornsql::BornSqlModel;
use criterion::{criterion_group, criterion_main, Criterion};
use datasets::{adult_like, TabularConfig};
use sqlengine::{Database, EngineConfig, Value};

/// Ablation 1 + 4: the training pipeline under each engine profile.
fn join_strategies(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_join_strategy");
    group.sample_size(10);
    for (name, config) in [
        ("hash_join", EngineConfig::profile_a()),
        ("materialized_ctes", EngineConfig::profile_b()),
        ("sort_merge", EngineConfig::profile_c()),
    ] {
        let db = setup(1_000, false, config);
        let spec = train_spec(None, false);
        group.bench_function(name, |b| {
            b.iter(|| {
                let model = BornSqlModel::create(&db, "abl", scopus_model_options()).unwrap();
                model.fit(&spec).unwrap();
            })
        });
    }
    group.finish();
}

/// Ablation 6: executor parallelism sweep on an aggregate/join-heavy query —
/// the morsel-parallel executor at 1, 2, and 4 workers over the same data.
fn parallelism_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_parallelism");
    group.sample_size(10);
    let mut summary = bench::report::Summary::new("parallelism_sweep");
    let query = "SELECT t.g, COUNT(*) AS n, SUM(t.w) AS sw, COUNT(DISTINCT t.x) AS dx \
                 FROM t JOIN dim ON t.g = dim.g \
                 WHERE t.x > -400 GROUP BY t.g ORDER BY t.g";
    for parallelism in [1usize, 2, 4] {
        let db = Database::with_config(EngineConfig::default().with_parallelism(parallelism));
        db.execute("CREATE TABLE t (g INTEGER, x INTEGER, w REAL)")
            .unwrap();
        db.execute("CREATE TABLE dim (g INTEGER, name TEXT)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..200_000i64)
            .map(|i| {
                vec![
                    Value::Int(i % 64),
                    Value::Int((i * 7919) % 1000 - 500),
                    Value::Float((i % 977) as f64 / 4.0),
                ]
            })
            .collect();
        db.insert_rows("t", rows).unwrap();
        let dim: Vec<Vec<Value>> = (0..64i64)
            .map(|g| vec![Value::Int(g), Value::text(format!("group-{g}"))])
            .collect();
        db.insert_rows("dim", dim).unwrap();
        group.bench_function(format!("workers_{parallelism}"), |b| {
            b.iter(|| db.query(query).unwrap())
        });
        summary.time_us(&format!("workers_{parallelism}_us"), 7, || {
            db.query(query).unwrap();
        });
    }
    group.finish();
    summary.write();
}

/// Ablation 2: upsert throughput into the PK-indexed corpus table.
fn upsert_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_upsert");
    group.sample_size(10);
    group.bench_function("on_conflict_accumulate_5k", |b| {
        b.iter(|| {
            let db = Database::new();
            db.execute("CREATE TABLE c (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k))")
                .unwrap();
            db.execute("CREATE TABLE src (j TEXT, k INTEGER, w REAL)")
                .unwrap();
            let rows: Vec<Vec<Value>> = (0..5_000)
                .map(|i| {
                    vec![
                        Value::text(format!("f{}", i % 1_000)),
                        Value::Int(i % 3),
                        Value::Float(1.0),
                    ]
                })
                .collect();
            db.insert_rows("src", rows).unwrap();
            // Two passes: the second is pure conflict-update traffic.
            for _ in 0..2 {
                db.execute(
                    "INSERT INTO c (j, k, w) SELECT j, k, w FROM src \
                     ON CONFLICT (j, k) DO UPDATE SET w = c.w + excluded.w",
                )
                .unwrap();
            }
        })
    });
    group.finish();
}

/// Ablation 5: sparse (BornSQL-style long table) vs dense materialization
/// of the same one-hot dataset — the §5.1 data-handling contrast.
fn sparse_vs_dense(c: &mut Criterion) {
    let adult = adult_like(&TabularConfig::new(4_000, 3));
    let mut group = c.benchmark_group("ablation_sparse_vs_dense");
    group.sample_size(10);
    group.bench_function("sparse_load_normalized", |b| {
        b.iter(|| {
            let db = Database::new();
            adult.load_into(&db, "a").unwrap();
        })
    });
    group.bench_function("dense_materialize", |b| b.iter(|| densify(&adult)));
    group.finish();
}

/// Ablation 7: columnar/vectorized vs row-at-a-time execution of the same
/// sparse-corpus group-by — `EngineConfig::vectorized` toggled, identical
/// data and query. The corpus imitates the BornSQL long table: a
/// low-cardinality token column (dictionary-encodable), a tiny class
/// column, and a float weight.
fn columnar_vectorized(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_columnar");
    group.sample_size(10);
    let mut summary = bench::report::Summary::new("columnar_vectorized");
    let query = "SELECT j, COUNT(*) AS n, SUM(w) AS sw FROM corpus \
                 WHERE k = 1 AND w > 0.5 GROUP BY j ORDER BY j";
    for (name, vectorized) in [("vectorized", true), ("row", false)] {
        let db = Database::with_config(EngineConfig::default().with_vectorized(vectorized));
        db.execute("CREATE TABLE corpus (j TEXT, k INTEGER, w REAL)")
            .unwrap();
        let rows: Vec<Vec<Value>> = (0..200_000i64)
            .map(|i| {
                vec![
                    Value::text(format!("tok{}", i % 200)),
                    Value::Int(i % 2),
                    Value::Float((i % 97) as f64 / 32.0),
                ]
            })
            .collect();
        db.insert_rows("corpus", rows).unwrap();
        // Warm pass: builds the lazy chunk caches (vectorized mode) and the
        // plan cache, so the measured loop sees steady state in both modes.
        db.query(query).unwrap();
        group.bench_function(name, |b| b.iter(|| db.query(query).unwrap()));
        summary.time_us(&format!("{name}_us"), 7, || {
            db.query(query).unwrap();
        });
    }
    group.finish();
    summary.write();
}

criterion_group!(
    benches,
    join_strategies,
    parallelism_sweep,
    upsert_throughput,
    sparse_vs_dense,
    columnar_vectorized
);
criterion_main!(benches);
