//! WAL overhead: commit latency of small writes at each fsync policy,
//! against the pure in-memory engine as baseline. Quantifies what
//! durability costs the serving/training hot path and what `OnCommit`
//! buys back relative to `Always`.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlengine::{Database, EngineConfig, MemIo, StorageIo, SyncPolicy, Value};

// Included by path (not via the bench crate) so the offline scratch
// workspace, which only carries this bench file plus `src/report.rs`, can
// compile it against the stubbed criterion.
#[path = "../src/report.rs"]
mod report;

fn durable(policy: SyncPolicy) -> Database {
    Database::open_with_io(
        Arc::new(MemIo::new()) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(policy)
            // Keep checkpoints out of the measurement window.
            .with_checkpoint_after_bytes(0),
    )
    .unwrap()
}

fn create_table(db: &Database) {
    db.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, tag TEXT, w REAL)")
        .unwrap();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit_latency");
    let cases: Vec<(&str, Option<SyncPolicy>)> = vec![
        ("memory_baseline", None),
        ("wal_never", Some(SyncPolicy::Never)),
        ("wal_on_commit", Some(SyncPolicy::OnCommit)),
        ("wal_always", Some(SyncPolicy::Always)),
    ];
    for (name, policy) in cases {
        let db = match policy {
            None => Database::new(),
            Some(p) => durable(p),
        };
        create_table(&db);
        let mut next = 0i64;

        // One auto-commit INSERT: a single WAL batch per iteration, the
        // paper's `partial_fit`-shaped write.
        group.bench_with_input(BenchmarkId::new("single_insert", name), &(), |b, ()| {
            b.iter(|| {
                next += 1;
                db.execute_with("INSERT INTO kv VALUES (?, 'x', 0.5)", &[Value::Int(next)])
                    .unwrap()
            });
        });

        // An explicit 16-statement transaction: `OnCommit` fsyncs once
        // here where `Always` pays per batch.
        group.bench_with_input(BenchmarkId::new("txn_16_inserts", name), &(), |b, ()| {
            b.iter(|| {
                let mut script = String::from("BEGIN;");
                for _ in 0..16 {
                    next += 1;
                    script.push_str(&format!("INSERT INTO kv VALUES ({next}, 'y', 1.5);"));
                }
                script.push_str("COMMIT;");
                db.execute_script(&script).unwrap()
            });
        });
    }
    group.finish();

    // Machine-readable summary for CI: median commit latency per policy.
    let mut summary = report::Summary::new("wal_overhead");
    for (name, policy) in [
        ("memory_baseline", None),
        ("wal_never", Some(SyncPolicy::Never)),
        ("wal_on_commit", Some(SyncPolicy::OnCommit)),
        ("wal_always", Some(SyncPolicy::Always)),
    ] {
        let db = match policy {
            None => Database::new(),
            Some(p) => durable(p),
        };
        create_table(&db);
        let mut next = 0i64;
        summary.time_us(&format!("single_insert_{name}_us"), 200, || {
            next += 1;
            db.execute_with("INSERT INTO kv VALUES (?, 'x', 0.5)", &[Value::Int(next)])
                .unwrap();
        });
        summary.time_us(&format!("txn_16_inserts_{name}_us"), 30, || {
            let mut script = String::from("BEGIN;");
            for _ in 0..16 {
                next += 1;
                script.push_str(&format!("INSERT INTO kv VALUES ({next}, 'y', 1.5);"));
            }
            script.push_str("COMMIT;");
            db.execute_script(&script).unwrap();
        });
    }
    summary.write();
}

criterion_group!(benches, bench_commit);
criterion_main!(benches);
