//! WAL overhead: commit latency of small writes at each fsync policy,
//! against the pure in-memory engine as baseline. Quantifies what
//! durability costs the serving/training hot path and what `OnCommit`
//! buys back relative to `Always` — and, under concurrent committers on
//! real files, what group commit buys back for `Always` by coalescing
//! overlapping fsyncs.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sqlengine::{Database, EngineConfig, FileIo, MemIo, StorageIo, SyncPolicy, Value};

// Included by path (not via the bench crate) so the offline scratch
// workspace, which only carries this bench file plus `src/report.rs`, can
// compile it against the stubbed criterion.
#[path = "../src/report.rs"]
mod report;

fn durable(policy: SyncPolicy) -> Database {
    Database::open_with_io(
        Arc::new(MemIo::new()) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(policy)
            // Keep checkpoints out of the measurement window.
            .with_checkpoint_after_bytes(0),
    )
    .unwrap()
}

fn create_table(db: &Database) {
    db.execute("CREATE TABLE kv (id INTEGER PRIMARY KEY, tag TEXT, w REAL)")
        .unwrap();
}

fn bench_commit(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_commit_latency");
    let cases: Vec<(&str, Option<SyncPolicy>)> = vec![
        ("memory_baseline", None),
        ("wal_never", Some(SyncPolicy::Never)),
        ("wal_on_commit", Some(SyncPolicy::OnCommit)),
        ("wal_always", Some(SyncPolicy::Always)),
    ];
    for (name, policy) in cases {
        let db = match policy {
            None => Database::new(),
            Some(p) => durable(p),
        };
        create_table(&db);
        let mut next = 0i64;

        // One auto-commit INSERT: a single WAL batch per iteration, the
        // paper's `partial_fit`-shaped write.
        group.bench_with_input(BenchmarkId::new("single_insert", name), &(), |b, ()| {
            b.iter(|| {
                next += 1;
                db.execute_with("INSERT INTO kv VALUES (?, 'x', 0.5)", &[Value::Int(next)])
                    .unwrap()
            });
        });

        // An explicit 16-statement transaction: `OnCommit` fsyncs once
        // here where `Always` pays per batch.
        group.bench_with_input(BenchmarkId::new("txn_16_inserts", name), &(), |b, ()| {
            b.iter(|| {
                let mut script = String::from("BEGIN;");
                for _ in 0..16 {
                    next += 1;
                    script.push_str(&format!("INSERT INTO kv VALUES ({next}, 'y', 1.5);"));
                }
                script.push_str("COMMIT;");
                db.execute_script(&script).unwrap()
            });
        });
    }
    group.finish();

    // Machine-readable summary for CI: median commit latency per policy.
    let mut summary = report::Summary::new("wal_overhead");
    for (name, policy) in [
        ("memory_baseline", None),
        ("wal_never", Some(SyncPolicy::Never)),
        ("wal_on_commit", Some(SyncPolicy::OnCommit)),
        ("wal_always", Some(SyncPolicy::Always)),
    ] {
        let db = match policy {
            None => Database::new(),
            Some(p) => durable(p),
        };
        create_table(&db);
        let mut next = 0i64;
        summary.time_us(&format!("single_insert_{name}_us"), 200, || {
            next += 1;
            db.execute_with("INSERT INTO kv VALUES (?, 'x', 0.5)", &[Value::Int(next)])
                .unwrap();
        });
        summary.time_us(&format!("txn_16_inserts_{name}_us"), 30, || {
            let mut script = String::from("BEGIN;");
            for _ in 0..16 {
                next += 1;
                script.push_str(&format!("INSERT INTO kv VALUES ({next}, 'y', 1.5);"));
            }
            script.push_str("COMMIT;");
            db.execute_script(&script).unwrap();
        });
    }
    summary.write();
}

/// Unique scratch directory under the system temp dir (std-only; no tempfile
/// crate). Callers remove it when done.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "bornsql-wal-bench-{}-{tag}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn durable_file(dir: &std::path::Path, group_commit: bool) -> Database {
    Database::open_with_io(
        Arc::new(FileIo::new(dir).unwrap()) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_wal_group_commit(group_commit)
            .with_checkpoint_after_bytes(0),
    )
    .unwrap()
}

fn wal_counter(db: &Database, name: &str) -> f64 {
    let r = db
        .query_with(
            "SELECT value FROM sys.metrics WHERE name = ?",
            &[Value::text(name)],
        )
        .unwrap();
    match r.rows[0][0] {
        Value::Float(f) => f,
        Value::Int(i) => i as f64,
        _ => 0.0,
    }
}

/// Group commit under contention: `COMMITTERS` threads issuing auto-commit
/// INSERTs against real files with `SyncPolicy::Always`. Without group commit
/// every statement pays its own fsync; with it, overlapping committers share
/// one. Reported per-commit latency divides the wall clock for the whole
/// burst by the number of commits; commits-per-fsync comes from the engine's
/// own `wal.appends` / `wal.fsyncs` counters.
fn bench_group_commit(c: &mut Criterion) {
    const COMMITTERS: usize = 4;
    const PER_THREAD: usize = 25;

    let mut group = c.benchmark_group("wal_group_commit");
    let mut summary = report::Summary::new("wal_group_commit");
    summary.record("committers", COMMITTERS as f64);
    summary.record("commits_per_run", (COMMITTERS * PER_THREAD) as f64);

    for (name, group_commit) in [("always", false), ("group", true)] {
        let dir = scratch_dir(name);
        let db = durable_file(&dir, group_commit);
        create_table(&db);
        let run = std::sync::atomic::AtomicI64::new(0);

        let burst = || {
            let base = run.fetch_add(1, std::sync::atomic::Ordering::Relaxed)
                * (COMMITTERS * PER_THREAD) as i64;
            std::thread::scope(|s| {
                for w in 0..COMMITTERS as i64 {
                    let db = &db;
                    s.spawn(move || {
                        for i in 0..PER_THREAD as i64 {
                            let id = base + w * PER_THREAD as i64 + i;
                            db.execute_with(
                                "INSERT INTO kv VALUES (?, 'g', 2.5)",
                                &[Value::Int(id)],
                            )
                            .unwrap();
                        }
                    });
                }
            });
        };

        group.bench_with_input(BenchmarkId::new("concurrent_commit", name), &(), |b, ()| {
            b.iter(burst);
        });

        let appends0 = wal_counter(&db, "wal.appends");
        let fsyncs0 = wal_counter(&db, "wal.fsyncs");
        let burst_us = {
            let mut samples: Vec<f64> = (0..5)
                .map(|_| {
                    let t = std::time::Instant::now();
                    burst();
                    t.elapsed().as_secs_f64() * 1e6
                })
                .collect();
            samples.sort_by(|a, b| a.total_cmp(b));
            samples[samples.len() / 2]
        };
        let appends = wal_counter(&db, "wal.appends") - appends0;
        let fsyncs = wal_counter(&db, "wal.fsyncs") - fsyncs0;
        summary.record(
            &format!("concurrent_commit_{name}_us"),
            burst_us / (COMMITTERS * PER_THREAD) as f64,
        );
        summary.record(
            &format!("commits_per_fsync_{name}"),
            if fsyncs > 0.0 { appends / fsyncs } else { 0.0 },
        );

        drop(db);
        let _ = std::fs::remove_dir_all(&dir);
    }
    group.finish();
    summary.write();
}

criterion_group!(benches, bench_commit, bench_group_commit);
criterion_main!(benches);
