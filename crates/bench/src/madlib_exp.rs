//! MADlib comparison experiments: the paper's Section 5 (data handling,
//! runtimes, Table 5 metrics, the §5.4 bias probe).

use std::time::Duration;

use baselines::dense::{dense_storage_bytes, densify_with_vocab};
use baselines::{DecisionTree, DenseClassifier, LinearSvm, LogisticRegression, NaiveBayes};
use born::{accuracy, macro_prf};
use bornsql::{BornSqlModel, DataSpec, ModelOptions};
use datasets::{adult_like, rlcp_like, SparseDataset, SparseItem, TabularConfig};
use sqlengine::{Database, Value};

use crate::harness::{secs, time_it, Table};

/// Train/test split sizes mirroring the paper, scaled by `scale`
/// (`scale = 1.0` is the UCI scale: Adult 32,561/16,281; RLCP
/// 4,600,000/1,149,132 — far beyond an in-memory debug run, so the repro
/// binary defaults to a smaller scale and reports it).
pub fn dataset_sizes(scale: f64) -> ((usize, usize), (usize, usize)) {
    let s = |v: f64| ((v * scale) as usize).max(100);
    ((s(32_561.0), s(16_281.0)), (s(4_600_000.0), s(1_149_132.0)))
}

/// Timings of one classifier on one dataset.
#[derive(Debug, Clone)]
pub struct RunTimes {
    pub algo: String,
    pub preprocess: Duration,
    pub train: Duration,
    pub predict: Duration,
    pub predictions: Vec<String>,
}

/// Run BornSQL end-to-end on a sparse dataset loaded into a fresh database.
/// Returns timings (preprocess ≙ loading the normalized tables is free for
/// BornSQL — it *is* the database — so we report the deploy step there).
pub fn run_bornsql(train: &[SparseItem], test: &[SparseItem]) -> RunTimes {
    let db = Database::new();
    let train_ds = SparseDataset {
        name: "d".into(),
        items: train.to_vec(),
    };
    let test_ds = SparseDataset {
        name: "t".into(),
        items: test.to_vec(),
    };
    train_ds.load_into(&db, "train").unwrap();
    test_ds.load_into(&db, "test").unwrap();

    let model = BornSqlModel::create(&db, "m", ModelOptions::default()).unwrap();
    let spec = DataSpec::new("SELECT n, j, w FROM train_features")
        .with_targets("SELECT n, k AS k, 1.0 AS w FROM train_labels");
    let (r, train_time) = time_it(|| model.fit(&spec));
    r.unwrap();
    let (r, deploy_time) = time_it(|| model.deploy());
    r.unwrap();

    let test_spec = DataSpec::new("SELECT n, j, w FROM test_features");
    let (r, predict_time) = time_it(|| model.predict(&test_spec));
    let raw = r.unwrap();

    // Align predictions with the test set order; items with no known
    // features fall back to the majority class (never predicted as a row).
    let majority = majority_label(train);
    let mut by_id: std::collections::HashMap<i64, String> = Default::default();
    for (n, k) in raw {
        if let (Value::Int(id), v) = (n, k) {
            by_id.insert(id, v.to_string());
        }
    }
    let predictions = test
        .iter()
        .map(|item| {
            by_id
                .get(&item.id)
                .cloned()
                .unwrap_or_else(|| majority.clone())
        })
        .collect();

    RunTimes {
        algo: "BornSQL".into(),
        preprocess: deploy_time, // reported as the "deploy" column
        train: train_time,
        predict: predict_time,
        predictions,
    }
}

fn majority_label(items: &[SparseItem]) -> String {
    let mut counts: std::collections::HashMap<&str, usize> = Default::default();
    for i in items {
        *counts.entry(i.label.as_str()).or_insert(0) += 1;
    }
    counts
        .into_iter()
        .max_by_key(|(_, c)| *c)
        .map(|(l, _)| l.to_string())
        .unwrap_or_default()
}

/// Run one dense baseline with MADlib's data-handling model: densify first
/// (timed as preprocessing), then train and predict.
pub fn run_baseline(
    clf: &mut dyn DenseClassifier,
    train: &[SparseItem],
    test: &[SparseItem],
) -> RunTimes {
    let mut label_names: Vec<String> = Vec::new();
    let ((dtrain, dtest), preprocess) = time_it(|| {
        let dtrain = densify_with_vocab(train, train, &mut label_names);
        let dtest = densify_with_vocab(test, train, &mut label_names);
        (dtrain, dtest)
    });
    let n_classes = label_names.len();
    let (_, train_time) = time_it(|| clf.fit(&dtrain.features, &dtrain.labels, n_classes));
    let (preds, predict_time) = time_it(|| clf.predict(&dtest.features));
    let predictions = preds
        .into_iter()
        .map(|i| label_names.get(i).cloned().unwrap_or_default())
        .collect();
    RunTimes {
        algo: clf.name().into(),
        preprocess,
        train: train_time,
        predict: predict_time,
        predictions,
    }
}

/// §5.2 runtimes + Table 5 metrics for one dataset.
pub fn compare_on(name: &str, train: &[SparseItem], test: &[SparseItem]) -> (Table, Table) {
    let truth: Vec<&str> = test.iter().map(|i| i.label.as_str()).collect();
    let mut times = Table::new(
        format!(
            "Section 5.2 runtimes on {name} ({} train / {} test)",
            train.len(),
            test.len()
        ),
        &[
            "algorithm",
            "preprocess/deploy (s)",
            "train (s)",
            "predict (s)",
        ],
    );
    let mut metrics = Table::new(
        format!("Table 5 metrics on {name}"),
        &["algorithm", "precision", "recall", "f1", "accuracy"],
    );

    let mut runs: Vec<RunTimes> = vec![run_bornsql(train, test)];
    let mut dt = DecisionTree::default();
    let mut svm = LinearSvm::default();
    let mut lr = LogisticRegression::default();
    let mut nb = NaiveBayes::default();
    runs.push(run_baseline(&mut dt, train, test));
    runs.push(run_baseline(&mut svm, train, test));
    runs.push(run_baseline(&mut lr, train, test));
    // Extension beyond the paper's Table 5: multinomial NB, the classic
    // generative comparator (MADlib ships it too).
    runs.push(run_baseline(&mut nb, train, test));

    for run in &runs {
        times.row(vec![
            run.algo.clone(),
            secs(run.preprocess),
            secs(run.train),
            secs(run.predict),
        ]);
        let preds: Vec<&str> = run.predictions.iter().map(|s| s.as_str()).collect();
        let m = macro_prf(&truth, &preds);
        metrics.row(vec![
            run.algo.clone(),
            format!("{:.2}", m.precision),
            format!("{:.2}", m.recall),
            format!("{:.2}", m.f1),
            format!("{:.3}", accuracy(&truth, &preds)),
        ]);
    }
    (times, metrics)
}

/// Run §5.2 + Table 5 on both datasets.
pub fn runtimes(scale: f64, seed: u64) -> Vec<Table> {
    let ((adult_train, adult_test), (rlcp_train, rlcp_test)) = dataset_sizes(scale);
    let adult = adult_like(&TabularConfig::new(adult_train + adult_test, seed));
    let (atr, ate) = adult.split_at(adult_train);
    let (t1, m1) = compare_on("adult-like", atr, ate);

    let rlcp = rlcp_like(&TabularConfig::new(rlcp_train + rlcp_test, seed + 1));
    let (rtr, rte) = rlcp.split_at(rlcp_train);
    let (t2, m2) = compare_on("rlcp-like", rtr, rte);
    vec![t1, m1, t2, m2]
}

/// Table 5 only (metrics, no timing noise).
pub fn table5(scale: f64, seed: u64) -> Vec<Table> {
    runtimes(scale, seed)
        .into_iter()
        .filter(|t| t.title.starts_with("Table 5"))
        .collect()
}

/// §5.1 — the dense-materialization storage argument.
pub fn storage_comparison(scopus_items: usize, scopus_features: usize, nnz: usize) -> Table {
    let mut t = Table::new(
        "Section 5.1: sparse (BornSQL) vs dense (MADlib) storage",
        &["representation", "rows", "features", "bytes", "human"],
    );
    let human = |b: u64| {
        if b > 1 << 40 {
            format!("{:.1} TB", b as f64 / (1u64 << 40) as f64)
        } else if b > 1 << 30 {
            format!("{:.1} GB", b as f64 / (1u64 << 30) as f64)
        } else {
            format!("{:.1} MB", b as f64 / (1u64 << 20) as f64)
        }
    };
    // Sparse: (n, j, w) rows at ~16 bytes of payload each.
    let sparse_bytes = nnz as u64 * 16;
    let dense_bytes = dense_storage_bytes(scopus_items, scopus_features);
    t.row(vec![
        "sparse (normalized tables)".into(),
        scopus_items.to_string(),
        scopus_features.to_string(),
        sparse_bytes.to_string(),
        human(sparse_bytes),
    ]);
    t.row(vec![
        "dense (MADlib array format)".into(),
        scopus_items.to_string(),
        scopus_features.to_string(),
        dense_bytes.to_string(),
        human(dense_bytes),
    ]);
    // The paper's headline numbers at full Scopus scale.
    t.row(vec![
        "dense at paper scale".into(),
        "2,359,828".into(),
        "3,942,559".into(),
        dense_storage_bytes(2_359_828, 3_942_559).to_string(),
        human(dense_storage_bytes(2_359_828, 3_942_559)),
    ]);
    t
}

/// §5.4 — the explainability bias probe: rare categories seen only in the
/// negative class must surface with positive weight for the negative class
/// and zero weight for the positive class. Runs at a fixed sample size
/// (this probe is about explanations, not timing, and the planted rare
/// category needs enough rows to occur at all).
pub fn bias_probe(_scale: f64, seed: u64) -> Table {
    let adult_train = 25_000;
    let adult = adult_like(&TabularConfig::new(adult_train, seed));
    let db = Database::new();
    adult.load_into(&db, "adult").unwrap();
    let model = BornSqlModel::create(&db, "bias", ModelOptions::default()).unwrap();
    model
        .fit(
            &DataSpec::new("SELECT n, j, w FROM adult_features")
                .with_targets("SELECT n, k AS k, 1.0 AS w FROM adult_labels"),
        )
        .unwrap();
    model.deploy().unwrap();

    let mut t = Table::new(
        "Section 5.4: bias probe — 'Holand-Netherlands' weights per class",
        &["j", "k", "w", "training occurrences"],
    );
    let occurrences = db
        .query_scalar(
            "SELECT COUNT(*) FROM adult_features WHERE j = 'native_country:Holand-Netherlands'",
        )
        .unwrap();
    let global = model.explain_global(None).unwrap();
    let mut seen = false;
    for (j, k, w) in &global {
        if j.to_string() == "native_country:Holand-Netherlands" {
            t.row(vec![
                j.to_string(),
                k.to_string(),
                format!("{w:.6}"),
                occurrences.to_string(),
            ]);
            seen = true;
        }
    }
    if !seen {
        t.row(vec![
            "native_country:Holand-Netherlands".into(),
            "(absent at this scale/seed)".into(),
            "-".into(),
            occurrences.to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bornsql_beats_chance_on_adult_like() {
        let adult = adult_like(&TabularConfig::new(3_000, 11));
        let (train, test) = adult.split_at(2_000);
        let run = run_bornsql(train, test);
        let truth: Vec<&str> = test.iter().map(|i| i.label.as_str()).collect();
        let preds: Vec<&str> = run.predictions.iter().map(|s| s.as_str()).collect();
        let acc = accuracy(&truth, &preds);
        assert!(acc > 0.6, "accuracy {acc}");
    }

    #[test]
    fn baselines_all_run_on_rlcp_like() {
        let rlcp = rlcp_like(&TabularConfig::new(20_000, 12));
        let (train, test) = rlcp.split_at(15_000);
        let (times, metrics) = compare_on("rlcp-small", train, test);
        assert_eq!(times.rows.len(), 5);
        assert_eq!(metrics.rows.len(), 5);
        // Everyone should get high accuracy on this extreme-imbalance task.
        for row in &metrics.rows {
            let acc: f64 = row[4].parse().unwrap();
            assert!(acc > 0.97, "{} accuracy {acc}", row[0]);
        }
    }

    #[test]
    fn storage_table_reproduces_32tb() {
        let t = storage_comparison(10_000, 50_000, 400_000);
        let paper_row = &t.rows[2];
        assert!(
            paper_row[4].contains("TB"),
            "paper-scale row: {paper_row:?}"
        );
    }
}
