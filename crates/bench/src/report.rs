//! Machine-readable benchmark summaries.
//!
//! Criterion's own output is HTML + per-run JSON scattered under
//! `target/criterion/`; CI wants one stable artifact instead. Each bench
//! appends a quick measurement pass (median-of-runs wall time, far cheaper
//! than the criterion statistics) and merges it into `BENCH_results.json`
//! at the repo root, keyed by bench name so re-running one bench updates
//! only its own section.
//!
//! Std-only on purpose: the offline scratch workspace compiles this file
//! next to a stubbed criterion, so it cannot assume serde is available.
//! The file is written one section per line, which is also what the merge
//! reader parses — keep the two in sync.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::Instant;

pub struct Summary {
    bench: String,
    metrics: BTreeMap<String, f64>,
}

impl Summary {
    pub fn new(bench: &str) -> Summary {
        Summary {
            bench: bench.to_string(),
            metrics: BTreeMap::new(),
        }
    }

    /// Record a raw value (throughput, ratio, byte count, ...). Metric names
    /// should carry the unit suffix, e.g. `single_insert_us`.
    pub fn record(&mut self, metric: &str, value: f64) {
        // Non-finite values would produce invalid JSON.
        let value = if value.is_finite() { value } else { 0.0 };
        self.metrics.insert(metric.to_string(), value);
    }

    /// Median wall time of `runs` executions of `f`, in microseconds.
    /// Returns the recorded median so callers can derive ratios from it.
    pub fn time_us(&mut self, metric: &str, runs: usize, mut f: impl FnMut()) -> f64 {
        let mut samples = Vec::with_capacity(runs.max(1));
        for _ in 0..runs.max(1) {
            let started = Instant::now();
            f();
            samples.push(started.elapsed().as_secs_f64() * 1e6);
        }
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        self.record(metric, median);
        median
    }

    /// Merge this summary into `BENCH_results.json` at the repo root,
    /// replacing any previous section with the same bench name.
    pub fn write(&self) {
        let path = results_path();
        let mut sections: BTreeMap<String, String> = BTreeMap::new();
        if let Ok(existing) = std::fs::read_to_string(&path) {
            for line in existing.lines() {
                if let Some((name, body)) = parse_section(line) {
                    sections.insert(name, body);
                }
            }
        }
        sections.insert(self.bench.clone(), self.render_section());

        let mut out = String::from("{\n");
        let last = sections.len().saturating_sub(1);
        for (i, (name, body)) in sections.iter().enumerate() {
            let comma = if i == last { "" } else { "," };
            out.push_str(&format!("  \"{name}\": {body}{comma}\n"));
        }
        out.push_str("}\n");
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("wrote {} ({} section)", path.display(), self.bench);
        }
    }

    fn render_section(&self) -> String {
        let fields: Vec<String> = self
            .metrics
            .iter()
            .map(|(k, v)| format!("\"{k}\": {v:.3}"))
            .collect();
        format!("{{{}}}", fields.join(", "))
    }
}

/// `BENCH_results.json` lives at the repo root, two levels above the bench
/// crate's manifest (resolved at runtime so the offline scratch copy of this
/// file lands inside `target/` instead of polluting the checkout).
fn results_path() -> PathBuf {
    std::env::var("CARGO_MANIFEST_DIR")
        .map(|dir| PathBuf::from(dir).join("..").join(".."))
        .unwrap_or_else(|_| PathBuf::from("."))
        .join("BENCH_results.json")
}

/// Recover `name -> raw section body` from one line of a previously written
/// file. Anything unparseable (hand edits, the braces) is dropped silently —
/// the next write regenerates a clean file.
fn parse_section(line: &str) -> Option<(String, String)> {
    let trimmed = line.trim().trim_end_matches(',');
    let rest = trimmed.strip_prefix('"')?;
    let (name, body) = rest.split_once("\": ")?;
    if !body.starts_with('{') || !body.ends_with('}') {
        return None;
    }
    Some((name.to_string(), body.to_string()))
}

#[cfg(test)]
mod tests {
    // Bench targets compile with `cfg(test)` but without the test harness,
    // which strips the `#[test]` fns and would orphan this import.
    #[allow(unused_imports)]
    use super::*;

    #[test]
    fn sections_round_trip() {
        let mut s = Summary::new("demo");
        s.record("a_us", 12.5);
        s.record("b_rows", 3.0);
        let body = s.render_section();
        assert_eq!(body, "{\"a_us\": 12.500, \"b_rows\": 3.000}");
        let line = format!("  \"demo\": {body},");
        let (name, parsed) = parse_section(&line).unwrap();
        assert_eq!(name, "demo");
        assert_eq!(parsed, body);
    }

    #[test]
    fn non_finite_values_are_clamped() {
        let mut s = Summary::new("demo");
        s.record("bad", f64::NAN);
        assert_eq!(s.render_section(), "{\"bad\": 0.000}");
    }

    #[test]
    fn time_us_records_a_positive_median() {
        let mut s = Summary::new("demo");
        s.time_us("spin_us", 3, || {
            std::hint::black_box((0..1000).sum::<u64>());
        });
        assert!(s.metrics["spin_us"] >= 0.0);
    }
}
