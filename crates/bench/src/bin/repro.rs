//! `repro` — regenerate every table and figure of the BornSQL paper.
//!
//! ```text
//! repro [--scopus N] [--scale S] [--json PATH] [ids...]
//!
//! ids: t1 t2 f3 f4 f5 f6 t3 t4 s51 s52 t5 s53 s54   (default: all)
//! ```
//!
//! `--scopus N` sets the Scopus-like corpus size (default 10000; the paper
//! uses 2,359,828). `--scale S` scales the Adult/RLCP sizes relative to UCI
//! (default 0.02). `--json PATH` additionally writes the report as JSON.

use std::collections::BTreeSet;

use bench::chart::{render, Series};
use bench::harness::{Report, Table};
use bench::{madlib_exp, scopus_exp, text_exp};
use datasets::scopus::{self, ScopusConfig};

/// Build chart series from a result table: rows grouped by column
/// `group_col` (or all in one series when `None`), with numeric columns
/// `x_col`/`y_col`. Rows with non-numeric cells are skipped.
fn table_series(
    table: &Table,
    group_col: Option<usize>,
    x_col: usize,
    y_col: usize,
) -> Vec<Series> {
    let mut by_group: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for row in &table.rows {
        let (Ok(x), Ok(y)) = (row[x_col].parse::<f64>(), row[y_col].parse::<f64>()) else {
            continue;
        };
        let name = group_col
            .map(|g| row[g].clone())
            .unwrap_or_else(|| table.headers[y_col].clone());
        match by_group.iter_mut().find(|(n, _)| *n == name) {
            Some((_, pts)) => pts.push((x, y)),
            None => by_group.push((name, vec![(x, y)])),
        }
    }
    by_group
        .into_iter()
        .map(|(name, points)| Series::new(name, points))
        .collect()
}

fn main() {
    let mut scopus_n: usize = 10_000;
    let mut scale: f64 = 0.02;
    let mut json_path: Option<String> = None;
    let mut ids: BTreeSet<String> = BTreeSet::new();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scopus" => {
                scopus_n = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scopus needs a number");
            }
            "--scale" => {
                scale = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .expect("--scale needs a number");
            }
            "--json" => {
                json_path = Some(args.next().expect("--json needs a path"));
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: repro [--scopus N] [--scale S] [--json PATH] [t1 t2 f3 f4 f5 f6 t3 t4 s51 s52 t5 s53 s54]"
                );
                return;
            }
            id => {
                ids.insert(id.to_string());
            }
        }
    }
    let all = ids.is_empty();
    let want = |id: &str| all || ids.contains(id);

    let steps: Vec<usize> = (1..=10).map(|k| k * 10).collect();
    let mut report = Report::default();

    eprintln!("# BornSQL reproduction (scopus n = {scopus_n}, tabular scale = {scale})");

    if want("t1") {
        eprintln!("[t1] Table 1 ...");
        report.push(scopus_exp::table1(scopus_n));
    }

    // A shared database for T2 (cheap) at modest size.
    if want("t2") {
        eprintln!("[t2] Table 2 ...");
        let db = scopus_exp::setup(
            scopus_n.min(2_000),
            false,
            sqlengine::EngineConfig::profile_a(),
        );
        report.push(scopus_exp::table2(&db, 13));
    }

    let mut charts: Vec<String> = Vec::new();

    if want("f3") {
        eprintln!("[f3] Figure 3 (training time, 3 engine profiles) ...");
        let t = scopus_exp::figure3(scopus_n, &steps);
        charts.push(render(
            "Figure 3 (chart): fit time vs items",
            "items",
            "seconds",
            &table_series(&t, Some(0), 2, 3),
        ));
        report.push(t);
    }

    if want("f4") {
        eprintln!("[f4] Figure 4 (deployment time) ...");
        let t = scopus_exp::figure4(scopus_n, &steps);
        charts.push(render(
            "Figure 4 (chart): deployment time vs features",
            "features",
            "seconds",
            &table_series(&t, None, 1, 2),
        ));
        report.push(t);
    }

    if want("f5") {
        eprintln!("[f5] Figure 5 (three scenarios) ...");
        let t = scopus_exp::figure5(scopus_n, &steps);
        charts.push(render(
            "Figure 5 (chart): features seen vs training %",
            "training %",
            "features",
            &table_series(&t, Some(0), 1, 2),
        ));
        report.push(t);
    }

    if want("f6") {
        eprintln!("[f6] Figure 6 (inference time) ...");
        let t = scopus_exp::figure6(scopus_n, &steps, 1_000);
        let mut series = table_series(&t, None, 1, 2);
        series.extend(table_series(&t, None, 1, 3));
        charts.push(render(
            "Figure 6 (chart): single-item inference vs model size",
            "features",
            "seconds",
            &series,
        ));
        report.push(t);
    }

    if want("t3") || want("t4") {
        eprintln!("[t3/t4] explanations ...");
        let (db, model) = scopus_exp::full_model(scopus_n.min(5_000));
        if want("t3") {
            report.push(scopus_exp::table3(&db, model, 3));
        }
        if want("t4") {
            report.push(scopus_exp::table4(&db, model, 13, 10));
        }
    }

    if want("s51") {
        eprintln!("[s51] Section 5.1 (storage) ...");
        let data = scopus::generate(&ScopusConfig {
            n_publications: scopus_n.min(5_000),
            ..Default::default()
        });
        let nnz = data.pub_lexeme.len()
            + data.pub_author.len()
            + data.pub_keyword.len()
            + data.publications.len();
        let mut features: BTreeSet<String> = BTreeSet::new();
        for p in &data.publications {
            features.insert(format!("pubname:{}", p.pubname));
        }
        for (_, a) in &data.pub_author {
            features.insert(format!("authid:{a}"));
        }
        for (_, k) in &data.pub_keyword {
            features.insert(format!("keyword:{k}"));
        }
        for (_, l, _) in &data.pub_lexeme {
            features.insert(format!("abstract:{l}"));
        }
        report.push(madlib_exp::storage_comparison(
            data.publications.len(),
            features.len(),
            nnz,
        ));
    }

    if want("s52") || want("t5") {
        eprintln!("[s52/t5] Section 5.2 runtimes + Table 5 metrics ...");
        for table in madlib_exp::runtimes(scale, 2_026) {
            let is_metrics = table.title.starts_with("Table 5");
            if (is_metrics && want("t5")) || (!is_metrics && want("s52")) {
                report.push(table);
            }
        }
    }

    if want("s53") {
        eprintln!("[s53] Section 5.3 text accuracies ...");
        report.push(text_exp::accuracies(6_000, 2_027));
    }

    if want("s54") {
        eprintln!("[s54] Section 5.4 bias probe ...");
        report.push(madlib_exp::bias_probe(scale, 2_026));
    }

    println!("{}", report.render());
    for c in &charts {
        println!("{c}");
    }
    if let Some(path) = json_path {
        std::fs::write(&path, report.to_json()).expect("write json report");
        eprintln!("JSON report written to {path}");
    }
}
