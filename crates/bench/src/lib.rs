//! # bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (Sections 4
//! and 5) against the simulated substrates. The `repro` binary drives the
//! experiments in this library; the Criterion benches under `benches/`
//! measure the same operations with statistical rigor.
//!
//! Per-experiment mapping (see also DESIGN.md):
//!
//! | Paper artifact | Function |
//! |---|---|
//! | Table 1 (class distribution) | [`scopus_exp::table1`] |
//! | Table 2 (transformed item) | [`scopus_exp::table2`] |
//! | Figure 3 (training time) | [`scopus_exp::figure3`] |
//! | Figure 4 (deployment time) | [`scopus_exp::figure4`] |
//! | Figure 5 (feature growth, 3 scenarios) | [`scopus_exp::figure5`] |
//! | Figure 6 (inference time) | [`scopus_exp::figure6`] |
//! | Table 3 (global explanation) | [`scopus_exp::table3`] |
//! | Table 4 (local explanation) | [`scopus_exp::table4`] |
//! | §5.1 (dense storage blow-up) | [`madlib_exp::storage_comparison`] |
//! | §5.2 (runtimes vs MADlib) | [`madlib_exp::runtimes`] |
//! | Table 5 (precision/recall/F1) | [`madlib_exp::table5`] |
//! | §5.3 (20NG/R8/R52 accuracy) | [`text_exp::accuracies`] |

#![forbid(unsafe_code)]

pub mod chart;
pub mod harness;
pub mod madlib_exp;
pub mod report;
pub mod scopus_exp;
pub mod text_exp;

pub use harness::{time_it, Report, Table};
