//! Shared experiment plumbing: timing, table rendering, JSON reports.

use std::time::{Duration, Instant};

/// Run `f`, returning its output and wall-clock duration.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// A printable result table (one per paper table/figure series).
#[derive(Debug, Clone, serde::Serialize)]
pub struct Table {
    pub title: String,
    pub headers: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let sep: String = widths
            .iter()
            .map(|w| "-".repeat(w + 2))
            .collect::<Vec<_>>()
            .join("+");
        let fmt_row = |cells: &[String]| {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!(" {:<width$} ", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("|")
        };
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        out.push_str(&fmt_row(&self.headers));
        out.push('\n');
        out.push_str(&sep);
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row));
            out.push('\n');
        }
        out
    }
}

/// A bundle of tables from one experiment run, serializable to JSON for
/// EXPERIMENTS.md bookkeeping.
#[derive(Debug, Clone, Default, serde::Serialize)]
pub struct Report {
    pub tables: Vec<Table>,
}

impl Report {
    pub fn push(&mut self, table: Table) {
        self.tables.push(table);
    }

    pub fn render(&self) -> String {
        self.tables
            .iter()
            .map(Table::render)
            .collect::<Vec<_>>()
            .join("\n")
    }

    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("report serializes")
    }
}

/// Format a duration in seconds with millisecond resolution.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["a", "long_header"]);
        t.row(vec!["1".into(), "x".into()]);
        t.row(vec!["222".into(), "yy".into()]);
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("long_header"));
        assert_eq!(r.lines().count(), 5);
    }

    #[test]
    fn report_serializes() {
        let mut r = Report::default();
        r.push(Table::new("t", &["c"]));
        let json = r.to_json();
        assert!(json.contains("\"title\": \"t\""));
    }

    #[test]
    fn time_it_measures() {
        let ((), d) = time_it(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(4));
    }
}
