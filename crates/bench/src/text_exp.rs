//! Text benchmark accuracies: the paper's Section 5.3 (20NG, R8, R52).
//!
//! The paper reports BornSQL accuracy 87.3% on 20NG, 95.4% on R8, and 88.0%
//! on R52, noting that classification performance is independent of the SQL
//! implementation (our `oracle_equivalence` tests prove that independence
//! directly). Accordingly this experiment trains with the in-process Born
//! classifier on the synthetic corpora — whose difficulty is tuned to land
//! in the paper's regime — and reports the accuracies side by side.

use born::{accuracy, BornClassifier, HyperParams, TrainItem};
use datasets::{newsgroups_like, reuters_like, SparseDataset};

use crate::harness::Table;

/// Train/evaluate the Born classifier on one corpus with an 80/20 split.
pub fn eval_corpus(data: &SparseDataset) -> f64 {
    let n_train = data.items.len() * 8 / 10;
    let (train, test) = data.split_at(n_train);
    let items: Vec<TrainItem<String, String>> = train
        .iter()
        .map(|i| TrainItem::labeled(i.features.clone(), i.label.clone()))
        .collect();
    let model = BornClassifier::fit(&items)
        .deploy(HyperParams::default())
        .expect("non-empty model");
    let truth: Vec<&str> = test.iter().map(|i| i.label.as_str()).collect();
    let preds: Vec<String> = test
        .iter()
        .map(|i| model.predict(&i.features).unwrap_or_default())
        .collect();
    let preds_ref: Vec<&str> = preds.iter().map(|s| s.as_str()).collect();
    accuracy(&truth, &preds_ref)
}

/// Section 5.3 accuracies table.
pub fn accuracies(n_items: usize, seed: u64) -> Table {
    let mut t = Table::new(
        format!("Section 5.3: text classification accuracy (n = {n_items} per corpus)"),
        &["corpus", "accuracy", "paper accuracy"],
    );
    let cases: Vec<(SparseDataset, f64)> = vec![
        (newsgroups_like(n_items, seed), 0.873),
        (reuters_like("r8", n_items, seed + 1), 0.954),
        (reuters_like("r52", n_items, seed + 2), 0.880),
    ];
    for (data, paper) in cases {
        let acc = eval_corpus(&data);
        t.row(vec![
            data.name.clone(),
            format!("{acc:.3}"),
            format!("{paper:.3}"),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r8_like_is_easiest() {
        let ng = eval_corpus(&newsgroups_like(2_500, 5));
        let r8 = eval_corpus(&reuters_like("r8", 2_500, 6));
        assert!(r8 > ng, "r8 {r8} must beat 20ng {ng}");
        assert!(r8 > 0.85, "r8 accuracy {r8}");
        assert!(ng > 0.6, "20ng accuracy {ng}");
    }

    #[test]
    fn accuracies_table_has_three_rows() {
        let t = accuracies(1_200, 9);
        assert_eq!(t.rows.len(), 3);
    }
}
