//! Terminal charts for the repro binary: render figure series as ASCII
//! scatter/line plots so the paper's figures are visible directly in the
//! report, not just as number columns.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl Series {
    pub fn new(name: impl Into<String>, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.into(),
            points,
        }
    }
}

/// Glyphs assigned to series in order.
const GLYPHS: [char; 6] = ['*', 'o', '+', 'x', '#', '@'];

/// Render series into a `width × height` ASCII plot with axis labels.
pub fn render(title: &str, x_label: &str, y_label: &str, series: &[Series]) -> String {
    let width = 64usize;
    let height = 16usize;
    let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
    if all.is_empty() {
        return format!("## {title}\n(no data)\n");
    }
    let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &all {
        x_min = x_min.min(x);
        x_max = x_max.max(x);
        y_min = y_min.min(y);
        y_max = y_max.max(y);
    }
    // Anchor y at zero for magnitude plots; pad degenerate ranges.
    y_min = y_min.min(0.0);
    if (x_max - x_min).abs() < f64::EPSILON {
        x_max = x_min + 1.0;
    }
    if (y_max - y_min).abs() < f64::EPSILON {
        y_max = y_min + 1.0;
    }

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = ((x - x_min) / (x_max - x_min) * (width - 1) as f64).round() as usize;
            let cy = ((y - y_min) / (y_max - y_min) * (height - 1) as f64).round() as usize;
            let row = height - 1 - cy.min(height - 1);
            grid[row][cx.min(width - 1)] = glyph;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out.push_str(&format!("  {y_label}\n"));
    for (i, row) in grid.iter().enumerate() {
        let y_val = y_max - (y_max - y_min) * i as f64 / (height - 1) as f64;
        let label = if i % 4 == 0 {
            format!("{y_val:>9.3}")
        } else {
            " ".repeat(9)
        };
        out.push_str(&format!("{label} |{}\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!("{:>9} +{}\n", "", "-".repeat(width)));
    out.push_str(&format!(
        "{:>10}{:<w$}{:>12}\n",
        format!("{x_min:.0}"),
        "",
        format!("{x_max:.0}  ({x_label})"),
        w = width.saturating_sub(12)
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_linear_series() {
        let s = Series::new(
            "fit",
            (1..=10).map(|i| (i as f64, i as f64 * 0.2)).collect(),
        );
        let chart = render("Figure 3", "items", "seconds", &[s]);
        assert!(chart.contains("## Figure 3"));
        assert!(chart.contains("* fit"));
        assert!(chart.matches('*').count() >= 9, "points plotted:\n{chart}");
    }

    #[test]
    fn empty_series_is_graceful() {
        let chart = render("empty", "x", "y", &[]);
        assert!(chart.contains("(no data)"));
    }

    #[test]
    fn multiple_series_get_distinct_glyphs() {
        let a = Series::new("a", vec![(0.0, 1.0), (1.0, 2.0)]);
        let b = Series::new("b", vec![(0.0, 2.0), (1.0, 4.0)]);
        let chart = render("two", "x", "y", &[a, b]);
        assert!(chart.contains("* a"));
        assert!(chart.contains("o b"));
        assert!(chart.contains('o'));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = Series::new("flat", vec![(1.0, 5.0), (2.0, 5.0), (3.0, 5.0)]);
        let chart = render("flat", "x", "y", &[s]);
        assert!(chart.contains("## flat"));
    }
}
