//! Scopus-like experiments: the paper's Section 4 (Tables 1–4, Figures 3–6).

use bornsql::{BornSqlModel, DataSpec, ModelOptions, Params};
use datasets::scopus::{self, ScopusConfig};
use sqlengine::{Database, EngineConfig};

use crate::harness::{secs, time_it, Table};

/// Engine profiles standing in for the paper's three DBMSs (see DESIGN.md).
pub fn engine_profiles() -> Vec<(&'static str, EngineConfig)> {
    vec![
        (
            "engine-A (hash joins, pipelined CTEs)",
            EngineConfig::profile_a(),
        ),
        (
            "engine-B (hash joins, materialized CTEs)",
            EngineConfig::profile_b(),
        ),
        ("engine-C (sort-merge joins)", EngineConfig::profile_c()),
    ]
}

/// Build a database with a generated Scopus-like corpus loaded.
pub fn setup(n: usize, drift: bool, config: EngineConfig) -> Database {
    let data = scopus::generate(&ScopusConfig {
        n_publications: n,
        drift,
        ..Default::default()
    });
    let db = Database::with_config(config);
    data.load_into(&db).expect("load scopus data");
    db
}

/// Model options used throughout Section 4 (integer macro-class labels).
pub fn scopus_model_options() -> ModelOptions {
    ModelOptions {
        class_type: "INTEGER",
        params: Params::default(),
        ..Default::default()
    }
}

/// The full training spec (all four q_x arms + q_y), optionally restricted
/// by a q_n item filter.
pub fn train_spec(qn: Option<String>, abstract_only: bool) -> DataSpec {
    let mut spec = DataSpec::default();
    for arm in scopus::qx_arms(abstract_only) {
        spec = spec.with_features(arm);
    }
    spec = spec.with_targets(scopus::qy());
    if let Some(qn) = qn {
        spec = spec.with_items(qn);
    }
    spec
}

/// Inference spec for a set of items.
pub fn test_spec(qn: String) -> DataSpec {
    let mut spec = DataSpec::default();
    for arm in scopus::qx_arms(false) {
        spec = spec.with_features(arm);
    }
    spec.with_items(qn)
}

// ---------------------------------------------------------------------
// Table 1 — distribution of subject areas
// ---------------------------------------------------------------------

pub fn table1(n: usize) -> Table {
    let data = scopus::generate(&ScopusConfig {
        n_publications: n,
        ..Default::default()
    });
    let mut t = Table::new(
        format!("Table 1: distribution of subject areas (n = {n}, paper n = 2,359,828)"),
        &["k", "subject area", "count", "fraction", "paper fraction"],
    );
    let names = [
        (17, "Artificial Intelligence", 0.434),
        (18, "Decision Sciences", 0.385),
        (26, "Statistics and Probability", 0.181),
    ];
    let dist = data.class_distribution();
    let total: usize = dist.iter().map(|(_, c)| c).sum();
    for (k, name, paper_frac) in names {
        let count = dist
            .iter()
            .find(|(c, _)| *c == k)
            .map(|(_, n)| *n)
            .unwrap_or(0);
        t.row(vec![
            k.to_string(),
            name.to_string(),
            count.to_string(),
            format!("{:.3}", count as f64 / total as f64),
            format!("{paper_frac:.3}"),
        ]);
    }
    t.row(vec![
        "".into(),
        "Total".into(),
        total.to_string(),
        "1.000".into(),
        "1.000".into(),
    ]);
    t
}

// ---------------------------------------------------------------------
// Table 2 — example transformed item (the q_x output for one publication)
// ---------------------------------------------------------------------

pub fn table2(db: &Database, item: i64) -> Table {
    let mut t = Table::new(
        format!("Table 2: transformed item n = {item} (q_x output)"),
        &["n", "j", "w"],
    );
    let arms = scopus::qx_arms(false);
    let union = arms
        .iter()
        .map(|a| format!("SELECT n, j, w FROM ({a}) AS arm WHERE arm.n = {item}"))
        .collect::<Vec<_>>()
        .join(" UNION ALL ");
    let rows = db
        .query(&format!(
            "SELECT n, j, w FROM ({union}) AS x ORDER BY j LIMIT 15"
        ))
        .expect("table 2 query");
    for row in rows.rows {
        t.row(vec![
            row[0].to_string(),
            row[1].to_string(),
            format!("{}", row[2]),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 3 — training time (fit and partial fit) vs number of items
// ---------------------------------------------------------------------

/// For each engine profile and each decile, measure (a) fitting from
/// scratch on `id % 10 <= k-1` and (b) incrementally adding decile `k`.
pub fn figure3(n: usize, steps: &[usize]) -> Table {
    let mut t = Table::new(
        format!("Figure 3: training time vs items (scopus-like, n = {n})"),
        &[
            "engine",
            "subsample %",
            "items",
            "fit (s)",
            "partial fit (s)",
        ],
    );
    for (name, config) in engine_profiles() {
        let db = setup(n, false, config);
        // Incremental model accumulates decile by decile.
        let inc = BornSqlModel::create(&db, "inc", scopus_model_options())
            .expect("create incremental model");
        for &pct in steps {
            let k = pct / 10; // decile count
            let fit_spec = train_spec(
                Some(format!(
                    "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                    k as i64 - 1
                )),
                false,
            );
            // Fresh fit on the cumulative subsample.
            let model = BornSqlModel::create(&db, "scratch", scopus_model_options())
                .expect("create scratch model");
            let (r, fit_time) = time_it(|| model.fit(&fit_spec));
            r.expect("fit");
            // Incremental: add only the new decile.
            let partial_spec = train_spec(
                Some(format!(
                    "SELECT id AS n FROM publication WHERE id % 10 = {}",
                    k as i64 - 1
                )),
                false,
            );
            let (r, partial_time) = time_it(|| inc.partial_fit(&partial_spec));
            r.expect("partial fit");
            let items = db
                .query_scalar(&format!(
                    "SELECT COUNT(*) FROM publication WHERE id % 10 <= {}",
                    k as i64 - 1
                ))
                .unwrap();
            t.row(vec![
                name.to_string(),
                pct.to_string(),
                items.to_string(),
                secs(fit_time),
                secs(partial_time),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 4 — deployment time vs number of features
// ---------------------------------------------------------------------

pub fn figure4(n: usize, steps: &[usize]) -> Table {
    let mut t = Table::new(
        format!("Figure 4: deployment time vs features (scopus-like, n = {n})"),
        &["subsample %", "features", "deploy (s)"],
    );
    let db = setup(n, false, EngineConfig::profile_a());
    for &pct in steps {
        let k = pct / 10;
        let model = BornSqlModel::create(&db, "m4", scopus_model_options()).unwrap();
        model
            .fit(&train_spec(
                Some(format!(
                    "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                    k as i64 - 1
                )),
                false,
            ))
            .unwrap();
        let features = model.n_features().unwrap();
        let (r, deploy_time) = time_it(|| model.deploy());
        r.unwrap();
        t.row(vec![
            pct.to_string(),
            features.to_string(),
            secs(deploy_time),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Figure 5 — feature growth and deployment time under three scenarios
// ---------------------------------------------------------------------

pub fn figure5(n: usize, steps: &[usize]) -> Table {
    let mut t = Table::new(
        format!("Figure 5: features seen and deployment time, three scenarios (n = {n})"),
        &["scenario", "training %", "features", "deploy (s)"],
    );
    // (a/d) stationary, all attribute families.
    let scenarios: Vec<(&str, bool, bool)> = vec![
        ("(a/d) stationary", false, false),
        ("(b/e) chronological drift", true, false),
        ("(c/f) abstract-only, stationary", false, true),
    ];
    for (label, drift, abstract_only) in scenarios {
        let db = setup(n, drift, EngineConfig::profile_a());
        for &pct in steps {
            let qn = if drift {
                // Chronological split: the first pct% of ids.
                format!(
                    "SELECT id AS n FROM publication WHERE id <= {}",
                    (n * pct) / 100
                )
            } else {
                format!(
                    "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                    (pct / 10) as i64 - 1
                )
            };
            let model = BornSqlModel::create(&db, "m5", scopus_model_options()).unwrap();
            model.fit(&train_spec(Some(qn), abstract_only)).unwrap();
            let features = model.n_features().unwrap();
            let (r, deploy_time) = time_it(|| model.deploy());
            r.unwrap();
            t.row(vec![
                label.to_string(),
                pct.to_string(),
                features.to_string(),
                secs(deploy_time),
            ]);
        }
    }
    t
}

// ---------------------------------------------------------------------
// Figure 6 — single-item inference time, before and after deployment
// ---------------------------------------------------------------------

pub fn figure6(n: usize, steps: &[usize], batch: usize) -> Table {
    let mut t = Table::new(
        format!("Figure 6: inference time for one item vs model size (n = {n})"),
        &["training %", "features", "undeployed (s)", "deployed (s)"],
    );
    let db = setup(n, false, EngineConfig::profile_a());
    let item_spec = test_spec("SELECT 13 AS n".to_string());
    let mut last_model: Option<BornSqlModel<Database>> = None;
    for &pct in steps {
        let k = pct / 10;
        let model = BornSqlModel::create(&db, "m6", scopus_model_options()).unwrap();
        model
            .fit(&train_spec(
                Some(format!(
                    "SELECT id AS n FROM publication WHERE id % 10 <= {}",
                    k as i64 - 1
                )),
                false,
            ))
            .unwrap();
        model.undeploy().unwrap();
        let features = model.n_features().unwrap();
        let (r, undeployed) = time_it(|| model.predict(&item_spec));
        r.unwrap();
        model.deploy().unwrap();
        let (r, deployed) = time_it(|| model.predict(&item_spec));
        r.unwrap();
        t.row(vec![
            pct.to_string(),
            features.to_string(),
            secs(undeployed),
            secs(deployed),
        ]);
        last_model = Some(model);
    }
    // The paper's closing measurement: 1000-item batch on the full model.
    if let Some(model) = last_model {
        let batch_spec = test_spec(format!(
            "SELECT id AS n FROM publication WHERE id <= {batch}"
        ));
        let (r, batch_time) = time_it(|| model.predict(&batch_spec));
        let preds = r.unwrap();
        t.row(vec![
            format!("batch of {}", preds.len()),
            "-".into(),
            "-".into(),
            format!(
                "{} total, {:.3} ms/item",
                secs(batch_time),
                batch_time.as_secs_f64() * 1000.0 / preds.len().max(1) as f64
            ),
        ]);
    }
    t
}

// ---------------------------------------------------------------------
// Tables 3 and 4 — global and local explanations
// ---------------------------------------------------------------------

/// Fit + deploy a model on the full corpus and return it with its database.
pub fn full_model(n: usize) -> (Database, &'static str) {
    let db = setup(n, false, EngineConfig::profile_a());
    let model = BornSqlModel::create(&db, "full", scopus_model_options()).unwrap();
    model.fit(&train_spec(None, false)).unwrap();
    model.deploy().unwrap();
    (db, "full")
}

pub fn table3(db: &Database, model_name: &str, per_class: usize) -> Table {
    let model = BornSqlModel::attach(db, model_name, scopus_model_options()).expect("attach model");
    let mut t = Table::new(
        "Table 3: global explanation (top features per class)",
        &["k", "j", "w"],
    );
    let global = model.explain_global(None).expect("global explanation");
    for class in [17i64, 18, 26] {
        let mut shown = 0;
        for (j, k, w) in &global {
            if k.as_i64().ok().flatten() == Some(class) {
                t.row(vec![class.to_string(), j.to_string(), format!("{w:.4}")]);
                shown += 1;
                if shown >= per_class {
                    break;
                }
            }
        }
    }
    t
}

pub fn table4(db: &Database, model_name: &str, item: i64, top: usize) -> Table {
    let model = BornSqlModel::attach(db, model_name, scopus_model_options()).expect("attach model");
    let mut t = Table::new(
        format!("Table 4: local explanation for item n = {item}"),
        &["k", "j", "w"],
    );
    let spec = test_spec(format!("SELECT {item} AS n"));
    let local = model
        .explain_local(&spec, Some(top))
        .expect("local explanation");
    for (j, k, w) in local {
        t.row(vec![k.to_string(), j.to_string(), format!("{w:.6}")]);
    }
    // Context: the model's prediction for the item.
    let pred = model.predict(&spec).expect("prediction");
    if let Some((n, k)) = pred.first() {
        t.row(vec![format!("predicted[{n}]"), "→".into(), k.to_string()]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_three_classes_plus_total() {
        let t = table1(2_000);
        assert_eq!(t.rows.len(), 4);
    }

    #[test]
    fn figure3_small_run_produces_rows() {
        let t = figure3(400, &[50, 100]);
        // 3 engines × 2 steps.
        assert_eq!(t.rows.len(), 6);
        // Times are parseable seconds.
        for row in &t.rows {
            row[3].parse::<f64>().unwrap();
            row[4].parse::<f64>().unwrap();
        }
    }

    #[test]
    fn figure6_deployed_is_faster() {
        let t = figure6(600, &[100], 50);
        let undeployed: f64 = t.rows[0][2].parse().unwrap();
        let deployed: f64 = t.rows[0][3].parse().unwrap();
        assert!(
            deployed < undeployed,
            "deployed {deployed} must beat undeployed {undeployed}"
        );
    }

    #[test]
    fn figure5_scenarios_have_the_paper_shapes() {
        let t = figure5(1_500, &[20, 60, 100]);
        let features = |scenario: &str, pct: &str| -> f64 {
            t.rows
                .iter()
                .find(|r| r[0].starts_with(scenario) && r[1] == pct)
                .map(|r| r[2].parse::<f64>().unwrap())
                .unwrap()
        };
        // (a) stationary: sublinear growth — tripling items from 20% to 60%
        // must far less than triple the features.
        let a_growth = features("(a/d)", "60") / features("(a/d)", "20");
        assert!(a_growth < 2.0, "stationary growth {a_growth}");
        // (b) drift: superlinear relative to (a).
        let b_growth = features("(b/e)", "100") / features("(b/e)", "20");
        assert!(b_growth > a_growth, "drift must outgrow stationary");
        // (c) abstract-only: saturates — only marginal growth over the last 40%
        // (threshold loose because vocab saturation is partial at test scale).
        let c_tail = features("(c/f)", "100") / features("(c/f)", "60");
        assert!(c_tail < 1.15, "abstract-only must saturate, got {c_tail}");
    }

    #[test]
    fn explanations_render() {
        let (db, name) = full_model(500);
        let t3 = table3(&db, name, 3);
        assert!(t3.rows.len() >= 6, "rows: {}", t3.rows.len());
        let t4 = table4(&db, name, 13, 10);
        assert!(!t4.rows.is_empty());
    }
}
