//! Tests for the engine's extended SQL surface: subqueries, transactions,
//! ranking window functions, string functions, EXPLAIN, and snapshots.

use sqlengine::{Database, Snapshot, Value};

fn v_i(i: i64) -> Value {
    Value::Int(i)
}
fn v_s(s: &str) -> Value {
    Value::text(s)
}

fn sample_db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE emp (id INTEGER, dept TEXT, salary INTEGER);
         INSERT INTO emp VALUES
            (1, 'eng', 100), (2, 'eng', 120), (3, 'eng', 120),
            (4, 'ops', 80), (5, 'ops', 95);",
    )
    .unwrap();
    db
}

// ---------------------------------------------------------------------
// Subqueries
// ---------------------------------------------------------------------

#[test]
fn scalar_subquery_in_where() {
    let db = sample_db();
    let r = db
        .query("SELECT id FROM emp WHERE salary = (SELECT MAX(salary) FROM emp) ORDER BY id")
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_i(2)], vec![v_i(3)]]);
}

#[test]
fn scalar_subquery_in_projection() {
    let db = sample_db();
    let r = db
        .query("SELECT id, salary - (SELECT AVG(salary) FROM emp) AS diff FROM emp WHERE id = 1")
        .unwrap();
    let Value::Float(diff) = r.rows[0][1] else {
        panic!()
    };
    assert!((diff - (100.0 - 103.0)).abs() < 1e-9);
}

#[test]
fn in_subquery() {
    let db = sample_db();
    let r = db
        .query(
            "SELECT id FROM emp WHERE dept IN (SELECT dept FROM emp WHERE salary > 100) ORDER BY id",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 3); // all of eng
    let r2 = db
        .query("SELECT id FROM emp WHERE id NOT IN (SELECT id FROM emp WHERE dept = 'eng') ORDER BY id")
        .unwrap();
    assert_eq!(r2.rows, vec![vec![v_i(4)], vec![v_i(5)]]);
}

#[test]
fn exists_subquery() {
    let db = sample_db();
    let r = db
        .query("SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 110)")
        .unwrap();
    assert_eq!(r.rows[0][0], v_i(5));
    let r2 = db
        .query("SELECT COUNT(*) FROM emp WHERE EXISTS (SELECT 1 FROM emp WHERE salary > 999)")
        .unwrap();
    assert_eq!(r2.rows[0][0], v_i(0));
    let r3 = db
        .query("SELECT COUNT(*) FROM emp WHERE NOT EXISTS (SELECT 1 FROM emp WHERE salary > 999)")
        .unwrap();
    assert_eq!(r3.rows[0][0], v_i(5));
}

#[test]
fn scalar_subquery_multi_row_errors() {
    let db = sample_db();
    assert!(db.query("SELECT (SELECT salary FROM emp) AS s").is_err());
}

#[test]
fn empty_scalar_subquery_is_null() {
    let db = sample_db();
    let r = db
        .query("SELECT (SELECT salary FROM emp WHERE id = 999) AS s")
        .unwrap();
    assert!(r.rows[0][0].is_null());
}

#[test]
fn subquery_in_delete_and_update() {
    let db = sample_db();
    db.execute("UPDATE emp SET salary = salary + 1 WHERE salary < (SELECT AVG(salary) FROM emp)")
        .unwrap();
    assert_eq!(
        db.query_scalar("SELECT salary FROM emp WHERE id = 4")
            .unwrap(),
        v_i(81)
    );
    db.execute("DELETE FROM emp WHERE id IN (SELECT id FROM emp WHERE dept = 'ops')")
        .unwrap();
    assert_eq!(db.table_rows("emp").unwrap(), 3);
}

// ---------------------------------------------------------------------
// Transactions
// ---------------------------------------------------------------------

#[test]
fn rollback_restores_data_and_schema() {
    let db = sample_db();
    db.execute("BEGIN").unwrap();
    assert!(db.in_transaction());
    db.execute("DELETE FROM emp").unwrap();
    db.execute("CREATE TABLE scratch (x INTEGER)").unwrap();
    db.execute("DROP TABLE IF EXISTS scratch").unwrap();
    db.execute("CREATE TABLE scratch2 (x INTEGER)").unwrap();
    assert_eq!(db.table_rows("emp").unwrap(), 0);
    db.execute("ROLLBACK").unwrap();
    assert!(!db.in_transaction());
    assert_eq!(db.table_rows("emp").unwrap(), 5);
    assert!(!db.has_table("scratch2"));
}

#[test]
fn commit_keeps_changes() {
    let db = sample_db();
    db.execute("BEGIN TRANSACTION").unwrap();
    db.execute("UPDATE emp SET salary = 0").unwrap();
    db.execute("COMMIT").unwrap();
    assert_eq!(
        db.query_scalar("SELECT SUM(salary) FROM emp").unwrap(),
        v_i(0)
    );
    // Rollback after commit is an error — nothing to roll back.
    assert!(db.execute("ROLLBACK").is_err());
}

#[test]
fn nested_begin_rejected() {
    let db = sample_db();
    db.execute("BEGIN").unwrap();
    assert!(db.execute("BEGIN").is_err());
    db.execute("COMMIT").unwrap();
}

#[test]
fn rollback_restores_primary_keys() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
    db.execute("BEGIN").unwrap();
    db.execute("DELETE FROM t").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'b')").unwrap();
    db.execute("ROLLBACK").unwrap();
    // PK index restored with the data: re-inserting id 1 must conflict.
    assert!(db.execute("INSERT INTO t VALUES (1, 'c')").is_err());
    assert_eq!(db.query_scalar("SELECT v FROM t").unwrap(), v_s("a"));
}

// ---------------------------------------------------------------------
// Ranking window functions
// ---------------------------------------------------------------------

#[test]
fn rank_and_dense_rank_handle_ties() {
    let db = sample_db();
    let r = db
        .query(
            "SELECT id,
                    ROW_NUMBER() OVER (ORDER BY salary DESC) AS rn,
                    RANK() OVER (ORDER BY salary DESC) AS rk,
                    DENSE_RANK() OVER (ORDER BY salary DESC) AS dr
             FROM emp ORDER BY rn",
        )
        .unwrap();
    // salaries: 120, 120, 100, 95, 80
    let rows: Vec<(i64, i64, i64, i64)> = r
        .rows
        .iter()
        .map(|row| {
            (
                row[0].as_i64().unwrap().unwrap(),
                row[1].as_i64().unwrap().unwrap(),
                row[2].as_i64().unwrap().unwrap(),
                row[3].as_i64().unwrap().unwrap(),
            )
        })
        .collect();
    assert_eq!(rows[0].1, 1);
    assert_eq!(rows[1].1, 2);
    // Tied salaries share RANK 1 and DENSE_RANK 1.
    assert_eq!(rows[0].2, 1);
    assert_eq!(rows[1].2, 1);
    assert_eq!(rows[2].2, 3); // RANK skips
    assert_eq!(rows[2].3, 2); // DENSE_RANK does not
    assert_eq!(rows[4].2, 5);
    assert_eq!(rows[4].3, 4);
}

#[test]
fn rank_partitioned() {
    let db = sample_db();
    let r = db
        .query(
            "SELECT dept, id, RANK() OVER (PARTITION BY dept ORDER BY salary DESC) AS rk
             FROM emp ORDER BY dept, rk, id",
        )
        .unwrap();
    // eng: 120,120,100 → ranks 1,1,3 ; ops: 95,80 → 1,2
    let ranks: Vec<i64> = r
        .rows
        .iter()
        .map(|row| row[2].as_i64().unwrap().unwrap())
        .collect();
    assert_eq!(ranks, vec![1, 1, 3, 1, 2]);
}

// ---------------------------------------------------------------------
// String functions
// ---------------------------------------------------------------------

#[test]
fn string_function_suite() {
    let db = Database::new();
    let q = |sql: &str| db.query(sql).unwrap().rows[0][0].clone();
    assert_eq!(q("SELECT TRIM('  x  ')"), v_s("x"));
    assert_eq!(q("SELECT REPLACE('a-b-c', '-', '+')"), v_s("a+b+c"));
    assert_eq!(q("SELECT INSTR('hello', 'll')"), v_i(3));
    assert_eq!(q("SELECT INSTR('hello', 'z')"), v_i(0));
    assert_eq!(q("SELECT CONCAT('a', 1, 'b')"), v_s("a1b"));
    assert!(q("SELECT CONCAT('a', NULL)").is_null());
}

// ---------------------------------------------------------------------
// EXPLAIN and snapshots
// ---------------------------------------------------------------------

#[test]
fn explain_shows_join_strategy() {
    let db = sample_db();
    db.execute("CREATE TABLE dept (name TEXT, head TEXT)")
        .unwrap();
    let plan = db
        .explain("SELECT emp.id FROM emp, dept WHERE emp.dept = dept.name")
        .unwrap();
    assert!(plan.contains("HashJoin"), "plan:\n{plan}");
    assert!(plan.contains("Scan"));

    let db2 = Database::with_config(sqlengine::EngineConfig::profile_c());
    db2.execute_script("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER);")
        .unwrap();
    let plan2 = db2.explain("SELECT a.x FROM a, b WHERE a.x = b.x").unwrap();
    assert!(plan2.contains("SortMergeJoin"), "plan:\n{plan2}");
}

#[test]
fn snapshot_roundtrip_through_json() {
    let db = sample_db();
    let json = Snapshot::capture(&db).unwrap().to_json().unwrap();
    let db2 = Database::new();
    Snapshot::from_json(&json)
        .unwrap()
        .restore_into(&db2)
        .unwrap();
    assert_eq!(
        db.query("SELECT * FROM emp ORDER BY id").unwrap().rows,
        db2.query("SELECT * FROM emp ORDER BY id").unwrap().rows
    );
}

// ---------------------------------------------------------------------
// CREATE TABLE AS SELECT
// ---------------------------------------------------------------------

#[test]
fn create_table_as_select_materializes() {
    let db = sample_db();
    let n = db
        .execute(
            "CREATE TABLE dept_pay AS \
             SELECT dept, SUM(salary) AS total FROM emp GROUP BY dept",
        )
        .unwrap()
        .affected();
    assert_eq!(n, 2);
    let r = db
        .query("SELECT dept, total FROM dept_pay ORDER BY dept")
        .unwrap();
    assert_eq!(r.rows[0], vec![v_s("eng"), v_i(340)]);
    assert_eq!(r.rows[1], vec![v_s("ops"), v_i(175)]);
    // The materialized table is a normal table: updatable and joinable.
    db.execute("UPDATE dept_pay SET total = 0 WHERE dept = 'ops'")
        .unwrap();
    let joined = db
        .query("SELECT COUNT(*) FROM emp, dept_pay WHERE emp.dept = dept_pay.dept")
        .unwrap();
    assert_eq!(joined.rows[0][0], v_i(5));
}

#[test]
fn create_table_as_respects_if_not_exists() {
    let db = sample_db();
    db.execute("CREATE TABLE copy AS SELECT id FROM emp")
        .unwrap();
    assert!(db
        .execute("CREATE TABLE copy AS SELECT id FROM emp")
        .is_err());
    db.execute("CREATE TABLE IF NOT EXISTS copy AS SELECT id FROM emp")
        .unwrap();
}

// ---------------------------------------------------------------------
// Prepared statements
// ---------------------------------------------------------------------

#[test]
fn prepared_statements_rebind_parameters() {
    let db = sample_db();
    let by_dept = db
        .prepare("SELECT COUNT(*) FROM emp WHERE dept = ? AND salary >= ?")
        .unwrap();
    let r = by_dept.query(&[v_s("eng"), v_i(110)]).unwrap();
    assert_eq!(r.rows[0][0], v_i(2));
    let r = by_dept.query(&[v_s("ops"), v_i(0)]).unwrap();
    assert_eq!(r.rows[0][0], v_i(2));

    let insert = db.prepare("INSERT INTO emp VALUES (?, ?, ?)").unwrap();
    for i in 10..15 {
        insert.execute(&[v_i(i), v_s("new"), v_i(50)]).unwrap();
    }
    assert_eq!(db.table_rows("emp").unwrap(), 10);
    // The prepared SELECT sees data inserted after preparation.
    let r = by_dept.query(&[v_s("new"), v_i(0)]).unwrap();
    assert_eq!(r.rows[0][0], v_i(5));
}

#[test]
fn prepared_statement_rejects_bad_sql_at_prepare_time() {
    let db = sample_db();
    assert!(db.prepare("SELEC nope").is_err());
}
