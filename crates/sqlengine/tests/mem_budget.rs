//! Per-statement memory budget: pipeline-breaking operators (hash-join
//! builds, aggregation tables, sort runs, dedup sets) charge their state
//! against `EngineConfig::memory_budget` and abort with the retryable
//! `EngineError::ResourceExhausted` instead of letting the process OOM.

use std::time::Duration;

use sqlengine::{Database, EngineConfig, EngineError, Value};

fn db_with_rows(config: EngineConfig, rows: usize) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE docs (n INTEGER, grp INTEGER, w REAL)")
        .unwrap();
    let values: Vec<String> = (0..rows)
        .map(|i| format!("({i}, {}, {i}.25)", i % 7))
        .collect();
    db.execute(&format!("INSERT INTO docs VALUES {}", values.join(", ")))
        .unwrap();
    db
}

fn metric(db: &Database, name: &str) -> f64 {
    let sql = format!("SELECT value FROM sys.metrics WHERE name = '{name}'");
    let r = db.query(&sql).unwrap();
    match r.rows[0][0] {
        Value::Float(v) => v,
        ref other => panic!("expected float metric, got {other:?}"),
    }
}

/// Memory-hungry shapes that must each trip a 4 KiB budget: hash-join
/// build, hash aggregation, sort, and DISTINCT dedup.
const HUNGRY: &[&str] = &[
    "SELECT COUNT(*) FROM docs a JOIN docs b ON a.n = b.n",
    "SELECT n, SUM(w) FROM docs GROUP BY n",
    "SELECT n FROM docs ORDER BY w",
    "SELECT DISTINCT n, grp, w FROM docs",
];

#[test]
fn tiny_budget_aborts_memory_hungry_operators() {
    let db = db_with_rows(EngineConfig::default().with_memory_budget(4096), 3000);
    for sql in HUNGRY {
        let err = db.query(sql).unwrap_err();
        assert!(
            matches!(err, EngineError::ResourceExhausted { .. }),
            "expected budget abort for {sql:?}, got {err:?}"
        );
        assert!(err.is_retryable(), "{sql:?}");
        // The statement span is attached so diagnostics can point at the
        // source text that overran the budget.
        if let EngineError::ResourceExhausted { span, .. } = &err {
            assert!(!span.is_empty(), "span missing for {sql:?}");
        }
    }
    // The budget abort counter saw every failure.
    assert!(metric(&db, "mem.budget_aborts") >= HUNGRY.len() as f64);
}

#[test]
fn same_statements_pass_under_a_generous_budget() {
    let db = db_with_rows(
        EngineConfig::default().with_memory_budget(64 * 1024 * 1024),
        3000,
    );
    for sql in HUNGRY {
        db.query(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
    }
    assert_eq!(metric(&db, "mem.budget_aborts"), 0.0);
    // Peak usage was tracked even though nothing aborted.
    assert!(metric(&db, "mem.peak_bytes") > 0.0);
}

#[test]
fn unbudgeted_databases_are_unaffected_but_still_track_peaks() {
    let db = db_with_rows(EngineConfig::default(), 3000);
    for sql in HUNGRY {
        db.query(sql).unwrap_or_else(|e| panic!("{sql:?}: {e}"));
    }
    // sys.query_log records the peak operator memory per statement.
    let r = db
        .query(
            "SELECT peak_mem_bytes FROM sys.query_log \
             WHERE sql LIKE '%JOIN docs%' ORDER BY peak_mem_bytes DESC LIMIT 1",
        )
        .unwrap();
    match r.rows[0][0] {
        Value::Int(peak) => assert!(peak > 0, "peak_mem_bytes not recorded"),
        ref other => panic!("expected integer peak, got {other:?}"),
    }
}

#[test]
fn small_statements_fit_inside_a_small_budget() {
    // The budget constrains operator state, not mere table size: point
    // reads and small aggregates over the same table stay admissible.
    let db = db_with_rows(EngineConfig::default().with_memory_budget(64 * 1024), 3000);
    db.query("SELECT w FROM docs WHERE n = 17").unwrap();
    db.query("SELECT grp, COUNT(*) FROM docs GROUP BY grp")
        .unwrap();
}

#[test]
fn budget_abort_is_clean_and_database_stays_usable() {
    let db = db_with_rows(
        EngineConfig::default()
            .with_memory_budget(4096)
            .with_statement_timeout(Duration::from_secs(30)),
        3000,
    );
    let before = db.query("SELECT COUNT(*) FROM docs").unwrap();
    let _ = db.query(HUNGRY[0]).unwrap_err();
    // An aborted statement releases everything; the next statement runs.
    let after = db.query("SELECT COUNT(*) FROM docs").unwrap();
    assert_eq!(before, after);
    // Failed statements land in the query log as errors with their peak.
    let r = db
        .query(
            "SELECT status FROM sys.query_log WHERE sql LIKE '%JOIN docs%' \
             ORDER BY id DESC LIMIT 1",
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::text("error"));
}
