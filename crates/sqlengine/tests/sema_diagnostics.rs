//! Golden tests for the static semantic analyzer: each bad query must be
//! rejected with an exact diagnostic message and a byte span pointing at the
//! offending source fragment — before anything is planned or executed.

use sqlengine::{DataType, Database, EngineError, Value};

/// Fixture: `t(a INTEGER, b TEXT, r REAL)`, `u(a INTEGER, c TEXT)`, and
/// `k(id INTEGER, w REAL)` with a primary key for upsert checks.
fn db() -> Database {
    let d = Database::new();
    d.execute_script(
        "CREATE TABLE t (a INTEGER, b TEXT, r REAL); \
         CREATE TABLE u (a INTEGER, c TEXT); \
         CREATE TABLE k (id INTEGER, w REAL, PRIMARY KEY (id)); \
         INSERT INTO t VALUES (1, 'x', 0.5); \
         INSERT INTO u VALUES (1, 'y'); \
         INSERT INTO k VALUES (1, 1.0);",
    )
    .unwrap();
    d
}

/// Assert that `sql` fails semantic analysis with exactly `message`, and
/// that the reported span covers exactly `fragment` in the source text.
fn expect_sema(d: &Database, sql: &str, message: &str, fragment: &str) {
    match d.check(sql) {
        Err(EngineError::Sema { message: m, span }) => {
            assert_eq!(m, message, "wrong message for {sql:?}");
            let got = &sql[span.range()];
            assert_eq!(got, fragment, "wrong span {span} for {sql:?}");
        }
        other => panic!("expected sema error for {sql:?}, got {other:?}"),
    }
    // The same rejection must come out of the execution path.
    assert!(
        matches!(d.execute(sql), Err(EngineError::Sema { .. })),
        "execute did not reject {sql:?}"
    );
}

/// Like [`expect_sema`] but only pins the message (for diagnostics whose
/// natural anchor is a whole clause with no single offending token).
fn expect_sema_msg(d: &Database, sql: &str, message: &str) {
    match d.check(sql) {
        Err(EngineError::Sema { message: m, .. }) => {
            assert_eq!(m, message, "wrong message for {sql:?}");
        }
        other => panic!("expected sema error for {sql:?}, got {other:?}"),
    }
}

#[test]
fn unknown_and_ambiguous_names() {
    let d = db();
    expect_sema(&d, "SELECT zzz FROM t", "unknown column 'zzz'", "zzz");
    expect_sema(&d, "SELECT t.zzz FROM t", "unknown column 't.zzz'", "t.zzz");
    expect_sema(&d, "SELECT x.a FROM t", "unknown column 'x.a'", "x.a");
    expect_sema(
        &d,
        "SELECT * FROM missing",
        "table 'missing' does not exist",
        "missing",
    );
    expect_sema(
        &d,
        "SELECT a FROM t, u",
        "ambiguous column reference 'a'",
        "a",
    );
    expect_sema(
        &d,
        "SELECT t2.a FROM t AS t1",
        "unknown column 't2.a'",
        "t2.a",
    );
    expect_sema(&d, "SELECT u.* FROM t", "unknown table alias 'u.*'", "u.*");
    // The original table name is shadowed by its alias.
    expect_sema(
        &d,
        "SELECT t.a FROM t AS renamed",
        "unknown column 't.a'",
        "t.a",
    );
}

#[test]
fn aggregate_misuse() {
    let d = db();
    expect_sema(
        &d,
        "SELECT a FROM t WHERE SUM(a) > 1",
        "aggregate function not allowed in WHERE",
        "SUM(a)",
    );
    expect_sema(
        &d,
        "SELECT SUM(SUM(a)) FROM t",
        "nested aggregate functions are not supported",
        "SUM(a)",
    );
    expect_sema(
        &d,
        "SELECT COUNT(*) FROM t GROUP BY SUM(a)",
        "aggregate function not allowed in GROUP BY",
        "SUM(a)",
    );
    expect_sema(
        &d,
        "SELECT t.a FROM t JOIN u ON SUM(t.a) = u.a",
        "aggregate function not allowed in JOIN conditions",
        "SUM(t.a)",
    );
    expect_sema(
        &d,
        "SELECT a, COUNT(*) FROM t GROUP BY r",
        "column 'a' must appear in the GROUP BY clause or be used in an aggregate function",
        "a",
    );
    expect_sema(
        &d,
        "SELECT a, COUNT(*) FROM t",
        "column 'a' must appear in the GROUP BY clause or be used in an aggregate function",
        "a",
    );
    expect_sema(
        &d,
        "SELECT a FROM t HAVING a > 1",
        "HAVING requires GROUP BY or aggregates",
        "a > 1",
    );
    expect_sema(
        &d,
        "SELECT SUM(b) FROM t",
        "SUM expected a numeric argument, found TEXT",
        "b",
    );
    expect_sema(
        &d,
        "SELECT AVG(b) FROM t",
        "AVG expected a numeric argument, found TEXT",
        "b",
    );
}

#[test]
fn window_misuse() {
    let d = db();
    expect_sema(
        &d,
        "SELECT a FROM t WHERE ROW_NUMBER() OVER (ORDER BY a) = 1",
        "window function not allowed in WHERE",
        "ROW_NUMBER() OVER (ORDER BY a)",
    );
    expect_sema(
        &d,
        "SELECT a FROM t ORDER BY ROW_NUMBER() OVER (ORDER BY a)",
        "window function in ORDER BY must also appear in the SELECT list",
        "ROW_NUMBER() OVER (ORDER BY a)",
    );
    expect_sema(
        &d,
        "SELECT COUNT(*) FROM t GROUP BY ROW_NUMBER() OVER (ORDER BY a)",
        "window function not allowed in GROUP BY",
        "ROW_NUMBER() OVER (ORDER BY a)",
    );
}

#[test]
fn function_errors() {
    let d = db();
    expect_sema(
        &d,
        "SELECT NOSUCHFUNC(a) FROM t",
        "unknown function 'NOSUCHFUNC'",
        "NOSUCHFUNC(a)",
    );
    expect_sema(
        &d,
        "SELECT POW(a) FROM t",
        "wrong number of arguments (1) for POW",
        "POW(a)",
    );
    expect_sema(
        &d,
        "SELECT ABS(b) FROM t",
        "expected a numeric value, found TEXT",
        "b",
    );
    expect_sema(
        &d,
        "SELECT LN(b) FROM t",
        "expected a numeric value, found TEXT",
        "b",
    );
}

#[test]
fn type_mismatches() {
    let d = db();
    expect_sema(
        &d,
        "SELECT a + b FROM t",
        "operand of '+' expected a numeric value, found TEXT",
        "b",
    );
    expect_sema(
        &d,
        "SELECT b - 1 FROM t",
        "operand of '-' expected a numeric value, found TEXT",
        "b",
    );
    expect_sema(&d, "SELECT -b FROM t", "cannot negate a TEXT value", "b");
    expect_sema(
        &d,
        "SELECT a FROM t WHERE b",
        "TEXT value used in a boolean context",
        "b",
    );
    expect_sema(
        &d,
        "SELECT a FROM t WHERE b AND a > 1",
        "TEXT value used in a boolean context",
        "b",
    );
    expect_sema(
        &d,
        "SELECT NOT b FROM t",
        "TEXT value used in a boolean context",
        "b",
    );
    expect_sema(
        &d,
        "DELETE FROM t WHERE b",
        "TEXT value used in a boolean context",
        "b",
    );
}

#[test]
fn constant_expression_errors() {
    let d = db();
    expect_sema(
        &d,
        "SELECT 1 / 0",
        "constant expression error: integer division by zero",
        "1 / 0",
    );
    expect_sema(
        &d,
        "SELECT a FROM t WHERE a > 10 % 0",
        "constant expression error: integer modulo by zero",
        "10 % 0",
    );
    // Non-constant division by zero cannot be caught statically.
    assert!(d.check("SELECT a / 0 FROM t").is_ok());
    // Short-circuited positions are not strictly folded: the right arm of
    // OR may never be evaluated.
    assert!(d.check("SELECT a FROM t WHERE a = 1 OR 1 / 0 = 1").is_ok());
    assert!(d
        .check("SELECT CASE WHEN a = 1 THEN 1 ELSE 1 / 0 END FROM t")
        .is_ok());
    assert!(d.check("SELECT COALESCE(a, 1 / 0) FROM t").is_ok());
}

#[test]
fn order_limit_union_errors() {
    let d = db();
    expect_sema(
        &d,
        "SELECT a FROM t ORDER BY 99",
        "ORDER BY ordinal 99 out of range",
        "99",
    );
    expect_sema(&d, "SELECT a FROM t LIMIT x", "unknown column 'x'", "x");
    expect_sema_msg(
        &d,
        "SELECT a FROM t LIMIT -1",
        "LIMIT must be a non-negative integer",
    );
    expect_sema_msg(
        &d,
        "SELECT a FROM t LIMIT 1 OFFSET 1 + 0.5",
        "OFFSET must be a non-negative integer",
    );
    expect_sema_msg(
        &d,
        "SELECT a FROM t UNION SELECT a, c FROM u",
        "UNION arms have different column counts (1 vs 2)",
    );
}

#[test]
fn subquery_position_errors() {
    let d = db();
    expect_sema(
        &d,
        "SELECT a IN (SELECT a, c FROM u) FROM t",
        "IN subquery must return one column, got 2",
        "a IN (SELECT a, c FROM u)",
    );
    expect_sema_msg(
        &d,
        "SELECT a FROM t ORDER BY (SELECT a FROM u)",
        "subquery is not supported in this position \
         (only uncorrelated subqueries in SELECT/WHERE/HAVING are supported)",
    );
}

#[test]
fn dml_errors() {
    let d = db();
    expect_sema_msg(
        &d,
        "INSERT INTO t VALUES (1)",
        "INSERT expects 3 values per row, got 1",
    );
    expect_sema_msg(&d, "UPDATE t SET zzz = 1", "unknown column 'zzz' in UPDATE");
    expect_sema(
        &d,
        "UPDATE t SET a = a + b",
        "operand of '+' expected a numeric value, found TEXT",
        "b",
    );
    expect_sema_msg(
        &d,
        "INSERT INTO k VALUES (1, 2.0) ON CONFLICT (w) DO NOTHING",
        "ON CONFLICT target does not match the unique index of 'k'",
    );
    expect_sema_msg(
        &d,
        "INSERT INTO t VALUES (1, 'x', 0.5) ON CONFLICT (a) DO NOTHING",
        "ON CONFLICT on table 't' which has no unique index",
    );
    expect_sema(
        &d,
        "INSERT INTO k VALUES (1, 2.0) ON CONFLICT (id) DO UPDATE SET w = w + excluded.id + excluded.zzz",
        "unknown column 'excluded.zzz'",
        "excluded.zzz",
    );
}

#[test]
fn cte_scoping() {
    let d = db();
    expect_sema(
        &d,
        "WITH c AS (SELECT a FROM t) SELECT zzz FROM c",
        "unknown column 'zzz'",
        "zzz",
    );
    // CTEs are visible to later CTEs only (no forward references).
    expect_sema(
        &d,
        "WITH c1 AS (SELECT * FROM c2), c2 AS (SELECT a FROM t) SELECT * FROM c1",
        "table 'c2' does not exist",
        "c2",
    );
    // Typed columns flow through CTEs into derived tables.
    expect_sema(
        &d,
        "WITH c AS (SELECT b AS label FROM t) SELECT label + 1 FROM c",
        "operand of '+' expected a numeric value, found TEXT",
        "label",
    );
}

#[test]
fn caret_snippets_render() {
    let d = db();
    let sql = "SELECT bogus FROM t";
    let err = d.check(sql).unwrap_err();
    let rendered = err.display_with_source(sql);
    assert!(
        rendered.contains("sema error at byte 7..12: unknown column 'bogus'"),
        "{rendered}"
    );
    assert!(
        rendered.ends_with("SELECT bogus FROM t\n       ^^^^^"),
        "{rendered}"
    );
}

#[test]
fn sema_rejection_prevents_execution() {
    let d = db();
    let before = d.query("SELECT * FROM t").unwrap();
    // Each statement is statically invalid; none may mutate the table.
    for sql in [
        "UPDATE t SET a = a + b",
        "DELETE FROM t WHERE b",
        "INSERT INTO t VALUES (1)",
        "INSERT INTO t VALUES (1, 'x', 1 / 0)",
    ] {
        assert!(
            matches!(d.execute(sql), Err(EngineError::Sema { .. })),
            "expected static rejection for {sql:?}"
        );
    }
    assert_eq!(before, d.query("SELECT * FROM t").unwrap());
}

#[test]
fn check_reports_typed_schema() {
    let d = db();
    let report = d
        .check("SELECT a, b, r, a + 1 AS a1, a + r AS ar, COUNT(*) AS n FROM t GROUP BY a, b, r")
        .unwrap();
    assert_eq!(
        report.columns,
        vec![
            ("a".to_string(), DataType::Integer),
            ("b".to_string(), DataType::Text),
            ("r".to_string(), DataType::Real),
            ("a1".to_string(), DataType::Integer),
            ("ar".to_string(), DataType::Real),
            ("n".to_string(), DataType::Integer),
        ]
    );
    // DML checks produce an empty schema.
    assert!(d.check("UPDATE t SET a = 2").unwrap().columns.is_empty());
    // Checking must not execute anything: the UPDATE above was only checked.
    assert_eq!(d.query_scalar("SELECT a FROM t").unwrap(), Value::Int(1));
}

#[test]
fn explain_check_renders_schema_without_executing() {
    let d = db();
    let r = d
        .query("EXPLAIN (CHECK) SELECT a, SUM(r) AS total FROM t GROUP BY a")
        .unwrap();
    assert_eq!(r.columns, vec!["column".to_string(), "type".to_string()]);
    assert_eq!(
        r.rows,
        vec![
            vec![Value::text("a"), Value::text("INTEGER")],
            vec![Value::text("total"), Value::text("REAL")],
        ]
    );
    // And EXPLAIN (CHECK) on a bad query carries the sema diagnostic.
    assert!(matches!(
        d.query("EXPLAIN (CHECK) SELECT zzz FROM t"),
        Err(EngineError::Sema { .. })
    ));
}

/// BornSQL-shaped queries (hyperplane CTE pipelines, ROW_NUMBER argmax,
/// upserts) must all pass the checker with sensible output types.
#[test]
fn bornsql_shaped_queries_pass() {
    let d = Database::new();
    d.execute_script(
        "CREATE TABLE m_corpus (doc INTEGER, label INTEGER, token TEXT, tf INTEGER, PRIMARY KEY (doc, token)); \
         CREATE TABLE m_weights (j INTEGER, k INTEGER, w REAL, PRIMARY KEY (j, k)); \
         CREATE TABLE docs (id INTEGER, body TEXT, PRIMARY KEY (id));",
    )
    .unwrap();
    for sql in [
        // fit-style aggregation into weights
        "SELECT label AS j, tf AS k, SUM(tf) AS w FROM m_corpus GROUP BY label, tf",
        // hyperplane CTE pipeline with POW/LN/CASE
        "WITH tot AS (SELECT label, SUM(tf) AS n FROM m_corpus GROUP BY label), \
              hw AS (SELECT c.label, LN(POW(c.tf + 1, 2)) / (t.n + 1.0) AS s \
                       FROM m_corpus AS c JOIN tot AS t ON c.label = t.label) \
         SELECT label, CASE WHEN SUM(s) > 0 THEN 1 ELSE 0 END AS sgn \
           FROM hw GROUP BY label",
        // predict-style argmax via ROW_NUMBER
        "WITH scores AS (SELECT doc, label, SUM(tf * tf) AS score \
                           FROM m_corpus GROUP BY doc, label), \
              ranked AS (SELECT doc, label, score, \
                                ROW_NUMBER() OVER (PARTITION BY doc ORDER BY score DESC, label) AS rn \
                           FROM scores) \
         SELECT doc, label FROM ranked WHERE rn = 1 ORDER BY doc",
        // partial_fit-style upsert
        "INSERT INTO m_weights VALUES (0, 1, 0.5) \
           ON CONFLICT (j, k) DO UPDATE SET w = m_weights.w + excluded.w",
    ] {
        if let Err(e) = d.check(sql) {
            panic!("expected check to pass for {sql:?}: {}", e.display_with_source(sql));
        }
    }
    // The ranked predict query reports a fully typed schema.
    let report = d
        .check(
            "WITH scores AS (SELECT doc, label, SUM(tf * tf) AS score \
                               FROM m_corpus GROUP BY doc, label) \
             SELECT doc, label, score FROM scores",
        )
        .unwrap();
    assert_eq!(
        report.columns,
        vec![
            ("doc".to_string(), DataType::Integer),
            ("label".to_string(), DataType::Integer),
            ("score".to_string(), DataType::Integer),
        ]
    );
}

/// Plan-cache path still folds constants: repeated execution of a query
/// with a constant subexpression is served from cache and stays correct.
#[test]
fn folded_constants_on_cache_path() {
    let d = db();
    for _ in 0..3 {
        let r = d.query("SELECT a + (1 + 2) FROM t").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
    }
}
