//! End-to-end SQL tests, including the exact query shapes BornSQL emits.

use sqlengine::{Database, EngineConfig, Value};

fn v_i(i: i64) -> Value {
    Value::Int(i)
}
fn v_f(f: f64) -> Value {
    Value::Float(f)
}
fn v_s(s: &str) -> Value {
    Value::text(s)
}

fn setup_xy(db: &Database) {
    db.execute_script(
        "CREATE TABLE x_nj (n INTEGER, j TEXT, w REAL);
         CREATE TABLE y_nk (n INTEGER, k INTEGER, w REAL);
         INSERT INTO x_nj VALUES
            (1, 'a', 1.0), (1, 'b', 2.0),
            (2, 'a', 3.0),
            (3, 'c', 1.0);
         INSERT INTO y_nk VALUES (1, 17, 1.0), (2, 26, 1.0), (3, 17, 1.0);",
    )
    .unwrap();
}

#[test]
fn create_insert_select_roundtrip() {
    let db = Database::new();
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (1, 'one'), (2, 'two')")
        .unwrap();
    let r = db.query("SELECT b FROM t WHERE a = 2").unwrap();
    assert_eq!(r.rows, vec![vec![v_s("two")]]);
}

#[test]
fn xy_njk_join_like_the_paper() {
    // Section 3.2, query (16): XY_njk = X_nj ⋈ Y_nk on n.
    let db = Database::new();
    setup_xy(&db);
    let r = db
        .query(
            "SELECT x_nj.n AS n, x_nj.j AS j, y_nk.k AS k, x_nj.w * y_nk.w AS w
             FROM x_nj, y_nk
             WHERE x_nj.n = y_nk.n
             ORDER BY n, j",
        )
        .unwrap();
    assert_eq!(r.columns, vec!["n", "j", "k", "w"]);
    assert_eq!(r.rows.len(), 4);
    assert_eq!(r.rows[0], vec![v_i(1), v_s("a"), v_i(17), v_f(1.0)]);
    assert_eq!(r.rows[1], vec![v_i(1), v_s("b"), v_i(17), v_f(2.0)]);
    assert_eq!(r.rows[2], vec![v_i(2), v_s("a"), v_i(26), v_f(3.0)]);
}

#[test]
fn group_by_sum_like_xy_n() {
    // Section 3.2, query (17): XY_n = SUM over (j, k) grouped by n.
    let db = Database::new();
    setup_xy(&db);
    let r = db
        .query(
            "SELECT n, SUM(w) AS w FROM (
                SELECT x_nj.n AS n, x_nj.w * y_nk.w AS w
                FROM x_nj, y_nk WHERE x_nj.n = y_nk.n
             ) AS xy_njk GROUP BY n ORDER BY n",
        )
        .unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![v_i(1), v_f(3.0)],
            vec![v_i(2), v_f(3.0)],
            vec![v_i(3), v_f(1.0)],
        ]
    );
}

#[test]
fn cte_pipeline_three_deep() {
    let db = Database::new();
    setup_xy(&db);
    let sql = "WITH
        xy_njk AS (
            SELECT x_nj.n AS n, x_nj.j AS j, y_nk.k AS k, x_nj.w * y_nk.w AS w
            FROM x_nj, y_nk WHERE x_nj.n = y_nk.n
        ),
        xy_n AS (SELECT n, SUM(w) AS w FROM xy_njk GROUP BY n),
        p_jk AS (
            SELECT xy_njk.j AS j, xy_njk.k AS k, SUM(xy_njk.w / xy_n.w) AS w
            FROM xy_njk, xy_n WHERE xy_njk.n = xy_n.n
            GROUP BY xy_njk.j, xy_njk.k
        )
        SELECT j, k, w FROM p_jk ORDER BY j, k";
    let expected = vec![
        vec![v_s("a"), v_i(17), v_f(1.0 / 3.0)],
        vec![v_s("a"), v_i(26), v_f(1.0)],
        vec![v_s("b"), v_i(17), v_f(2.0 / 3.0)],
        vec![v_s("c"), v_i(17), v_f(1.0)],
    ];
    // Same result under all engine profiles.
    for config in [
        EngineConfig::profile_a(),
        EngineConfig::profile_b(),
        EngineConfig::profile_c(),
    ] {
        let db2 = Database::with_config(config);
        setup_xy(&db2);
        let r = db2.query(sql).unwrap();
        assert_eq!(r.rows, expected, "config {config:?}");
    }
    let r = db.query(sql).unwrap();
    assert_eq!(r.rows, expected);
}

#[test]
fn upsert_on_conflict_do_update_accumulates() {
    // The paper's incremental-learning upsert (Section 3.2).
    let db = Database::new();
    db.execute("CREATE TABLE m_corpus (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k))")
        .unwrap();
    db.execute("INSERT INTO m_corpus (j, k, w) VALUES ('a', 17, 1.5)")
        .unwrap();
    db.execute(
        "INSERT INTO m_corpus (j, k, w) VALUES ('a', 17, 2.0), ('b', 26, 1.0)
         ON CONFLICT (j, k) DO UPDATE SET w = m_corpus.w + excluded.w",
    )
    .unwrap();
    let r = db.query("SELECT j, k, w FROM m_corpus ORDER BY j").unwrap();
    assert_eq!(
        r.rows,
        vec![
            vec![v_s("a"), v_i(17), v_f(3.5)],
            vec![v_s("b"), v_i(26), v_f(1.0)],
        ]
    );
}

#[test]
fn on_conflict_do_nothing() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, x TEXT)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1, 'first')").unwrap();
    let n = db
        .execute("INSERT INTO t VALUES (1, 'second'), (2, 'other') ON CONFLICT (id) DO NOTHING")
        .unwrap()
        .affected();
    assert_eq!(n, 1);
    let r = db.query("SELECT x FROM t WHERE id = 1").unwrap();
    assert_eq!(r.rows[0][0], v_s("first"));
}

#[test]
fn row_number_window_argmax() {
    // The paper's argmax-by-ROW_NUMBER inference query (Section 3.4).
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE hwx_nk (n INTEGER, k INTEGER, w REAL);
         INSERT INTO hwx_nk VALUES
            (1, 17, 0.4), (1, 26, 0.9), (1, 18, 0.1),
            (2, 17, 0.7), (2, 26, 0.2);",
    )
    .unwrap();
    let r = db
        .query(
            "SELECT r_nk.n, r_nk.k FROM (
                SELECT n, k, ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC) AS r
                FROM hwx_nk
             ) AS r_nk
             WHERE r = 1
             ORDER BY n",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_i(1), v_i(26)], vec![v_i(2), v_i(17)]]);
}

#[test]
fn union_all_concatenates_union_dedups() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER);
         INSERT INTO a VALUES (1), (2); INSERT INTO b VALUES (2), (3);",
    )
    .unwrap();
    let all = db
        .query("SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x")
        .unwrap();
    assert_eq!(all.rows.len(), 4);
    let distinct = db
        .query("SELECT x FROM a UNION SELECT x FROM b ORDER BY x")
        .unwrap();
    assert_eq!(
        distinct.rows,
        vec![vec![v_i(1)], vec![v_i(2)], vec![v_i(3)]]
    );
}

#[test]
fn string_concat_feature_prefixing() {
    // q_x style: SELECT id as n, 'pubname:'||pubname as j, 1.0 as w
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE publication (id INTEGER, pubname TEXT);
         INSERT INTO publication VALUES (13, 'communications in statistics');",
    )
    .unwrap();
    let r = db
        .query("SELECT id AS n, 'pubname:' || pubname AS j, 1.0 AS w FROM publication")
        .unwrap();
    assert_eq!(
        r.rows[0],
        vec![
            v_i(13),
            v_s("pubname:communications in statistics"),
            v_f(1.0)
        ]
    );
}

#[test]
fn modulo_subsampling_predicates() {
    // q_n style: SELECT id as n FROM publication WHERE id % 10 <= 1
    let db = Database::new();
    db.execute("CREATE TABLE p (id INTEGER)").unwrap();
    for i in 0..100 {
        db.execute_with("INSERT INTO p VALUES (?)", &[v_i(i)])
            .unwrap();
    }
    let r = db
        .query("SELECT id AS n FROM p WHERE id % 10 <= 1")
        .unwrap();
    assert_eq!(r.rows.len(), 20);
}

#[test]
fn pow_and_ln_in_aggregates() {
    // Deployment-style entropy computation needs LN/POW inside SUM.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE h_jk (j TEXT, k INTEGER, w REAL);
         INSERT INTO h_jk VALUES ('a', 1, 0.5), ('a', 2, 0.5);",
    )
    .unwrap();
    let r = db
        .query("SELECT j, 1.0 + SUM(w * LN(w)) / LN(2.0) AS h FROM h_jk GROUP BY j")
        .unwrap();
    let Value::Float(h) = r.rows[0][1] else {
        panic!()
    };
    assert!(
        h.abs() < 1e-12,
        "entropy of uniform 2-dist must be 0, got {h}"
    );
}

#[test]
fn left_join_fills_nulls() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE l (id INTEGER, x TEXT); CREATE TABLE r (id INTEGER, y TEXT);
         INSERT INTO l VALUES (1, 'a'), (2, 'b');
         INSERT INTO r VALUES (1, 'z');",
    )
    .unwrap();
    let r = db
        .query("SELECT l.x, r.y FROM l LEFT JOIN r ON l.id = r.id ORDER BY l.id")
        .unwrap();
    assert_eq!(r.rows[0], vec![v_s("a"), v_s("z")]);
    assert_eq!(r.rows[1], vec![v_s("b"), Value::Null]);
}

#[test]
fn delete_and_update() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE t (id INTEGER, w REAL);
         INSERT INTO t VALUES (1, 1.0), (2, 2.0), (3, 3.0);",
    )
    .unwrap();
    assert_eq!(
        db.execute("UPDATE t SET w = w * 10 WHERE id >= 2")
            .unwrap()
            .affected(),
        2
    );
    assert_eq!(
        db.execute("DELETE FROM t WHERE id = 1").unwrap().affected(),
        1
    );
    let r = db.query("SELECT SUM(w) FROM t").unwrap();
    assert_eq!(r.rows[0][0], v_f(50.0));
}

#[test]
fn having_and_count_distinct() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE t (g INTEGER, x INTEGER);
         INSERT INTO t VALUES (1, 10), (1, 10), (1, 20), (2, 30);",
    )
    .unwrap();
    let r = db
        .query("SELECT g, COUNT(DISTINCT x) AS c FROM t GROUP BY g HAVING COUNT(*) > 1 ORDER BY g")
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_i(1), v_i(2)]]);
}

#[test]
fn order_by_hidden_column() {
    // ORDER BY on an expression not in the projection.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE t (a INTEGER, b INTEGER);
         INSERT INTO t VALUES (1, 30), (2, 10), (3, 20);",
    )
    .unwrap();
    let r = db.query("SELECT a FROM t ORDER BY b DESC").unwrap();
    assert_eq!(r.rows, vec![vec![v_i(1)], vec![v_i(3)], vec![v_i(2)]]);
    assert_eq!(r.columns, vec!["a"]);
}

#[test]
fn scalar_subquery_via_cross_join_singleton() {
    // The ABH hyper-parameter table pattern: FROM hwx_nk, abh.
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE u (n INTEGER, w REAL);
         CREATE TABLE abh (a REAL);
         INSERT INTO u VALUES (1, 4.0), (2, 9.0);
         INSERT INTO abh VALUES (0.5);",
    )
    .unwrap();
    let r = db
        .query("SELECT n, POW(w, 1/a) AS w FROM u, abh ORDER BY n")
        .unwrap();
    assert_eq!(r.rows[0], vec![v_i(1), v_f(16.0)]);
    assert_eq!(r.rows[1], vec![v_i(2), v_f(81.0)]);
}

#[test]
fn aggregates_on_empty_input() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    let r = db.query("SELECT COUNT(*), SUM(x), MIN(x) FROM t").unwrap();
    assert_eq!(r.rows, vec![vec![v_i(0), Value::Null, Value::Null]]);
    let r2 = db.query("SELECT x, COUNT(*) FROM t GROUP BY x").unwrap();
    assert!(r2.rows.is_empty());
}

#[test]
fn distinct_rows() {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (1), (2);")
        .unwrap();
    let r = db.query("SELECT DISTINCT x FROM t ORDER BY x").unwrap();
    assert_eq!(r.rows, vec![vec![v_i(1)], vec![v_i(2)]]);
}

#[test]
fn case_insensitive_identifiers() {
    let db = Database::new();
    db.execute("CREATE TABLE MyTable (MyCol INTEGER)").unwrap();
    db.execute("INSERT INTO mytable VALUES (5)").unwrap();
    let r = db.query("SELECT MYCOL FROM MYTABLE").unwrap();
    assert_eq!(r.rows[0][0], v_i(5));
}

#[test]
fn limit_offset() {
    let db = Database::new();
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    for i in 0..10 {
        db.execute_with("INSERT INTO t VALUES (?)", &[v_i(i)])
            .unwrap();
    }
    let r = db
        .query("SELECT x FROM t ORDER BY x LIMIT 3 OFFSET 4")
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_i(4)], vec![v_i(5)], vec![v_i(6)]]);
}

#[test]
fn three_way_join_with_filters() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE a (id INTEGER, v INTEGER);
         CREATE TABLE b (id INTEGER, v INTEGER);
         CREATE TABLE c (id INTEGER, v INTEGER);
         INSERT INTO a VALUES (1, 100), (2, 200);
         INSERT INTO b VALUES (1, 10), (2, 20);
         INSERT INTO c VALUES (1, 1), (2, 2);",
    )
    .unwrap();
    let r = db
        .query(
            "SELECT a.v + b.v + c.v AS total
             FROM a, b, c
             WHERE a.id = b.id AND b.id = c.id AND a.v > 100",
        )
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_i(222)]]);
}

#[test]
fn insert_from_select_with_column_mapping() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE src (n INTEGER, w REAL);
         CREATE TABLE dst (w REAL, n INTEGER, tag TEXT);
         INSERT INTO src VALUES (1, 0.5), (2, 1.5);",
    )
    .unwrap();
    db.execute("INSERT INTO dst (n, w) SELECT n, w FROM src")
        .unwrap();
    let r = db.query("SELECT w, n, tag FROM dst ORDER BY n").unwrap();
    assert_eq!(r.rows[0], vec![v_f(0.5), v_i(1), Value::Null]);
}

#[test]
fn drop_table_if_exists() {
    let db = Database::new();
    db.execute("DROP TABLE IF EXISTS nope").unwrap();
    assert!(db.execute("DROP TABLE nope").is_err());
    db.execute("CREATE TABLE nope (x INTEGER)").unwrap();
    db.execute("DROP TABLE nope").unwrap();
    assert!(!db.has_table("nope"));
}

#[test]
fn create_index_statements_accepted() {
    let db = Database::new();
    db.execute("CREATE TABLE t (j TEXT, k INTEGER, w REAL)")
        .unwrap();
    db.execute("INSERT INTO t VALUES ('a', 1, 0.5)").unwrap();
    db.execute("CREATE INDEX t_j ON t (j)").unwrap();
    db.execute("CREATE UNIQUE INDEX t_jk ON t (j, k)").unwrap();
    // Unique index now enforces upserts.
    db.execute(
        "INSERT INTO t VALUES ('a', 1, 1.0) ON CONFLICT (j, k) DO UPDATE SET w = t.w + excluded.w",
    )
    .unwrap();
    assert_eq!(db.query("SELECT w FROM t").unwrap().rows[0][0], v_f(1.5));
}

#[test]
fn params_bind_in_dml_and_queries() {
    let db = Database::new();
    db.execute("CREATE TABLE t (id INTEGER, name TEXT)")
        .unwrap();
    db.execute_with("INSERT INTO t VALUES (?, ?)", &[v_i(1), v_s("x")])
        .unwrap();
    let r = db
        .query_with("SELECT name FROM t WHERE id = ?", &[v_i(1)])
        .unwrap();
    assert_eq!(r.rows[0][0], v_s("x"));
}

#[test]
fn cte_referenced_twice() {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (2), (3);")
        .unwrap();
    for config in [EngineConfig::profile_a(), EngineConfig::profile_b()] {
        let db2 = Database::with_config(config);
        db2.execute_script("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (2), (3);")
            .unwrap();
        let r = db2
            .query(
                "WITH s AS (SELECT SUM(x) AS total FROM t)
                 SELECT a.total + b.total AS doubled FROM s AS a, s AS b",
            )
            .unwrap();
        assert_eq!(r.rows, vec![vec![v_i(12)]]);
    }
    let _ = db;
}

#[test]
fn self_insert_reads_snapshot() {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (x INTEGER); INSERT INTO t VALUES (1), (2);")
        .unwrap();
    db.execute("INSERT INTO t SELECT x + 10 FROM t").unwrap();
    assert_eq!(db.table_rows("t").unwrap(), 4);
}

#[test]
fn qualified_wildcard() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE a (x INTEGER); CREATE TABLE b (y INTEGER);
         INSERT INTO a VALUES (1); INSERT INTO b VALUES (2);",
    )
    .unwrap();
    let r = db.query("SELECT b.*, a.* FROM a, b").unwrap();
    assert_eq!(r.columns, vec!["y", "x"]);
    assert_eq!(r.rows, vec![vec![v_i(2), v_i(1)]]);
}

#[test]
fn order_by_aggregate_expression() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE t (g TEXT, w REAL);
         INSERT INTO t VALUES ('a', 1.0), ('a', 1.0), ('b', 5.0), ('c', 3.0);",
    )
    .unwrap();
    let r = db
        .query("SELECT g FROM t GROUP BY g ORDER BY SUM(w) DESC")
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_s("b")], vec![v_s("c")], vec![v_s("a")]]);
}

#[test]
fn having_with_aggregate_not_in_projection() {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE t (g TEXT, w REAL);
         INSERT INTO t VALUES ('a', 1.0), ('b', 5.0), ('b', 5.0);",
    )
    .unwrap();
    let r = db
        .query("SELECT g FROM t GROUP BY g HAVING SUM(w) > 4 AND COUNT(*) >= 2")
        .unwrap();
    assert_eq!(r.rows, vec![vec![v_s("b")]]);
}
