//! Telemetry regression tests: query-log semantics, plan-cache metrics and
//! reset, worker-count reporting in `EXPLAIN ANALYZE`, WAL counters, and the
//! serving-hot-path overhead bound for the registry itself.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlengine::{
    Database, EngineConfig, EngineError, MemIo, QueryStatus, StorageIo, SyncPolicy, Value,
};

/// Tiny deterministic PRNG so fixtures are identical on every run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn seeded_db(config: EngineConfig, rows: usize) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (g INTEGER, x INTEGER, w REAL)")
        .unwrap();
    let mut rng = Lcg(0x7E1E);
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        data.push(vec![
            Value::Int((rng.next() % 13) as i64),
            Value::Int((rng.next() % 1000) as i64),
            Value::Float((rng.next() % 10_000) as f64 / 100.0),
        ]);
    }
    db.insert_rows("t", data).unwrap();
    db
}

// ---------------------------------------------------------------------
// Query log
// ---------------------------------------------------------------------

#[test]
fn query_log_records_status_rows_and_cache_hits() {
    let db = seeded_db(EngineConfig::default(), 64);
    db.query("SELECT g FROM t WHERE x >= 0").unwrap();
    db.query("SELECT g FROM t WHERE x >= 0").unwrap();
    let _ = db.query("SELECT nope FROM t");

    let log = db.telemetry().query_log();
    let hits: Vec<_> = log
        .iter()
        .filter(|e| e.sql.contains("WHERE x >= 0"))
        .collect();
    assert_eq!(hits.len(), 2);
    assert_eq!(hits[0].status, QueryStatus::Ok);
    assert_eq!(hits[0].rows, 64);
    assert!(!hits[0].cache_hit, "first execution must be a cache miss");
    assert!(hits[1].cache_hit, "second execution must be a cache hit");

    let err = log
        .iter()
        .find(|e| e.status == QueryStatus::Error)
        .expect("failed statement must be logged");
    assert!(
        err.error.as_deref().unwrap_or("").contains("nope"),
        "error text should carry the sema message: {:?}",
        err.error
    );

    // The same facts are visible through SQL.
    let r = db
        .query("SELECT status, error FROM sys.query_log WHERE status = 'error'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
}

#[test]
fn slow_queries_are_flagged_against_the_configured_threshold() {
    let db = seeded_db(
        EngineConfig::default().with_slow_query_threshold(Duration::from_micros(1)),
        256,
    );
    db.query("SELECT g, COUNT(*), SUM(w) FROM t GROUP BY g")
        .unwrap();
    let log = db.telemetry().query_log();
    let entry = log.iter().find(|e| e.sql.contains("GROUP BY g")).unwrap();
    assert!(entry.slow, "a 1µs threshold must flag any real statement");
    assert!(entry.total_us >= entry.exec_us);

    // A sane threshold leaves ordinary statements unflagged.
    let calm = seeded_db(EngineConfig::default(), 8);
    calm.query("SELECT COUNT(*) FROM t").unwrap();
    let log = calm.telemetry().query_log();
    assert!(log.iter().all(|e| !e.slow));
}

#[test]
fn phase_timings_cover_the_statement() {
    let db = seeded_db(EngineConfig::default(), 256);
    db.query("SELECT g, SUM(x) FROM t WHERE w > 1.0 GROUP BY g ORDER BY g")
        .unwrap();
    let log = db.telemetry().query_log();
    let e = log.iter().find(|e| e.sql.contains("GROUP BY g")).unwrap();
    assert!(
        e.total_us >= e.parse_us + e.sema_us + e.plan_us + e.exec_us,
        "phases must not exceed the statement total: {e:?}"
    );
    assert!(e.exec_us > 0, "executing 256 rows takes measurable time");
}

#[test]
fn statement_timeout_is_logged_with_timeout_status() {
    let db = Database::with_config(
        EngineConfig::default().with_statement_timeout(Duration::from_nanos(1)),
    );
    db.execute("CREATE TABLE a (x INTEGER)").unwrap();
    db.execute("CREATE TABLE b (y INTEGER)").unwrap();
    let rows: Vec<Vec<Value>> = (0..200).map(|i| vec![Value::Int(i)]).collect();
    db.insert_rows("a", rows.clone()).unwrap();
    db.insert_rows("b", rows).unwrap();

    let err = db
        .query("SELECT COUNT(*) FROM a, b WHERE a.x * b.y % 7 = 3")
        .unwrap_err();
    assert!(matches!(err, EngineError::Timeout), "got {err:?}");

    // The 1ns deadline fails follow-up queries too, so read the log through
    // the API rather than SQL here (sys.* SQL access is covered elsewhere).
    let log = db.telemetry().query_log();
    let timeouts: Vec<_> = log
        .iter()
        .filter(|e| e.status == QueryStatus::Timeout)
        .collect();
    assert_eq!(timeouts.len(), 1);
    assert!(
        timeouts[0].error.as_deref().unwrap_or("").contains("time"),
        "timeout entries should carry the error text: {:?}",
        timeouts[0].error
    );
}

#[test]
fn query_log_ring_is_bounded_by_config() {
    let db = Database::with_config(EngineConfig::default().with_query_log_capacity(4));
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    for i in 0..10 {
        db.query(&format!("SELECT x FROM t WHERE x = {i}")).unwrap();
    }
    let log = db.telemetry().query_log();
    assert_eq!(
        log.len(),
        4,
        "ring must hold exactly the configured capacity"
    );
    assert!(
        log[0].sql.contains("x = 6"),
        "oldest surviving entry should be statement #6: {}",
        log[0].sql
    );
}

// ---------------------------------------------------------------------
// Plan-cache metrics: evictions + reset (regression for process-lifetime
// counters that previously could neither be reset nor observe evictions)
// ---------------------------------------------------------------------

#[test]
fn plan_cache_evictions_are_counted_and_stats_reset() {
    let db = seeded_db(EngineConfig::default(), 16);
    // Seeding probed the cache too (the DDL text counts one miss); zero the
    // window so the arithmetic below is exact.
    db.reset_plan_cache_stats();
    // The cache caps at 128 plans; 140 distinct statements must overflow it.
    for i in 0..140 {
        db.query(&format!("SELECT g FROM t WHERE x = {i}")).unwrap();
    }
    let (hits, misses, evictions) = db.plan_cache_metrics();
    assert_eq!(hits, 0);
    assert_eq!(misses, 140);
    assert!(
        evictions > 0,
        "overflowing the 128-entry cache must count evictions"
    );

    // The same numbers surface in sys.metrics.
    let v = db
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'plan_cache.evictions'")
        .unwrap();
    assert_eq!(v, Value::Float(evictions as f64));

    db.reset_plan_cache_stats();
    assert_eq!(db.plan_cache_metrics(), (0, 0, 0));
    // The legacy two-field accessor resets with it.
    assert_eq!(db.plan_cache_stats(), (0, 0));

    // Counting resumes cleanly after a reset. The overflow cleared the
    // cache, so the most recent statement is cached but the oldest is not.
    db.query("SELECT g FROM t WHERE x = 139").unwrap();
    db.query("SELECT g FROM t WHERE x = 0").unwrap();
    let (hits, misses, _) = db.plan_cache_metrics();
    assert_eq!((hits, misses), (1, 1), "one surviving plan, one re-plan");
}

#[test]
fn plan_cache_entry_gauge_tracks_cached_plans() {
    let entries = |db: &Database| -> f64 {
        match db
            .query_scalar("SELECT value FROM sys.metrics WHERE name = 'plan_cache.entries'")
            .unwrap()
        {
            Value::Float(f) => f,
            v => panic!("gauge must be a float, got {v:?}"),
        }
    };

    let db = seeded_db(EngineConfig::default(), 8);
    let base = entries(&db);
    db.query("SELECT g FROM t WHERE x > 1").unwrap();
    db.query("SELECT g FROM t WHERE x > 2").unwrap();
    // Parameterized templates count as entries like any other plan.
    db.query_with("SELECT g FROM t WHERE x > ?", &[Value::Int(3)])
        .unwrap();
    assert_eq!(entries(&db), base + 3.0, "three new cached plans");
    // Re-execution hits the cache without growing it; neither do the
    // sys.metrics reads themselves (sys queries bypass the cache).
    db.query("SELECT g FROM t WHERE x > 1").unwrap();
    db.query_with("SELECT g FROM t WHERE x > ?", &[Value::Int(4)])
        .unwrap();
    assert_eq!(entries(&db), base + 3.0, "hits must not add entries");

    // With the cache disabled the gauge stays at zero.
    let off = seeded_db(EngineConfig::default().with_plan_cache(false), 8);
    off.query("SELECT g FROM t WHERE x > 1").unwrap();
    assert_eq!(entries(&off), 0.0);
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE: worker counts and serial/parallel row equivalence
// ---------------------------------------------------------------------

/// Extract `(operator label, rows_in, rows_out)` per line, dropping timings
/// and worker counts so serial and parallel reports can be compared.
fn op_rows(report: &str) -> Vec<(String, String, String)> {
    report
        .lines()
        .filter_map(|line| {
            let (label, stats) = line.split_once(" (rows_in=")?;
            let mut parts = stats.split_whitespace();
            let rows_in = parts.next().unwrap_or("").to_string();
            let rows_out = parts
                .next()
                .unwrap_or("")
                .trim_start_matches("rows_out=")
                .to_string();
            Some((label.trim_start().to_string(), rows_in, rows_out))
        })
        .collect()
}

#[test]
fn explain_analyze_reports_workers_and_identical_row_counts() {
    let sql = "SELECT g, COUNT(*), SUM(w) FROM t WHERE x >= 0 GROUP BY g ORDER BY g";
    let serial = seeded_db(EngineConfig::default().with_parallelism(1), 600)
        .explain_analyze(sql)
        .unwrap();
    let parallel = seeded_db(EngineConfig::default().with_parallelism(4), 600)
        .explain_analyze(sql)
        .unwrap();

    assert!(
        !serial.contains("workers="),
        "serial plans must not report workers:\n{serial}"
    );
    assert!(
        parallel.contains("workers=4"),
        "600 rows at parallelism 4 must fan out:\n{parallel}"
    );
    assert_eq!(
        op_rows(&serial),
        op_rows(&parallel),
        "per-operator row counts must not depend on parallelism\nserial:\n{serial}\nparallel:\n{parallel}"
    );
}

// ---------------------------------------------------------------------
// WAL counters
// ---------------------------------------------------------------------

#[test]
fn wal_activity_is_visible_in_sys_metrics() {
    let io: Arc<dyn StorageIo> = Arc::new(MemIo::new());
    let db = Database::open_with_io(
        io,
        EngineConfig::default().with_wal_sync(SyncPolicy::Always),
    )
    .unwrap();
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    for i in 0..5 {
        db.execute(&format!("INSERT INTO t VALUES ({i})")).unwrap();
    }
    let metric = |name: &str| -> f64 {
        match db
            .query_scalar(&format!(
                "SELECT value FROM sys.metrics WHERE name = '{name}'"
            ))
            .unwrap()
        {
            Value::Float(f) => f,
            other => panic!("expected float, got {other:?}"),
        }
    };
    assert!(metric("wal.appends") >= 6.0, "DDL + 5 inserts hit the WAL");
    assert!(metric("wal.append_bytes") > 0.0);
    assert!(
        metric("wal.fsyncs") >= 6.0,
        "SyncPolicy::Always fsyncs every batch"
    );
    assert!(metric("wal.bytes") > 0.0);
}

// ---------------------------------------------------------------------
// Overhead bound: telemetry on vs off on the serving hot path
// ---------------------------------------------------------------------

#[test]
fn telemetry_overhead_on_cached_plan_hot_path_is_bounded() {
    // A serving-shaped statement: plan-cache hit + aggregate over a scan.
    // Interleaved min-of-batches keeps the comparison robust to scheduler
    // noise: the minimum over many rounds approximates the true cost. This
    // test binary runs its tests concurrently, so one attempt can still be
    // skewed by a neighbour hogging the CPU — the bound is the *best*
    // attempt, which only requires one reasonably quiet window.
    let sql = "SELECT g, SUM(w) FROM t WHERE x >= 0 GROUP BY g";
    let on = seeded_db(EngineConfig::default(), 2000);
    let off = seeded_db(EngineConfig::default().with_telemetry(false), 2000);
    for _ in 0..5 {
        on.query(sql).unwrap();
        off.query(sql).unwrap();
    }

    let batch = |db: &Database| {
        let started = Instant::now();
        for _ in 0..8 {
            db.query(sql).unwrap();
        }
        started.elapsed()
    };
    let mut best_ratio = f64::MAX;
    for attempt in 0..6 {
        let (mut best_on, mut best_off) = (Duration::MAX, Duration::MAX);
        for _ in 0..20 {
            best_on = best_on.min(batch(&on));
            best_off = best_off.min(batch(&off));
        }
        let ratio = best_on.as_secs_f64() / best_off.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        if best_ratio < 1.05 {
            break;
        }
        eprintln!("attempt {attempt}: ratio {ratio:.3} (on={best_on:?} off={best_off:?})");
    }
    assert!(
        best_ratio < 1.05,
        "telemetry overhead must stay under 5% (best ratio {best_ratio:.3})"
    );
    // Sanity: the instrumented side actually recorded the traffic.
    assert!(on.telemetry().query_log().len() > 150);
    assert_eq!(off.telemetry().query_log().len(), 0);
}

// ---------------------------------------------------------------------
// Per-variant error counters (resource governance)
// ---------------------------------------------------------------------

#[test]
fn error_counters_classify_by_variant() {
    let metric = |db: &Database, name: &str| -> f64 {
        match db
            .query_scalar(&format!(
                "SELECT value FROM sys.metrics WHERE name = '{name}'"
            ))
            .unwrap()
        {
            Value::Float(f) => f,
            other => panic!("expected float, got {other:?}"),
        }
    };

    // errors.timeout: a millisecond-scale deadline kills the cross join but
    // leaves the fast sys.metrics reads below comfortably inside it.
    let db = seeded_db(
        EngineConfig::default().with_statement_timeout(Duration::from_millis(5)),
        1200,
    );
    let err = db
        .query("SELECT COUNT(*) FROM t a, t b WHERE a.x * b.x % 7 = 3")
        .unwrap_err();
    assert!(matches!(err, EngineError::Timeout), "{err:?}");
    assert_eq!(metric(&db, "errors.timeout"), 1.0);
    assert_eq!(metric(&db, "errors.statement"), 0.0);

    // errors.resource (+ mem.budget_aborts): a 4 KiB budget rejects the
    // hash-join build.
    let db = seeded_db(EngineConfig::default().with_memory_budget(4096), 1200);
    let err = db
        .query("SELECT COUNT(*) FROM t a JOIN t b ON a.x = b.x")
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "{err:?}"
    );
    assert_eq!(metric(&db, "errors.resource"), 1.0);
    assert_eq!(metric(&db, "mem.budget_aborts"), 1.0);

    // errors.statement: request defects (here a sema error) fall into the
    // catch-all bucket, not the transient ones.
    let _ = db.query("SELECT nope FROM t").unwrap_err();
    assert_eq!(metric(&db, "errors.statement"), 1.0);
    assert_eq!(metric(&db, "errors.timeout"), 0.0);

    // errors.overloaded tracks admission sheds one-for-one.
    let db = Arc::new(seeded_db(
        EngineConfig::default()
            .with_max_concurrent_statements(1)
            .with_admission_queue_depth(0),
        1200,
    ));
    let db2 = Arc::clone(&db);
    let busy =
        std::thread::spawn(move || db2.query("SELECT COUNT(*) FROM t a, t b WHERE a.x + b.x > 0"));
    let mut shed = 0.0;
    for _ in 0..5_000 {
        match db.query("SELECT 1") {
            Err(EngineError::Overloaded(_)) => {
                shed += 1.0;
                if shed >= 2.0 {
                    break;
                }
            }
            Err(other) => panic!("unexpected error class: {other:?}"),
            Ok(_) => std::thread::sleep(Duration::from_micros(100)),
        }
    }
    busy.join().unwrap().unwrap();
    assert!(shed >= 1.0, "never collided with the busy statement");
    assert_eq!(metric(&db, "errors.overloaded"), shed);
    assert_eq!(metric(&db, "admission.shed"), shed);
}

// ---------------------------------------------------------------------
// Acceptance bound: the admission gate on the serving hot path
// ---------------------------------------------------------------------

#[test]
fn admission_gate_overhead_on_cached_plan_hot_path_is_bounded() {
    // Same min-of-batches shape as the telemetry bound above: the gated
    // engine (uncontended — one caller, many slots) must serve the cached
    // parameterized statement within 5% of the ungated one.
    let sql = "SELECT g, SUM(w) FROM t WHERE x >= ? GROUP BY g";
    let params = [Value::Int(0)];
    let gated = seeded_db(
        EngineConfig::default()
            .with_max_concurrent_statements(8)
            .with_admission_queue_depth(16),
        2000,
    );
    let ungated = seeded_db(EngineConfig::default(), 2000);
    for _ in 0..5 {
        gated.query_with(sql, &params).unwrap();
        ungated.query_with(sql, &params).unwrap();
    }

    let batch = |db: &Database| {
        let started = Instant::now();
        for _ in 0..8 {
            db.query_with(sql, &params).unwrap();
        }
        started.elapsed()
    };
    let mut best_ratio = f64::MAX;
    for attempt in 0..6 {
        let (mut best_gated, mut best_ungated) = (Duration::MAX, Duration::MAX);
        for _ in 0..20 {
            best_gated = best_gated.min(batch(&gated));
            best_ungated = best_ungated.min(batch(&ungated));
        }
        let ratio = best_gated.as_secs_f64() / best_ungated.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        if best_ratio < 1.05 {
            break;
        }
        eprintln!(
            "attempt {attempt}: ratio {ratio:.3} (gated={best_gated:?} ungated={best_ungated:?})"
        );
    }
    assert!(
        best_ratio < 1.05,
        "admission-gate overhead must stay under 5% (best ratio {best_ratio:.3})"
    );
    // Sanity: every statement on the gated side actually took a permit.
    let admitted = gated
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'admission.admitted'")
        .unwrap();
    assert!(
        matches!(admitted, Value::Float(f) if f > 150.0),
        "gate saw the traffic: {admitted:?}"
    );
}
