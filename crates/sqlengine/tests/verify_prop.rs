//! Property test for the static plan verifier's no-false-positive claim:
//! every plan the engine produces for a `check`-passing statement passes
//! all five verifier invariant classes, across the planner configurations
//! that change plan shape — vectorized {on, off} × parallelism {1, 4}.
//!
//! Like `sema_prop.rs`, random statements are decoded from proptest byte
//! programs so shrinking works on a plain `Vec<u8>`.

use proptest::prelude::*;
use sqlengine::{Database, EngineConfig, EngineError};

struct Decoder<'b> {
    bytes: &'b [u8],
    pos: usize,
}

impl Decoder<'_> {
    fn next(&mut self) -> u8 {
        let b = self.bytes.get(self.pos).copied().unwrap_or(0);
        self.pos += 1;
        b
    }

    fn scalar(&mut self) -> String {
        match self.next() % 8 {
            0 => "a".to_string(),
            1 => "b".to_string(),
            2 => "s".to_string(),
            3 => "7".to_string(),
            4 => "1.5".to_string(),
            5 => "'tok1'".to_string(),
            6 => format!("(a + {})", self.next() % 16),
            _ => "NULL".to_string(),
        }
    }

    /// Predicates chosen to steer the planner across its access paths:
    /// primary-index equality, secondary-index equality, IN lists,
    /// vectorized-eligible comparison chains, and residual predicates.
    fn predicate(&mut self) -> String {
        match self.next() % 8 {
            0 => format!("a = {}", self.next() % 32),
            1 => format!("s = 'tok{}'", self.next() % 5),
            2 => format!("a IN ({}, {})", self.next() % 32, self.next() % 32),
            3 => format!("b > {}.25", self.next() % 8),
            4 => format!("a < {} AND b >= 0.0", self.next() % 32),
            5 => format!("s LIKE 'tok%' OR a = {}", self.next() % 32),
            6 => "b IS NULL".to_string(),
            _ => format!("a BETWEEN {} AND {}", self.next() % 16, self.next() % 32),
        }
    }

    fn query(&mut self) -> String {
        match self.next() % 8 {
            0 => format!("SELECT {} FROM t WHERE {}", self.scalar(), self.predicate()),
            1 => format!(
                "SELECT s, COUNT(*), SUM(a) FROM t WHERE {} GROUP BY s",
                self.predicate()
            ),
            2 => format!(
                "SELECT x.a, y.s FROM t x JOIN t y ON x.a = y.a WHERE x.{}",
                self.predicate()
            ),
            3 => format!(
                "SELECT {} FROM t WHERE {} ORDER BY 1 LIMIT {}",
                self.scalar(),
                self.predicate(),
                self.next() % 9
            ),
            4 => format!(
                "SELECT a FROM t WHERE {} UNION ALL SELECT a FROM t WHERE {}",
                self.predicate(),
                self.predicate()
            ),
            5 => format!("SELECT DISTINCT {} FROM t ORDER BY 1", self.scalar()),
            6 => format!(
                "SELECT a, ROW_NUMBER() OVER (PARTITION BY s ORDER BY a) FROM t WHERE {}",
                self.predicate()
            ),
            _ => format!("SELECT {}, {}", self.scalar(), self.scalar()),
        }
    }
}

fn fixture(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (a INTEGER, b REAL, s TEXT, PRIMARY KEY (a))")
        .unwrap();
    db.execute("CREATE INDEX t_s ON t (s)").unwrap();
    let mut rows = Vec::new();
    for i in 0..64i64 {
        rows.push(vec![
            sqlengine::Value::Int(i),
            if i % 11 == 0 {
                sqlengine::Value::Null
            } else {
                sqlengine::Value::Float(i as f64 / 4.0)
            },
            sqlengine::Value::text(format!("tok{}", i % 5)),
        ]);
    }
    db.insert_rows("t", rows).unwrap();
    db
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Every plan for a `check`-passing statement passes the verifier — no
    /// invariant class reports a violation in any planner configuration.
    #[test]
    fn check_passing_statements_verify_cleanly(program in prop::collection::vec(any::<u8>(), 1..48)) {
        let sql = Decoder { bytes: &program, pos: 0 }.query();
        for vectorized in [true, false] {
            for parallelism in [1usize, 4] {
                let db = fixture(
                    EngineConfig::default()
                        .with_vectorized(vectorized)
                        .with_parallelism(parallelism)
                        .with_verify_plans(true),
                );
                if db.check(&sql).is_err() {
                    continue;
                }
                // EXPLAIN (VERIFY): every class reports ok.
                let report = db.query(&format!("EXPLAIN (VERIFY) {sql}"));
                match report {
                    Ok(r) => {
                        for row in &r.rows {
                            prop_assert_eq!(
                                row[1].to_string(),
                                "ok",
                                "verifier violation for {:?} (vectorized={}, par={}): {} — {}",
                                &sql,
                                vectorized,
                                parallelism,
                                &row[0],
                                &row[2]
                            );
                        }
                    }
                    Err(e) => prop_assert!(
                        false,
                        "EXPLAIN (VERIFY) failed for check-passing {:?}: {}",
                        &sql,
                        e
                    ),
                }
                // The executing entry point agrees: no Verify error, twice
                // (fresh plan, then the cached template / memoized path).
                for _ in 0..2 {
                    if let Err(e) = db.query(&sql) {
                        prop_assert!(
                            !matches!(e, EngineError::Verify { .. }),
                            "execution hit a verifier rejection for {:?}: {}",
                            &sql,
                            e
                        );
                    }
                }
                prop_assert_eq!(db.telemetry().verify_violations.get(), 0);
            }
        }
    }
}
