//! Admission control: `EngineConfig::max_concurrent_statements` bounds how
//! many statements run at once, a bounded queue absorbs short bursts, and
//! everything else is shed with the retryable `EngineError::Overloaded`
//! instead of piling up unbounded.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sqlengine::{Database, EngineConfig, EngineError, MemIo, StorageIo, SyncPolicy, Value};

/// A query heavy enough (a few million join pairs) to reliably occupy its
/// admission slot while other threads poke at the gate.
const HEAVY: &str = "SELECT COUNT(*) FROM big a, big b WHERE a.n + b.n > 0";

fn busy_db(config: EngineConfig) -> Arc<Database> {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE big (n INTEGER)").unwrap();
    let values: Vec<String> = (0..1500).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
        .unwrap();
    Arc::new(db)
}

fn metric(db: &Database, name: &str) -> f64 {
    let sql = format!("SELECT value FROM sys.metrics WHERE name = '{name}'");
    match db.query(&sql).unwrap().rows[0][0] {
        Value::Float(v) => v,
        ref other => panic!("expected float metric, got {other:?}"),
    }
}

#[test]
fn overflow_is_shed_while_the_slot_is_busy() {
    let db = busy_db(
        EngineConfig::default()
            .with_max_concurrent_statements(1)
            .with_admission_queue_depth(0),
    );
    let db2 = Arc::clone(&db);
    let busy = std::thread::spawn(move || db2.query(HEAVY).unwrap());

    let mut shed = 0u32;
    let mut ran = 0u32;
    for _ in 0..5_000 {
        match db.query("SELECT 1") {
            Err(EngineError::Overloaded(msg)) => {
                shed += 1;
                assert!(msg.contains("queue is full"), "{msg}");
                if shed >= 3 {
                    break;
                }
            }
            Err(other) => panic!("only Overloaded is acceptable here: {other:?}"),
            Ok(_) => {
                ran += 1;
                std::thread::sleep(Duration::from_micros(100));
            }
        }
    }
    busy.join().unwrap();
    assert!(shed >= 1, "never shed (ran {ran} statements uncontended)");
    assert!(metric(&db, "admission.shed") >= f64::from(shed));
    // After the burst everything runs again.
    db.query("SELECT COUNT(*) FROM big").unwrap();
}

#[test]
fn queued_statements_run_when_a_slot_frees() {
    let db = busy_db(
        EngineConfig::default()
            .with_max_concurrent_statements(1)
            .with_admission_queue_depth(16),
    );
    let db2 = Arc::clone(&db);
    let busy = std::thread::spawn(move || db2.query(HEAVY).unwrap());
    // Give the heavy statement a head start so the short ones queue behind
    // it rather than beating it to the gate.
    std::thread::sleep(Duration::from_millis(30));

    let workers: Vec<_> = (0..4)
        .map(|i| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                db.query_scalar(&format!("SELECT COUNT(*) + {i} FROM big"))
                    .unwrap()
            })
        })
        .collect();
    for (i, w) in workers.into_iter().enumerate() {
        assert_eq!(w.join().unwrap(), Value::Int(1500 + i as i64));
    }
    busy.join().unwrap();
    assert!(metric(&db, "admission.admitted") >= 5.0);
}

#[test]
fn deadline_expiring_in_the_queue_sheds_the_statement() {
    // The slot is held by a statement stuck in a blocking fsync — the one
    // wait an in-flight statement cannot abandon — so a queued statement
    // with a short timeout must be shed rather than admitted late.
    struct SlowSync {
        inner: MemIo,
        slow: AtomicBool,
    }
    impl StorageIo for SlowSync {
        fn read(&self, name: &str) -> sqlengine::Result<Option<Vec<u8>>> {
            self.inner.read(name)
        }
        fn append(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            self.inner.append(name, data)
        }
        fn sync(&self, name: &str) -> sqlengine::Result<()> {
            if self.slow.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(400));
            }
            self.inner.sync(name)
        }
        fn write_atomic(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            self.inner.write_atomic(name, data)
        }
        fn truncate(&self, name: &str, len: u64) -> sqlengine::Result<()> {
            self.inner.truncate(name, len)
        }
        fn size(&self, name: &str) -> sqlengine::Result<u64> {
            self.inner.size(name)
        }
    }

    let io = Arc::new(SlowSync {
        inner: MemIo::new(),
        slow: AtomicBool::new(false),
    });
    let db = Arc::new(
        Database::open_with_io(
            Arc::clone(&io) as Arc<dyn StorageIo>,
            EngineConfig::default()
                .with_wal_sync(SyncPolicy::Always)
                .with_statement_timeout(Duration::from_millis(80))
                .with_max_concurrent_statements(1)
                .with_admission_queue_depth(8),
        )
        .unwrap(),
    );
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    io.slow.store(true, Ordering::SeqCst);
    let db2 = Arc::clone(&db);
    let writer = std::thread::spawn(move || db2.execute("INSERT INTO t VALUES (1)"));
    std::thread::sleep(Duration::from_millis(30));

    // The writer occupies the only slot for ~400 ms; our 80 ms deadline
    // expires while we wait in the admission queue.
    let err = db.query("SELECT 1").unwrap_err();
    assert!(matches!(err, EngineError::Overloaded(_)), "{err:?}");
    assert!(
        err.to_string().contains("deadline expired while queued"),
        "{err}"
    );
    assert!(err.is_retryable());

    io.slow.store(false, Ordering::SeqCst);
    // The writer's fsync eventually completes; its commit was acked.
    writer.join().unwrap().unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(1)
    );
    assert!(metric(&db, "admission.shed") >= 1.0);
    assert!(metric(&db, "admission.queued") >= 1.0);
}

/// Satellite: a statement that panics while holding its admission permit
/// must not wedge the gate — queued and later statements either run or are
/// shed with `Overloaded`, and nothing hangs.
#[test]
fn panicking_writer_does_not_wedge_queued_statements() {
    struct PanicOnce {
        inner: MemIo,
        armed: AtomicBool,
    }
    impl StorageIo for PanicOnce {
        fn read(&self, name: &str) -> sqlengine::Result<Option<Vec<u8>>> {
            self.inner.read(name)
        }
        fn append(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            if self.armed.swap(false, Ordering::SeqCst) {
                panic!("injected panic inside a write");
            }
            self.inner.append(name, data)
        }
        fn sync(&self, name: &str) -> sqlengine::Result<()> {
            self.inner.sync(name)
        }
        fn write_atomic(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            self.inner.write_atomic(name, data)
        }
        fn truncate(&self, name: &str, len: u64) -> sqlengine::Result<()> {
            self.inner.truncate(name, len)
        }
        fn size(&self, name: &str) -> sqlengine::Result<u64> {
            self.inner.size(name)
        }
    }

    let io = Arc::new(PanicOnce {
        inner: MemIo::new(),
        armed: AtomicBool::new(false),
    });
    let db = Arc::new(
        Database::open_with_io(
            Arc::clone(&io) as Arc<dyn StorageIo>,
            EngineConfig::default()
                .with_wal_sync(SyncPolicy::Always)
                .with_max_concurrent_statements(1)
                .with_admission_queue_depth(4),
        )
        .unwrap(),
    );
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    io.armed.store(true, Ordering::SeqCst);
    let db_writer = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            db_writer.execute("INSERT INTO t VALUES (1)")
        }));
    });

    // Concurrent statements racing the panicking writer: every one must
    // terminate — success or an Overloaded shed — never a hang.
    let readers: Vec<_> = (0..4)
        .map(|_| {
            let db = Arc::clone(&db);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    match db.query("SELECT COUNT(*) FROM t") {
                        Ok(_) | Err(EngineError::Overloaded(_)) => {}
                        Err(other) => panic!("unexpected error class: {other:?}"),
                    }
                }
            })
        })
        .collect();
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }

    // The unwound permit was released: the gate still admits, and writes
    // still work.
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t WHERE id = 2")
            .unwrap(),
        Value::Int(1)
    );
}
