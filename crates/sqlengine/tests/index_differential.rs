//! Proptest differential suite for index-aware planning: every query runs on
//! an indexed database (index scans + plan cache on, the default) and on one
//! with both forced off, over random tables and predicates — including NULL
//! keys, `IN` lists, and post-DELETE/UPDATE index states. Results must be
//! identical up to row order (SQL gives no ordering guarantee, and the
//! index-nested-loop join may emit the indexed side's columns first).
//!
//! This mirrors the serial-vs-parallel differential tests in
//! `differential.rs`, with the access path as the varied dimension.

use proptest::prelude::*;
use sqlengine::{Database, EngineConfig, Value};

/// Random content for a unique-keyed table `p (j, k, v)` with PRIMARY KEY
/// (j, k) and a duplicate-friendly table `s (j, t)` whose `j` is nullable and
/// carries a secondary index.
#[derive(Debug, Clone)]
struct Fixture {
    p_rows: Vec<(i64, i64, f64)>,
    s_rows: Vec<(Option<i64>, String)>,
}

fn arb_fixture(max_rows: usize) -> impl Strategy<Value = Fixture> {
    let p = prop::collection::btree_set((0i64..12, 0i64..6), 0..max_rows).prop_map(|keys| {
        keys.into_iter()
            .enumerate()
            .map(|(i, (j, k))| (j, k, i as f64 / 4.0))
            .collect::<Vec<_>>()
    });
    let s = prop::collection::vec(
        (prop::option::weighted(0.85, 0i64..12), 0u32..8),
        0..max_rows,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(j, t)| (j, format!("t{t}")))
            .collect::<Vec<_>>()
    });
    (p, s).prop_map(|(p_rows, s_rows)| Fixture { p_rows, s_rows })
}

fn load(db: &Database, f: &Fixture) {
    db.execute("CREATE TABLE p (j INTEGER, k INTEGER, v REAL, PRIMARY KEY (j, k))")
        .unwrap();
    db.execute("CREATE INDEX p_j ON p (j)").unwrap();
    db.execute("CREATE TABLE s (j INTEGER, t TEXT)").unwrap();
    db.execute("CREATE INDEX s_j ON s (j)").unwrap();
    let rows = f
        .p_rows
        .iter()
        .map(|(j, k, v)| vec![Value::Int(*j), Value::Int(*k), Value::Float(*v)])
        .collect();
    db.insert_rows("p", rows).unwrap();
    let rows = f
        .s_rows
        .iter()
        .map(|(j, t)| vec![j.map_or(Value::Null, Value::Int), Value::text(t.as_str())])
        .collect();
    db.insert_rows("s", rows).unwrap();
}

fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// Queries covering point lookups, IN lists, NULL keys, residual predicates,
/// and joins; `{ja}`/`{jb}`/`{ka}` are filled with random values per case.
fn queries(ja: i64, jb: i64, ka: i64) -> Vec<String> {
    vec![
        format!("SELECT j, k, v FROM p WHERE j = {ja} AND k = {ka}"),
        format!("SELECT j, k, v FROM p WHERE {ja} = j AND k = {ka}"),
        format!("SELECT j, k, v FROM p WHERE j IN ({ja}, {jb}, NULL)"),
        format!("SELECT j, k, v FROM p WHERE j = {ja}"),
        format!("SELECT t FROM s WHERE j = {ja}"),
        format!("SELECT t FROM s WHERE j IN ({ja}, {jb})"),
        "SELECT t FROM s WHERE j = NULL".to_string(),
        "SELECT t FROM s WHERE j IS NULL".to_string(),
        format!("SELECT j, t FROM s WHERE j = {ja} AND t <> 't1'"),
        "SELECT p.j, p.k, p.v, s.t FROM p, s WHERE p.j = s.j".to_string(),
        format!("SELECT p.v, s.t FROM p JOIN s ON p.j = s.j WHERE p.k = {ka}"),
        format!("SELECT s.t, p.v FROM s LEFT JOIN p ON s.j = p.j AND {ka} = p.k"),
        format!("SELECT COUNT(*) AS n, SUM(v) AS sv FROM p WHERE j IN ({ja}, {jb})"),
    ]
}

fn assert_equivalent(
    indexed: &Database,
    full: &Database,
    query: &str,
) -> Result<(), TestCaseError> {
    let a = indexed.query(query).unwrap();
    let b = full.query(query).unwrap();
    prop_assert_eq!(&a.columns, &b.columns, "columns differ for {}", query);
    prop_assert_eq!(
        canonical(a.rows),
        canonical(b.rows),
        "rows differ for {}",
        query
    );
    Ok(())
}

fn no_index_config() -> EngineConfig {
    EngineConfig::default()
        .with_index_scans(false)
        .with_plan_cache(false)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Index-scan plans return exactly the rows full-scan plans do.
    #[test]
    fn index_plans_match_full_scans(
        f in arb_fixture(60),
        ja in -1i64..13,
        jb in 0i64..12,
        ka in 0i64..6,
    ) {
        let indexed = Database::with_config(EngineConfig::default());
        load(&indexed, &f);
        let full = Database::with_config(no_index_config());
        load(&full, &f);
        for q in queries(ja, jb, ka) {
            assert_equivalent(&indexed, &full, &q)?;
        }
    }

    /// Equivalence holds after DELETE and UPDATE reshape the index maps
    /// (incremental maintenance plus the rebuild fallback).
    #[test]
    fn index_plans_match_full_scans_after_dml(
        f in arb_fixture(60),
        ja in 0i64..12,
        jb in 0i64..12,
        ka in 0i64..6,
        bulk in prop::bool::ANY,
    ) {
        let indexed = Database::with_config(EngineConfig::default());
        load(&indexed, &f);
        let full = Database::with_config(no_index_config());
        load(&full, &f);
        for db in [&indexed, &full] {
            db.execute(&format!("DELETE FROM s WHERE j = {ja}")).unwrap();
            db.execute(&format!("UPDATE p SET k = k + 50 WHERE j = {jb}")).unwrap();
            db.execute(&format!("UPDATE s SET j = {jb} WHERE j = {ka}")).unwrap();
            if bulk {
                // Majority delete: exercises the wholesale rebuild fallback.
                db.execute("DELETE FROM p WHERE j >= 3").unwrap();
            }
        }
        for q in queries(ja, jb, ka + 50) {
            assert_equivalent(&indexed, &full, &q)?;
        }
        for q in queries(jb, ja, ka) {
            assert_equivalent(&indexed, &full, &q)?;
        }
    }

    /// Large fixtures cross the index-nested-loop join threshold; the join
    /// result must still match hash-join output.
    #[test]
    fn index_join_matches_hash_join(f in arb_fixture(80), ka in 0i64..6) {
        let indexed = Database::with_config(EngineConfig::default());
        load(&indexed, &f);
        let full = Database::with_config(no_index_config());
        load(&full, &f);
        // A 4-row probe table guarantees a small probe-side estimate.
        for db in [&indexed, &full] {
            db.execute("CREATE TABLE probe (j INTEGER)").unwrap();
            db.execute("INSERT INTO probe VALUES (1), (3), (5), (NULL)").unwrap();
        }
        let join_queries = [
            "SELECT p.j, p.k, p.v FROM p, probe WHERE p.j = probe.j".to_string(),
            "SELECT s.t, probe.j FROM probe JOIN s ON probe.j = s.j".to_string(),
            format!("SELECT probe.j, p.v FROM probe LEFT JOIN p ON probe.j = p.j AND p.k = {ka}"),
        ];
        for q in &join_queries {
            assert_equivalent(&indexed, &full, q)?;
        }
    }

    /// The plan cache never serves stale results across DML.
    #[test]
    fn plan_cache_stays_coherent_across_dml(f in arb_fixture(40), ja in 0i64..12) {
        let cached = Database::with_config(EngineConfig::default());
        load(&cached, &f);
        let uncached = Database::with_config(EngineConfig::default().with_plan_cache(false));
        load(&uncached, &f);
        let q = format!("SELECT COUNT(*) AS n FROM s WHERE j = {ja}");
        for step in 0..3 {
            // Warm the cache, mutate, and re-compare.
            assert_equivalent(&cached, &uncached, &q)?;
            for db in [&cached, &uncached] {
                db.execute(&format!("INSERT INTO s (j, t) VALUES ({ja}, 'x{step}')")).unwrap();
            }
            assert_equivalent(&cached, &uncached, &q)?;
        }
    }
}
