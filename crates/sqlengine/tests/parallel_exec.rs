//! Serial-vs-parallel executor equivalence and `EXPLAIN ANALYZE` tests.
//!
//! Fixtures are generated with a deterministic LCG (no external crates) and
//! are large enough to cross the executor's parallel-path row threshold, so
//! the morsel-parallel operators genuinely run at `parallelism = 4`.

use sqlengine::{Database, EngineConfig, Value};

const ROWS: usize = 600; // well above the executor's parallel threshold

/// Tiny deterministic PRNG so fixtures are identical on every run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn seeded_db(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (g INTEGER, x INTEGER, w REAL, s TEXT)")
        .unwrap();
    db.execute("CREATE TABLE dim (g INTEGER, name TEXT)")
        .unwrap();
    let mut rng = Lcg(0xB0125);
    let mut rows = Vec::with_capacity(ROWS);
    for _ in 0..ROWS {
        let g = (rng.next() % 13) as i64;
        let x = (rng.next() % 1000) as i64 - 500;
        let w = (rng.next() % 10_000) as f64 / 100.0;
        let s = format!("tok{}", rng.next() % 40);
        rows.push(vec![
            Value::Int(g),
            Value::Int(x),
            Value::Float(w),
            Value::text(&s),
        ]);
    }
    db.insert_rows("t", rows).unwrap();
    let mut dim = Vec::new();
    for g in 0..10i64 {
        dim.push(vec![Value::Int(g), Value::text(format!("group-{g}"))]);
    }
    db.insert_rows("dim", dim).unwrap();
    db
}

fn assert_rows_equivalent(query: &str, a: &[Vec<Value>], b: &[Vec<Value>]) {
    assert_eq!(a.len(), b.len(), "row count mismatch for {query}");
    for (i, (ra, rb)) in a.iter().zip(b).enumerate() {
        assert_eq!(ra.len(), rb.len(), "row width mismatch for {query}");
        for (va, vb) in ra.iter().zip(rb) {
            match (va, vb) {
                // Parallel aggregation may combine float partial sums in a
                // different association order; everything else is exact.
                (Value::Float(fa), Value::Float(fb)) => {
                    let tol = 1e-9 * fa.abs().max(fb.abs()).max(1.0);
                    assert!(
                        (fa - fb).abs() <= tol,
                        "float mismatch row {i} for {query}: {fa} vs {fb}"
                    );
                }
                _ => assert_eq!(va, vb, "value mismatch row {i} for {query}"),
            }
        }
    }
}

const QUERIES: &[&str] = &[
    "SELECT g, x, w FROM t WHERE x > 0 ORDER BY g, x, w",
    "SELECT g, COUNT(*) AS n, SUM(x) AS sx, SUM(w) AS sw, MIN(x) AS mn, MAX(x) AS mx, AVG(w) AS aw \
     FROM t GROUP BY g ORDER BY g",
    "SELECT g, COUNT(DISTINCT s) AS ds, SUM(DISTINCT w) AS dw FROM t GROUP BY g ORDER BY g",
    "SELECT t.g, dim.name, COUNT(*) AS n FROM t JOIN dim ON t.g = dim.g \
     GROUP BY t.g, dim.name ORDER BY t.g",
    "SELECT t.g, dim.name FROM t LEFT JOIN dim ON t.g = dim.g WHERE t.x > 400 ORDER BY t.g, t.x",
    "SELECT DISTINCT g, s FROM t ORDER BY g, s",
    "SELECT g, x FROM t ORDER BY x DESC, g LIMIT 17 OFFSET 5",
    "SELECT x + 1, w * 2.0 FROM t WHERE s LIKE 'tok1%' ORDER BY x, w",
    "SELECT COUNT(*), SUM(w) FROM t",
    "SELECT g FROM t WHERE x > 0 UNION ALL SELECT g FROM t WHERE x <= 0",
    // No ORDER BY: parallel DISTINCT must emit the serial executor's exact
    // first-occurrence order.
    "SELECT DISTINCT s FROM t",
    "SELECT g FROM t WHERE x > 0 UNION SELECT g FROM t WHERE x <= 0",
    "WITH big AS (SELECT g, x FROM t WHERE x > 100) \
     SELECT g, COUNT(*) FROM big GROUP BY g ORDER BY g",
    "SELECT g, x, ROW_NUMBER() OVER (PARTITION BY g ORDER BY x DESC) AS rn \
     FROM t ORDER BY g, rn LIMIT 40",
];

#[test]
fn parallel_matches_serial_across_profiles() {
    for base in [
        EngineConfig::profile_a(),
        EngineConfig::profile_b(),
        EngineConfig::profile_c(),
    ] {
        let serial = seeded_db(base);
        let parallel = seeded_db(base.with_parallelism(4));
        for query in QUERIES {
            let a = serial.query(query).unwrap();
            let b = parallel.query(query).unwrap();
            assert_eq!(a.columns, b.columns, "columns mismatch for {query}");
            assert_rows_equivalent(query, &a.rows, &b.rows);
        }
    }
}

#[test]
fn parallel_database_is_reusable_across_queries() {
    // The pool is shared by all queries on the Database; run a burst to make
    // sure worker reuse and job draining hold up.
    let db = seeded_db(EngineConfig::default().with_parallelism(4));
    for _ in 0..10 {
        let r = db
            .query("SELECT g, COUNT(*) FROM t GROUP BY g ORDER BY g")
            .unwrap();
        assert_eq!(r.rows.len(), 13);
    }
}

#[test]
fn explain_analyze_row_counts_match_results() {
    for parallelism in [1usize, 4] {
        let db = seeded_db(EngineConfig::default().with_parallelism(parallelism));
        let query = "SELECT t.g, COUNT(*) AS n, SUM(t.w) AS sw FROM t \
                     JOIN dim ON t.g = dim.g GROUP BY t.g ORDER BY t.g";
        let (result, stats) = db.query_analyzed(query).unwrap();
        // The root operator's output is exactly the result set.
        assert_eq!(
            stats.rows_out,
            result.rows.len(),
            "parallelism={parallelism}"
        );
        // Every operator the plan contains shows up with plausible counts.
        let join = stats.find("HashJoin").expect("join in stats tree");
        assert_eq!(join.rows_in, ROWS + 10, "join consumes both inputs");
        let agg = stats.find("Aggregate").expect("aggregate in stats tree");
        assert_eq!(agg.rows_out, result.rows.len());
        let scan = stats.find("Scan").expect("scan in stats tree");
        assert!(scan.rows_out == ROWS || scan.rows_out == 10);
    }
}

#[test]
fn explain_analyze_statement_renders_tree() {
    let db = seeded_db(EngineConfig::default().with_parallelism(4));
    let r = db
        .query("EXPLAIN ANALYZE SELECT g, COUNT(*) FROM t WHERE x > 0 GROUP BY g ORDER BY g")
        .unwrap();
    assert_eq!(r.columns, vec!["plan".to_string()]);
    let text: Vec<String> = r
        .rows
        .iter()
        .map(|row| row[0].as_str_lossy().unwrap().unwrap().into_owned())
        .collect();
    let joined = text.join("\n");
    assert!(joined.contains("Sort"), "missing Sort in:\n{joined}");
    assert!(
        joined.contains("Aggregate"),
        "missing Aggregate in:\n{joined}"
    );
    assert!(joined.contains("Filter"), "missing Filter in:\n{joined}");
    assert!(joined.contains("Scan"), "missing Scan in:\n{joined}");
    assert!(joined.contains("rows_out="), "missing stats in:\n{joined}");
    // Plain EXPLAIN still renders the static plan (no stats annotations).
    let plain = db.query("EXPLAIN SELECT g FROM t ORDER BY g").unwrap();
    let plain_text = plain.rows[0][0]
        .as_str_lossy()
        .unwrap()
        .unwrap()
        .into_owned();
    assert!(!plain_text.contains("rows_out="));
}

#[test]
fn order_by_limit_takes_top_k_and_matches_full_sort() {
    let db = seeded_db(EngineConfig::default());
    let full = db.query("SELECT g, x FROM t ORDER BY x, g").unwrap();
    for (limit, offset) in [(1usize, 0usize), (10, 0), (10, 7), (50, 580), (700, 0)] {
        let q = format!("SELECT g, x FROM t ORDER BY x, g LIMIT {limit} OFFSET {offset}");
        let r = db.query(&q).unwrap();
        let want: Vec<_> = full.rows.iter().skip(offset).take(limit).cloned().collect();
        assert_eq!(r.rows, want, "top-k window mismatch for {q}");
    }
    // The executed stats tree shows the top-k sort under the limit.
    let (_, stats) = db
        .query_analyzed("SELECT g, x FROM t ORDER BY x, g LIMIT 10")
        .unwrap();
    let sort = stats.find("Sort").expect("sort in stats tree");
    assert!(sort.label.contains("top-k"), "label was {}", sort.label);
    assert_eq!(sort.rows_out, 10);
}

#[test]
fn insert_select_reads_pre_statement_snapshot() {
    // `INSERT INTO t SELECT .. FROM t` must read the table as it was before
    // the statement: the inserted rows cannot feed back into the source scan
    // (which would double output or loop forever).
    let db = seeded_db(EngineConfig::default().with_parallelism(4));
    let before = db.table_rows("t").unwrap();
    let n = db
        .execute("INSERT INTO t SELECT g, x + 1000, w, s FROM t")
        .unwrap()
        .affected();
    assert_eq!(n, before);
    assert_eq!(db.table_rows("t").unwrap(), 2 * before);
    // Run it again under a BEGIN/ROLLBACK to confirm the snapshot semantics
    // compose with transactions.
    db.execute("BEGIN").unwrap();
    let n2 = db
        .execute("INSERT INTO t SELECT g, x, w, s FROM t WHERE x > 1000")
        .unwrap()
        .affected();
    assert!(n2 > 0);
    db.execute("ROLLBACK").unwrap();
    assert_eq!(db.table_rows("t").unwrap(), 2 * before);
}

#[test]
fn parallelism_one_config_uses_no_pool_path() {
    // parallelism = 1 must behave exactly like the default profile — this is
    // the byte-identical serial guarantee the benchmark profiles rely on.
    let a = seeded_db(EngineConfig::profile_a());
    let b = seeded_db(EngineConfig::profile_a().with_parallelism(1));
    for query in QUERIES {
        assert_eq!(a.query(query).unwrap(), b.query(query).unwrap(), "{query}");
    }
}
