//! Differential tests for the parameterized plan cache.
//!
//! A statement containing `?` placeholders is planned once into a template
//! (parameters kept symbolic) and re-executed by binding fresh values into
//! the cached plan. Every behavior here is checked against an engine with
//! the plan cache disabled, which replans from scratch on each call — the
//! two must agree across parameter values, NULL parameters, and catalog
//! changes between executions.

use sqlengine::{Database, EngineConfig, Value};

fn seeded(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (n INTEGER, s TEXT, w REAL, PRIMARY KEY (n))")
        .unwrap();
    let mut rows = Vec::with_capacity(200);
    for i in 0..200i64 {
        rows.push(vec![
            Value::Int(i),
            Value::text(format!("tok{}", i % 17)),
            Value::Float(i as f64 / 4.0),
        ]);
    }
    db.insert_rows("t", rows).unwrap();
    db
}

fn pair() -> (Database, Database) {
    (
        seeded(EngineConfig::default()),
        seeded(EngineConfig::default().with_plan_cache(false)),
    )
}

#[test]
fn cached_templates_match_cache_off_across_param_values() {
    let (cached, fresh) = pair();
    let cases: Vec<(&str, Vec<Vec<Value>>)> = vec![
        (
            "SELECT n, s FROM t WHERE n = ?",
            vec![
                vec![Value::Int(3)],
                vec![Value::Int(150)],
                vec![Value::Int(-1)],
            ],
        ),
        (
            // Equality keys over the primary index: each binding produces a
            // different key set for the same cached IndexScan template.
            "SELECT n FROM t WHERE n IN (?, ?) ORDER BY n",
            vec![
                vec![Value::Int(1), Value::Int(9)],
                vec![Value::Int(9), Value::Int(9)],
                vec![Value::Int(500), Value::Int(2)],
            ],
        ),
        (
            "SELECT s, COUNT(*) FROM t WHERE w > ? GROUP BY s ORDER BY s",
            vec![vec![Value::Float(10.0)], vec![Value::Float(40.0)]],
        ),
        (
            "SELECT n FROM t WHERE s = ? AND n > ? ORDER BY n",
            vec![
                vec![Value::text("tok3"), Value::Int(50)],
                vec![Value::text("tok9"), Value::Int(0)],
            ],
        ),
    ];
    for (sql, bindings) in &cases {
        for params in bindings {
            let a = cached.query_with(sql, params).unwrap();
            let b = fresh.query_with(sql, params).unwrap();
            assert_eq!(a, b, "{sql} with {params:?}");
        }
    }
    let (hits, _) = cached.plan_cache_stats();
    // 4 templates, 10 executions: everything after each first plan is a hit.
    assert_eq!(hits, 6, "re-executions must be served from the cache");
    assert_eq!(
        fresh.plan_cache_stats(),
        (0, 0),
        "cache-off engine never caches"
    );
}

#[test]
fn null_params_behave_like_inline_nulls() {
    let (cached, fresh) = pair();
    let cases: Vec<(&str, Vec<Vec<Value>>)> = vec![
        (
            // NULL never equals anything — including through a bound param.
            "SELECT COUNT(*) FROM t WHERE s = ?",
            vec![vec![Value::text("tok3")], vec![Value::Null]],
        ),
        (
            // A NULL inside an index-key tuple drops that probe, not the row.
            "SELECT n FROM t WHERE n IN (?, ?) ORDER BY n",
            vec![
                vec![Value::Null, Value::Int(3)],
                vec![Value::Null, Value::Null],
            ],
        ),
        (
            "SELECT n FROM t WHERE w < ? ORDER BY n LIMIT 4",
            vec![vec![Value::Null], vec![Value::Float(1.0)]],
        ),
    ];
    for (sql, bindings) in &cases {
        for params in bindings {
            // Run the cached engine twice so the second call exercises the
            // template-binding hit path with the NULL bound in.
            let a1 = cached.query_with(sql, params).unwrap();
            let a2 = cached.query_with(sql, params).unwrap();
            let b = fresh.query_with(sql, params).unwrap();
            assert_eq!(a1, b, "{sql} with {params:?}");
            assert_eq!(a2, b, "{sql} with {params:?} (cache hit)");
        }
    }
}

#[test]
fn catalog_changes_invalidate_cached_templates() {
    let db = seeded(EngineConfig::default());
    let count = "SELECT COUNT(*) FROM t WHERE n >= ?";
    let run = |db: &Database| db.query_with(count, &[Value::Int(0)]).unwrap().rows[0][0].clone();
    assert_eq!(run(&db), Value::Int(200));

    // DML between executions: the cached template bakes in a row snapshot,
    // so the version bump must force a replan that sees the new row.
    db.execute("INSERT INTO t (n, s, w) VALUES (1000, 'fresh', 0.0)")
        .unwrap();
    assert_eq!(run(&db), Value::Int(201));

    // DDL: creating an index changes the best plan for the template; the
    // invalidated entry must be replanned, and results stay correct.
    let probe = "SELECT n FROM t WHERE s = ? ORDER BY n";
    let r = db.query_with(probe, &[Value::text("fresh")]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1000)]]);
    db.execute("CREATE INDEX t_s ON t (s)").unwrap();
    let r = db.query_with(probe, &[Value::text("fresh")]).unwrap();
    assert_eq!(r.rows, vec![vec![Value::Int(1000)]]);

    // DROP + CREATE — the statement shape model deployment uses — must not
    // serve plans captured against the old table.
    db.execute("DROP TABLE t").unwrap();
    db.execute("CREATE TABLE t (n INTEGER, s TEXT, w REAL)")
        .unwrap();
    assert_eq!(run(&db), Value::Int(0));
}

#[test]
fn limit_params_fall_back_to_replanning() {
    let db = seeded(EngineConfig::default());
    db.reset_plan_cache_stats();
    for k in [3i64, 7, 11] {
        let r = db
            .query_with("SELECT n FROM t ORDER BY n LIMIT ?", &[Value::Int(k)])
            .unwrap();
        assert_eq!(r.rows.len(), k as usize);
        assert_eq!(r.rows[0][0], Value::Int(0));
    }
    let (hits, _) = db.plan_cache_stats();
    assert_eq!(
        hits, 0,
        "LIMIT ? is resolved at plan time and must never serve a cached template"
    );
}

#[test]
fn prepared_execute_records_cache_activity_like_direct_execution() {
    let direct = seeded(EngineConfig::default());
    let prepped = seeded(EngineConfig::default());
    let sql = "SELECT n FROM t WHERE n = ?";

    for i in 0..3i64 {
        direct.query_with(sql, &[Value::Int(i)]).unwrap();
    }
    let stmt = prepped.prepare(sql).unwrap();
    for i in 0..3i64 {
        assert_eq!(
            stmt.query(&[Value::Int(i)]).unwrap(),
            direct.query_with(sql, &[Value::Int(i)]).unwrap()
        );
    }

    // Same hit/miss accounting through both entry points.
    let (dh, dm) = direct.plan_cache_stats();
    let (ph, pm) = prepped.plan_cache_stats();
    assert_eq!(
        (dh - 3, dm),
        (ph, pm),
        "prepared path must count like direct"
    );

    // And identical per-statement telemetry: the query log's cache_hit flag
    // follows the same miss-then-hits pattern for both.
    let flags = |db: &Database| -> Vec<bool> {
        db.telemetry()
            .query_log()
            .iter()
            .filter(|e| e.sql == sql)
            .map(|e| e.cache_hit)
            .collect()
    };
    assert_eq!(flags(&prepped), vec![false, true, true]);
    assert_eq!(flags(&direct)[..3], [false, true, true]);
}

// ---------------------------------------------------------------------
// Cache-key normalization
// ---------------------------------------------------------------------

/// Differently formatted spellings of one statement share a single cached
/// template: the cache key collapses whitespace runs and lowercases
/// keywords (identifiers and string literals stay verbatim). Checked
/// differentially — both engines return identical rows, while only the
/// normalizing cache shows the hit-count parity.
#[test]
fn formatting_variants_share_one_cached_template() {
    let (cached, fresh) = pair();
    cached.reset_plan_cache_stats(); // drop the seeding DDL's miss
    let variants = [
        "SELECT n, s FROM t WHERE n = ? ORDER BY n",
        "select n, s from t where n = ? order by n",
        "SELECT   n,   s\n\tFROM t\n\tWHERE n = ?\n\tORDER BY n",
        "Select n, s From t Where n = ?  Order  By  n",
    ];
    for (i, sql) in variants.iter().enumerate() {
        let a = cached.query_with(sql, &[Value::Int(42)]).unwrap();
        let b = fresh.query_with(sql, &[Value::Int(42)]).unwrap();
        assert_eq!(a, b, "variant {i}");
    }
    let (hits, misses) = cached.plan_cache_stats();
    assert_eq!(
        (hits, misses),
        (3, 1),
        "one template planned, every reformatted spelling served from it"
    );
}

/// Normalization must not conflate statements that differ meaningfully:
/// case inside string literals changes results, and identifier case changes
/// output column names.
#[test]
fn normalization_keeps_semantic_differences_apart() {
    let (cached, _) = pair();
    cached.reset_plan_cache_stats(); // drop the seeding DDL's miss
    let lower = cached
        .query("SELECT COUNT(*) FROM t WHERE s = 'tok3'")
        .unwrap();
    let upper = cached
        .query("SELECT COUNT(*) FROM t WHERE s = 'TOK3'")
        .unwrap();
    assert_ne!(
        lower.rows[0][0], upper.rows[0][0],
        "literal case must stay significant"
    );
    let (hits, misses) = cached.plan_cache_stats();
    assert_eq!(
        (hits, misses),
        (0, 2),
        "distinct literals, distinct entries"
    );

    // Identifier case survives into output column names even though the
    // statements normalize to different keys only via the identifier.
    let named = cached.query("SELECT n AS Total FROM t LIMIT 1").unwrap();
    assert_eq!(named.columns, vec!["Total"]);
}
