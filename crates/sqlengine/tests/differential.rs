//! Differential and property tests: random workloads executed by the engine
//! and checked against naive in-process reference computations, under every
//! engine profile. Plus concurrency smoke tests (readers vs. writers).

use proptest::prelude::*;
use sqlengine::{Database, EngineConfig, Value};

/// A small random table of (g, x, w) rows.
#[derive(Debug, Clone)]
struct Fixture {
    rows: Vec<(i64, i64, f64)>,
}

fn arb_fixture() -> impl Strategy<Value = Fixture> {
    prop::collection::vec((0i64..6, -20i64..20, 0u32..50), 0..60).prop_map(|v| Fixture {
        rows: v
            .into_iter()
            .map(|(g, x, w)| (g, x, w as f64 / 4.0))
            .collect(),
    })
}

fn load(db: &Database, f: &Fixture) {
    db.execute("CREATE TABLE t (g INTEGER, x INTEGER, w REAL)")
        .unwrap();
    let rows = f
        .rows
        .iter()
        .map(|(g, x, w)| vec![Value::Int(*g), Value::Int(*x), Value::Float(*w)])
        .collect();
    db.insert_rows("t", rows).unwrap();
}

fn all_profiles() -> [EngineConfig; 3] {
    [
        EngineConfig::profile_a(),
        EngineConfig::profile_b(),
        EngineConfig::profile_c(),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// GROUP BY SUM/COUNT/MIN/MAX agree with a hand-rolled reference.
    #[test]
    fn aggregation_matches_reference(f in arb_fixture()) {
        // Reference.
        let mut expect: std::collections::BTreeMap<i64, (f64, i64, Option<i64>, Option<i64>)> =
            Default::default();
        for (g, x, w) in &f.rows {
            let e = expect.entry(*g).or_insert((0.0, 0, None, None));
            e.0 += w;
            e.1 += 1;
            e.2 = Some(e.2.map_or(*x, |m: i64| m.min(*x)));
            e.3 = Some(e.3.map_or(*x, |m: i64| m.max(*x)));
        }
        for config in all_profiles() {
            let db = Database::with_config(config);
            load(&db, &f);
            let r = db
                .query("SELECT g, SUM(w), COUNT(*), MIN(x), MAX(x) FROM t GROUP BY g ORDER BY g")
                .unwrap();
            prop_assert_eq!(r.rows.len(), expect.len());
            for row in &r.rows {
                let g = row[0].as_i64().unwrap().unwrap();
                let (sum, count, min, max) = expect[&g];
                let got_sum = row[1].as_f64().unwrap().unwrap();
                prop_assert!((got_sum - sum).abs() < 1e-9);
                prop_assert_eq!(row[2].as_i64().unwrap().unwrap(), count);
                prop_assert_eq!(row[3].as_i64().unwrap(), min);
                prop_assert_eq!(row[4].as_i64().unwrap(), max);
            }
        }
    }

    /// Self equi-join row count equals the reference pair count, for every
    /// join algorithm.
    #[test]
    fn join_cardinality_matches_reference(f in arb_fixture()) {
        let mut by_g: std::collections::HashMap<i64, usize> = Default::default();
        for (g, _, _) in &f.rows {
            *by_g.entry(*g).or_insert(0) += 1;
        }
        let expected: usize = by_g.values().map(|c| c * c).sum();
        for config in all_profiles() {
            let db = Database::with_config(config);
            load(&db, &f);
            let r = db
                .query("SELECT COUNT(*) FROM t AS a, t AS b WHERE a.g = b.g")
                .unwrap();
            prop_assert_eq!(
                r.rows[0][0].as_i64().unwrap().unwrap() as usize,
                expected,
                "config {:?}", config
            );
        }
    }

    /// WHERE filtering equals reference filtering.
    #[test]
    fn filter_matches_reference(f in arb_fixture(), threshold in -20i64..20) {
        let expected = f.rows.iter().filter(|(_, x, _)| x % 7 >= threshold % 7).count();
        let db = Database::new();
        load(&db, &f);
        let r = db
            .query_with(
                "SELECT COUNT(*) FROM t WHERE x % 7 >= ? % 7",
                &[Value::Int(threshold)],
            )
            .unwrap();
        prop_assert_eq!(r.rows[0][0].as_i64().unwrap().unwrap() as usize, expected);
    }

    /// ORDER BY returns rows in nondecreasing key order and preserves the
    /// multiset of values.
    #[test]
    fn sort_is_correct(f in arb_fixture()) {
        let db = Database::new();
        load(&db, &f);
        let r = db.query("SELECT x FROM t ORDER BY x").unwrap();
        let got: Vec<i64> = r
            .rows
            .iter()
            .map(|row| row[0].as_i64().unwrap().unwrap())
            .collect();
        let mut expected: Vec<i64> = f.rows.iter().map(|(_, x, _)| *x).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    /// UNION deduplicates to exactly the distinct value set.
    #[test]
    fn union_distinct_is_set_semantics(f in arb_fixture()) {
        let db = Database::new();
        load(&db, &f);
        let r = db
            .query("SELECT x FROM t UNION SELECT x FROM t")
            .unwrap();
        let distinct: std::collections::BTreeSet<i64> =
            f.rows.iter().map(|(_, x, _)| *x).collect();
        prop_assert_eq!(r.rows.len(), distinct.len());
    }

    /// The upsert accumulator is equivalent to GROUP BY SUM.
    #[test]
    fn upsert_accumulation_equals_group_by(f in arb_fixture()) {
        let db = Database::new();
        load(&db, &f);
        db.execute("CREATE TABLE acc (g INTEGER PRIMARY KEY, w REAL)").unwrap();
        // Row-at-a-time upserts...
        for (g, _, w) in &f.rows {
            db.execute(&format!(
                "INSERT INTO acc VALUES ({g}, {w}) \
                 ON CONFLICT (g) DO UPDATE SET w = acc.w + excluded.w"
            ))
            .unwrap();
        }
        // ...must equal the set-oriented aggregate.
        let r = db
            .query(
                "SELECT COUNT(*) FROM acc, (SELECT g, SUM(w) AS w FROM t GROUP BY g) AS agg \
                 WHERE acc.g = agg.g AND ABS(acc.w - agg.w) < 0.000000001",
            )
            .unwrap();
        let matching = r.rows[0][0].as_i64().unwrap().unwrap() as usize;
        let groups: std::collections::BTreeSet<i64> = f.rows.iter().map(|(g, _, _)| *g).collect();
        prop_assert_eq!(matching, groups.len());
        prop_assert_eq!(db.table_rows("acc").unwrap(), groups.len());
    }

    /// ROW_NUMBER per partition forms the contiguous sequence 1..=size.
    #[test]
    fn row_number_is_a_permutation(f in arb_fixture()) {
        let db = Database::new();
        load(&db, &f);
        let r = db
            .query(
                "SELECT g, ROW_NUMBER() OVER (PARTITION BY g ORDER BY x, w) AS rn FROM t",
            )
            .unwrap();
        let mut per_group: std::collections::HashMap<i64, Vec<i64>> = Default::default();
        for row in &r.rows {
            per_group
                .entry(row[0].as_i64().unwrap().unwrap())
                .or_default()
                .push(row[1].as_i64().unwrap().unwrap());
        }
        for (_, mut rns) in per_group {
            rns.sort_unstable();
            let expect: Vec<i64> = (1..=rns.len() as i64).collect();
            prop_assert_eq!(rns, expect);
        }
    }
}

/// A larger random table, sized to cross the executor's parallel-path row
/// threshold so `parallelism = 4` genuinely exercises the morsel operators.
fn arb_big_fixture() -> impl Strategy<Value = Fixture> {
    prop::collection::vec((0i64..8, -50i64..50, 0u32..100), 150..400).prop_map(|v| Fixture {
        rows: v
            .into_iter()
            // w is a multiple of 0.25 (a dyadic rational), so float sums are
            // exact and serial/parallel results compare exactly.
            .map(|(g, x, w)| (g, x, w as f64 / 4.0))
            .collect(),
    })
}

/// Queries covering every data-parallel operator family.
const PARALLEL_QUERIES: &[&str] = &[
    "SELECT g, x, w FROM t WHERE x > 0",
    "SELECT x + g, w * 2.0 FROM t WHERE x % 3 = 0",
    "SELECT g, COUNT(*), SUM(x), SUM(w), MIN(x), MAX(x), AVG(w) FROM t GROUP BY g",
    "SELECT g, COUNT(DISTINCT x), SUM(DISTINCT w) FROM t GROUP BY g",
    "SELECT COUNT(*), SUM(w) FROM t",
    "SELECT a.g, a.x, b.x FROM t AS a JOIN t AS b ON a.g = b.g AND a.x = b.x",
    "SELECT a.g, a.x, b.g FROM t AS a LEFT JOIN t AS b ON a.x = b.g",
    "SELECT DISTINCT g, x FROM t",
    "SELECT g, x FROM t ORDER BY x, g, w LIMIT 25 OFFSET 3",
    "SELECT g FROM t WHERE x > 0 UNION ALL SELECT g FROM t WHERE x <= 0",
];

/// Sort rows into a canonical order (NULLs first, then by value) so result
/// sets can be compared independent of operator output order.
fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every query produces identical rows at parallelism 1 and 4, for every
    /// engine profile (after canonical ordering).
    #[test]
    fn parallel_execution_matches_serial(f in arb_big_fixture()) {
        for config in all_profiles() {
            let serial = Database::with_config(config);
            load(&serial, &f);
            let parallel = Database::with_config(config.with_parallelism(4));
            load(&parallel, &f);
            for query in PARALLEL_QUERIES {
                let a = serial.query(query).unwrap();
                let b = parallel.query(query).unwrap();
                prop_assert_eq!(&a.columns, &b.columns, "columns differ for {}", query);
                prop_assert_eq!(
                    canonical(a.rows),
                    canonical(b.rows),
                    "rows differ for {} under {:?}",
                    query,
                    config
                );
            }
        }
    }

    /// `EXPLAIN ANALYZE` row accounting matches the actual result set at both
    /// parallelism levels.
    #[test]
    fn explain_analyze_counts_match_results(f in arb_big_fixture()) {
        for parallelism in [1usize, 4] {
            let db = Database::with_config(
                EngineConfig::default().with_parallelism(parallelism),
            );
            load(&db, &f);
            for query in PARALLEL_QUERIES {
                let (result, stats) = db.query_analyzed(query).unwrap();
                prop_assert_eq!(
                    stats.rows_out,
                    result.rows.len(),
                    "root rows_out mismatch for {} at parallelism {}",
                    query,
                    parallelism
                );
            }
        }
    }
}

#[test]
fn concurrent_readers_see_consistent_snapshots() {
    use std::sync::Arc;
    let db = Arc::new(Database::new());
    db.execute("CREATE TABLE t (x INTEGER, y INTEGER)").unwrap();
    // Writer keeps inserting row pairs whose sum is always zero.
    let writer_db = Arc::clone(&db);
    let writer = std::thread::spawn(move || {
        for i in 0..300i64 {
            writer_db
                .execute(&format!("INSERT INTO t VALUES ({i}, {})", -i))
                .unwrap();
        }
    });
    // Readers check the invariant SUM(x + y) = 0 on whatever snapshot they
    // get (never a torn row).
    let mut readers = Vec::new();
    for _ in 0..4 {
        let reader_db = Arc::clone(&db);
        readers.push(std::thread::spawn(move || {
            for _ in 0..50 {
                let r = reader_db
                    .query("SELECT COALESCE(SUM(x + y), 0) FROM t")
                    .unwrap();
                assert_eq!(r.rows[0][0].as_f64().unwrap().unwrap_or(0.0), 0.0);
            }
        }));
    }
    writer.join().unwrap();
    for r in readers {
        r.join().unwrap();
    }
    assert_eq!(db.table_rows("t").unwrap(), 300);
}
