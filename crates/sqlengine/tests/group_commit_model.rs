//! Deterministic-interleaving model of the WAL group-commit protocol
//! (`Wal::write_batch` enqueue → `Wal::wait_durable` leader election →
//! `Wal::flush_group` steal/fsync/publish, see `src/wal/mod.rs`).
//!
//! Each model thread commits one frame and the checker enumerates *every*
//! schedule (DFS over the reachable state space, memoized) for 2–4 threads
//! with 0 or 1 injected fsync failures, asserting after every transition:
//!
//! * **ack soundness** — a thread observing `durable_before > seq` (the
//!   ack fast path) finds its frame fsync-covered in every schedule;
//! * **publish order** — `durable_before` never runs ahead of the synced
//!   prefix, including through the empty-queue fast path (which is sound
//!   only because `flush_lock` serializes flushes);
//! * **queue integrity** — the queue stays in strictly increasing sequence
//!   order through steals and failure requeues (a gap or reorder would make
//!   recovery silently discard every later commit).
//!
//! The protocol steps are modeled 1:1 with the implementation: enqueue and
//! steal are single atomic steps (they run under the `inner` lock), while
//! fsync and the `durable_before` store are separate steps (IO runs with
//! only `flush_lock` held, and the store happens after re-locking `inner`).

use std::collections::{BTreeSet, HashSet};

/// Where one committing thread is inside `wait_durable`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
enum Th {
    /// Before `write_batch`: no sequence number yet.
    Start,
    /// In the `wait_durable` loop, not holding `flush_lock`.
    Waiting,
    /// Holding `flush_lock`, about to re-check / steal the queue.
    Holding,
    /// Stole the queue; the append + fsync is in flight.
    Syncing,
    /// fsync succeeded; about to store `durable_before = stolen_hi`.
    Publishing,
    /// Acknowledged durable.
    Done,
    /// `flush_group` returned the injected fsync error to this leader.
    DoneErr,
}

impl Th {
    fn terminal(self) -> bool {
        matches!(self, Th::Done | Th::DoneErr)
    }
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct State {
    next_seq: u64,
    durable_before: u64,
    /// Queued-not-yet-synced frames, in sequence order.
    queue: Vec<u64>,
    /// Frames covered by a successful fsync.
    synced: BTreeSet<u64>,
    /// `flush_lock` holder.
    lock: Option<usize>,
    /// Frames stolen by the in-flight flush, with the `next_seq` observed
    /// at steal time (what a successful flush publishes).
    stolen: Vec<u64>,
    stolen_hi: u64,
    threads: Vec<Th>,
    /// Sequence number each thread's frame got in `write_batch`.
    seqs: Vec<Option<u64>>,
    /// Remaining injectable fsync failures.
    fail_budget: u32,
}

impl State {
    fn initial(threads: usize, fail_budget: u32) -> State {
        State {
            next_seq: 0,
            durable_before: 0,
            queue: Vec::new(),
            synced: BTreeSet::new(),
            lock: None,
            stolen: Vec::new(),
            stolen_hi: 0,
            threads: vec![Th::Start; threads],
            seqs: vec![None; threads],
            fail_budget,
        }
    }

    /// Safety invariants that must hold in *every* reachable state.
    fn check(&self) {
        assert!(
            self.durable_before <= self.next_seq,
            "durable_before ran ahead of assignment"
        );
        for s in 0..self.durable_before {
            assert!(
                self.synced.contains(&s),
                "frame {s} is claimed durable (durable_before = {}) but no fsync covered it",
                self.durable_before
            );
        }
        assert!(
            self.queue.windows(2).all(|w| w[0] < w[1]),
            "queue out of sequence order: {:?} — recovery would treat the gap as log end",
            self.queue
        );
        for s in &self.queue {
            assert!(!self.synced.contains(s), "synced frame {s} still queued");
        }
    }

    /// Transitions available to thread `t` (empty = blocked). fsync is the
    /// only nondeterministic step: it yields two successors while the fail
    /// budget lasts.
    fn step(&self, t: usize) -> Vec<State> {
        let seq = self.seqs[t];
        match self.threads[t] {
            // write_batch: seq assignment + enqueue are one atomic step
            // (both happen under the `inner` lock, with the catalog write
            // lock keeping queue order equal to commit order).
            Th::Start => {
                let mut n = self.clone();
                let s = n.next_seq;
                n.next_seq += 1;
                n.queue.push(s);
                n.seqs[t] = Some(s);
                n.threads[t] = Th::Waiting;
                vec![n]
            }
            Th::Waiting => {
                let seq = seq.unwrap();
                if self.durable_before > seq {
                    // The ack fast path. THE invariant: an acknowledged
                    // frame must be fsync-covered in every schedule.
                    assert!(
                        self.synced.contains(&seq),
                        "thread {t} acked frame {seq} without fsync coverage \
                         (durable_before = {}, synced = {:?})",
                        self.durable_before,
                        self.synced
                    );
                    let mut n = self.clone();
                    n.threads[t] = Th::Done;
                    vec![n]
                } else if self.lock.is_none() {
                    let mut n = self.clone();
                    n.lock = Some(t);
                    n.threads[t] = Th::Holding;
                    vec![n]
                } else {
                    Vec::new() // blocked on flush_lock
                }
            }
            Th::Holding => {
                let seq = seq.unwrap();
                let mut n = self.clone();
                if self.durable_before > seq {
                    // Leader re-check: someone else's flush covered us.
                    n.lock = None;
                    n.threads[t] = Th::Waiting;
                } else if self.queue.is_empty() {
                    // Empty-queue fast path: every assigned frame was stolen
                    // and (because a failed flush requeues) synced, so
                    // publishing next_seq is sound. `check()` on the
                    // successor proves it for this schedule.
                    n.durable_before = n.next_seq;
                    n.lock = None;
                    n.threads[t] = Th::Waiting;
                } else {
                    // Steal under the inner lock: queue + the current
                    // next_seq, which a successful flush publishes.
                    n.stolen = std::mem::take(&mut n.queue);
                    n.stolen_hi = n.next_seq;
                    n.threads[t] = Th::Syncing;
                }
                vec![n]
            }
            Th::Syncing => {
                let mut out = Vec::new();
                // Success: the stolen frames become durable. Publishing
                // durable_before is a *separate* step (the store happens
                // after re-locking `inner`).
                let mut ok = self.clone();
                ok.synced.extend(ok.stolen.drain(..));
                ok.threads[t] = Th::Publishing;
                out.push(ok);
                if self.fail_budget > 0 {
                    // Failure: truncate the torn bytes and requeue the
                    // group at the FRONT, keeping sequence order; the
                    // leader's wait_durable returns the error.
                    let mut bad = self.clone();
                    bad.fail_budget -= 1;
                    let mut requeued = std::mem::take(&mut bad.stolen);
                    requeued.append(&mut bad.queue);
                    bad.queue = requeued;
                    bad.stolen_hi = 0;
                    bad.lock = None;
                    bad.threads[t] = Th::DoneErr;
                    out.push(bad);
                }
                out
            }
            Th::Publishing => {
                let mut n = self.clone();
                n.durable_before = n.stolen_hi;
                n.stolen_hi = 0;
                n.lock = None;
                n.threads[t] = Th::Waiting;
                vec![n]
            }
            Th::Done | Th::DoneErr => Vec::new(),
        }
    }
}

struct Explorer {
    visited: HashSet<State>,
    terminals: u64,
}

impl Explorer {
    fn explore(&mut self, state: State) {
        state.check();
        if !self.visited.insert(state.clone()) {
            return;
        }
        let mut progressed = false;
        for t in 0..state.threads.len() {
            for succ in state.step(t) {
                progressed = true;
                self.explore(succ);
            }
        }
        if !progressed {
            // No enabled transition anywhere: the protocol must have
            // terminated, not deadlocked.
            assert!(
                state.threads.iter().all(|th| th.terminal()),
                "deadlock: no enabled transitions but threads are {:?}",
                state.threads
            );
            for (t, th) in state.threads.iter().enumerate() {
                if *th == Th::Done {
                    let seq = state.seqs[t].unwrap();
                    assert!(state.synced.contains(&seq));
                }
            }
            self.terminals += 1;
        }
    }
}

fn run(threads: usize, fail_budget: u32) -> (usize, u64) {
    let mut e = Explorer {
        visited: HashSet::new(),
        terminals: 0,
    };
    e.explore(State::initial(threads, fail_budget));
    assert!(e.terminals > 0, "no terminal state reached");
    (e.visited.len(), e.terminals)
}

#[test]
fn every_schedule_acks_only_fsynced_frames() {
    for threads in 2..=4 {
        let (states, terminals) = run(threads, 0);
        eprintln!("{threads} threads, no failures: {states} states, {terminals} terminal(s)");
        // The interleaving space must actually have been explored: leader /
        // follower / coalesced-group schedules all reach distinct states.
        assert!(
            states > 20 * threads,
            "suspiciously small state space for {threads} threads: {states}"
        );
    }
}

#[test]
fn fsync_failure_never_produces_a_false_ack() {
    for threads in 2..=4 {
        let (states, terminals) = run(threads, 1);
        eprintln!("{threads} threads, 1 failure: {states} states, {terminals} terminal(s)");
        assert!(
            states > 30 * threads,
            "failure branches unexplored for {threads} threads: {states}"
        );
    }
}

#[test]
fn without_failures_every_thread_is_acknowledged() {
    // With no failure injection, DoneErr is unreachable: every schedule
    // must end with all threads acked. (A separate explorer pass so the
    // assertion names the property.)
    let mut e = Explorer {
        visited: HashSet::new(),
        terminals: 0,
    };
    e.explore(State::initial(3, 0));
    for s in &e.visited {
        assert!(
            !s.threads.contains(&Th::DoneErr),
            "error state reached without an injected failure"
        );
    }
}
