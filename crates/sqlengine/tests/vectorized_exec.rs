//! Deterministic coverage of the columnar/vectorized execution path:
//! mode labels in `EXPLAIN`, per-operator row-count parity in
//! `EXPLAIN ANALYZE`, and a fixed differential sweep of vectorized
//! {on, off} × parallelism {1, 4} over one fixture. The proptest
//! companion (`vectorized_differential.rs`) covers random queries; this
//! suite is the part that compiles without external dev-dependencies.

use sqlengine::{Database, EngineConfig, OpStats, Value};

/// 3 000 rows spanning three 1024-row chunks: a low-cardinality TEXT group
/// (dictionary-encodable) with NULL holes, an INTEGER with NULL holes, and
/// dyadic-rational weights (k/4) so float sums are exact regardless of
/// morsel/chunk partial-sum grouping.
fn fixture(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (g TEXT, x INTEGER, w REAL)")
        .unwrap();
    let rows: Vec<Vec<Value>> = (0..3000i64)
        .map(|i| {
            let g = if i % 7 == 0 {
                Value::Null
            } else {
                Value::text(format!("g{}", i % 5))
            };
            let x = if i % 11 == 0 {
                Value::Null
            } else {
                Value::Int((i * 13) % 101 - 50)
            };
            vec![g, x, Value::Float((i % 32) as f64 / 4.0)]
        })
        .collect();
    db.insert_rows("t", rows).unwrap();
    db
}

const QUERIES: &[&str] = &[
    // Vectorized end-to-end: simple filters, projections, aggregates.
    "SELECT g, x, w FROM t WHERE x > 10",
    "SELECT g FROM t WHERE g = 'g1' AND x <= 20",
    "SELECT x, w FROM t WHERE x BETWEEN -10 AND 25 OR w > 6.0",
    "SELECT g, w FROM t WHERE x IS NOT NULL",
    "SELECT w FROM t WHERE x IS NULL",
    "SELECT g, COUNT(*) AS n, SUM(w) AS sw, MIN(x) AS mn, MAX(x) AS mx \
     FROM t GROUP BY g ORDER BY g",
    "SELECT COUNT(*) FROM t WHERE g = 'g2'",
    "SELECT g, AVG(w) FROM t WHERE x > -20 GROUP BY g ORDER BY g",
    // No ORDER BY: pins first-seen group order across modes.
    "SELECT x, COUNT(*) FROM t WHERE x > 30 GROUP BY x",
    // Deliberately ineligible shapes: fall back to the row path.
    "SELECT x + 1 FROM t WHERE x IN (1, 2, 3)",
    "SELECT g, COUNT(DISTINCT x) FROM t GROUP BY g ORDER BY g",
    "SELECT w FROM t WHERE g LIKE 'g%' AND x < 5",
    // Join above vectorizable scans.
    "SELECT a.g, COUNT(*) FROM t a JOIN t b ON a.g = b.g AND a.x = b.x \
     GROUP BY a.g ORDER BY a.g",
];

/// The four engine variants every query must agree across. Debug-format
/// comparison also pins value *variants* (Value's PartialEq equates
/// Int(2) and Float(2.0), which would mask type drift).
#[test]
fn differential_sweep_modes_and_parallelism() {
    let variants = [(true, 1usize), (true, 4), (false, 1), (false, 4)];
    let dbs: Vec<Database> = variants
        .iter()
        .map(|&(vectorized, par)| {
            fixture(
                EngineConfig::default()
                    .with_vectorized(vectorized)
                    .with_parallelism(par),
            )
        })
        .collect();
    for q in QUERIES {
        let baseline = format!("{:?}", dbs[0].query(q).unwrap().rows);
        for (db, tag) in dbs.iter().zip(variants).skip(1) {
            let got = format!("{:?}", db.query(q).unwrap().rows);
            assert_eq!(
                got, baseline,
                "query {q:?} diverged at (vectorized, parallelism) = {tag:?}"
            );
        }
    }
}

#[test]
fn explain_labels_operators_with_their_mode() {
    let db = fixture(EngineConfig::default());
    let plan = db
        .explain("SELECT g, COUNT(*) FROM t WHERE x > 0 GROUP BY g")
        .unwrap();
    for line in plan.lines() {
        let op = line.trim_start();
        if ["Scan", "Filter", "Aggregate"]
            .iter()
            .any(|p| op.starts_with(p))
        {
            assert!(
                line.contains("mode=vectorized"),
                "expected mode=vectorized on: {line}\n{plan}"
            );
        }
    }

    let db = fixture(EngineConfig::default().with_vectorized(false));
    let plan = db
        .explain("SELECT g, COUNT(*) FROM t WHERE x > 0 GROUP BY g")
        .unwrap();
    assert!(
        plan.contains("mode=row") && !plan.contains("mode=vectorized"),
        "vectorized=false must force the row path:\n{plan}"
    );
}

#[test]
fn ineligible_stage_splits_the_chain_truthfully() {
    let db = fixture(EngineConfig::default());
    // IN-list filters are deliberately not vectorized: the scan is still
    // chunk-backed, but the filter (and everything above it) runs row-wise.
    let plan = db.explain("SELECT x FROM t WHERE x IN (1, 2, 3)").unwrap();
    assert!(
        plan.lines()
            .any(|l| l.trim_start().starts_with("Filter") && l.contains("mode=row")),
        "IN-list filter must be labeled row:\n{plan}"
    );
    assert!(
        plan.lines()
            .any(|l| l.trim_start().starts_with("Scan") && l.contains("mode=vectorized")),
        "chunk-backed scan under it stays vectorized:\n{plan}"
    );
    // DISTINCT aggregates likewise stay on the row path.
    let plan = db
        .explain("SELECT g, COUNT(DISTINCT x) FROM t GROUP BY g")
        .unwrap();
    assert!(
        plan.lines()
            .any(|l| l.trim_start().starts_with("Aggregate") && l.contains("mode=row")),
        "DISTINCT aggregate must be labeled row:\n{plan}"
    );
}

fn shape(stats: &OpStats, out: &mut Vec<(String, usize, usize)>) {
    let label = stats
        .label
        .replace(" mode=vectorized", "")
        .replace(" mode=row", "");
    out.push((label, stats.rows_in, stats.rows_out));
    for child in &stats.children {
        shape(child, out);
    }
}

#[test]
fn explain_analyze_row_counts_match_across_modes() {
    let queries = [
        "SELECT g, COUNT(*) AS n, SUM(w) AS sw FROM t WHERE x > 0 GROUP BY g ORDER BY g",
        "SELECT g, w FROM t WHERE x > 10 AND w < 6.0",
        "SELECT COUNT(*) FROM t",
    ];
    for q in queries {
        let (rows_vec, stats_vec) = fixture(EngineConfig::default()).query_analyzed(q).unwrap();
        let (rows_row, stats_row) = fixture(EngineConfig::default().with_vectorized(false))
            .query_analyzed(q)
            .unwrap();
        assert_eq!(rows_vec.rows, rows_row.rows, "results diverged for {q:?}");
        let (mut a, mut b) = (Vec::new(), Vec::new());
        shape(&stats_vec, &mut a);
        shape(&stats_row, &mut b);
        assert_eq!(
            a, b,
            "per-operator (label, rows_in, rows_out) must be identical across modes for {q:?}"
        );
    }
    // And the analyzed tree advertises the mode it actually ran in.
    let (_, stats) = fixture(EngineConfig::default())
        .query_analyzed("SELECT COUNT(*) FROM t WHERE x > 0")
        .unwrap();
    fn any_label(s: &OpStats, needle: &str) -> bool {
        s.label.contains(needle) || s.children.iter().any(|c| any_label(c, needle))
    }
    assert!(any_label(&stats, "mode=vectorized"));
}

#[test]
fn dictionary_overflow_falls_back_exactly() {
    // 500 distinct strings exceed the 256-value dictionary budget: the
    // column demotes to a plain value vector, results must not change.
    for vectorized in [true, false] {
        let db = Database::with_config(EngineConfig::default().with_vectorized(vectorized));
        db.execute("CREATE TABLE wide (s TEXT, n INTEGER)").unwrap();
        let rows: Vec<Vec<Value>> = (0..2000i64)
            .map(|i| vec![Value::text(format!("s{}", i % 500)), Value::Int(i % 9)])
            .collect();
        db.insert_rows("wide", rows).unwrap();
        let r = db
            .query("SELECT COUNT(*) FROM wide WHERE s = 's42'")
            .unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(4)]]);
        let r = db
            .query("SELECT s, COUNT(*) FROM wide WHERE n < 3 GROUP BY s ORDER BY s LIMIT 5")
            .unwrap();
        assert_eq!(r.rows.len(), 5);
    }
}

#[test]
fn empty_and_tiny_tables_agree_across_modes() {
    let mut outputs = Vec::new();
    for vectorized in [true, false] {
        let db = Database::with_config(EngineConfig::default().with_vectorized(vectorized));
        db.execute("CREATE TABLE e (x INTEGER, s TEXT)").unwrap();
        let a = db.query("SELECT COUNT(*), SUM(x), MIN(x) FROM e").unwrap();
        let b = db.query("SELECT s, COUNT(*) FROM e GROUP BY s").unwrap();
        let c = db.query("SELECT x FROM e WHERE x > 0").unwrap();
        db.execute("INSERT INTO e VALUES (1, 'a')").unwrap();
        let d = db.query("SELECT s, SUM(x) FROM e GROUP BY s").unwrap();
        outputs.push(format!(
            "{:?} {:?} {:?} {:?}",
            a.rows, b.rows, c.rows, d.rows
        ));
    }
    assert_eq!(outputs[0], outputs[1]);
}

#[test]
fn incremental_appends_keep_the_chunk_cache_coherent() {
    let db = fixture(EngineConfig::default());
    let count = |db: &Database| {
        let r = db.query("SELECT COUNT(*) FROM t WHERE w > 1.0").unwrap();
        format!("{:?}", r.rows)
    };
    let before = count(&db);
    // Build the cache, append past a chunk boundary, re-query: the appended
    // slot must carry built chunks forward and include the new rows.
    let extra: Vec<Vec<Value>> = (0..1500i64)
        .map(|i| vec![Value::text("gx"), Value::Int(i), Value::Float(2.0)])
        .collect();
    db.insert_rows("t", extra).unwrap();
    let after = db
        .query("SELECT COUNT(*) FROM t WHERE w > 1.0")
        .unwrap()
        .rows[0][0]
        .clone();

    let db_row = fixture(EngineConfig::default().with_vectorized(false));
    let before_row = count(&db_row);
    let extra: Vec<Vec<Value>> = (0..1500i64)
        .map(|i| vec![Value::text("gx"), Value::Int(i), Value::Float(2.0)])
        .collect();
    db_row.insert_rows("t", extra).unwrap();
    let after_row = db_row
        .query("SELECT COUNT(*) FROM t WHERE w > 1.0")
        .unwrap()
        .rows[0][0]
        .clone();

    assert_eq!(before, before_row);
    assert_eq!(after, after_row);

    // UPDATE and DELETE invalidate the cache; results must track the rows.
    for db in [&db, &db_row] {
        db.execute("UPDATE t SET w = 0.0 WHERE g = 'gx'").unwrap();
        db.execute("DELETE FROM t WHERE g = 'g3'").unwrap();
    }
    assert_eq!(count(&db), count(&db_row));
}

// ---------------------------------------------------------------------
// EXPLAIN ANALYZE × plan verifier
// ---------------------------------------------------------------------

/// Regression: `EXPLAIN ANALYZE` serves the cached plan, so when that plan
/// fails verification it must report the violation instead of executing the
/// corrupt tree and rendering stats for it.
#[test]
fn explain_analyze_reports_verifier_rejection_instead_of_executing() {
    let db = fixture(EngineConfig::default().with_verify_plans(true));
    let sql = "SELECT g, COUNT(*) FROM t WHERE x > 100 GROUP BY g";
    db.query(sql).unwrap();
    assert!(db.mutate_cached_plan(sql, &mut |plan| {
        // Wrap the root in a projection of column #77 — out of range for
        // any input here, and the wrong output arity besides.
        let inner = std::mem::replace(plan, sqlengine::plan::PhysPlan::OneRow);
        *plan = sqlengine::plan::PhysPlan::Project {
            input: Box::new(inner),
            exprs: vec![sqlengine::expr::PhysExpr::Column(77)],
        };
    }));

    let ops_before = db.telemetry().row_ops.get() + db.telemetry().vectorized_ops.get();
    let err = db.explain_analyze(sql).unwrap_err();
    assert!(
        matches!(err, sqlengine::EngineError::Verify { .. }),
        "ANALYZE of a corrupt plan must fail verification, got {err:?}"
    );
    assert!(err.to_string().contains("[schema]"), "{err}");
    assert_eq!(
        db.telemetry().row_ops.get() + db.telemetry().vectorized_ops.get(),
        ops_before,
        "the rejected plan must not have executed a single operator"
    );

    // The non-ANALYZE entry point rejects the same way, and a replan (after
    // any catalog change) restores service.
    assert!(db.query(sql).is_err());
    db.execute("INSERT INTO t VALUES ('g0', 500, 1.0)").unwrap();
    db.query(sql).unwrap();
    db.explain_analyze(sql).unwrap();
}
