//! Property-based differential suite for columnar/vectorized execution:
//! random tables and a query mix spanning filter / project / aggregate /
//! join must produce identical results with `EngineConfig::vectorized`
//! {on, off} × parallelism {1, 4}, and `EXPLAIN ANALYZE` must report
//! identical per-operator row counts across modes. The deterministic
//! companion (`vectorized_exec.rs`) runs in environments without the
//! proptest dev-dependency.

use proptest::prelude::*;
use sqlengine::{Database, EngineConfig, OpStats, Value};

/// A random table of (g TEXT, x INTEGER, w REAL) rows with NULL holes in
/// `g` and `x`. `g` is low-cardinality so the chunk builder exercises
/// dictionary encoding; `w` is a dyadic rational (k/4) so float sums are
/// exact and results compare exactly across morsel/chunk groupings.
#[derive(Debug, Clone)]
struct Fixture {
    rows: Vec<(Option<i64>, Option<i64>, f64)>,
}

fn arb_fixture() -> impl Strategy<Value = Fixture> {
    prop::collection::vec(
        (
            prop::option::of(0i64..6),
            prop::option::of(-50i64..50),
            0u32..100,
        ),
        150..400,
    )
    .prop_map(|v| Fixture {
        rows: v
            .into_iter()
            .map(|(g, x, w)| (g, x, w as f64 / 4.0))
            .collect(),
    })
}

fn load(db: &Database, f: &Fixture) {
    db.execute("CREATE TABLE t (g TEXT, x INTEGER, w REAL)")
        .unwrap();
    let rows = f
        .rows
        .iter()
        .map(|(g, x, w)| {
            vec![
                g.map_or(Value::Null, |g| Value::text(format!("g{g}"))),
                x.map_or(Value::Null, Value::Int),
                Value::Float(*w),
            ]
        })
        .collect();
    db.insert_rows("t", rows).unwrap();
}

/// Query mix: the first block is vectorizable end-to-end, the second block
/// deliberately hits the row-path fallbacks (IN lists, DISTINCT aggregates,
/// computed projections, LIKE), the third crosses operator families.
const QUERIES: &[&str] = &[
    "SELECT g, x, w FROM t WHERE x > 0",
    "SELECT g FROM t WHERE g = 'g1' AND x <= 10",
    "SELECT x, w FROM t WHERE x BETWEEN -10 AND 25 OR w > 6.0",
    "SELECT g, w FROM t WHERE x IS NOT NULL",
    "SELECT w FROM t WHERE g IS NULL",
    "SELECT g, COUNT(*), SUM(w), MIN(x), MAX(x), AVG(w) FROM t GROUP BY g",
    "SELECT COUNT(*), SUM(x) FROM t WHERE g = 'g2'",
    "SELECT x + 1, w * 2.0 FROM t WHERE x IN (1, 2, 3)",
    "SELECT g, COUNT(DISTINCT x) FROM t GROUP BY g",
    "SELECT w FROM t WHERE g LIKE 'g%' AND x < 5",
    "SELECT a.g, COUNT(*) FROM t AS a JOIN t AS b ON a.g = b.g AND a.x = b.x GROUP BY a.g",
    "SELECT DISTINCT g FROM t WHERE w >= 1.0",
    "SELECT g, x FROM t WHERE w < 20.0 ORDER BY x, g, w LIMIT 25 OFFSET 3",
];

/// Sort rows into a canonical order (NULLs first, then by value) so result
/// sets can be compared independent of operator output order.
fn canonical(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort_by(|a, b| {
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    });
    rows
}

/// `(label without mode suffix, rows_in, rows_out)` for every operator in
/// the stats tree, in render order.
fn shape(stats: &OpStats, out: &mut Vec<(String, usize, usize)>) {
    let label = stats
        .label
        .replace(" mode=vectorized", "")
        .replace(" mode=row", "");
    out.push((label, stats.rows_in, stats.rows_out));
    for child in &stats.children {
        shape(child, out);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every query is mode- and parallelism-invariant: vectorized {on, off}
    /// × parallelism {1, 4} produce identical rows. The serial pair is also
    /// compared in exact output order (parallelism may only reorder within
    /// the documented deterministic-merge guarantees, mode never may).
    #[test]
    fn vectorized_matches_row_path(f in arb_fixture()) {
        let variants = [(false, 1usize), (false, 4), (true, 1), (true, 4)];
        let dbs: Vec<Database> = variants
            .iter()
            .map(|&(vectorized, parallelism)| {
                let db = Database::with_config(
                    EngineConfig::default()
                        .with_vectorized(vectorized)
                        .with_parallelism(parallelism),
                );
                load(&db, &f);
                db
            })
            .collect();
        for query in QUERIES {
            let baseline = dbs[0].query(query).unwrap();
            // Exact row order: row-serial vs vectorized-serial.
            let vec_serial = dbs[2].query(query).unwrap();
            prop_assert_eq!(
                &baseline.rows,
                &vec_serial.rows,
                "serial row order diverged for {}",
                query
            );
            for (db, tag) in dbs.iter().zip(variants).skip(1) {
                let got = db.query(query).unwrap();
                prop_assert_eq!(&baseline.columns, &got.columns, "columns differ for {}", query);
                prop_assert_eq!(
                    canonical(baseline.rows.clone()),
                    canonical(got.rows),
                    "rows differ for {} at (vectorized, parallelism) = {:?}",
                    query,
                    tag
                );
            }
        }
    }

    /// `EXPLAIN ANALYZE` reports the same per-operator (label, rows_in,
    /// rows_out) tree in both modes — the vectorized pipeline must account
    /// rows exactly like the row-at-a-time operators it replaces.
    #[test]
    fn explain_analyze_operator_counts_match_across_modes(f in arb_fixture()) {
        let vec_db = Database::with_config(EngineConfig::default());
        load(&vec_db, &f);
        let row_db = Database::with_config(EngineConfig::default().with_vectorized(false));
        load(&row_db, &f);
        for query in QUERIES {
            let (vec_result, vec_stats) = vec_db.query_analyzed(query).unwrap();
            let (row_result, row_stats) = row_db.query_analyzed(query).unwrap();
            prop_assert_eq!(
                canonical(vec_result.rows),
                canonical(row_result.rows),
                "results diverged for {}",
                query
            );
            let (mut a, mut b) = (Vec::new(), Vec::new());
            shape(&vec_stats, &mut a);
            shape(&row_stats, &mut b);
            prop_assert_eq!(a, b, "operator row counts diverged for {}", query);
        }
    }
}
