//! Hierarchical statement tracing: differential correctness against
//! `EXPLAIN ANALYZE`, span-tree nesting invariants, sampling semantics,
//! wait-state attribution under a saturated admission gate, and the
//! traced-vs-untraced overhead bound on the cached serving hot path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sqlengine::{Database, EngineConfig, TraceSampling, Value};

/// Tiny deterministic PRNG so fixtures are identical on every run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

fn seeded_db(config: EngineConfig, rows: usize) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (g INTEGER, x INTEGER, w REAL)")
        .unwrap();
    let mut rng = Lcg(0x7E1E);
    let mut data = Vec::with_capacity(rows);
    for _ in 0..rows {
        data.push(vec![
            Value::Int((rng.next() % 13) as i64),
            Value::Int((rng.next() % 1000) as i64),
            Value::Float((rng.next() % 10_000) as f64 / 100.0),
        ]);
    }
    db.insert_rows("t", data).unwrap();
    db
}

fn always_on() -> TraceSampling {
    TraceSampling::On {
        rate: 1.0,
        seed: 0xC0FFEE,
    }
}

/// Extract `(operator, rows)` pairs in render order: from `EXPLAIN ANALYZE`
/// lines (`rows_out=N`) or `EXPLAIN (TRACE)` lines (` rows=N`).
fn op_rows(rendered: &str, marker: &str) -> Vec<(String, u64)> {
    rendered
        .lines()
        .filter_map(|line| {
            let at = line.find(marker)?;
            let tail = &line[at + marker.len()..];
            let digits: String = tail.chars().take_while(char::is_ascii_digit).collect();
            let op = line.trim_start().split([' ', '[']).next()?.to_string();
            Some((op, digits.parse().ok()?))
        })
        .collect()
}

fn rendered(db: &Database, sql: &str) -> String {
    db.query(sql)
        .unwrap()
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.to_string(),
            other => panic!("expected text line, got {other:?}"),
        })
        .collect::<Vec<_>>()
        .join("\n")
}

// ---------------------------------------------------------------------
// Differential: EXPLAIN (TRACE) vs EXPLAIN ANALYZE
// ---------------------------------------------------------------------

#[test]
fn explain_trace_exec_subtree_matches_explain_analyze_rows() {
    let db = seeded_db(EngineConfig::default(), 500);
    let sql = "SELECT g, SUM(w) FROM t WHERE x >= 250 GROUP BY g ORDER BY g";

    let analyze = rendered(&db, &format!("EXPLAIN ANALYZE {sql}"));
    let trace = rendered(&db, &format!("EXPLAIN (TRACE) {sql}"));

    // Same operators, same observed row counts, same (preorder) order: the
    // trace's exec subtree is derived from the very OpStats tree ANALYZE
    // renders, so the two can never disagree.
    let analyzed = op_rows(&analyze, "rows_out=");
    let traced = op_rows(&trace, " rows=");
    assert!(!analyzed.is_empty(), "ANALYZE rendered no operators");
    assert_eq!(analyzed, traced, "\nANALYZE:\n{analyze}\nTRACE:\n{trace}");

    // The trace additionally shows the statement phases around execution.
    for phase in ["statement (", "plan (", "exec ("] {
        assert!(trace.contains(phase), "missing {phase:?} in:\n{trace}");
    }
    assert!(trace.contains("cache=miss") || trace.contains("cache=hit"));
}

// ---------------------------------------------------------------------
// Span-tree nesting invariant
// ---------------------------------------------------------------------

#[test]
fn child_span_durations_sum_within_parent_duration() {
    let db = seeded_db(
        EngineConfig::default().with_trace_sampling(always_on()),
        500,
    );
    db.query("SELECT g, COUNT(*) FROM t GROUP BY g").unwrap();
    db.query("SELECT g, COUNT(*) FROM t GROUP BY g").unwrap(); // cache hit
    db.execute("INSERT INTO t VALUES (99, 99, 9.9)").unwrap(); // DML path
    db.query("SELECT COUNT(*) FROM t a JOIN t b ON a.g = b.g WHERE a.x < 40")
        .unwrap();

    let traces = db.telemetry().traces();
    assert!(
        traces.len() >= 4,
        "expected every statement kept at rate 1.0"
    );
    for trace in &traces {
        for parent in &trace.spans {
            let children: Vec<_> = trace
                .spans
                .iter()
                .filter(|s| s.parent == Some(parent.id))
                .collect();
            let sum: u64 = children.iter().map(|c| c.duration_us).sum();
            // Each span truncates to whole microseconds, so allow 1µs of
            // rounding slack per child.
            assert!(
                sum <= parent.duration_us + children.len() as u64 + 1,
                "children of {} ({}µs) sum to {sum}µs in trace {:?}",
                parent.name,
                parent.duration_us,
                trace.spans
            );
            for child in &children {
                assert!(
                    child.start_us >= parent.start_us,
                    "child {} starts before parent {}",
                    child.name,
                    parent.name
                );
            }
        }
        // Every non-root span's parent exists.
        for span in &trace.spans {
            if let Some(p) = span.parent {
                assert!(
                    trace.spans.iter().any(|s| s.id == p),
                    "span {} has dangling parent {p}",
                    span.name
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// Sampling semantics + query-log backfill
// ---------------------------------------------------------------------

#[test]
fn sampling_off_records_zero_spans_and_null_wait_columns() {
    let db = seeded_db(EngineConfig::default(), 64);
    db.query("SELECT COUNT(*) FROM t").unwrap();
    db.execute("INSERT INTO t VALUES (1, 1, 1.0)").unwrap();

    assert!(db.telemetry().traces().is_empty());
    let spans = db.query("SELECT * FROM sys.trace_spans").unwrap();
    assert!(spans.rows.is_empty(), "{:?}", spans.rows);

    // Unsampled statements report NULL wait columns (unknown), not zero.
    let log = db
        .query("SELECT queue_wait_us, fsync_wait_us, retry_count FROM sys.query_log")
        .unwrap();
    assert!(!log.rows.is_empty());
    for row in &log.rows {
        assert_eq!(row, &vec![Value::Null, Value::Null, Value::Null]);
    }
}

#[test]
fn kept_traces_join_query_log_by_statement_id() {
    let db = seeded_db(
        EngineConfig::default()
            .with_trace_sampling(always_on())
            // Everything is "slow" at a 1µs threshold, so the README's
            // slow-statement join shape has rows to find.
            .with_slow_query_threshold(Duration::from_micros(1)),
        128,
    );
    db.query("SELECT g, SUM(w) FROM t GROUP BY g").unwrap();
    db.query("SELECT g, SUM(w) FROM t GROUP BY g").unwrap();

    // Wait columns are backfilled (0, not NULL) for sampled statements.
    let log = db
        .query("SELECT id, queue_wait_us FROM sys.query_log WHERE slow = 1")
        .unwrap();
    assert!(!log.rows.is_empty());
    assert!(log.rows.iter().all(|r| r[1] == Value::Int(0)));

    // Every logged statement's trace is queryable by statement id, with a
    // root span named "statement" and an exec subtree.
    for row in &log.rows {
        let Value::Int(id) = row[0] else { panic!() };
        let spans = db
            .query(&format!(
                "SELECT name, parent_id FROM sys.trace_spans WHERE statement_id = {id}"
            ))
            .unwrap();
        assert!(
            spans
                .rows
                .iter()
                .any(|r| r[0] == Value::text("statement") && r[1] == Value::Null),
            "statement {id} has no root span: {:?}",
            spans.rows
        );
        assert!(spans.rows.iter().any(|r| r[0] == Value::text("exec")));
    }

    // The second execution was a cache hit and its plan span says so.
    let attrs = db
        .query("SELECT attrs FROM sys.trace_spans WHERE name = 'plan'")
        .unwrap();
    let texts: Vec<String> = attrs
        .rows
        .iter()
        .map(|r| match &r[0] {
            Value::Str(s) => s.to_string(),
            other => panic!("{other:?}"),
        })
        .collect();
    assert!(texts.iter().any(|t| t.contains("cache=miss")), "{texts:?}");
    assert!(texts.iter().any(|t| t.contains("cache=hit")), "{texts:?}");
}

#[test]
fn deterministic_sampler_keeps_a_rate_sized_subset() {
    let db = seeded_db(
        EngineConfig::default().with_trace_sampling(TraceSampling::On { rate: 0.5, seed: 7 }),
        64,
    );
    for _ in 0..200 {
        db.query("SELECT COUNT(*) FROM t").unwrap();
    }
    let kept = db.telemetry().traces().len();
    assert!(
        (40..=160).contains(&kept),
        "rate 0.5 kept {kept} of 200 traces"
    );
}

// ---------------------------------------------------------------------
// sys.histograms
// ---------------------------------------------------------------------

#[test]
fn sys_histograms_exposes_power_of_two_buckets() {
    let db = seeded_db(EngineConfig::default(), 64);
    for _ in 0..8 {
        db.query("SELECT COUNT(*) FROM t").unwrap();
    }
    let rows = db
        .query(
            "SELECT metric, bucket_lo_us, bucket_hi_us, count FROM sys.histograms \
             WHERE metric = 'statement.total_us'",
        )
        .unwrap()
        .rows;
    assert!(!rows.is_empty());
    let mut total = 0i64;
    for row in &rows {
        let (Value::Int(lo), Value::Int(hi), Value::Int(count)) = (&row[1], &row[2], &row[3])
        else {
            panic!("unexpected row {row:?}");
        };
        assert!(lo < hi, "bucket [{lo}, {hi}) is empty-range");
        assert!(
            *hi == 1 || (*hi & (*hi - 1)) == 0,
            "hi {hi} not a power of two"
        );
        assert!(*count > 0, "empty buckets are omitted");
        total += count;
    }
    // 8 queries + fixture DDL/DML all recorded a statement duration.
    assert!(total >= 8, "bucket counts sum to {total}");
}

// ---------------------------------------------------------------------
// Wait-state attribution under a saturated admission gate
// ---------------------------------------------------------------------

#[test]
fn saturated_gate_attributes_admission_wait() {
    let db = Database::with_config(
        EngineConfig::default()
            .with_trace_sampling(always_on())
            .with_max_concurrent_statements(1)
            .with_admission_queue_depth(16),
    );
    db.execute("CREATE TABLE big (n INTEGER)").unwrap();
    let values: Vec<String> = (0..1500).map(|i| format!("({i})")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
        .unwrap();
    let db = Arc::new(db);

    // A query heavy enough to hold the only slot while the probe queues.
    let db2 = Arc::clone(&db);
    let busy = std::thread::spawn(move || {
        db2.query("SELECT COUNT(*) FROM big a, big b WHERE a.n + b.n > 0")
            .unwrap()
    });
    std::thread::sleep(Duration::from_millis(30));
    db.query("SELECT COUNT(*) FROM big WHERE n = 7").unwrap();
    busy.join().unwrap();

    // The queued statement's trace carries an admission wait span, and the
    // backfilled query-log column agrees.
    let log = db
        .query(
            "SELECT queue_wait_us FROM sys.query_log \
             WHERE sql LIKE '%WHERE n = 7%' AND sql NOT LIKE '%query_log%'",
        )
        .unwrap();
    assert_eq!(log.rows.len(), 1);
    let Value::Int(queue_wait) = log.rows[0][0] else {
        panic!("queue_wait_us must be backfilled, got {:?}", log.rows[0][0]);
    };
    assert!(
        queue_wait > 0,
        "queued statement reports {queue_wait}µs wait"
    );

    let spans = db
        .query("SELECT name FROM sys.trace_spans WHERE wait_class = 'admission'")
        .unwrap();
    assert!(!spans.rows.is_empty(), "no admission wait span recorded");

    // The always-on rollup shows the same contention, trace or no trace.
    let events = db
        .query("SELECT count, total_us FROM sys.wait_events WHERE wait_class = 'admission'")
        .unwrap();
    assert_eq!(events.rows.len(), 1);
    let (Value::Int(count), Value::Int(total_us)) = (&events.rows[0][0], &events.rows[0][1]) else {
        panic!("{:?}", events.rows);
    };
    assert!(*count >= 1, "admission rollup count = {count}");
    assert!(*total_us > 0, "admission rollup total_us = {total_us}");
}

// ---------------------------------------------------------------------
// Overhead bound: trace sampling on vs off on the cached serving path
// ---------------------------------------------------------------------

#[test]
fn tracing_overhead_on_cached_plan_hot_path_is_bounded() {
    // Same interleaved min-of-batches shape as the telemetry overhead pin:
    // the minimum over many rounds approximates the true cost, and the
    // bound is the best attempt so one quiet window suffices.
    let sql = "SELECT g, SUM(w) FROM t WHERE x >= 0 GROUP BY g";
    let on = seeded_db(
        EngineConfig::default().with_trace_sampling(always_on()),
        2000,
    );
    let off = seeded_db(EngineConfig::default(), 2000);
    for _ in 0..5 {
        on.query(sql).unwrap();
        off.query(sql).unwrap();
    }

    let batch = |db: &Database| {
        let started = Instant::now();
        for _ in 0..8 {
            db.query(sql).unwrap();
        }
        started.elapsed()
    };
    let mut best_ratio = f64::MAX;
    for attempt in 0..6 {
        let (mut best_on, mut best_off) = (Duration::MAX, Duration::MAX);
        for _ in 0..20 {
            best_on = best_on.min(batch(&on));
            best_off = best_off.min(batch(&off));
        }
        let ratio = best_on.as_secs_f64() / best_off.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        if best_ratio < 1.05 {
            break;
        }
        eprintln!("attempt {attempt}: ratio {ratio:.3} (on={best_on:?} off={best_off:?})");
    }
    assert!(
        best_ratio < 1.05,
        "trace-sampling overhead must stay under 5% (best ratio {best_ratio:.3})"
    );
    // Sanity: the traced side actually captured the traffic, the untraced
    // side recorded nothing.
    assert!(!on.telemetry().traces().is_empty());
    assert!(off.telemetry().traces().is_empty());
}
