//! Positive coverage of the static plan verifier: every legitimate plan the
//! engine produces passes all five invariant classes, `EXPLAIN (VERIFY)`
//! reports one row per class, the `verify.*` metrics account for checks and
//! violations, turning the verifier off leaves the counters at zero and the
//! hot path untouched, and the verification walk stays within the bounded
//! overhead budget on the cached parameterized serving path. The negative
//! direction — seeded plan corruption proving each class fires — lives in
//! `plan_corruption.rs`.

use std::time::{Duration, Instant};

use sqlengine::{Database, EngineConfig, Value};

fn seeded(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE t (n INTEGER, s TEXT, w REAL, PRIMARY KEY (n))")
        .unwrap();
    db.execute("CREATE INDEX t_s ON t (s)").unwrap();
    let rows: Vec<Vec<Value>> = (0..500i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::text(format!("tok{}", i % 13)),
                Value::Float(i as f64 / 4.0),
            ]
        })
        .collect();
    db.insert_rows("t", rows).unwrap();
    db
}

/// A representative sweep of plan shapes: scans, index scans, joins (hash,
/// nested-loop, index-nested-loop), aggregation, windows, sorts, set ops,
/// vectorized chains.
const QUERIES: &[&str] = &[
    "SELECT n, s, w FROM t WHERE n > 100",
    "SELECT * FROM t WHERE n = 42",
    "SELECT n FROM t WHERE s = 'tok3' ORDER BY n LIMIT 5",
    "SELECT s, COUNT(*), SUM(w) FROM t GROUP BY s ORDER BY s",
    "SELECT a.n, b.s FROM t a JOIN t b ON a.n = b.n WHERE a.n < 20",
    "SELECT a.n FROM t a LEFT JOIN t b ON a.n = b.n + 600",
    "SELECT n FROM t WHERE n < 5 UNION ALL SELECT n FROM t WHERE n > 495",
    "SELECT DISTINCT s FROM t ORDER BY s",
    "SELECT n, ROW_NUMBER() OVER (PARTITION BY s ORDER BY n) FROM t WHERE n < 50",
    "SELECT 1 + 2, 'x' || 'y'",
];

#[test]
fn explain_verify_reports_one_ok_row_per_class() {
    let db = seeded(EngineConfig::default());
    for sql in QUERIES {
        let r = db
            .execute(&format!("EXPLAIN (VERIFY) {sql}"))
            .unwrap()
            .into_rows()
            .unwrap();
        assert_eq!(
            r.columns,
            vec!["check", "status", "detail"],
            "EXPLAIN (VERIFY) schema for {sql}"
        );
        assert_eq!(r.rows.len(), 5, "one row per invariant class for {sql}");
        let classes: Vec<String> = r.rows.iter().map(|row| row[0].to_string()).collect();
        assert_eq!(
            classes,
            vec![
                "schema",
                "index-keys",
                "vectorized-mode",
                "param-slots",
                "merge-determinism"
            ],
            "class order for {sql}"
        );
        for row in &r.rows {
            assert_eq!(
                row[1].to_string(),
                "ok",
                "class {} clean for {sql}: {}",
                row[0],
                row[2]
            );
        }
    }
}

#[test]
fn every_legitimate_plan_passes_verification() {
    // Debug builds default verify_plans on; force it so the test also holds
    // under `--release`.
    let db = seeded(EngineConfig::default().with_verify_plans(true));
    for sql in QUERIES {
        db.query(sql).unwrap();
        // Second run exercises the cache-hit path (memoized verification).
        db.query(sql).unwrap();
    }
    // Parameterized templates: planned symbolically, verified as templates
    // at plan time and on every hit.
    for _ in 0..3 {
        db.query_with("SELECT n, s FROM t WHERE n = ?", &[Value::Int(7)])
            .unwrap();
        db.query_with(
            "SELECT s, COUNT(*) FROM t WHERE w > ? GROUP BY s",
            &[Value::Float(20.0)],
        )
        .unwrap();
    }
    assert!(db.telemetry().verify_plans_checked.get() > 0);
    assert_eq!(
        db.telemetry().verify_violations.get(),
        0,
        "no legitimate plan violates an invariant"
    );
}

#[test]
fn verify_metrics_surface_in_sys_metrics() {
    let db = seeded(EngineConfig::default().with_verify_plans(true));
    db.query("SELECT n FROM t WHERE n = 1").unwrap();
    db.query("SELECT s FROM t WHERE n = 2").unwrap();
    let metric = |name: &str| -> f64 {
        match db
            .query_scalar(&format!(
                "SELECT value FROM sys.metrics WHERE name = '{name}'"
            ))
            .unwrap()
        {
            Value::Float(f) => f,
            other => panic!("expected float metric, got {other:?}"),
        }
    };
    assert!(
        metric("verify.plans_checked") >= 2.0,
        "one plan-time check per distinct statement"
    );
    assert_eq!(metric("verify.violations"), 0.0);
}

#[test]
fn memoized_hits_skip_the_walk_until_the_catalog_moves() {
    let db = seeded(EngineConfig::default().with_verify_plans(true));
    let sql = "SELECT n FROM t WHERE n = 1";
    db.query(sql).unwrap();
    let after_first = db.telemetry().verify_plans_checked.get();
    db.query(sql).unwrap();
    assert_eq!(
        db.telemetry().verify_plans_checked.get(),
        after_first,
        "a hit at the same catalog version is memoized"
    );
    db.execute("INSERT INTO t VALUES (1000, 'x', 1.0)").unwrap();
    db.query(sql).unwrap();
    assert!(
        db.telemetry().verify_plans_checked.get() > after_first,
        "a catalog change forces a fresh walk"
    );
    assert_eq!(db.telemetry().verify_violations.get(), 0);
}

#[test]
fn verifier_off_means_zero_checks() {
    let db = seeded(EngineConfig::default().with_verify_plans(false));
    for sql in QUERIES {
        db.query(sql).unwrap();
        db.query(sql).unwrap();
    }
    db.query_with("SELECT n FROM t WHERE n = ?", &[Value::Int(3)])
        .unwrap();
    assert_eq!(
        db.telemetry().verify_plans_checked.get(),
        0,
        "disabled verifier must never walk a plan"
    );
    assert_eq!(db.telemetry().verify_violations.get(), 0);
}

#[test]
fn explain_verify_runs_even_when_verifier_disabled() {
    // `EXPLAIN (VERIFY)` is an explicit request: it works regardless of
    // `verify_plans`, and its run shows up in the counters.
    let db = seeded(EngineConfig::default().with_verify_plans(false));
    let r = db
        .execute("EXPLAIN (VERIFY) SELECT n FROM t WHERE n = 5")
        .unwrap()
        .into_rows()
        .unwrap();
    assert_eq!(r.rows.len(), 5);
    assert!(r.rows.iter().all(|row| row[1].to_string() == "ok"));
    assert_eq!(db.telemetry().verify_plans_checked.get(), 1);
}

#[test]
fn template_slot_gaps_are_counted_but_do_not_abort() {
    // `SELECT ?3` leaves slots 1–2 unreachable: the verifier records the
    // orphan slots, but the statement still fails (or succeeds) exactly as
    // it did before the verifier existed — under-binding stays the clearer
    // parameter error.
    let db = seeded(EngineConfig::default().with_verify_plans(true));
    let err = db
        .query_with("SELECT ?3 FROM t WHERE n = 0", &[Value::Int(1)])
        .unwrap_err();
    assert!(
        matches!(err, sqlengine::EngineError::Parameter(_)),
        "under-binding keeps its parameter error, got {err:?}"
    );
    assert!(
        db.telemetry().verify_violations.get() > 0,
        "the orphan slots were still recorded as violations"
    );
    // Fully bound, the statement succeeds while the gap stays visible to
    // EXPLAIN (VERIFY).
    let r = db
        .query_with(
            "SELECT ?3 FROM t WHERE n = 0",
            &[Value::Int(1), Value::Int(2), Value::Int(9)],
        )
        .unwrap();
    assert_eq!(r.rows[0][0], Value::Int(9));
}

// ---------------------------------------------------------------------
// Overhead bound: verifier on vs off on the cached parameterized path
// ---------------------------------------------------------------------

#[test]
fn verify_overhead_on_cached_parameterized_path_is_bounded() {
    // The serving hot path: a parameterized point lookup served from the
    // plan-cache template. Interleaved min-of-batches (see the telemetry
    // overhead test) keeps the comparison robust to scheduler noise — the
    // bound only needs one quiet window.
    let sql = "SELECT n, s, w FROM t WHERE n = ?";
    let on = seeded(EngineConfig::default().with_verify_plans(true));
    let off = seeded(EngineConfig::default().with_verify_plans(false));
    for i in 0..5 {
        on.query_with(sql, &[Value::Int(i)]).unwrap();
        off.query_with(sql, &[Value::Int(i)]).unwrap();
    }

    let batch = |db: &Database| {
        let started = Instant::now();
        for i in 0..16i64 {
            db.query_with(sql, &[Value::Int(i * 7 % 500)]).unwrap();
        }
        started.elapsed()
    };
    let mut best_ratio = f64::MAX;
    for attempt in 0..6 {
        let (mut best_on, mut best_off) = (Duration::MAX, Duration::MAX);
        for _ in 0..20 {
            best_on = best_on.min(batch(&on));
            best_off = best_off.min(batch(&off));
        }
        let ratio = best_on.as_secs_f64() / best_off.as_secs_f64();
        best_ratio = best_ratio.min(ratio);
        if best_ratio < 1.05 {
            break;
        }
        eprintln!("attempt {attempt}: ratio {ratio:.3} (on={best_on:?} off={best_off:?})");
    }
    assert!(
        best_ratio < 1.05,
        "verifier overhead on the cached path must stay small (best ratio {best_ratio:.3})"
    );
    // Sanity: the verifying side actually verified (once per plan + catalog
    // version — the walk is memoized, which is what makes the bound easy to
    // meet), and the disabled side never did.
    assert!(on.telemetry().verify_plans_checked.get() >= 1);
    assert_eq!(on.telemetry().verify_violations.get(), 0);
    assert_eq!(off.telemetry().verify_plans_checked.get(), 0);
}
