//! Seeded plan-corruption harness: proves each of the verifier's five
//! invariant classes actually fires. Every test plans a legitimate
//! statement, reaches into the plan cache through the `mutate_cached_plan`
//! test seam to corrupt the physical plan the way a planner or cache bug
//! would, and asserts the next execution is rejected with a spanned
//! `EngineError::Verify` naming the violated class — instead of executing
//! the corrupt plan and returning wrong answers.

use std::collections::HashMap;
use std::sync::Arc;

use sqlengine::expr::PhysExpr;
use sqlengine::plan::{IndexRef, PhysPlan};
use sqlengine::{Database, EngineConfig, EngineError, Value};

fn seeded() -> Database {
    let db = Database::with_config(EngineConfig::default().with_verify_plans(true));
    db.execute("CREATE TABLE t (n INTEGER, s TEXT, w REAL, PRIMARY KEY (n))")
        .unwrap();
    db.execute("CREATE INDEX t_s ON t (s)").unwrap();
    let rows: Vec<Vec<Value>> = (0..100i64)
        .map(|i| {
            vec![
                Value::Int(i),
                Value::text(format!("tok{}", i % 7)),
                Value::Float(i as f64 / 2.0),
            ]
        })
        .collect();
    db.insert_rows("t", rows).unwrap();
    db
}

/// Apply `f` to every node of the plan tree, root first.
fn visit(plan: &mut PhysPlan, f: &mut dyn FnMut(&mut PhysPlan)) {
    f(plan);
    match plan {
        PhysPlan::Scan { .. }
        | PhysPlan::VirtualScan { .. }
        | PhysPlan::IndexScan { .. }
        | PhysPlan::OneRow => {}
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Window { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Limit { input, .. }
        | PhysPlan::Distinct { input } => visit(input, f),
        PhysPlan::HashJoin { left, right, .. } | PhysPlan::NestedLoopJoin { left, right, .. } => {
            visit(left, f);
            visit(right, f);
        }
        PhysPlan::IndexJoin { probe, inner, .. } => {
            visit(probe, f);
            visit(inner, f);
        }
        PhysPlan::UnionAll { inputs } => {
            for i in inputs {
                visit(i, f);
            }
        }
    }
}

/// Plan + cache `sql`, corrupt the cached plan, and return the error the
/// next execution reports. Panics if the corrupted statement still succeeds.
fn corrupt_and_rerun(
    db: &Database,
    sql: &str,
    corrupt: &mut dyn FnMut(&mut PhysPlan),
) -> EngineError {
    db.query(sql)
        .expect("statement is legitimate before corruption");
    assert!(
        db.mutate_cached_plan(sql, &mut |plan| visit(plan, corrupt)),
        "statement must be in the plan cache: {sql}"
    );
    db.query(sql)
        .expect_err("corrupted plan must be rejected, not executed")
}

/// The rejection must be a spanned verification error naming the class.
fn assert_verify_error(sql: &str, err: &EngineError, class: &str, detail: &str) {
    assert!(
        matches!(err, EngineError::Verify { .. }),
        "expected EngineError::Verify, got {err:?}"
    );
    let msg = err.to_string();
    assert!(
        msg.contains(&format!("[{class}]")),
        "error must name the violated class {class}: {msg}"
    );
    assert!(
        msg.contains(detail),
        "error must carry the diagnostic detail {detail:?}: {msg}"
    );
    assert!(msg.contains("at byte"), "diagnostic is spanned: {msg}");
    let rendered = err.display_with_source(sql);
    assert!(
        rendered.contains('^'),
        "source rendering points at the statement: {rendered}"
    );
}

// ---------------------------------------------------------------------
// Class 1: schema — arity/type agreement between nodes
// ---------------------------------------------------------------------

#[test]
fn schema_corruption_out_of_range_column_is_rejected() {
    let db = seeded();
    let sql = "SELECT n, s FROM t";
    // A projection referencing column #99 of a 3-column input: the shape a
    // planner off-by-one or a cache cross-wire would produce.
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::Project { exprs, .. } = plan {
            exprs[0] = PhysExpr::Column(99);
        }
    });
    assert_verify_error(sql, &err, "schema", "column reference #99");
    assert!(db.telemetry().verify_violations.get() > 0);
}

#[test]
fn schema_corruption_root_arity_mismatch_is_rejected() {
    let db = seeded();
    let sql = "SELECT n, s, w FROM t WHERE n < 10";
    // Root suddenly produces one column while sema promised three.
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::Project { exprs, .. } = plan {
            exprs.truncate(1);
        }
    });
    assert_verify_error(sql, &err, "schema", "root produces 1 column(s)");
}

// ---------------------------------------------------------------------
// Class 2: index-keys — index references resolve against the live catalog
// ---------------------------------------------------------------------

#[test]
fn index_corruption_dangling_index_name_is_rejected() {
    let db = seeded();
    let sql = "SELECT n FROM t WHERE n = 42";
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::IndexScan { index_name, .. } = plan {
            *index_name = "no_such_index".to_string();
        }
    });
    assert_verify_error(sql, &err, "index-keys", "no index named 'no_such_index'");
}

#[test]
fn index_corruption_stale_snapshot_is_rejected() {
    let db = seeded();
    let sql = "SELECT n FROM t WHERE n = 7";
    // Swap the plan's index snapshot for a foreign map: the catalog version
    // still matches, so only the pointer-identity check can catch it.
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::IndexScan { index, .. } = plan {
            *index = IndexRef::Unique(Arc::new(HashMap::new()));
        }
    });
    assert_verify_error(sql, &err, "index-keys", "stale");
}

// ---------------------------------------------------------------------
// Class 3: vectorized-mode — chunk image consistent with the row snapshot
// ---------------------------------------------------------------------

#[test]
fn vectorized_corruption_chunk_row_mismatch_is_rejected() {
    let db = seeded();
    // Vectorized-eligible filter chain; the first execution builds the
    // columnar image, so the cached plan carries a built chunk slot.
    let sql = "SELECT w FROM t WHERE w > 1.0";
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::Scan { rows, .. } = plan {
            let truncated: Vec<_> = rows.iter().take(rows.len() - 1).cloned().collect();
            *rows = Arc::new(truncated);
        }
    });
    assert_verify_error(sql, &err, "vectorized-mode", "chunk image");
}

// ---------------------------------------------------------------------
// Class 4: param-slots — executable plans carry no unbound parameters
// ---------------------------------------------------------------------

#[test]
fn param_corruption_unbound_slot_is_rejected() {
    let db = seeded();
    // A statement with no parameters: its cached plan claims to be fully
    // bound, so a leftover `?1` marker is corruption, not a template.
    let sql = "SELECT n FROM t WHERE w > 1.0";
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::Filter { predicate, .. } = plan {
            *predicate = PhysExpr::Param(1);
        }
    });
    assert_verify_error(sql, &err, "param-slots", "unbound parameter slot ?1");
}

// ---------------------------------------------------------------------
// Class 5: merge-determinism — parallel merges keep arity agreement
// ---------------------------------------------------------------------

#[test]
fn union_corruption_arity_disagreement_is_rejected() {
    let db = seeded();
    let sql = "SELECT n FROM t WHERE n < 3 UNION ALL SELECT n FROM t WHERE n > 96";
    let err = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::UnionAll { inputs } = plan {
            inputs.push(PhysPlan::OneRow);
        }
    });
    assert_verify_error(sql, &err, "merge-determinism", "arity agreement");
}

// ---------------------------------------------------------------------
// Corruption is observable, not fatal to the engine
// ---------------------------------------------------------------------

#[test]
fn rejected_plan_leaves_engine_usable_and_counters_accurate() {
    let db = seeded();
    let sql = "SELECT n FROM t WHERE n = 42";
    let _ = corrupt_and_rerun(&db, sql, &mut |plan| {
        if let PhysPlan::IndexScan { index_name, .. } = plan {
            *index_name = "gone".to_string();
        }
    });
    let violations = db.telemetry().verify_violations.get();
    assert!(violations > 0);
    // Unrelated statements keep working, and a fresh statement replans
    // cleanly without touching the poisoned cache entry.
    let r = db.query("SELECT COUNT(*) FROM t WHERE n >= 0").unwrap();
    assert_eq!(r.rows[0][0], Value::Int(100));
    assert_eq!(
        db.telemetry().verify_violations.get(),
        violations,
        "clean statements add no violations"
    );
}
