//! Negative tests: every class of user error must surface as a typed
//! `EngineError`, never a panic or silent wrong answer.

use sqlengine::{Database, EngineError, Value};

fn db_with_t() -> Database {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER, b TEXT); INSERT INTO t VALUES (1, 'x');")
        .unwrap();
    db
}

#[test]
fn lex_errors() {
    let db = Database::new();
    assert!(matches!(
        db.execute("SELECT 'unterminated"),
        Err(EngineError::Lex { .. })
    ));
    assert!(matches!(
        db.execute("SELECT ^"),
        Err(EngineError::Lex { .. })
    ));
}

#[test]
fn parse_errors() {
    let db = Database::new();
    for sql in [
        "SELEC 1",
        "SELECT FROM t",
        "SELECT 1 FROM",
        "INSERT t VALUES (1)",
        "CREATE TABLE (a INTEGER)",
        "SELECT * FROM t WHERE",
        "SELECT CASE END",
        "DELETE t",
        "SELECT 1 GROUP 2",
    ] {
        assert!(
            matches!(db.execute(sql), Err(EngineError::Parse { .. })),
            "expected parse error for {sql:?}"
        );
    }
}

#[test]
fn plan_errors() {
    let db = db_with_t();
    // These were plan/catalog errors before the semantic analyzer existed;
    // now every one is caught statically before planning.
    for sql in [
        "SELECT * FROM missing",                    // unknown table
        "SELECT zzz FROM t",                        // unknown column
        "SELECT x.a FROM t",                        // unknown qualifier
        "SELECT NOSUCHFUNC(a) FROM t",              // unknown function
        "SELECT POW(a) FROM t",                     // wrong arity
        "SELECT a FROM t HAVING a > 1",             // HAVING without aggregate
        "SELECT a FROM t ORDER BY 99",              // ordinal out of range
        "SELECT SUM(a) FROM t GROUP BY a LIMIT x",  // non-constant limit
        "SELECT a FROM t UNION SELECT a, b FROM t", // width mismatch
    ] {
        let result = db.execute(sql);
        assert!(
            matches!(result, Err(EngineError::Sema { .. })),
            "expected sema error for {sql:?}, got {result:?}"
        );
    }
}

#[test]
fn ambiguous_column_is_reported() {
    let db = Database::new();
    db.execute_script("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER);")
        .unwrap();
    let err = db.query("SELECT x FROM a, b").unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn exec_errors() {
    let db = db_with_t();
    // `a / 0` is not a compile-time constant (the left side is a column),
    // so division by zero still surfaces at execution time.
    assert!(matches!(
        db.query("SELECT a / 0 FROM t"),
        Err(EngineError::Exec(_))
    ));
    // int + text involves a declared TEXT column, so the analyzer rejects
    // it statically now.
    assert!(matches!(
        db.query("SELECT a + b FROM t"),
        Err(EngineError::Sema { .. })
    ));
    // Wrong arity on insert.
    assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
}

#[test]
fn parameter_errors() {
    let db = db_with_t();
    assert!(matches!(
        db.query("SELECT ? FROM t"),
        Err(EngineError::Parameter(_))
    ));
    assert!(matches!(
        db.query_with("SELECT ?3 FROM t", &[Value::Int(1)]),
        Err(EngineError::Parameter(_))
    ));
}

#[test]
fn catalog_errors() {
    let db = db_with_t();
    assert!(matches!(
        db.execute("CREATE TABLE t (x INTEGER)"),
        Err(EngineError::Catalog(_))
    ));
    assert!(matches!(
        db.execute("DROP TABLE nothere"),
        Err(EngineError::Catalog(_))
    ));
    assert!(matches!(
        db.execute("CREATE INDEX i ON t (nosuchcol)"),
        Err(EngineError::Catalog(_))
    ));
}

#[test]
fn on_conflict_without_unique_index_is_rejected() {
    let db = Database::new();
    db.execute("CREATE TABLE plain (a INTEGER, b REAL)")
        .unwrap();
    let err = db
        .execute(
            "INSERT INTO plain VALUES (1, 2.0) \
             ON CONFLICT (a) DO UPDATE SET b = plain.b + excluded.b",
        )
        .unwrap_err();
    assert!(err.to_string().contains("unique index"), "{err}");
}

#[test]
fn on_conflict_target_mismatch_is_rejected() {
    let db = Database::new();
    db.execute("CREATE TABLE k (a INTEGER, b INTEGER, PRIMARY KEY (a))")
        .unwrap();
    let err = db
        .execute("INSERT INTO k VALUES (1, 2) ON CONFLICT (b) DO NOTHING")
        .unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn aggregate_in_where_is_rejected() {
    let db = db_with_t();
    assert!(db.query("SELECT a FROM t WHERE SUM(a) > 1").is_err());
}

#[test]
fn error_messages_name_the_offender() {
    let db = db_with_t();
    let err = db.query("SELECT missing_col FROM t").unwrap_err();
    assert!(err.to_string().contains("missing_col"), "{err}");
    let err = db.query("SELECT * FROM missing_table").unwrap_err();
    assert!(err.to_string().contains("missing_table"), "{err}");
}

#[test]
fn failed_statement_leaves_state_untouched() {
    let db = db_with_t();
    // A failing UPDATE (type error mid-way) must not corrupt the table.
    let before = db.query("SELECT * FROM t").unwrap();
    let _ = db.execute("UPDATE t SET a = a + b"); // int + text → error
    let after = db.query("SELECT * FROM t").unwrap();
    assert_eq!(before, after);
}
