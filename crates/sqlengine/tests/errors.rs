//! Negative tests: every class of user error must surface as a typed
//! `EngineError`, never a panic or silent wrong answer.

use std::time::Duration;

use sqlengine::{Database, EngineConfig, EngineError, Value};

fn db_with_t() -> Database {
    let db = Database::new();
    db.execute_script("CREATE TABLE t (a INTEGER, b TEXT); INSERT INTO t VALUES (1, 'x');")
        .unwrap();
    db
}

#[test]
fn lex_errors() {
    let db = Database::new();
    assert!(matches!(
        db.execute("SELECT 'unterminated"),
        Err(EngineError::Lex { .. })
    ));
    assert!(matches!(
        db.execute("SELECT ^"),
        Err(EngineError::Lex { .. })
    ));
}

#[test]
fn parse_errors() {
    let db = Database::new();
    for sql in [
        "SELEC 1",
        "SELECT FROM t",
        "SELECT 1 FROM",
        "INSERT t VALUES (1)",
        "CREATE TABLE (a INTEGER)",
        "SELECT * FROM t WHERE",
        "SELECT CASE END",
        "DELETE t",
        "SELECT 1 GROUP 2",
    ] {
        assert!(
            matches!(db.execute(sql), Err(EngineError::Parse { .. })),
            "expected parse error for {sql:?}"
        );
    }
}

#[test]
fn plan_errors() {
    let db = db_with_t();
    // These were plan/catalog errors before the semantic analyzer existed;
    // now every one is caught statically before planning.
    for sql in [
        "SELECT * FROM missing",                    // unknown table
        "SELECT zzz FROM t",                        // unknown column
        "SELECT x.a FROM t",                        // unknown qualifier
        "SELECT NOSUCHFUNC(a) FROM t",              // unknown function
        "SELECT POW(a) FROM t",                     // wrong arity
        "SELECT a FROM t HAVING a > 1",             // HAVING without aggregate
        "SELECT a FROM t ORDER BY 99",              // ordinal out of range
        "SELECT SUM(a) FROM t GROUP BY a LIMIT x",  // non-constant limit
        "SELECT a FROM t UNION SELECT a, b FROM t", // width mismatch
    ] {
        let result = db.execute(sql);
        assert!(
            matches!(result, Err(EngineError::Sema { .. })),
            "expected sema error for {sql:?}, got {result:?}"
        );
    }
}

#[test]
fn ambiguous_column_is_reported() {
    let db = Database::new();
    db.execute_script("CREATE TABLE a (x INTEGER); CREATE TABLE b (x INTEGER);")
        .unwrap();
    let err = db.query("SELECT x FROM a, b").unwrap_err();
    assert!(err.to_string().contains("ambiguous"), "{err}");
}

#[test]
fn exec_errors() {
    let db = db_with_t();
    // `a / 0` is not a compile-time constant (the left side is a column),
    // so division by zero still surfaces at execution time.
    assert!(matches!(
        db.query("SELECT a / 0 FROM t"),
        Err(EngineError::Exec(_))
    ));
    // int + text involves a declared TEXT column, so the analyzer rejects
    // it statically now.
    assert!(matches!(
        db.query("SELECT a + b FROM t"),
        Err(EngineError::Sema { .. })
    ));
    // Wrong arity on insert.
    assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
}

#[test]
fn parameter_errors() {
    let db = db_with_t();
    assert!(matches!(
        db.query("SELECT ? FROM t"),
        Err(EngineError::Parameter(_))
    ));
    assert!(matches!(
        db.query_with("SELECT ?3 FROM t", &[Value::Int(1)]),
        Err(EngineError::Parameter(_))
    ));
}

#[test]
fn catalog_errors() {
    let db = db_with_t();
    assert!(matches!(
        db.execute("CREATE TABLE t (x INTEGER)"),
        Err(EngineError::Catalog(_))
    ));
    assert!(matches!(
        db.execute("DROP TABLE nothere"),
        Err(EngineError::Catalog(_))
    ));
    assert!(matches!(
        db.execute("CREATE INDEX i ON t (nosuchcol)"),
        Err(EngineError::Catalog(_))
    ));
}

#[test]
fn on_conflict_without_unique_index_is_rejected() {
    let db = Database::new();
    db.execute("CREATE TABLE plain (a INTEGER, b REAL)")
        .unwrap();
    let err = db
        .execute(
            "INSERT INTO plain VALUES (1, 2.0) \
             ON CONFLICT (a) DO UPDATE SET b = plain.b + excluded.b",
        )
        .unwrap_err();
    assert!(err.to_string().contains("unique index"), "{err}");
}

#[test]
fn on_conflict_target_mismatch_is_rejected() {
    let db = Database::new();
    db.execute("CREATE TABLE k (a INTEGER, b INTEGER, PRIMARY KEY (a))")
        .unwrap();
    let err = db
        .execute("INSERT INTO k VALUES (1, 2) ON CONFLICT (b) DO NOTHING")
        .unwrap_err();
    assert!(err.to_string().contains("does not match"), "{err}");
}

#[test]
fn aggregate_in_where_is_rejected() {
    let db = db_with_t();
    assert!(db.query("SELECT a FROM t WHERE SUM(a) > 1").is_err());
}

#[test]
fn error_messages_name_the_offender() {
    let db = db_with_t();
    let err = db.query("SELECT missing_col FROM t").unwrap_err();
    assert!(err.to_string().contains("missing_col"), "{err}");
    let err = db.query("SELECT * FROM missing_table").unwrap_err();
    assert!(err.to_string().contains("missing_table"), "{err}");
}

/// Build a table big enough that a self cross join cannot finish within a
/// millisecond-scale statement timeout.
fn heavy_db(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE big (n INTEGER, w REAL)").unwrap();
    let values: Vec<String> = (0..2000).map(|i| format!("({i}, {i}.5)")).collect();
    db.execute(&format!("INSERT INTO big VALUES {}", values.join(", ")))
        .unwrap();
    db
}

#[test]
fn timeout_error_display_is_pinned_and_retryable() {
    let db = heavy_db(EngineConfig::default().with_statement_timeout(Duration::from_millis(1)));
    let err = db
        .query("SELECT COUNT(*) FROM big a, big b WHERE a.n + b.n > 0")
        .unwrap_err();
    assert!(matches!(err, EngineError::Timeout), "{err:?}");
    // The prefix is load-bearing: clients match on it to decide to retry.
    assert_eq!(err.to_string(), "timeout: statement timeout exceeded");
    assert!(err.is_retryable());
}

#[test]
fn resource_exhausted_display_is_pinned_and_retryable() {
    // A 4 KiB budget cannot hold a hash-join build side over 2000 rows.
    let db = heavy_db(EngineConfig::default().with_memory_budget(4096));
    let err = db
        .query("SELECT COUNT(*) FROM big a JOIN big b ON a.n = b.n")
        .unwrap_err();
    assert!(
        matches!(err, EngineError::ResourceExhausted { .. }),
        "{err:?}"
    );
    let msg = err.to_string();
    assert!(msg.starts_with("resource exhausted"), "{msg}");
    assert!(msg.contains("memory budget"), "{msg}");
    assert!(err.is_retryable());
}

#[test]
fn overloaded_display_is_pinned_and_retryable() {
    // A zero-depth queue with one slot taken sheds immediately; hold the
    // only slot with a concurrent heavy statement.
    let db = std::sync::Arc::new(heavy_db(
        EngineConfig::default()
            .with_max_concurrent_statements(1)
            .with_admission_queue_depth(0),
    ));
    let db2 = std::sync::Arc::clone(&db);
    let busy = std::thread::spawn(move || {
        db2.query("SELECT COUNT(*) FROM big a, big b WHERE a.n + b.n > 0")
            .unwrap()
    });
    // Poll until we collide with the busy statement (or it finishes first,
    // in which case the loop below must have seen at least one collision —
    // the busy query takes far longer than the polling interval).
    let mut overloaded = None;
    for _ in 0..5_000 {
        match db.query("SELECT 1") {
            Err(e) => {
                overloaded = Some(e);
                break;
            }
            Ok(_) => std::thread::sleep(Duration::from_micros(100)),
        }
    }
    let err = overloaded.expect("never collided with the busy statement");
    assert!(matches!(err, EngineError::Overloaded(_)), "{err:?}");
    let msg = err.to_string();
    assert!(msg.starts_with("overloaded:"), "{msg}");
    assert!(msg.contains("queue is full"), "{msg}");
    assert!(err.is_retryable());
    busy.join().unwrap();
}

#[test]
fn retryable_taxonomy_is_pinned() {
    // Transient-engine errors are retryable; request defects are not.
    assert!(EngineError::Timeout.is_retryable());
    let wal = EngineError::Wal("fsync failed".into());
    assert!(wal.is_retryable());
    assert!(wal.to_string().starts_with("durability error:"), "{wal}");
    let db = db_with_t();
    for sql in ["SELEC 1", "SELECT zzz FROM t", "SELECT a / 0 FROM t"] {
        let err = db.query(sql).unwrap_err();
        assert!(
            !err.is_retryable(),
            "{sql:?} should not be retryable: {err}"
        );
    }
}

#[test]
fn failed_statement_leaves_state_untouched() {
    let db = db_with_t();
    // A failing UPDATE (type error mid-way) must not corrupt the table.
    let before = db.query("SELECT * FROM t").unwrap();
    let _ = db.execute("UPDATE t SET a = a + b"); // int + text → error
    let after = db.query("SELECT * FROM t").unwrap();
    assert_eq!(before, after);
}
