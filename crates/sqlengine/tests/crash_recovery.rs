//! Crash-consistency and fault-injection tests for the durability subsystem.
//!
//! The central property: **every** crash point yields a recovered database
//! whose state is exactly the state after some prefix of the committed
//! batches — never a torn record, never a panic, never a half-applied
//! statement. The tests drive the same `Database` API applications use,
//! against the in-memory and failpoint storage backends.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use sqlengine::wal::WAL_FILE;
use sqlengine::{
    Database, EngineConfig, EngineError, FaultKind, FaultyIo, MemIo, Snapshot, StorageIo,
    SyncPolicy, Value,
};

/// A durable database over the given backend, fsync on every batch, no
/// automatic checkpointing (tests drive checkpoints explicitly).
fn open_always(io: Arc<dyn StorageIo>) -> Database {
    Database::open_with_io(
        io,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_checkpoint_after_bytes(0),
    )
    .unwrap()
}

/// Canonical JSON of the database's entire logical state.
fn state_json(db: &Database) -> String {
    Snapshot::capture(db).unwrap().to_json().unwrap()
}

/// The mutating workload the crash tests run: one WAL batch per entry.
/// Exercises every op kind (create/drop table, create index, insert,
/// upsert-replace, delete) plus an explicit transaction.
const WORKLOAD: &[&str] = &[
    "CREATE TABLE t (id INTEGER PRIMARY KEY, tag TEXT, w REAL)",
    "INSERT INTO t VALUES (1, 'a', 0.5), (2, 'b', 1.5), (3, 'a', 2.5)",
    "CREATE INDEX t_tag ON t (tag)",
    "UPDATE t SET w = w * 2.0 WHERE tag = 'a'",
    "INSERT INTO t VALUES (2, 'b', 9.0) ON CONFLICT (id) DO UPDATE SET w = t.w + excluded.w",
    "DELETE FROM t WHERE id = 3",
    "CREATE TABLE u AS SELECT tag, COUNT(*) AS n FROM t GROUP BY tag",
    "INSERT INTO t VALUES (10, 'c', 0.25), (11, 'c', 0.75)",
    "DROP TABLE u",
    "BEGIN; INSERT INTO t VALUES (20, 'd', 4.0); UPDATE t SET w = 0.0 WHERE id = 1; COMMIT;",
    "INSERT INTO t SELECT id + 100, tag, w FROM t WHERE tag = 'c'",
];

/// Run the workload, returning the expected state after each completed
/// batch: `states[i]` is the state once `i` batches are durable.
fn run_workload(db: &Database) -> Vec<String> {
    let mut states = vec![state_json(db)];
    for sql in WORKLOAD {
        db.execute_script(sql).unwrap();
        states.push(state_json(db));
    }
    states
}

#[test]
fn every_wal_prefix_recovers_to_a_batch_boundary() {
    let io = Arc::new(MemIo::new());
    let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
    let states = run_workload(&db);

    let wal = io.read(WAL_FILE).unwrap().unwrap();
    let bounds = sqlengine::wal::frame_boundaries(&wal);
    assert_eq!(
        bounds.len(),
        WORKLOAD.len(),
        "each workload entry must produce exactly one batch"
    );

    // Kill the log at every byte: recovery must land exactly on the state
    // after the last complete frame, and must itself truncate the tail.
    for cut in 0..=wal.len() {
        let files: HashMap<String, Vec<u8>> =
            HashMap::from([(WAL_FILE.to_string(), wal[..cut].to_vec())]);
        let io = Arc::new(MemIo::from_files(files));
        let recovered = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
        let n_complete = bounds.iter().filter(|(_, end, _)| *end <= cut).count();
        assert_eq!(
            state_json(&recovered),
            states[n_complete],
            "cut at byte {cut}: expected the state after {n_complete} batches"
        );
        // The torn tail is gone from storage.
        let len = io.size(WAL_FILE).unwrap() as usize;
        assert!(len <= cut, "recovery must never grow the log");
        // Sampled (for runtime): the recovered database accepts new writes
        // and a further reopen sees them — sequence numbers stayed coherent.
        if cut % 251 == 0 && n_complete >= 1 {
            recovered
                .execute("INSERT INTO t VALUES (900, 'z', 1.0)")
                .unwrap();
            let reopened = open_always(Arc::new(MemIo::from_files(io.process_crash_files())));
            let has = reopened
                .query_scalar("SELECT COUNT(*) FROM t WHERE id = 900")
                .unwrap();
            assert_eq!(has, Value::Int(1), "cut at byte {cut}");
        }
    }
}

#[test]
fn process_crash_at_every_write_is_prefix_consistent() {
    // Reference run: what the states after each batch look like.
    let reference = {
        let io = Arc::new(MemIo::new());
        let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
        run_workload(&db)
    };

    // Crash at the nth storage write, for every n until the workload runs
    // fault-free. The workload stops at the first error (as a real process
    // would); the recovered state must equal some batch prefix.
    let mut crash_seen = false;
    for n in 0.. {
        let io = Arc::new(FaultyIo::new());
        io.arm(n, FaultKind::Crash);
        let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
        let mut clean = true;
        for sql in WORKLOAD {
            if db.execute_script(sql).is_err() {
                clean = false;
                break;
            }
        }
        if clean && !io.crashed() {
            assert!(crash_seen, "failpoint never fired");
            break;
        }
        crash_seen = true;
        // "Reboot": recover from what survived the crash.
        let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
        let recovered = open_always(survivor as Arc<dyn StorageIo>);
        let state = state_json(&recovered);
        let prefix = reference.iter().position(|s| *s == state);
        assert!(
            prefix.is_some(),
            "crash at write {n}: recovered state matches no batch prefix"
        );
    }
}

/// A group-commit database: same durability contract as [`open_always`]
/// (fsync before ack), with commit coalescing enabled.
fn open_group(io: Arc<dyn StorageIo>) -> Database {
    Database::open_with_io(
        io,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_wal_group_commit(true)
            .with_checkpoint_after_bytes(0),
    )
    .unwrap()
}

#[test]
fn group_commit_every_wal_prefix_recovers_to_a_batch_boundary() {
    let io = Arc::new(MemIo::new());
    let db = open_group(Arc::clone(&io) as Arc<dyn StorageIo>);
    let states = run_workload(&db);

    let wal = io.read(WAL_FILE).unwrap().unwrap();
    let bounds = sqlengine::wal::frame_boundaries(&wal);
    assert_eq!(
        bounds.len(),
        WORKLOAD.len(),
        "serial traffic under group commit still frames one batch per statement"
    );

    // Kill the log at every byte. Even with coalesced appends, recovery must
    // land on a whole-batch prefix — never inside a group.
    for cut in 0..=wal.len() {
        let files: HashMap<String, Vec<u8>> =
            HashMap::from([(WAL_FILE.to_string(), wal[..cut].to_vec())]);
        let recovered = open_group(Arc::new(MemIo::from_files(files)));
        let n_complete = bounds.iter().filter(|(_, end, _)| *end <= cut).count();
        assert_eq!(
            state_json(&recovered),
            states[n_complete],
            "cut at byte {cut}: expected the state after {n_complete} batches"
        );
    }
}

#[test]
fn group_commit_process_crash_at_every_write_is_prefix_consistent() {
    let reference = {
        let io = Arc::new(MemIo::new());
        let db = open_group(Arc::clone(&io) as Arc<dyn StorageIo>);
        run_workload(&db)
    };

    let mut crash_seen = false;
    for n in 0.. {
        let io = Arc::new(FaultyIo::new());
        io.arm(n, FaultKind::Crash);
        let db = open_group(Arc::clone(&io) as Arc<dyn StorageIo>);
        let mut clean = true;
        for sql in WORKLOAD {
            if db.execute_script(sql).is_err() {
                clean = false;
                break;
            }
        }
        if clean && !io.crashed() {
            assert!(crash_seen, "failpoint never fired");
            break;
        }
        crash_seen = true;
        let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
        let recovered = open_group(survivor as Arc<dyn StorageIo>);
        let state = state_json(&recovered);
        let prefix = reference.iter().position(|s| *s == state);
        assert!(
            prefix.is_some(),
            "crash at write {n}: recovered state matches no batch prefix"
        );
    }
}

#[test]
fn group_commit_acked_writes_survive_concurrent_crash() {
    let io = Arc::new(MemIo::new());
    let db = open_group(Arc::clone(&io) as Arc<dyn StorageIo>);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    // Concurrent committers: overlapping waiters are exactly what the flush
    // leader coalesces. Every insert below returned Ok, so every row was
    // acknowledged durable and must survive the crash.
    std::thread::scope(|s| {
        for w in 0..4i64 {
            let db = &db;
            s.spawn(move || {
                for i in 0..25i64 {
                    db.execute_with("INSERT INTO t VALUES (?)", &[Value::Int(w * 100 + i)])
                        .unwrap();
                }
            });
        }
    });

    let recovered = open_group(Arc::new(MemIo::from_files(io.process_crash_files())));
    assert_eq!(
        recovered.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(100),
        "an acknowledged commit was lost under group commit"
    );
}

#[test]
fn acked_commits_survive_power_loss_under_oncommit() {
    let io = Arc::new(MemIo::new());
    let db = Database::open_with_io(
        Arc::clone(&io) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::OnCommit)
            .with_checkpoint_after_bytes(0),
    )
    .unwrap();
    db.execute("CREATE TABLE acked (id INTEGER PRIMARY KEY)")
        .unwrap();
    // Two acknowledged transactions, then un-synced auto-commit traffic.
    db.execute_script("BEGIN; INSERT INTO acked VALUES (1); COMMIT;")
        .unwrap();
    db.execute_script("BEGIN; INSERT INTO acked VALUES (2); COMMIT;")
        .unwrap();
    db.execute("INSERT INTO acked VALUES (3)").unwrap();

    // Power loss: only fsynced bytes survive.
    let survivor = Arc::new(MemIo::from_files(io.power_loss_files()));
    let recovered = open_always(survivor as Arc<dyn StorageIo>);
    let ids = recovered.query("SELECT id FROM acked ORDER BY id").unwrap();
    let ids: Vec<&Value> = ids.rows.iter().map(|r| &r[0]).collect();
    // Every acknowledged COMMIT is present. Row 3 was never fsynced under
    // OnCommit, so it is legitimately gone; what matters is that rows 1 and
    // 2 can never be lost and the log is not torn.
    assert!(ids.contains(&&Value::Int(1)), "acked commit 1 lost");
    assert!(ids.contains(&&Value::Int(2)), "acked commit 2 lost");
    assert!(
        !ids.contains(&&Value::Int(3)),
        "unsynced write survived power loss"
    );

    // Under SyncPolicy::Never even a process crash keeps everything (page
    // cache intact) — only power loss is allowed to drop data.
    let io = Arc::new(MemIo::new());
    let db = Database::open_with_io(
        Arc::clone(&io) as Arc<dyn StorageIo>,
        EngineConfig::default().with_wal_sync(SyncPolicy::Never),
    )
    .unwrap();
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (7)").unwrap();
    let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
    let recovered = open_always(survivor as Arc<dyn StorageIo>);
    assert_eq!(recovered.table_rows("t").unwrap(), 1);
}

#[test]
fn torn_append_is_repaired_and_log_continues() {
    let io = Arc::new(FaultyIo::new());
    let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    // The next WAL append tears after 7 bytes.
    io.arm(0, FaultKind::ShortWrite(7));
    let err = db.execute("INSERT INTO t VALUES (2)").unwrap_err();
    assert!(matches!(err, EngineError::Wal(_)), "got {err:?}");

    // The in-memory state may be ahead of the durable state after a WAL
    // failure (the row was applied before the append), but the *log* must
    // have been repaired: later statements append cleanly after the torn
    // bytes were truncated away, and recovery replays them.
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
    let recovered = open_always(survivor as Arc<dyn StorageIo>);
    let ids = recovered.query("SELECT id FROM t ORDER BY id").unwrap();
    let ids: Vec<&Value> = ids.rows.iter().map(|r| &r[0]).collect();
    assert!(ids.contains(&&Value::Int(1)));
    assert!(ids.contains(&&Value::Int(3)), "post-repair append lost");
    assert!(!ids.contains(&&Value::Int(2)), "torn batch must not replay");
}

#[test]
fn injected_write_error_leaves_database_usable() {
    let io = Arc::new(FaultyIo::new());
    let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    io.arm(0, FaultKind::Error);
    assert!(db.execute("INSERT INTO t VALUES (1)").is_err());
    // Reads and further writes keep working.
    db.query("SELECT COUNT(*) FROM t").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
    let recovered = open_always(survivor as Arc<dyn StorageIo>);
    assert_eq!(
        recovered.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(1)
    );
}

#[test]
fn checkpoint_folds_wal_and_survives_reopen() {
    let io = Arc::new(MemIo::new());
    // Tiny threshold: the automatic trigger fires after every few rows.
    let db = Database::open_with_io(
        Arc::clone(&io) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_checkpoint_after_bytes(256),
    )
    .unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)")
        .unwrap();
    for i in 0..50 {
        db.execute_with(
            "INSERT INTO t VALUES (?, ?)",
            &[Value::Int(i), Value::text(format!("row-{i}"))],
        )
        .unwrap();
    }
    assert!(
        db.wal_bytes().unwrap() < 256 + 128,
        "automatic checkpointing must keep the log bounded, got {:?}",
        db.wal_bytes()
    );
    let survivor = Arc::new(MemIo::from_files(io.process_crash_files()));
    let recovered = open_always(Arc::clone(&survivor) as Arc<dyn StorageIo>);
    assert_eq!(recovered.table_rows("t").unwrap(), 50);

    // Explicit checkpoint truncates the log to zero; state still recovers.
    recovered
        .execute("INSERT INTO t VALUES (99, 'tail')")
        .unwrap();
    recovered.checkpoint().unwrap();
    assert_eq!(recovered.wal_bytes(), Some(0));
    let reopened = open_always(Arc::new(MemIo::from_files(survivor.process_crash_files())));
    assert_eq!(reopened.table_rows("t").unwrap(), 51);
}

#[test]
fn durable_database_round_trips_through_real_files() {
    let dir = std::env::temp_dir().join(format!("sqlengine_durable_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    {
        let db = Database::persistent(&dir).unwrap();
        db.execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT);
             CREATE INDEX t_v ON t (v);
             INSERT INTO t VALUES (1, 'x'), (2, 'y');
             BEGIN; INSERT INTO t VALUES (3, 'z'); COMMIT;",
        )
        .unwrap();
    }
    {
        let db = Database::persistent(&dir).unwrap();
        assert_eq!(db.table_rows("t").unwrap(), 3);
        // The secondary index was recovered (planner can use it) and unique
        // constraints still hold.
        assert!(db.execute("INSERT INTO t VALUES (1, 'dup')").is_err());
        db.execute("DELETE FROM t WHERE v = 'y'").unwrap();
        db.checkpoint().unwrap();
    }
    {
        let db = Database::persistent(&dir).unwrap();
        let r = db.query("SELECT id FROM t ORDER BY id").unwrap();
        assert_eq!(r.rows, vec![vec![Value::Int(1)], vec![Value::Int(3)]]);
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn rolled_back_transaction_writes_nothing_durable() {
    let io = Arc::new(MemIo::new());
    let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    let before = io.size(WAL_FILE).unwrap();
    db.execute_script("BEGIN; INSERT INTO t VALUES (1); INSERT INTO t VALUES (2); ROLLBACK;")
        .unwrap();
    assert_eq!(
        io.size(WAL_FILE).unwrap(),
        before,
        "a rolled-back transaction must not touch the log"
    );
    let recovered = open_always(Arc::new(MemIo::from_files(io.process_crash_files())));
    assert_eq!(recovered.table_rows("t").unwrap(), 0);
}

/// Satellite: a panic in the middle of a write (here: storage panics during
/// the WAL append, while the engine holds its catalog write lock) must not
/// poison the engine — later reads and writes work normally.
#[test]
fn panic_during_write_does_not_poison_the_engine() {
    use std::sync::atomic::{AtomicBool, Ordering};

    struct PanicOnce {
        inner: MemIo,
        armed: AtomicBool,
    }
    impl StorageIo for PanicOnce {
        fn read(&self, name: &str) -> sqlengine::Result<Option<Vec<u8>>> {
            self.inner.read(name)
        }
        fn append(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            if self.armed.swap(false, Ordering::SeqCst) {
                panic!("injected panic inside a write");
            }
            self.inner.append(name, data)
        }
        fn sync(&self, name: &str) -> sqlengine::Result<()> {
            self.inner.sync(name)
        }
        fn write_atomic(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            self.inner.write_atomic(name, data)
        }
        fn truncate(&self, name: &str, len: u64) -> sqlengine::Result<()> {
            self.inner.truncate(name, len)
        }
        fn size(&self, name: &str) -> sqlengine::Result<u64> {
            self.inner.size(name)
        }
    }

    let io = Arc::new(PanicOnce {
        inner: MemIo::new(),
        armed: AtomicBool::new(false),
    });
    let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    io.armed.store(true, Ordering::SeqCst);
    let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        db.execute("INSERT INTO t VALUES (1)")
    }));
    assert!(caught.is_err(), "the injected panic must surface");

    // No lock is left poisoned or held: reads and writes both succeed.
    db.query("SELECT COUNT(*) FROM t").unwrap();
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t WHERE id = 2")
            .unwrap(),
        Value::Int(1)
    );
}

/// Satellite: restoring a snapshot must invalidate cached plans — a query
/// answered before the restore must see the restored data afterwards.
#[test]
fn snapshot_restore_invalidates_cached_plans() {
    // Build a donor snapshot: t with 5 rows.
    let donor = Database::new();
    donor
        .execute_script(
            "CREATE TABLE t (id INTEGER PRIMARY KEY);
             INSERT INTO t VALUES (1), (2), (3), (4), (5);",
        )
        .unwrap();
    let snap = Snapshot::capture(&donor).unwrap().to_json().unwrap();

    let db = Database::with_config(EngineConfig::default().with_plan_cache(true));
    db.execute_script("CREATE TABLE t (id INTEGER PRIMARY KEY); INSERT INTO t VALUES (1);")
        .unwrap();
    let sql = "SELECT COUNT(*) FROM t";
    assert_eq!(db.query_scalar(sql).unwrap(), Value::Int(1));
    // Warm hit on the cached plan.
    assert_eq!(db.query_scalar(sql).unwrap(), Value::Int(1));
    let (hits, _) = db.plan_cache_stats();
    assert!(hits >= 1, "second query must hit the plan cache");

    db.execute("DROP TABLE t").unwrap();
    Snapshot::from_json(&snap)
        .unwrap()
        .restore_into(&db)
        .unwrap();

    // The same SQL text must re-plan against the restored catalog.
    assert_eq!(
        db.query_scalar(sql).unwrap(),
        Value::Int(5),
        "cached plan served stale pre-restore data"
    );
}

/// Satellite: a pathological statement (unconstrained cross join) aborts
/// with `EngineError::Timeout` instead of running unbounded.
#[test]
fn statement_timeout_aborts_pathological_cross_join() {
    fn load(db: &Database) {
        db.execute("CREATE TABLE a (x INTEGER)").unwrap();
        db.execute("CREATE TABLE b (y INTEGER)").unwrap();
        let rows: Vec<Vec<Value>> = (0..200).map(|i| vec![Value::Int(i)]).collect();
        db.insert_rows("a", rows.clone()).unwrap();
        db.insert_rows("b", rows).unwrap();
    }
    // The 200×200 cross join (40k pairs through a non-equi predicate) is
    // forced onto the nested-loop path, which checks the deadline per outer
    // row. An already-expired deadline makes the abort deterministic.
    let cross = "SELECT COUNT(*) FROM a, b WHERE a.x * b.y % 7 = 3";

    let strict = Database::with_config(
        EngineConfig::default().with_statement_timeout(Duration::from_nanos(1)),
    );
    load(&strict);
    let err = strict.query(cross).unwrap_err();
    assert!(matches!(err, EngineError::Timeout), "got {err:?}");

    // A generous budget lets the same query finish.
    let lenient = Database::with_config(
        EngineConfig::default().with_statement_timeout(Duration::from_secs(300)),
    );
    load(&lenient);
    lenient.query(cross).unwrap();
}

/// Columnar chunk caches are derived state: they are never written to the
/// WAL or to checkpoints, start empty after recovery, and are rebuilt
/// lazily by the first vectorized scan — which must answer exactly like
/// the pre-crash database.
#[test]
fn recovery_rebuilds_columnar_chunks_as_derived_state() {
    let io = Arc::new(MemIo::new());
    let db = open_always(Arc::clone(&io) as Arc<dyn StorageIo>);
    db.execute("CREATE TABLE c (tag TEXT, n INTEGER, w REAL)")
        .unwrap();
    // 3 500 rows span four 1024-row chunks; dyadic weights keep SUM exact.
    let rows: Vec<Vec<Value>> = (0..3500i64)
        .map(|i| {
            vec![
                Value::text(format!("t{}", i % 4)),
                Value::Int(i % 50),
                Value::Float((i % 8) as f64 / 4.0),
            ]
        })
        .collect();
    db.insert_rows("c", rows).unwrap();

    let agg = "SELECT tag, COUNT(*) AS cnt, SUM(w) AS sw FROM c WHERE n > 10 \
               GROUP BY tag ORDER BY tag";
    let before = format!("{:?}", db.query(agg).unwrap().rows);
    assert!(
        db.explain(agg).unwrap().contains("mode=vectorized"),
        "the witness query must exercise the vectorized path"
    );
    let built = db
        .query_scalar("SELECT chunk_count FROM sys.tables WHERE name = 'c'")
        .unwrap();
    assert!(
        matches!(built, Value::Int(n) if n >= 4),
        "pre-crash cache should be built: {built:?}"
    );

    // Crash the process; recover from the surviving WAL.
    let recovered = open_always(Arc::new(MemIo::from_files(io.process_crash_files())));
    let after_recovery = recovered
        .query_scalar("SELECT chunk_count FROM sys.tables WHERE name = 'c'")
        .unwrap();
    assert_eq!(
        after_recovery,
        Value::Int(0),
        "chunks are not persisted and must not be rebuilt eagerly"
    );
    assert_eq!(
        format!("{:?}", recovered.query(agg).unwrap().rows),
        before,
        "recovered vectorized aggregate must match pre-crash exactly"
    );
    let rebuilt = recovered
        .query_scalar("SELECT chunk_count FROM sys.tables WHERE name = 'c'")
        .unwrap();
    assert!(
        matches!(rebuilt, Value::Int(n) if n >= 4),
        "the query should have rebuilt the cache lazily: {rebuilt:?}"
    );

    // A row-mode replica recovered from the same files agrees too.
    let row_mode = Database::open_with_io(
        Arc::new(MemIo::from_files(io.process_crash_files())) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_checkpoint_after_bytes(0)
            .with_vectorized(false),
    )
    .unwrap();
    assert_eq!(format!("{:?}", row_mode.query(agg).unwrap().rows), before);
}

/// Satellite: a statement waiting on the group-commit fsync queue respects
/// `statement_timeout`. The flush leader is stuck in a slow fsync; a second
/// committer queued behind it must come back with `EngineError::Timeout`
/// instead of blocking for the full fsync — and the leader's acked commit
/// must still be durable.
#[test]
fn group_commit_queue_wait_respects_statement_timeout() {
    use std::sync::atomic::{AtomicBool, Ordering};

    struct SlowSync {
        inner: MemIo,
        slow: AtomicBool,
    }
    impl StorageIo for SlowSync {
        fn read(&self, name: &str) -> sqlengine::Result<Option<Vec<u8>>> {
            self.inner.read(name)
        }
        fn append(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            self.inner.append(name, data)
        }
        fn sync(&self, name: &str) -> sqlengine::Result<()> {
            if self.slow.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(500));
            }
            self.inner.sync(name)
        }
        fn write_atomic(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
            self.inner.write_atomic(name, data)
        }
        fn truncate(&self, name: &str, len: u64) -> sqlengine::Result<()> {
            self.inner.truncate(name, len)
        }
        fn size(&self, name: &str) -> sqlengine::Result<u64> {
            self.inner.size(name)
        }
    }

    let io = Arc::new(SlowSync {
        inner: MemIo::new(),
        slow: AtomicBool::new(false),
    });
    let db = Arc::new(
        Database::open_with_io(
            Arc::clone(&io) as Arc<dyn StorageIo>,
            EngineConfig::default()
                .with_wal_sync(SyncPolicy::Always)
                .with_wal_group_commit(true)
                .with_checkpoint_after_bytes(0)
                .with_statement_timeout(Duration::from_millis(80)),
        )
        .unwrap(),
    );
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    io.slow.store(true, Ordering::SeqCst);
    let db_leader = Arc::clone(&db);
    let leader = std::thread::spawn(move || db_leader.execute("INSERT INTO t VALUES (1)"));
    // Let the leader win the flush lock and enter the 500 ms fsync.
    std::thread::sleep(Duration::from_millis(50));

    // Queued behind the stuck leader, our 80 ms deadline expires long
    // before the fsync returns.
    let err = db.execute("INSERT INTO t VALUES (2)").unwrap_err();
    assert!(matches!(err, EngineError::Timeout), "{err:?}");
    assert!(err.is_retryable());

    // A slow-but-successful fsync is not an error for the leader: its
    // commit was acked and must survive recovery.
    io.slow.store(false, Ordering::SeqCst);
    leader.join().unwrap().unwrap();

    // The timed-out frame stayed queued (dropping it would tear a hole in
    // the sequence); the next durable statement flushes it along.
    db.execute("INSERT INTO t VALUES (3)").unwrap();

    drop(db);
    let recovered = Database::open_with_io(
        Arc::new(MemIo::from_files(io.inner.process_crash_files())) as Arc<dyn StorageIo>,
        EngineConfig::default()
            .with_wal_sync(SyncPolicy::Always)
            .with_wal_group_commit(true)
            .with_checkpoint_after_bytes(0),
    )
    .unwrap();
    for acked in [1, 3] {
        assert_eq!(
            recovered
                .query_scalar(&format!("SELECT COUNT(*) FROM t WHERE id = {acked}"))
                .unwrap(),
            Value::Int(1),
            "acked row {acked} lost"
        );
    }
}
