//! Transient-IO retry and degraded mode: `EngineConfig::wal_retry` lets the
//! WAL ride out short storage hiccups with a bounded deterministic backoff;
//! an unrepairable failure wedges the log into degraded read-only mode
//! instead of corrupting it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sqlengine::{
    Database, EngineConfig, EngineError, FaultyIo, MemIo, StorageIo, SyncPolicy, Value, WalRetry,
};

fn retry_config(attempts: u32) -> EngineConfig {
    EngineConfig::default()
        .with_wal_sync(SyncPolicy::Always)
        .with_wal_retry(WalRetry {
            attempts,
            backoff: Duration::from_millis(1),
        })
}

fn metric(db: &Database, name: &str) -> f64 {
    let sql = format!("SELECT value FROM sys.metrics WHERE name = '{name}'");
    match db.query(&sql).unwrap().rows[0][0] {
        Value::Float(v) => v,
        ref other => panic!("expected float metric, got {other:?}"),
    }
}

#[test]
fn bounded_retry_rides_out_a_transient_hiccup() {
    let io = Arc::new(FaultyIo::new());
    let db =
        Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, retry_config(5)).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    // The next two storage operations fail, then the backend heals; five
    // attempts are more than enough to ride that out.
    io.arm_transient(2);
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    assert_eq!(io.transient_fired(), 2, "both injected faults fired");
    assert!(metric(&db, "wal.retries") >= 2.0);
    assert_eq!(metric(&db, "wal.degraded"), 0.0);

    // The acked insert is durable: a fresh engine over the same storage
    // recovers it.
    drop(db);
    let db =
        Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, retry_config(5)).unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(1)
    );
}

#[test]
fn default_policy_fails_fast_on_the_first_fault() {
    // WalRetry::default() is one attempt, zero backoff: existing one-shot
    // fault-injection semantics are unchanged unless retry is opted into.
    let io = Arc::new(FaultyIo::new());
    let db = Database::open_with_io(
        Arc::clone(&io) as Arc<dyn StorageIo>,
        EngineConfig::default().with_wal_sync(SyncPolicy::Always),
    )
    .unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    io.arm_transient(1);
    let err = db.execute("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(matches!(err, EngineError::Wal(_)), "{err:?}");
    assert_eq!(metric(&db, "wal.retries"), 0.0);
}

#[test]
fn exhausted_retries_fail_the_statement_and_heal_cleanly() {
    let io = Arc::new(FaultyIo::new());
    let db =
        Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, retry_config(2)).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();

    // Far more faults than attempts: the statement fails with a retryable
    // durability error. Per the documented `EngineError::Wal` contract the
    // in-memory state stays consistent (the row is visible) but the change
    // was never acked as durable.
    io.arm_transient(100);
    let err = db.execute("INSERT INTO t VALUES (1)").unwrap_err();
    assert!(matches!(err, EngineError::Wal(_)), "{err:?}");
    assert!(err.is_retryable());
    assert_eq!(metric(&db, "wal.degraded"), 0.0, "repairable, not wedged");

    // Heal the backend; later durable writes succeed.
    io.arm_transient(0);
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(2)
    );

    // Recovery keeps exactly the acked commit: the failed write's row was
    // never durable and must not resurface.
    drop(db);
    let db =
        Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, retry_config(2)).unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t WHERE id = 2")
            .unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t WHERE id = 1")
            .unwrap(),
        Value::Int(0),
        "unacked write must not survive recovery"
    );
}

/// Storage whose appends *and* truncates fail while the switch is thrown —
/// the unrepairable case (a failed write whose cleanup also fails) that must
/// wedge the WAL into degraded read-only mode rather than corrupt it.
struct FailSwitch {
    inner: MemIo,
    fail: AtomicBool,
}

impl FailSwitch {
    fn check(&self, op: &str) -> sqlengine::Result<()> {
        if self.fail.load(Ordering::SeqCst) {
            Err(EngineError::Wal(format!("injected {op} failure")))
        } else {
            Ok(())
        }
    }
}

impl StorageIo for FailSwitch {
    fn read(&self, name: &str) -> sqlengine::Result<Option<Vec<u8>>> {
        self.inner.read(name)
    }
    fn append(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
        self.check("append")?;
        self.inner.append(name, data)
    }
    fn sync(&self, name: &str) -> sqlengine::Result<()> {
        self.inner.sync(name)
    }
    fn write_atomic(&self, name: &str, data: &[u8]) -> sqlengine::Result<()> {
        self.check("atomic write")?;
        self.inner.write_atomic(name, data)
    }
    fn truncate(&self, name: &str, len: u64) -> sqlengine::Result<()> {
        self.check("truncate")?;
        self.inner.truncate(name, len)
    }
    fn size(&self, name: &str) -> sqlengine::Result<u64> {
        self.inner.size(name)
    }
}

#[test]
fn unrepairable_failure_enters_degraded_read_only_mode() {
    let io = Arc::new(FailSwitch {
        inner: MemIo::new(),
        fail: AtomicBool::new(false),
    });
    let db =
        Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, retry_config(3)).unwrap();
    db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY)")
        .unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();

    io.fail.store(true, Ordering::SeqCst);
    let err = db.execute("INSERT INTO t VALUES (2)").unwrap_err();
    io.fail.store(false, Ordering::SeqCst);

    // The WAL is wedged: degraded mode is sticky (the file length is no
    // longer trusted) even though the backend has healed. The wedging
    // statement itself was applied in memory (consistent, not durable);
    // every *subsequent* write is refused before touching the catalog.
    assert_eq!(metric(&db, "wal.degraded"), 1.0);
    let err2 = db.execute("INSERT INTO t VALUES (3)").unwrap_err();
    assert!(matches!(err2, EngineError::Wal(_)), "{err2:?}");
    assert!(
        err2.to_string().contains("degraded read-only mode"),
        "{err2}"
    );
    assert!(err.is_retryable() && err2.is_retryable());

    // Reads keep serving the consistent in-memory state: rows 1 and 2 are
    // visible, the refused row 3 is not.
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(2)
    );
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t WHERE id = 3")
            .unwrap(),
        Value::Int(0),
        "a refused write must not mutate in-memory state"
    );

    // Reopening re-runs recovery over the healed storage: acked state is
    // intact and the engine writes again.
    drop(db);
    let db =
        Database::open_with_io(Arc::clone(&io) as Arc<dyn StorageIo>, retry_config(3)).unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(1)
    );
    db.execute("INSERT INTO t VALUES (2)").unwrap();
    assert_eq!(
        db.query_scalar("SELECT COUNT(*) FROM t").unwrap(),
        Value::Int(2)
    );
}
