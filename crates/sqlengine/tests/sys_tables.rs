//! Virtual `sys.*` system tables: schema resolution through sema, planning
//! as `VirtualScan`, and full composability with the ordinary relational
//! surface (filter / project / aggregate / join / ORDER BY).

use sqlengine::{Database, Value};

fn sample_db() -> Database {
    let db = Database::new();
    db.execute_script(
        "CREATE TABLE docs (id INTEGER, body TEXT, PRIMARY KEY (id));
         CREATE TABLE labels (id INTEGER, label TEXT);
         CREATE INDEX labels_label ON labels (label);
         INSERT INTO docs VALUES (1, 'a'), (2, 'b'), (3, 'c');
         INSERT INTO labels VALUES (1, 'x'), (2, 'y');",
    )
    .unwrap();
    db
}

fn text(v: &Value) -> &str {
    match v {
        Value::Str(s) => s,
        other => panic!("expected text, got {other:?}"),
    }
}

fn int(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        other => panic!("expected int, got {other:?}"),
    }
}

fn float(v: &Value) -> f64 {
    match v {
        Value::Float(f) => *f,
        Value::Int(i) => *i as f64,
        other => panic!("expected number, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// sys.tables
// ---------------------------------------------------------------------

#[test]
fn sys_tables_reflects_the_catalog() {
    let db = sample_db();
    let r = db
        .query("SELECT name, rows, columns, primary_key, secondary_indexes FROM sys.tables ORDER BY name")
        .unwrap();
    assert_eq!(r.rows.len(), 2);

    assert_eq!(text(&r.rows[0][0]), "docs");
    assert_eq!(int(&r.rows[0][1]), 3);
    assert_eq!(int(&r.rows[0][2]), 2);
    assert_eq!(text(&r.rows[0][3]), "id");
    assert_eq!(int(&r.rows[0][4]), 0);

    assert_eq!(text(&r.rows[1][0]), "labels");
    assert_eq!(int(&r.rows[1][1]), 2);
    assert_eq!(text(&r.rows[1][3]), "");
    assert_eq!(int(&r.rows[1][4]), 1, "labels has one secondary index");
}

#[test]
fn sys_tables_sees_new_tables_and_fresh_row_counts() {
    let db = sample_db();
    let before = db.query_scalar("SELECT COUNT(*) FROM sys.tables").unwrap();
    assert_eq!(int(&before), 2);

    db.execute("CREATE TABLE extra (x INTEGER)").unwrap();
    db.execute("INSERT INTO docs VALUES (4, 'd')").unwrap();

    let r = db
        .query("SELECT name, rows FROM sys.tables WHERE name = 'docs'")
        .unwrap();
    assert_eq!(int(&r.rows[0][1]), 4, "row count is a live snapshot");
    let after = db.query_scalar("SELECT COUNT(*) FROM sys.tables").unwrap();
    assert_eq!(int(&after), 3);
}

#[test]
fn sys_tables_reports_lazy_columnar_chunk_state() {
    let db = sample_db();
    db.execute_script(
        "CREATE TABLE tags (id INTEGER, tag TEXT);
         INSERT INTO tags VALUES (1, 'x'), (2, 'y'), (3, 'x'), (4, 'x');",
    )
    .unwrap();

    // Chunks are derived state, built on first vectorized scan — a freshly
    // written table reports zero.
    let r = db
        .query("SELECT chunk_count, dict_columns FROM sys.tables WHERE name = 'tags'")
        .unwrap();
    assert_eq!(int(&r.rows[0][0]), 0, "chunk caches must be lazy");
    assert_eq!(int(&r.rows[0][1]), 0);

    // An eligible aggregate over the table builds its chunk cache; the
    // low-cardinality TEXT column dictionary-encodes.
    let n = db
        .query_scalar("SELECT COUNT(*) FROM tags WHERE tag = 'x'")
        .unwrap();
    assert_eq!(int(&n), 3);
    let r = db
        .query("SELECT chunk_count, dict_columns FROM sys.tables WHERE name = 'tags'")
        .unwrap();
    assert_eq!(int(&r.rows[0][0]), 1, "4 rows fit one chunk");
    assert_eq!(int(&r.rows[0][1]), 1, "tag column should dictionary-encode");

    // Mutating the table invalidates the cache until the next scan.
    db.execute("DELETE FROM tags WHERE id = 1").unwrap();
    let r = db
        .query("SELECT chunk_count FROM sys.tables WHERE name = 'tags'")
        .unwrap();
    assert_eq!(int(&r.rows[0][0]), 0, "mutation installs a fresh slot");

    // sys.metrics mirrors the catalog-wide totals and the mode counters.
    db.query("SELECT COUNT(*) FROM tags").unwrap();
    let v = db
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'columnar.chunks'")
        .unwrap();
    assert!(float(&v) >= 1.0, "columnar.chunks gauge: {v:?}");
    let ops = db
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'exec.vectorized_ops'")
        .unwrap();
    assert!(float(&ops) >= 1.0, "exec.vectorized_ops counter: {ops:?}");
}

// ---------------------------------------------------------------------
// sys.metrics
// ---------------------------------------------------------------------

#[test]
fn sys_metrics_filters_and_projects_like_a_table() {
    let db = sample_db();
    for _ in 0..3 {
        db.query("SELECT COUNT(*) FROM docs").unwrap();
    }
    let r = db
        .query("SELECT name, kind, value FROM sys.metrics WHERE name = 'statements.total'")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(text(&r.rows[0][1]), "counter");
    assert!(float(&r.rows[0][2]) >= 3.0);
}

#[test]
fn sys_metrics_supports_aggregation_and_aliases() {
    let db = sample_db();
    db.query("SELECT * FROM docs").unwrap();
    let n = db
        .query_scalar("SELECT COUNT(*) FROM sys.metrics m WHERE m.kind = 'counter'")
        .unwrap();
    assert!(int(&n) > 5, "expected a spread of counters, got {n:?}");

    // Histogram-derived gauges appear once statements have run.
    let r = db
        .query("SELECT name FROM sys.metrics WHERE name LIKE 'phase.%' AND value > 0 ORDER BY name")
        .unwrap();
    assert!(
        !r.rows.is_empty(),
        "phase histograms should have non-zero entries"
    );
}

#[test]
fn sys_metrics_exposes_operator_rollups_after_analyze() {
    let db = sample_db();
    db.explain_analyze("SELECT label, COUNT(*) FROM labels GROUP BY label")
        .unwrap();
    let r = db
        .query("SELECT name, value FROM sys.metrics WHERE name LIKE 'op.%.calls'")
        .unwrap();
    assert!(
        !r.rows.is_empty(),
        "EXPLAIN ANALYZE should feed per-operator rollups"
    );
}

// ---------------------------------------------------------------------
// sys.query_log
// ---------------------------------------------------------------------

#[test]
fn sys_query_log_is_filterable_sql() {
    let db = sample_db();
    db.query("SELECT id FROM docs WHERE id = 1").unwrap();
    let r = db
        .query(
            "SELECT sql, status, rows FROM sys.query_log \
             WHERE status = 'ok' AND sql LIKE '%WHERE id = 1%'",
        )
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(int(&r.rows[0][2]), 1);

    // The README example shape: numeric predicate over duration_ms.
    db.query("SELECT COUNT(*) FROM sys.query_log WHERE duration_ms > 10")
        .unwrap();
}

// ---------------------------------------------------------------------
// Sema + planner integration
// ---------------------------------------------------------------------

#[test]
fn sema_resolves_sys_schemas_statically() {
    let db = Database::new();
    // check() runs parse + sema only; passing means the schema resolved.
    let report = db
        .check("SELECT name, value FROM sys.metrics WHERE value > 1.5")
        .unwrap();
    assert_eq!(report.columns.len(), 2);

    let err = db
        .check("SELECT nope FROM sys.metrics")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("nope"),
        "unknown column should be caught: {err}"
    );
}

#[test]
fn unknown_sys_table_is_a_sema_error() {
    let db = Database::new();
    let err = db
        .query("SELECT * FROM sys.nonsense")
        .unwrap_err()
        .to_string();
    assert!(
        err.contains("unknown system table"),
        "expected a dedicated sys error, got: {err}"
    );
}

#[test]
fn explain_shows_a_virtual_scan() {
    let db = sample_db();
    let plan = db
        .explain("SELECT name FROM sys.tables WHERE rows > 0")
        .unwrap();
    assert!(
        plan.contains("VirtualScan sys.tables"),
        "expected a VirtualScan node:\n{plan}"
    );
}

#[test]
fn sys_queries_bypass_the_plan_cache() {
    let db = sample_db();
    // Warm a normal statement into the cache so the baseline is non-trivial.
    db.query("SELECT COUNT(*) FROM docs").unwrap();
    let (h0, m0, e0) = db.plan_cache_metrics();
    for _ in 0..4 {
        db.query("SELECT COUNT(*) FROM sys.metrics").unwrap();
    }
    let (h1, m1, e1) = db.plan_cache_metrics();
    assert_eq!((h0, m0, e0), (h1, m1, e1), "sys.* must not touch the cache");

    // And because nothing is cached, each read is a fresh snapshot:
    let a = db
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'statements.total'")
        .unwrap();
    let b = db
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'statements.total'")
        .unwrap();
    assert!(
        float(&b) > float(&a),
        "second snapshot must observe the first statement"
    );
}

#[test]
fn sys_tables_are_read_only() {
    let db = sample_db();
    assert!(db
        .execute("INSERT INTO sys.metrics VALUES ('x', 'counter', 1.0)")
        .is_err());
    assert!(db.execute("DELETE FROM sys.query_log").is_err());
    assert!(db.execute("DROP TABLE sys.metrics").is_err());
}

#[test]
fn sys_tables_join_with_user_tables() {
    let db = sample_db();
    db.execute_script("CREATE TABLE watch (tname TEXT); INSERT INTO watch VALUES ('docs');")
        .unwrap();
    let r = db
        .query("SELECT t.name, t.rows FROM sys.tables t JOIN watch w ON t.name = w.tname")
        .unwrap();
    assert_eq!(r.rows.len(), 1);
    assert_eq!(text(&r.rows[0][0]), "docs");
    assert_eq!(int(&r.rows[0][1]), 3);
}

#[test]
fn sys_born_models_is_empty_without_models() {
    let db = Database::new();
    let r = db.query("SELECT * FROM sys.born_models").unwrap();
    assert_eq!(r.columns.len(), 9);
    assert!(r.rows.is_empty());
}

#[test]
fn telemetry_disabled_still_serves_sys_tables() {
    let db = Database::with_config(sqlengine::EngineConfig::default().with_telemetry(false));
    db.execute("CREATE TABLE t (x INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1)").unwrap();
    // Catalog reflection works regardless of telemetry...
    let r = db.query("SELECT name, rows FROM sys.tables").unwrap();
    assert_eq!(r.rows.len(), 1);
    // ...but nothing is recorded in the query log or counters.
    let log = db.query("SELECT * FROM sys.query_log").unwrap();
    assert!(log.rows.is_empty());
    let total = db
        .query_scalar("SELECT value FROM sys.metrics WHERE name = 'statements.total'")
        .unwrap();
    assert_eq!(float(&total), 0.0);
}
