//! Index-aware planning and plan-cache tests.
//!
//! The differential half mirrors `parallel_exec.rs`: fixtures come from a
//! deterministic LCG (no external crates), and every query runs twice — once
//! on a default database (index scans + plan cache on) and once on a database
//! with both forced off — asserting identical result sets. Plan shapes are
//! verified through `EXPLAIN` text, cache behaviour through the hit/miss
//! counters, and invalidation through DDL/DML/ROLLBACK sequences.

use sqlengine::{Database, EngineConfig, Value};

/// Tiny deterministic PRNG so fixtures are identical on every run.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }
}

const ROWS: usize = 400;

/// A weights-shaped table (pk on (j, k), secondary on j) plus a small dim
/// table, with NULLs sprinkled into the non-key columns and a keyless table
/// `u` that gets NULLs in its indexed column too.
fn seeded_db(config: EngineConfig) -> Database {
    let db = Database::with_config(config);
    db.execute("CREATE TABLE w (j INTEGER, k INTEGER, v REAL, PRIMARY KEY (j, k))")
        .unwrap();
    db.execute("CREATE INDEX w_j ON w (j)").unwrap();
    db.execute("CREATE TABLE u (j INTEGER, s TEXT)").unwrap();
    db.execute("CREATE INDEX u_j ON u (j)").unwrap();
    db.execute("CREATE TABLE dim (j INTEGER, name TEXT)")
        .unwrap();
    let mut rng = Lcg(0x1D5EED);
    let mut rows = Vec::with_capacity(ROWS);
    let mut seen = std::collections::HashSet::new();
    while rows.len() < ROWS {
        let j = (rng.next() % 50) as i64;
        let k = (rng.next() % 10) as i64;
        if !seen.insert((j, k)) {
            continue;
        }
        let v = (rng.next() % 10_000) as f64 / 100.0;
        rows.push(vec![Value::Int(j), Value::Int(k), Value::Float(v)]);
    }
    db.insert_rows("w", rows).unwrap();
    let mut urows = Vec::new();
    for _ in 0..ROWS {
        let j = if rng.next().is_multiple_of(7) {
            Value::Null
        } else {
            Value::Int((rng.next() % 50) as i64)
        };
        urows.push(vec![j, Value::text(format!("s{}", rng.next() % 20))]);
    }
    db.insert_rows("u", urows).unwrap();
    let mut dim = Vec::new();
    for j in 0..5i64 {
        dim.push(vec![Value::Int(j), Value::text(format!("dim-{j}"))]);
    }
    db.insert_rows("dim", dim).unwrap();
    db
}

fn no_index_config() -> EngineConfig {
    EngineConfig::default()
        .with_index_scans(false)
        .with_plan_cache(false)
}

fn sorted(mut rows: Vec<Vec<Value>>) -> Vec<Vec<Value>> {
    rows.sort();
    rows
}

const QUERIES: &[&str] = &[
    // Primary-index point lookup (full key).
    "SELECT j, k, v FROM w WHERE j = 7 AND k = 3",
    // Reversed operand order and cross-type (Float literal on Int column).
    "SELECT j, k, v FROM w WHERE 7 = j AND k = 3.0",
    // IN-list on both key columns (multi-point lookup).
    "SELECT j, k, v FROM w WHERE j IN (1, 2, 3) AND k IN (0, 5)",
    // NULL in the IN list never matches; NULL equality matches nothing.
    "SELECT j, s FROM u WHERE j IN (4, NULL, 9)",
    "SELECT j, s FROM u WHERE j = NULL",
    // Secondary index with duplicates, plus a residual predicate.
    "SELECT j, s FROM u WHERE j = 12 AND s <> 's3'",
    // Partial key (j only) cannot use the (j, k) primary; must still be right.
    "SELECT j, k, v FROM w WHERE j = 7",
    // Index-nested-loop join: small probe vs indexed w.
    "SELECT w.j, w.k, w.v, dim.name FROM w, dim WHERE w.j = dim.j",
    // The same join written with JOIN ... ON.
    "SELECT w.j, w.v, dim.name FROM w JOIN dim ON w.j = dim.j WHERE w.k = 1",
    // Aggregation over an index lookup.
    "SELECT COUNT(*) AS n, SUM(v) AS sv FROM w WHERE j IN (10, 20, 30)",
];

#[test]
fn index_plans_match_full_scans() {
    let indexed = seeded_db(EngineConfig::default());
    let full = seeded_db(no_index_config());
    for q in QUERIES {
        let a = sorted(indexed.query(q).unwrap().rows);
        let b = sorted(full.query(q).unwrap().rows);
        assert_eq!(a, b, "row mismatch for {q}");
    }
}

#[test]
fn index_plans_match_full_scans_after_delete_and_update() {
    let indexed = seeded_db(EngineConfig::default());
    let full = seeded_db(no_index_config());
    for db in [&indexed, &full] {
        // Incremental delete path (small fraction of rows), then an UPDATE
        // that moves some rows to new index keys, then a bulk delete that
        // triggers the rebuild fallback on `u`.
        db.execute("DELETE FROM w WHERE j = 7 OR k = 9").unwrap();
        db.execute("UPDATE w SET k = k + 100 WHERE j = 11").unwrap();
        db.execute("UPDATE u SET j = 99 WHERE j = 12").unwrap();
        db.execute("DELETE FROM u WHERE s <> 's3' AND s <> 's4'")
            .unwrap();
    }
    let post_queries = [
        "SELECT j, k, v FROM w WHERE j = 7",
        "SELECT j, k, v FROM w WHERE j = 11 AND k = 103",
        "SELECT j, k, v FROM w WHERE j IN (11, 12, 13)",
        "SELECT j, s FROM u WHERE j = 99",
        "SELECT j, s FROM u WHERE j IN (12, 99, NULL)",
        "SELECT w.j, w.k, dim.name FROM w, dim WHERE w.j = dim.j",
    ];
    for q in &post_queries {
        let a = sorted(indexed.query(q).unwrap().rows);
        let b = sorted(full.query(q).unwrap().rows);
        assert_eq!(a, b, "row mismatch for {q}");
    }
}

#[test]
fn explain_shows_index_scan_for_point_lookup() {
    let db = seeded_db(EngineConfig::default());
    let plan = db.explain("SELECT v FROM w WHERE j = 7 AND k = 3").unwrap();
    assert!(plan.contains("IndexScan w.pk (1 keys)"), "plan:\n{plan}");
    let plan = db.explain("SELECT s FROM u WHERE j IN (1, 2, 3)").unwrap();
    assert!(plan.contains("IndexScan u_j (3 keys)"), "plan:\n{plan}");
    // Forced-off config keeps full scans.
    let db = seeded_db(no_index_config());
    let plan = db.explain("SELECT v FROM w WHERE j = 7 AND k = 3").unwrap();
    assert!(!plan.contains("IndexScan"), "plan:\n{plan}");
}

#[test]
fn explain_shows_index_nested_loop_join() {
    let db = seeded_db(EngineConfig::default());
    let plan = db
        .explain("SELECT w.v, dim.name FROM w, dim WHERE w.j = dim.j")
        .unwrap();
    assert!(plan.contains("IndexNestedLoopJoin"), "plan:\n{plan}");
    assert!(plan.contains("IndexScan w_j (probed)"), "plan:\n{plan}");
    // EXPLAIN ANALYZE reports the rows fetched through the index.
    let analyzed = db
        .explain_analyze("SELECT w.v, dim.name FROM w, dim WHERE w.j = dim.j")
        .unwrap();
    assert!(analyzed.contains("IndexScan"), "analyze:\n{analyzed}");
}

#[test]
fn large_in_lists_fall_back_to_filter() {
    let db = seeded_db(EngineConfig::default());
    // 9 × 8 = 72 key combinations exceeds the planner's 64-key cap on the
    // (j, k) primary, so planning falls back to the single-column j index
    // with the k predicate as a residual filter.
    let q = "SELECT v FROM w WHERE j IN (1,2,3,4,5,6,7,8,9) \
             AND k IN (0,1,2,3,4,5,6,7)";
    let plan = db.explain(q).unwrap();
    assert!(!plan.contains("IndexScan w.pk"), "plan:\n{plan}");
    assert!(plan.contains("IndexScan w_j (9 keys)"), "plan:\n{plan}");
    let a = sorted(db.query(q).unwrap().rows);
    let b = sorted(seeded_db(no_index_config()).query(q).unwrap().rows);
    assert_eq!(a, b);

    // A single IN list past the cap keeps the full scan.
    let vals: Vec<String> = (0..70).map(|i| i.to_string()).collect();
    let q = format!("SELECT s FROM u WHERE j IN ({})", vals.join(","));
    let plan = db.explain(&q).unwrap();
    assert!(!plan.contains("IndexScan"), "plan:\n{plan}");
    let a = sorted(db.query(&q).unwrap().rows);
    let b = sorted(seeded_db(no_index_config()).query(&q).unwrap().rows);
    assert_eq!(a, b);
}

#[test]
fn plan_cache_hits_on_repeat_and_serves_fresh_data() {
    let db = seeded_db(EngineConfig::default());
    let q = "SELECT COUNT(*) AS n FROM u WHERE j = 4";
    let first = db.query(q).unwrap();
    let (h0, _) = db.plan_cache_stats();
    let second = db.query(q).unwrap();
    let (h1, _) = db.plan_cache_stats();
    assert_eq!(first, second);
    assert_eq!(h1, h0 + 1, "repeat of the same SQL should hit the cache");

    // DML invalidates: the next run re-plans against the new data.
    db.execute("INSERT INTO u (j, s) VALUES (4, 'fresh')")
        .unwrap();
    let third = db.query(q).unwrap();
    let n = |r: &sqlengine::QueryResult| match r.scalar().unwrap() {
        Value::Int(n) => *n,
        other => panic!("expected Int, got {other:?}"),
    };
    assert_eq!(n(&third), n(&second) + 1, "cached plan served stale rows");
}

#[test]
fn plan_cache_invalidated_by_ddl() {
    let db = Database::with_config(EngineConfig::default());
    db.execute("CREATE TABLE t (a INTEGER, b INTEGER)").unwrap();
    let mut rows = Vec::new();
    for i in 0..200i64 {
        rows.push(vec![Value::Int(i % 20), Value::Int(i)]);
    }
    db.insert_rows("t", rows).unwrap();
    let q = "SELECT b FROM t WHERE a = 3";
    db.query(q).unwrap();
    let v0 = db.catalog_version();

    // CREATE INDEX bumps the version; the replanned query now uses it.
    assert!(!db.explain(q).unwrap().contains("IndexScan"));
    db.execute("CREATE INDEX t_a ON t (a)").unwrap();
    assert!(db.catalog_version() > v0);
    let (_, m0) = db.plan_cache_stats();
    let rows = sorted(db.query(q).unwrap().rows);
    let (_, m1) = db.plan_cache_stats();
    assert_eq!(m1, m0 + 1, "CREATE INDEX must invalidate the cached plan");
    assert!(db.explain(q).unwrap().contains("IndexScan t_a"));
    assert_eq!(rows, sorted(db.query(q).unwrap().rows));

    // DROP + recreate with a different shape: the cached plan must go.
    db.execute("DROP TABLE t").unwrap();
    db.execute("CREATE TABLE t (a INTEGER, b TEXT)").unwrap();
    db.execute("INSERT INTO t VALUES (3, 'new')").unwrap();
    let r = db.query(q).unwrap();
    assert_eq!(r.rows, vec![vec![Value::text("new")]]);
}

#[test]
fn plan_cache_invalidated_by_rollback() {
    let db = Database::with_config(EngineConfig::default());
    db.execute("CREATE TABLE t (a INTEGER)").unwrap();
    db.execute("INSERT INTO t VALUES (1), (2)").unwrap();
    let q = "SELECT COUNT(*) AS n FROM t";
    assert_eq!(db.query_scalar(q).unwrap(), Value::Int(2));
    db.execute("BEGIN").unwrap();
    db.execute("INSERT INTO t VALUES (3)").unwrap();
    // Caches a plan over the in-transaction snapshot.
    assert_eq!(db.query_scalar(q).unwrap(), Value::Int(3));
    db.execute("ROLLBACK").unwrap();
    // The rolled-back catalog must not be served from the cache.
    assert_eq!(db.query_scalar(q).unwrap(), Value::Int(2));
}

#[test]
fn prepared_statements_reuse_cached_plans() {
    let db = seeded_db(EngineConfig::default());
    let stmt = db.prepare("SELECT v FROM w WHERE j = 7 AND k = 3").unwrap();
    let first = stmt.query(&[]).unwrap();
    let (h0, _) = db.plan_cache_stats();
    for _ in 0..5 {
        assert_eq!(stmt.query(&[]).unwrap(), first);
    }
    let (h1, _) = db.plan_cache_stats();
    assert_eq!(h1, h0 + 5, "prepared re-executions should all hit");

    // Parameterized statements bypass the cache (values are inlined into
    // plans) but stay correct.
    let stmt = db.prepare("SELECT v FROM w WHERE j = ? AND k = ?").unwrap();
    let a = stmt.query(&[Value::Int(7), Value::Int(3)]).unwrap();
    assert_eq!(a.rows, first.rows);
    let b = stmt.query(&[Value::Int(8), Value::Int(3)]).unwrap();
    assert_ne!(a.rows, b.rows);
}

/// The BornSQL serving hot path, replayed at the engine layer: the deployed
/// `predict` query shape (as emitted by the core crate's generator) must plan
/// an index-nested-loop join probing the weights `j` index, with the `params`
/// and item lookups served by primary-index point lookups.
#[test]
fn serving_query_shape_uses_weights_index() {
    let predict_sql = "WITH abh AS (SELECT a, b, h FROM params WHERE model = 'm'), \
         n_n AS (SELECT n FROM labels WHERE n = 3), \
         x_nj AS (SELECT qx.n AS n, qx.j AS j, qx.w AS w \
         FROM (SELECT n, term AS j, cnt AS w FROM features) AS qx, n_n \
         WHERE qx.n = n_n.n), \
         hwx_nk AS (SELECT x_nj.n AS n, hw.k AS k, \
         SUM(hw.w * POW(x_nj.w, a)) AS w \
         FROM m_weights AS hw, x_nj, abh \
         WHERE hw.j = x_nj.j GROUP BY x_nj.n, hw.k) \
         SELECT r_nk.n AS n, r_nk.k AS k FROM (\
         SELECT n, k, ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC, k ASC) AS r \
         FROM hwx_nk) AS r_nk WHERE r_nk.r = 1 ORDER BY n";

    let serving_db = |config: EngineConfig| {
        let db = Database::with_config(config);
        db.execute_script(
            "CREATE TABLE params (model TEXT PRIMARY KEY, a REAL, b REAL, h REAL);
             CREATE TABLE m_weights (j TEXT, k TEXT, w REAL, PRIMARY KEY (j, k));
             CREATE INDEX m_weights_j ON m_weights (j);
             CREATE TABLE features (n INTEGER, term TEXT, cnt REAL);
             CREATE TABLE labels (n INTEGER, label TEXT, PRIMARY KEY (n));
             INSERT INTO params (model, a, b, h) VALUES ('m', 0.5, 1.0, 1.0);",
        )
        .unwrap();
        // 80 weights cells — comfortably past the 64-row inner-side floor of
        // the index-join cost gate.
        let mut wrows = Vec::new();
        for j in 0..40i64 {
            for k in ["a", "b"] {
                wrows.push(vec![
                    Value::text(format!("t{j}")),
                    Value::text(k),
                    Value::Float(0.01 + (j as f64) / ((j + 40) as f64)),
                ]);
            }
        }
        db.insert_rows("m_weights", wrows).unwrap();
        let mut frows = Vec::new();
        let mut lrows = Vec::new();
        for n in 1..=20i64 {
            for i in 0..4i64 {
                frows.push(vec![
                    Value::Int(n),
                    Value::text(format!("t{}", (n + i * 7) % 40)),
                    Value::Float(1.0 + i as f64),
                ]);
            }
            lrows.push(vec![
                Value::Int(n),
                Value::text(if n % 2 == 0 { "a" } else { "b" }),
            ]);
        }
        db.insert_rows("features", frows).unwrap();
        db.insert_rows("labels", lrows).unwrap();
        db
    };

    let db = serving_db(EngineConfig::default());
    let plan = db.explain(predict_sql).unwrap();
    assert!(
        plan.contains("IndexScan m_weights_j (probed)"),
        "serving query must probe the weights index:\n{plan}"
    );
    assert!(
        plan.contains("IndexNestedLoopJoin"),
        "expected index-nested-loop join:\n{plan}"
    );
    assert!(
        plan.contains("IndexScan params.pk (1 keys)"),
        "params lookup should be a point lookup:\n{plan}"
    );
    assert!(
        plan.contains("IndexScan labels.pk (1 keys)"),
        "item lookup should be a point lookup:\n{plan}"
    );

    // Differential: same predictions without any index machinery.
    let full = serving_db(no_index_config());
    let a = db.query(predict_sql).unwrap();
    let b = full.query(predict_sql).unwrap();
    assert_eq!(a.rows, b.rows);

    // Repeated serving calls hit the plan cache.
    let (h0, _) = db.plan_cache_stats();
    for _ in 0..3 {
        assert_eq!(db.query(predict_sql).unwrap().rows, a.rows);
    }
    let (h1, _) = db.plan_cache_stats();
    assert_eq!(h1, h0 + 3, "repeated predicts should hit the plan cache");

    // EXPLAIN ANALYZE reports rows fetched through the index probe.
    let analyzed = db.explain_analyze(predict_sql).unwrap();
    assert!(
        analyzed.contains("IndexScan m_weights_j (probed)"),
        "analyze output should show the index probe:\n{analyzed}"
    );
}
