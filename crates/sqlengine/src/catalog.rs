//! Catalog and in-memory row storage.
//!
//! Tables hold their rows behind an `Arc` so that query execution can work
//! on a cheap snapshot without holding the catalog lock, while DML uses
//! copy-on-write (`Arc::make_mut`) semantics.

use std::collections::HashMap;
use std::sync::Arc;

use crate::column::ChunkSlot;
use crate::error::{EngineError, Result};
use crate::value::{DataType, Row, Value};

/// A column of a table schema.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
}

/// An ordered list of named columns.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Schema {
    pub columns: Vec<Column>,
}

impl Schema {
    pub fn new(columns: Vec<Column>) -> Self {
        Schema { columns }
    }

    /// Position of a column by case-insensitive name.
    pub fn position(&self, name: &str) -> Option<usize> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
    }

    pub fn len(&self) -> usize {
        self.columns.len()
    }

    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }
}

/// A unique index over a set of column positions, mapping key tuples to row
/// indexes. Used to implement PRIMARY KEY, `ON CONFLICT`, and planner point
/// lookups. The map lives behind an `Arc` so plans can snapshot it as
/// cheaply as they snapshot rows; maintenance is copy-on-write.
#[derive(Debug, Clone, Default)]
pub struct UniqueIndex {
    pub key_columns: Vec<usize>,
    pub map: Arc<HashMap<Vec<Value>, usize>>,
}

impl UniqueIndex {
    fn key_for(&self, row: &Row) -> Vec<Value> {
        self.key_columns.iter().map(|&i| row[i].clone()).collect()
    }
}

/// Metadata for a secondary (non-unique) index, mapping key tuples to the
/// row indexes holding that key (in no guaranteed order — the index-scan
/// operators sort fetched indexes). The planner matches equality /
/// `IN`-list predicates and join keys against these to emit `IndexScan` and
/// index-nested-loop plans instead of full scans; like table rows, the map
/// is shared behind an `Arc` so plan snapshots are cheap.
#[derive(Debug, Clone)]
pub struct SecondaryIndex {
    pub name: String,
    pub key_columns: Vec<usize>,
    pub map: Arc<HashMap<Vec<Value>, Vec<usize>>>,
}

/// A table: schema, rows, optional primary-key index, secondary indexes,
/// and the lazily built columnar image of `rows` (derived state — never
/// snapshotted or logged; see [`crate::column`]).
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub schema: Schema,
    pub rows: Arc<Vec<Row>>,
    pub primary: Option<UniqueIndex>,
    pub secondary: Vec<SecondaryIndex>,
    /// Columnar chunk cache for the *current* `rows`. Invariant: every
    /// mutation of `rows` installs a fresh slot (appends carry built chunks
    /// forward; everything else resets), so a slot shared with a plan
    /// snapshot always describes the rows Arc captured alongside it.
    pub chunks: ChunkSlot,
}

impl Table {
    /// Create an empty table; `primary_key` columns must exist in the schema.
    pub fn new(name: String, schema: Schema, primary_key: &[String]) -> Result<Self> {
        let mut key_columns = Vec::with_capacity(primary_key.len());
        for pk in primary_key {
            let pos = schema.position(pk).ok_or_else(|| {
                EngineError::catalog(format!(
                    "primary key column '{pk}' not found in table '{name}'"
                ))
            })?;
            key_columns.push(pos);
        }
        let primary = if key_columns.is_empty() {
            None
        } else {
            Some(UniqueIndex {
                key_columns,
                map: Arc::new(HashMap::new()),
            })
        };
        Ok(Table {
            name,
            schema,
            rows: Arc::new(Vec::new()),
            primary,
            secondary: Vec::new(),
            chunks: ChunkSlot::empty(),
        })
    }

    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Observed columnar state as `(chunk_count, dict_columns)` — both zero
    /// until a vectorized query first builds the chunks (chunks are lazy,
    /// and this reports without forcing a build).
    pub fn chunk_stats(&self) -> (usize, usize) {
        match self.chunks.peek() {
            Some(ct) => (ct.chunk_count(), ct.dict_columns()),
            None => (0, 0),
        }
    }

    /// Coerce a row to the declared column types (lenient, SQLite-style).
    fn coerce(&self, mut row: Row) -> Result<Row> {
        if row.len() != self.schema.len() {
            return Err(EngineError::exec(format!(
                "table '{}' expects {} values, got {}",
                self.name,
                self.schema.len(),
                row.len()
            )));
        }
        for (v, col) in row.iter_mut().zip(&self.schema.columns) {
            if !v.is_null() && col.ty != DataType::Any && v.data_type() != col.ty {
                *v = v.cast_to(col.ty)?;
            }
        }
        Ok(row)
    }

    /// Outcome of inserting one row.
    pub fn insert_row(
        &mut self,
        row: Row,
        on_conflict: Option<&ResolvedConflict>,
    ) -> Result<InsertOutcome> {
        let row = self.coerce(row)?;
        if let Some(primary) = &mut self.primary {
            let key = primary.key_for(&row);
            if let Some(&existing_idx) = primary.map.get(&key) {
                match on_conflict {
                    None => {
                        return Err(EngineError::exec(format!(
                            "UNIQUE constraint violated on table '{}'",
                            self.name
                        )));
                    }
                    Some(ResolvedConflict::DoNothing) => return Ok(InsertOutcome::Ignored),
                    Some(ResolvedConflict::DoUpdate) => {
                        return Ok(InsertOutcome::Conflict {
                            existing_idx,
                            proposed: row,
                        });
                    }
                }
            }
            Arc::make_mut(&mut primary.map).insert(key, self.rows.len());
        }
        let idx = self.rows.len();
        self.chunks = self.chunks.appended(&row);
        Arc::make_mut(&mut self.rows).push(row.clone());
        for index in &mut self.secondary {
            let key: Vec<Value> = index.key_columns.iter().map(|&i| row[i].clone()).collect();
            Arc::make_mut(&mut index.map)
                .entry(key)
                .or_default()
                .push(idx);
        }
        Ok(InsertOutcome::Inserted)
    }

    /// Replace the row at `idx` with `row` (used by ON CONFLICT DO UPDATE and
    /// UPDATE). Maintains indexes. Key columns are compared in place first,
    /// so the common UPDATE that leaves keys untouched allocates no key
    /// tuples at all.
    pub fn replace_row(&mut self, idx: usize, row: Row) -> Result<()> {
        let row = self.coerce(row)?;
        let old = &self.rows[idx];
        if let Some(primary) = &self.primary {
            if !primary.key_columns.iter().all(|&i| old[i] == row[i]) {
                let old_key = primary.key_for(old);
                let new_key = primary.key_for(&row);
                if primary.map.contains_key(&new_key) {
                    return Err(EngineError::exec(format!(
                        "UNIQUE constraint violated on table '{}'",
                        self.name
                    )));
                }
                let map = Arc::make_mut(&mut self.primary.as_mut().expect("checked above").map);
                map.remove(&old_key);
                map.insert(new_key, idx);
            }
        }
        for index in &mut self.secondary {
            if index.key_columns.iter().all(|&i| old[i] == row[i]) {
                continue;
            }
            let old_key: Vec<Value> = index.key_columns.iter().map(|&i| old[i].clone()).collect();
            let new_key: Vec<Value> = index.key_columns.iter().map(|&i| row[i].clone()).collect();
            let map = Arc::make_mut(&mut index.map);
            if let Some(list) = map.get_mut(&old_key) {
                list.retain(|&r| r != idx);
                if list.is_empty() {
                    map.remove(&old_key);
                }
            }
            map.entry(new_key).or_default().push(idx);
        }
        self.chunks = ChunkSlot::empty();
        Arc::make_mut(&mut self.rows)[idx] = row;
        Ok(())
    }

    /// Delete the rows at the given indexes, maintaining indexes
    /// incrementally: deleted keys are removed and surviving entries have
    /// their row indexes shifted in place (no re-hash, no key clones). Mass
    /// deletes fall back to a wholesale rebuild, which is cheaper than
    /// patching when most entries are going away anyway.
    pub fn delete_rows(&mut self, mut idxs: Vec<usize>) -> Result<usize> {
        idxs.sort_unstable();
        idxs.dedup();
        if idxs.is_empty() {
            return Ok(0);
        }
        let incremental = idxs.len() * 2 <= self.rows.len();
        if incremental {
            // Remove the deleted rows' keys while the rows are still present.
            if let Some(primary) = &mut self.primary {
                let map = Arc::make_mut(&mut primary.map);
                for &i in &idxs {
                    let key: Vec<Value> = primary
                        .key_columns
                        .iter()
                        .map(|&c| self.rows[i][c].clone())
                        .collect();
                    map.remove(&key);
                }
            }
            for index in &mut self.secondary {
                let map = Arc::make_mut(&mut index.map);
                for &i in &idxs {
                    let key: Vec<Value> = index
                        .key_columns
                        .iter()
                        .map(|&c| self.rows[i][c].clone())
                        .collect();
                    if let Some(list) = map.get_mut(&key) {
                        list.retain(|&r| r != i);
                        if list.is_empty() {
                            map.remove(&key);
                        }
                    }
                }
            }
        }
        self.chunks = ChunkSlot::empty();
        let rows = Arc::make_mut(&mut self.rows);
        let mut keep = vec![true; rows.len()];
        for &i in &idxs {
            keep[i] = false;
        }
        let mut i = 0;
        rows.retain(|_| {
            let k = keep[i];
            i += 1;
            k
        });
        if incremental {
            // Surviving row index `i` moved down by the number of deleted
            // indexes below it; patch entries in place.
            let shift = |i: usize| i - idxs.partition_point(|&d| d < i);
            if let Some(primary) = &mut self.primary {
                for v in Arc::make_mut(&mut primary.map).values_mut() {
                    *v = shift(*v);
                }
            }
            for index in &mut self.secondary {
                for list in Arc::make_mut(&mut index.map).values_mut() {
                    for v in list.iter_mut() {
                        *v = shift(*v);
                    }
                }
            }
        } else {
            self.rebuild_indexes()?;
        }
        Ok(idxs.len())
    }

    /// Create an index over the named columns, building its map from the
    /// current rows. A unique index on a table without a primary key becomes
    /// the primary index; any other index (including `UNIQUE` on a table
    /// that already has a primary key) is maintained as a secondary index.
    /// This is the single implementation behind `CREATE [UNIQUE] INDEX` and
    /// write-ahead-log replay, so recovery rebuilds exactly the structures
    /// the original statement did.
    pub fn create_index(&mut self, name: &str, columns: &[String], unique: bool) -> Result<()> {
        let mut key_columns = Vec::with_capacity(columns.len());
        for c in columns {
            key_columns.push(self.schema.position(c).ok_or_else(|| {
                EngineError::catalog(format!("column '{c}' not found in table '{}'", self.name))
            })?);
        }
        if self.secondary.iter().any(|s| s.name == name) {
            return Err(EngineError::catalog(format!(
                "index '{name}' already exists"
            )));
        }
        if unique && self.primary.is_none() {
            let mut map = HashMap::with_capacity(self.rows.len());
            for (i, row) in self.rows.iter().enumerate() {
                let key: Vec<Value> = key_columns.iter().map(|&c| row[c].clone()).collect();
                if map.insert(key, i).is_some() {
                    return Err(EngineError::exec(format!(
                        "cannot create unique index '{name}': duplicate keys"
                    )));
                }
            }
            self.primary = Some(UniqueIndex {
                key_columns,
                map: Arc::new(map),
            });
        } else {
            let mut map: HashMap<Vec<Value>, Vec<usize>> = HashMap::new();
            for (i, row) in self.rows.iter().enumerate() {
                let key: Vec<Value> = key_columns.iter().map(|&c| row[c].clone()).collect();
                map.entry(key).or_default().push(i);
            }
            self.secondary.push(SecondaryIndex {
                name: name.to_string(),
                key_columns,
                map: Arc::new(map),
            });
        }
        Ok(())
    }

    /// Whether an index with this name exists on the table.
    pub fn has_index(&self, name: &str) -> bool {
        self.secondary.iter().any(|s| s.name == name)
    }

    /// Rebuild primary and secondary indexes from current rows.
    pub fn rebuild_indexes(&mut self) -> Result<()> {
        if let Some(primary) = &mut self.primary {
            let map = Arc::make_mut(&mut primary.map);
            map.clear();
            map.reserve(self.rows.len());
            for (i, row) in self.rows.iter().enumerate() {
                let key: Vec<Value> = primary
                    .key_columns
                    .iter()
                    .map(|&c| row[c].clone())
                    .collect();
                if map.insert(key, i).is_some() {
                    return Err(EngineError::exec(format!(
                        "UNIQUE constraint violated on table '{}'",
                        self.name
                    )));
                }
            }
        }
        for index in &mut self.secondary {
            let map = Arc::make_mut(&mut index.map);
            map.clear();
            for (i, row) in self.rows.iter().enumerate() {
                let key: Vec<Value> = index.key_columns.iter().map(|&c| row[c].clone()).collect();
                map.entry(key).or_default().push(i);
            }
        }
        Ok(())
    }
}

/// How an insert resolves conflicts (planner-resolved form of the AST).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ResolvedConflict {
    DoNothing,
    DoUpdate,
}

/// Result of inserting a single row.
#[derive(Debug)]
pub enum InsertOutcome {
    Inserted,
    Ignored,
    /// A conflicting row exists; the caller runs the DO UPDATE assignments.
    Conflict {
        existing_idx: usize,
        proposed: Row,
    },
}

/// The catalog: a name → table map (case-insensitive names).
///
/// `Clone` is cheap (rows and index maps are both shared behind `Arc` with
/// copy-on-write maintenance) and backs the engine's snapshot-based
/// transactions.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    pub fn new() -> Self {
        Self::default()
    }

    fn key(name: &str) -> String {
        name.to_ascii_lowercase()
    }

    /// Install a table. Returns whether the table was actually created
    /// (`false` only for an `IF NOT EXISTS` no-op), so callers can decide
    /// whether to log the DDL.
    pub fn create_table(&mut self, table: Table, if_not_exists: bool) -> Result<bool> {
        let key = Self::key(&table.name);
        if self.tables.contains_key(&key) {
            if if_not_exists {
                return Ok(false);
            }
            return Err(EngineError::catalog(format!(
                "table '{}' already exists",
                table.name
            )));
        }
        self.tables.insert(key, table);
        Ok(true)
    }

    /// Remove a table. Returns whether a table was actually dropped
    /// (`false` only for an `IF EXISTS` no-op).
    pub fn drop_table(&mut self, name: &str, if_exists: bool) -> Result<bool> {
        if self.tables.remove(&Self::key(name)).is_none() {
            if if_exists {
                return Ok(false);
            }
            return Err(EngineError::catalog(format!(
                "table '{name}' does not exist"
            )));
        }
        Ok(true)
    }

    pub fn get(&self, name: &str) -> Result<&Table> {
        self.tables
            .get(&Self::key(name))
            .ok_or_else(|| EngineError::catalog(format!("table '{name}' does not exist")))
    }

    pub fn get_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables
            .get_mut(&Self::key(name))
            .ok_or_else(|| EngineError::catalog(format!("table '{name}' does not exist")))
    }

    pub fn contains(&self, name: &str) -> bool {
        self.tables.contains_key(&Self::key(name))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.values().map(|t| t.name.clone()).collect();
        names.sort();
        names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema_jk() -> Schema {
        Schema::new(vec![
            Column {
                name: "j".into(),
                ty: DataType::Text,
            },
            Column {
                name: "k".into(),
                ty: DataType::Integer,
            },
            Column {
                name: "w".into(),
                ty: DataType::Real,
            },
        ])
    }

    #[test]
    fn insert_and_pk_conflict() {
        let mut t = Table::new("c".into(), schema_jk(), &["j".into(), "k".into()]).unwrap();
        let row = vec![Value::text("a"), Value::Int(1), Value::Float(0.5)];
        assert!(matches!(
            t.insert_row(row.clone(), None).unwrap(),
            InsertOutcome::Inserted
        ));
        assert!(t.insert_row(row.clone(), None).is_err());
        assert!(matches!(
            t.insert_row(row.clone(), Some(&ResolvedConflict::DoNothing))
                .unwrap(),
            InsertOutcome::Ignored
        ));
        assert!(matches!(
            t.insert_row(row, Some(&ResolvedConflict::DoUpdate))
                .unwrap(),
            InsertOutcome::Conflict {
                existing_idx: 0,
                ..
            }
        ));
    }

    #[test]
    fn coercion_applies_declared_types() {
        let mut t = Table::new("c".into(), schema_jk(), &[]).unwrap();
        t.insert_row(vec![Value::Int(7), Value::text("3"), Value::Int(1)], None)
            .unwrap();
        let row = &t.rows[0];
        assert_eq!(row[0], Value::text("7"));
        assert_eq!(row[1], Value::Int(3));
        assert_eq!(row[2], Value::Float(1.0));
    }

    #[test]
    fn delete_rebuilds_pk() {
        let mut t = Table::new("c".into(), schema_jk(), &["j".into()]).unwrap();
        for i in 0..5 {
            t.insert_row(
                vec![
                    Value::text(format!("x{i}")),
                    Value::Int(i),
                    Value::Float(0.0),
                ],
                None,
            )
            .unwrap();
        }
        t.delete_rows(vec![1, 3]).unwrap();
        assert_eq!(t.row_count(), 3);
        let primary = t.primary.as_ref().unwrap();
        assert_eq!(primary.map.len(), 3);
        assert_eq!(primary.map[&vec![Value::text("x4")]], 2);
    }

    #[test]
    fn replace_row_updates_key() {
        let mut t = Table::new("c".into(), schema_jk(), &["j".into()]).unwrap();
        t.insert_row(
            vec![Value::text("a"), Value::Int(1), Value::Float(0.0)],
            None,
        )
        .unwrap();
        t.replace_row(0, vec![Value::text("b"), Value::Int(1), Value::Float(0.0)])
            .unwrap();
        let primary = t.primary.as_ref().unwrap();
        assert!(primary.map.contains_key(&vec![Value::text("b")]));
        assert!(!primary.map.contains_key(&vec![Value::text("a")]));
    }

    #[test]
    fn incremental_delete_patches_secondary_index() {
        let mut t = Table::new("c".into(), schema_jk(), &["j".into()]).unwrap();
        t.secondary.push(SecondaryIndex {
            name: "c_k".into(),
            key_columns: vec![1],
            map: Arc::new(HashMap::new()),
        });
        for i in 0..10 {
            t.insert_row(
                vec![
                    Value::text(format!("x{i}")),
                    Value::Int(i % 3),
                    Value::Float(0.0),
                ],
                None,
            )
            .unwrap();
        }
        // Deletes a minority of rows: the incremental patch path.
        t.delete_rows(vec![0, 4]).unwrap();
        assert_eq!(t.row_count(), 8);
        let mut rebuilt = t.clone();
        rebuilt.rebuild_indexes().unwrap();
        assert_eq!(
            *t.primary.as_ref().unwrap().map,
            *rebuilt.primary.as_ref().unwrap().map
        );
        let patched = &t.secondary[0].map;
        let fresh = &rebuilt.secondary[0].map;
        assert_eq!(patched.len(), fresh.len());
        for (k, list) in patched.iter() {
            let mut a = list.clone();
            let mut b = fresh[k].clone();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b, "secondary entries diverge for key {k:?}");
        }
        // Deletes a majority: the rebuild fallback path.
        t.delete_rows((0..6).collect()).unwrap();
        assert_eq!(t.row_count(), 2);
        assert_eq!(t.primary.as_ref().unwrap().map.len(), 2);
        let total: usize = t.secondary[0].map.values().map(Vec::len).sum();
        assert_eq!(total, 2);
    }

    #[test]
    fn catalog_case_insensitive() {
        let mut c = Catalog::new();
        c.create_table(Table::new("Foo".into(), schema_jk(), &[]).unwrap(), false)
            .unwrap();
        assert!(c.get("foo").is_ok());
        assert!(c.get("FOO").is_ok());
        assert!(c
            .create_table(Table::new("FOO".into(), schema_jk(), &[]).unwrap(), false)
            .is_err());
        c.drop_table("fOo", false).unwrap();
        assert!(c.get("foo").is_err());
    }
}
