//! Abstract syntax tree for the supported SQL subset.
//!
//! Expression nodes carry the byte [`Span`] of the source text they were
//! parsed from so the semantic analyzer can attach precise locations to
//! diagnostics. Spans compare equal to each other unconditionally, so AST
//! equality stays purely structural.

use crate::error::Span;
use crate::value::{DataType, Value};

/// A full SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    /// `SELECT` query (possibly with CTEs and set operations).
    Query(Query),
    CreateTable(CreateTable),
    CreateIndex(CreateIndex),
    DropTable {
        name: String,
        if_exists: bool,
    },
    /// `CREATE TABLE name AS SELECT ...` — materialize a query result.
    CreateTableAs {
        name: String,
        if_not_exists: bool,
        query: Query,
    },
    Insert(Insert),
    Delete {
        table: String,
        table_span: Span,
        predicate: Option<Expr>,
    },
    Update {
        table: String,
        table_span: Span,
        assignments: Vec<(String, Expr)>,
        predicate: Option<Expr>,
    },
    /// `EXPLAIN [ANALYZE | (CHECK) | (VERIFY) | (TRACE)] query` — render the
    /// physical plan (ANALYZE also executes it and reports per-operator row
    /// counts and timings; CHECK only runs semantic analysis and reports the
    /// typed output schema; VERIFY plans the query and reports the static
    /// plan verifier's per-check results without executing; TRACE executes
    /// once under a forced trace capture and renders the span tree).
    Explain {
        mode: ExplainMode,
        query: Query,
    },
    /// `BEGIN [TRANSACTION]`
    Begin,
    /// `COMMIT`
    Commit,
    /// `ROLLBACK`
    Rollback,
}

/// What `EXPLAIN` should do with the query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExplainMode {
    /// Render the physical plan without executing.
    Plan,
    /// Execute and report per-operator statistics.
    Analyze,
    /// Run semantic analysis only and report the typed output schema.
    Check,
    /// Plan the query and run the static plan verifier, reporting one row
    /// per invariant class; nothing executes.
    Verify,
    /// Execute once under a forced trace capture and render the recorded
    /// span tree (names, durations, rows, typed attributes) with plain
    /// indentation.
    Trace,
}

/// A query: optional `WITH` clause plus a set-expression body and an
/// optional trailing `ORDER BY` / `LIMIT`.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    pub ctes: Vec<Cte>,
    pub body: SetExpr,
    pub order_by: Vec<OrderItem>,
    pub limit: Option<Expr>,
    pub offset: Option<Expr>,
}

/// A common table expression: `name AS (query)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    pub name: String,
    pub query: Query,
}

/// Body of a query: a plain `SELECT` or a set operation between bodies.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    Select(Box<Select>),
    /// `UNION [ALL]`; when `all` is false, duplicate rows are removed.
    Union {
        left: Box<SetExpr>,
        right: Box<SetExpr>,
        all: bool,
    },
}

/// A `SELECT ... FROM ... WHERE ... GROUP BY ... HAVING ...` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    pub distinct: bool,
    pub projection: Vec<SelectItem>,
    pub from: Vec<TableRef>,
    pub selection: Option<Expr>,
    pub group_by: Vec<Expr>,
    pub having: Option<Expr>,
}

/// One item of the projection list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `alias.*`
    QualifiedWildcard(String, Span),
    /// `expr [AS alias]`
    Expr { expr: Expr, alias: Option<String> },
}

/// A table reference in the FROM clause, possibly chained with joins.
#[derive(Debug, Clone, PartialEq)]
pub enum TableRef {
    /// Base table or CTE, with optional alias.
    Named {
        name: String,
        alias: Option<String>,
        span: Span,
    },
    /// Derived table `(query) AS alias`.
    Derived { query: Box<Query>, alias: String },
    /// Explicit join: `left JOIN right ON cond`.
    Join {
        left: Box<TableRef>,
        right: Box<TableRef>,
        kind: JoinKind,
        on: Option<Expr>,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    Inner,
    Left,
    Cross,
}

/// An `ORDER BY` item.
#[derive(Debug, Clone, PartialEq)]
pub struct OrderItem {
    pub expr: Expr,
    pub descending: bool,
}

/// Scalar expressions. Every variant carries the byte span of the source
/// fragment it was parsed from (empty for synthesized nodes).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Literal value.
    Literal(Value, Span),
    /// Positional parameter (1-based).
    Param(usize, Span),
    /// Possibly-qualified column reference: `[qualifier.]name`.
    Column {
        qualifier: Option<String>,
        name: String,
        span: Span,
    },
    Unary {
        op: UnaryOp,
        expr: Box<Expr>,
        span: Span,
    },
    Binary {
        left: Box<Expr>,
        op: BinaryOp,
        right: Box<Expr>,
        span: Span,
    },
    /// `expr IS [NOT] NULL`
    IsNull {
        expr: Box<Expr>,
        negated: bool,
        span: Span,
    },
    /// `expr [NOT] IN (e1, e2, ...)`
    InList {
        expr: Box<Expr>,
        list: Vec<Expr>,
        negated: bool,
        span: Span,
    },
    /// `expr [NOT] BETWEEN low AND high`
    Between {
        expr: Box<Expr>,
        low: Box<Expr>,
        high: Box<Expr>,
        negated: bool,
        span: Span,
    },
    /// `expr [NOT] LIKE pattern` (`%` and `_` wildcards)
    Like {
        expr: Box<Expr>,
        pattern: Box<Expr>,
        negated: bool,
        span: Span,
    },
    /// `CASE [operand] WHEN .. THEN .. [ELSE ..] END`
    Case {
        operand: Option<Box<Expr>>,
        branches: Vec<(Expr, Expr)>,
        else_expr: Option<Box<Expr>>,
        span: Span,
    },
    /// `CAST(expr AS type)`
    Cast {
        expr: Box<Expr>,
        ty: DataType,
        span: Span,
    },
    /// Scalar function call: `POW(a, b)`, `LN(x)`, ...
    Function {
        name: String,
        args: Vec<Expr>,
        span: Span,
    },
    /// Aggregate function call in a projection/HAVING.
    Aggregate {
        func: AggregateFunc,
        arg: Option<Box<Expr>>,
        distinct: bool,
        span: Span,
    },
    /// `ROW_NUMBER() / RANK() / DENSE_RANK() OVER (PARTITION BY ... ORDER BY ...)`
    WindowRowNumber {
        func: WindowFunc,
        partition_by: Vec<Expr>,
        order_by: Vec<OrderItem>,
        span: Span,
    },
    /// `(SELECT ...)` used as a scalar. Only uncorrelated subqueries are
    /// supported; they are evaluated once during planning.
    ScalarSubquery(Box<Query>, Span),
    /// `expr [NOT] IN (SELECT ...)` (uncorrelated).
    InSubquery {
        expr: Box<Expr>,
        query: Box<Query>,
        negated: bool,
        span: Span,
    },
    /// `[NOT] EXISTS (SELECT ...)` (uncorrelated).
    Exists {
        query: Box<Query>,
        negated: bool,
        span: Span,
    },
}

/// Supported ranking window functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowFunc {
    RowNumber,
    Rank,
    DenseRank,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnaryOp {
    Neg,
    Not,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinaryOp {
    Add,
    Sub,
    Mul,
    Div,
    Mod,
    Concat,
    Eq,
    NotEq,
    Lt,
    LtEq,
    Gt,
    GtEq,
    And,
    Or,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggregateFunc {
    Count,
    Sum,
    Avg,
    Min,
    Max,
}

impl AggregateFunc {
    pub fn name(&self) -> &'static str {
        match self {
            AggregateFunc::Count => "COUNT",
            AggregateFunc::Sum => "SUM",
            AggregateFunc::Avg => "AVG",
            AggregateFunc::Min => "MIN",
            AggregateFunc::Max => "MAX",
        }
    }
}

/// `CREATE TABLE` definition.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateTable {
    pub name: String,
    pub if_not_exists: bool,
    pub columns: Vec<ColumnDef>,
    /// Column names of the primary key, if declared (inline or table-level).
    pub primary_key: Vec<String>,
}

#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub ty: DataType,
}

/// `CREATE [UNIQUE] INDEX name ON table (cols)`.
#[derive(Debug, Clone, PartialEq)]
pub struct CreateIndex {
    pub name: String,
    pub table: String,
    pub columns: Vec<String>,
    pub unique: bool,
    pub if_not_exists: bool,
}

/// `INSERT INTO table [(cols)] VALUES ... | SELECT ... [ON CONFLICT ...]`.
#[derive(Debug, Clone, PartialEq)]
pub struct Insert {
    pub table: String,
    pub table_span: Span,
    pub columns: Vec<String>,
    pub source: InsertSource,
    pub on_conflict: Option<OnConflict>,
}

#[derive(Debug, Clone, PartialEq)]
pub enum InsertSource {
    Values(Vec<Vec<Expr>>),
    Query(Query),
}

/// `ON CONFLICT (cols) DO UPDATE SET col = expr, ... | DO NOTHING`.
///
/// In `DO UPDATE` expressions, `excluded.col` refers to the row proposed for
/// insertion and bare/table-qualified columns refer to the existing row.
#[derive(Debug, Clone, PartialEq)]
pub struct OnConflict {
    pub target_columns: Vec<String>,
    pub action: ConflictAction,
}

#[derive(Debug, Clone, PartialEq)]
pub enum ConflictAction {
    DoNothing,
    DoUpdate(Vec<(String, Expr)>),
}

impl Expr {
    /// Convenience constructor for an unqualified column.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Column {
            qualifier: None,
            name: name.into(),
            span: Span::default(),
        }
    }

    /// The source span of this node.
    pub fn span(&self) -> Span {
        match self {
            Expr::Literal(_, span)
            | Expr::Param(_, span)
            | Expr::ScalarSubquery(_, span)
            | Expr::Column { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::IsNull { span, .. }
            | Expr::InList { span, .. }
            | Expr::Between { span, .. }
            | Expr::Like { span, .. }
            | Expr::Case { span, .. }
            | Expr::Cast { span, .. }
            | Expr::Function { span, .. }
            | Expr::Aggregate { span, .. }
            | Expr::WindowRowNumber { span, .. }
            | Expr::InSubquery { span, .. }
            | Expr::Exists { span, .. } => *span,
        }
    }

    /// True when this expression (sub)tree contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Literal(..) | Expr::Param(..) | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_aggregate(),
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::InList { expr, list, .. } => {
                expr.contains_aggregate() || list.iter().any(Expr::contains_aggregate)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate(),
            Expr::Like { expr, pattern, .. } => {
                expr.contains_aggregate() || pattern.contains_aggregate()
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
                ..
            } => {
                operand.as_deref().is_some_and(Expr::contains_aggregate)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_aggregate() || t.contains_aggregate())
                    || else_expr.as_deref().is_some_and(Expr::contains_aggregate)
            }
            Expr::Cast { expr, .. } => expr.contains_aggregate(),
            Expr::Function { args, .. } => args.iter().any(Expr::contains_aggregate),
            // Subqueries are planned independently; window functions never
            // contain aggregates of the enclosing query.
            Expr::WindowRowNumber { .. }
            | Expr::ScalarSubquery(..)
            | Expr::InSubquery { .. }
            | Expr::Exists { .. } => false,
        }
    }

    /// True when this expression (sub)tree contains a window function.
    pub fn contains_window(&self) -> bool {
        match self {
            Expr::WindowRowNumber { .. } => true,
            Expr::Literal(..) | Expr::Param(..) | Expr::Column { .. } => false,
            Expr::Unary { expr, .. } => expr.contains_window(),
            Expr::Binary { left, right, .. } => left.contains_window() || right.contains_window(),
            Expr::IsNull { expr, .. } => expr.contains_window(),
            Expr::InList { expr, list, .. } => {
                expr.contains_window() || list.iter().any(Expr::contains_window)
            }
            Expr::Between {
                expr, low, high, ..
            } => expr.contains_window() || low.contains_window() || high.contains_window(),
            Expr::Like { expr, pattern, .. } => expr.contains_window() || pattern.contains_window(),
            Expr::Case {
                operand,
                branches,
                else_expr,
                ..
            } => {
                operand.as_deref().is_some_and(Expr::contains_window)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_window() || t.contains_window())
                    || else_expr.as_deref().is_some_and(Expr::contains_window)
            }
            Expr::Cast { expr, .. } => expr.contains_window(),
            Expr::Function { args, .. } => args.iter().any(Expr::contains_window),
            Expr::Aggregate { arg, .. } => arg.as_deref().is_some_and(Expr::contains_window),
            Expr::ScalarSubquery(..) | Expr::InSubquery { .. } | Expr::Exists { .. } => false,
        }
    }
}
