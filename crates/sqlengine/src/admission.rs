//! Bounded statement admission control.
//!
//! When [`EngineConfig::max_concurrent_statements`] is set, every statement
//! entry point acquires a permit from an [`AdmissionGate`] before doing any
//! work. At most `max` statements run at once; up to `queue_limit` more wait
//! on a condvar, FIFO-ish (condvar wakeup order), and everything beyond that
//! is *shed* immediately with the retryable [`EngineError::Overloaded`] —
//! bounded latency instead of unbounded pile-up. A queued statement whose
//! deadline (derived from `statement_timeout`) expires before a slot frees
//! is shed too: it could never finish in time, so burning a slot on it only
//! delays statements that still can.
//!
//! The gate deliberately uses `std::sync` primitives with explicit poison
//! recovery: a statement that panics mid-execution (releasing its permit
//! during unwind) must not wedge the queue for everyone behind it.
//!
//! [`EngineConfig::max_concurrent_statements`]: crate::engine::EngineConfig::max_concurrent_statements

use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

use crate::error::{EngineError, Result};
use crate::telemetry::Telemetry;

#[derive(Debug)]
struct GateState {
    running: usize,
    queued: usize,
}

/// Counting gate over statement execution; see the module docs.
pub(crate) struct AdmissionGate {
    max: usize,
    queue_limit: usize,
    state: Mutex<GateState>,
    cond: Condvar,
    telemetry: Arc<Telemetry>,
}

/// RAII permit: holding one means the statement counts against `max`.
/// Dropping it (normally or during a panic unwind) frees the slot and wakes
/// the queue.
pub(crate) struct AdmissionPermit {
    gate: Arc<AdmissionGate>,
    /// Time the statement spent queued before admission (`None` when it was
    /// admitted on the fast path, which reads no clock at all).
    queue_wait: Option<std::time::Duration>,
}

impl AdmissionPermit {
    /// Queue wait of the admitted statement, if it had to queue.
    pub(crate) fn queue_wait(&self) -> Option<std::time::Duration> {
        self.queue_wait
    }
}

impl std::fmt::Debug for AdmissionPermit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("AdmissionPermit")
    }
}

/// Lock with poison recovery: the state is a pair of counters adjusted
/// outside any panicking region, so it is consistent even when some other
/// thread panicked while holding the lock.
fn lock(gate: &AdmissionGate) -> MutexGuard<'_, GateState> {
    gate.state.lock().unwrap_or_else(|e| e.into_inner())
}

impl AdmissionGate {
    pub(crate) fn new(max: usize, queue_limit: usize, telemetry: Arc<Telemetry>) -> AdmissionGate {
        AdmissionGate {
            max: max.max(1),
            queue_limit,
            state: Mutex::new(GateState {
                running: 0,
                queued: 0,
            }),
            cond: Condvar::new(),
            telemetry,
        }
    }

    /// Acquire a permit, waiting in the bounded queue if the gate is full.
    /// Sheds with [`EngineError::Overloaded`] when the queue is full or the
    /// statement's deadline expires (or would certainly expire) while
    /// queued.
    pub(crate) fn admit(self: &Arc<Self>, deadline: Option<Instant>) -> Result<AdmissionPermit> {
        let mut state = lock(self);
        if state.running < self.max {
            state.running += 1;
            drop(state);
            if self.telemetry.enabled() {
                self.telemetry.admission_admitted.incr();
            }
            return Ok(AdmissionPermit {
                gate: Arc::clone(self),
                queue_wait: None,
            });
        }
        if state.queued >= self.queue_limit {
            drop(state);
            return Err(self.shed(format!(
                "admission queue is full ({} statements running, {} queued); retry later",
                self.max, self.queue_limit
            )));
        }
        state.queued += 1;
        if self.telemetry.enabled() {
            self.telemetry.admission_queued.incr();
        }
        // Clock reads happen only on this contended path: the wait feeds the
        // `admission` wait-class rollup and the statement's trace span.
        let queued_at = Instant::now();
        loop {
            state = match deadline {
                None => self.cond.wait(state).unwrap_or_else(|e| e.into_inner()),
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        state.queued -= 1;
                        drop(state);
                        if self.telemetry.enabled() {
                            self.telemetry.wait_admission_us.record(now - queued_at);
                        }
                        return Err(self.shed(
                            "statement deadline expired while queued for admission".to_string(),
                        ));
                    }
                    let (guard, _timed_out) = self
                        .cond
                        .wait_timeout(state, dl - now)
                        .unwrap_or_else(|e| e.into_inner());
                    guard
                }
            };
            if state.running < self.max {
                state.queued -= 1;
                state.running += 1;
                drop(state);
                let waited = queued_at.elapsed();
                if self.telemetry.enabled() {
                    self.telemetry.admission_admitted.incr();
                    self.telemetry.wait_admission_us.record(waited);
                }
                return Ok(AdmissionPermit {
                    gate: Arc::clone(self),
                    queue_wait: Some(waited),
                });
            }
        }
    }

    fn shed(&self, message: String) -> EngineError {
        if self.telemetry.enabled() {
            self.telemetry.admission_shed.incr();
        }
        EngineError::overloaded(message)
    }
}

impl Drop for AdmissionPermit {
    fn drop(&mut self) {
        let mut state = lock(&self.gate);
        state.running = state.running.saturating_sub(1);
        drop(state);
        // notify_all, not notify_one: timed waiters that woke for a deadline
        // check may be between wakeup and re-wait, so a single token could
        // be lost. Spurious wakeups are cheap; a stuck queue is not.
        self.gate.cond.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn gate(max: usize, queue: usize) -> Arc<AdmissionGate> {
        Arc::new(AdmissionGate::new(
            max,
            queue,
            Arc::new(Telemetry::new(true, Duration::from_secs(1), 4)),
        ))
    }

    #[test]
    fn admits_up_to_max_then_queues_then_sheds() {
        let g = gate(2, 1);
        let p1 = g.admit(None).unwrap();
        let _p2 = g.admit(None).unwrap();
        // Third would queue; with an already-expired deadline it sheds as a
        // deadline expiry rather than blocking the test thread.
        let expired = Instant::now() - Duration::from_millis(1);
        let err = g.admit(Some(expired)).unwrap_err();
        assert!(err.is_retryable());
        assert!(err.to_string().contains("overloaded"), "{err}");
        drop(p1);
        let _p3 = g.admit(None).unwrap();
        assert_eq!(g.telemetry.admission_shed.get(), 1);
        assert_eq!(g.telemetry.admission_admitted.get(), 3);
    }

    #[test]
    fn full_queue_sheds_immediately() {
        let g = gate(1, 0);
        let _p = g.admit(None).unwrap();
        let err = g.admit(None).unwrap_err();
        assert!(err.to_string().contains("queue is full"), "{err}");
    }

    #[test]
    fn released_permit_wakes_queued_waiter() {
        let g = gate(1, 4);
        let p = g.admit(None).unwrap();
        let g2 = Arc::clone(&g);
        let waiter = std::thread::spawn(move || {
            let _p = g2
                .admit(Some(Instant::now() + Duration::from_secs(5)))
                .unwrap();
        });
        std::thread::sleep(Duration::from_millis(20));
        drop(p);
        waiter.join().unwrap();
        assert_eq!(g.telemetry.admission_queued.get(), 1);
        assert_eq!(g.telemetry.admission_admitted.get(), 2);
    }

    #[test]
    fn permit_drop_during_panic_frees_the_slot() {
        let g = gate(1, 4);
        let g2 = Arc::clone(&g);
        let _ = std::thread::spawn(move || {
            let _p = g2.admit(None).unwrap();
            panic!("statement panicked while holding a permit");
        })
        .join();
        // The unwound thread released its permit; the gate is empty again.
        let _p = g
            .admit(Some(Instant::now() + Duration::from_millis(200)))
            .unwrap();
    }
}
