//! Query planner: AST → physical plan.
//!
//! The planner follows the classic layering (scan → filter → join →
//! aggregate → window → project → distinct → sort → limit) with a few
//! practical optimizations that matter for BornSQL-style workloads:
//!
//! * single-table predicates are pushed below joins;
//! * equi-join conjuncts in the WHERE clause of comma-joins are detected and
//!   turned into hash joins (greedy left-deep ordering);
//! * CTEs are either inlined (pipelined, the default — this is the paper's
//!   "no intermediate materialization" claim) or materialized once,
//!   depending on [`PlannerConfig::materialize_ctes`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{self, Expr, JoinKind, OrderItem, Query, Select, SelectItem, SetExpr, TableRef};
use crate::catalog::{Catalog, Schema, Table};
use crate::error::{EngineError, Result, Span};
use crate::expr::{bind_expr, bind_expr_symbolic, substitute_params, ColLabel, PhysExpr, Scope};
use crate::value::{Row, Value};

/// Which algorithm executes detected equi-joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Build a hash table on the right side, probe with the left.
    #[default]
    Hash,
    /// Sort both sides on the key and merge (an O(n log n) engine without
    /// hashing — the profile-C stand-in).
    SortMerge,
}

/// Planner options — these are the knobs the benchmark harness sweeps to
/// emulate different DBMS profiles (see DESIGN.md, "Substitutions").
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Algorithm for detected equi-joins. Joins with no equi conjunct always
    /// fall back to a nested loop.
    pub join_algo: JoinAlgo,
    /// Evaluate each CTE once into an in-memory table instead of inlining
    /// its plan at every reference.
    pub materialize_ctes: bool,
    /// Match equality / `IN`-list predicates and join keys against table
    /// indexes, emitting `IndexScan` / index-nested-loop plans. Disabled for
    /// the forced-full-scan differential tests.
    pub use_indexes: bool,
    /// Attach columnar chunk slots to base-table scans so eligible
    /// filter/project/aggregate chains run the vectorized kernels. Disabled
    /// to force the row path for differential testing.
    pub vectorized: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            join_algo: JoinAlgo::Hash,
            materialize_ctes: false,
            use_indexes: true,
            vectorized: true,
        }
    }
}

/// Cartesian-product cap on the number of point lookups one `IndexScan` may
/// carry; predicates expanding past this stay as full-scan filters.
const MAX_INDEX_KEYS: usize = 64;

/// The inner side of an index-nested-loop join must have at least this many
/// rows for the lookup path to beat a hash build over it.
const MIN_INDEX_JOIN_INNER_ROWS: usize = 64;

/// The probe side's estimated cardinality must be at most `inner /
/// INDEX_JOIN_SELECTIVITY` for an index-nested-loop join to be chosen.
const INDEX_JOIN_SELECTIVITY: usize = 8;

/// Aggregate specification inside an [`PhysPlan::Aggregate`].
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: ast::AggregateFunc,
    /// `None` for `COUNT(*)`.
    pub arg: Option<PhysExpr>,
    pub distinct: bool,
}

/// A snapshot of one table index usable by the executor (shared with the
/// catalog behind `Arc`, like row snapshots).
#[derive(Debug, Clone)]
pub enum IndexRef {
    /// Primary / unique index: key → row index.
    Unique(Arc<HashMap<Vec<Value>, usize>>),
    /// Secondary index: key → row indexes.
    Multi(Arc<HashMap<Vec<Value>, Vec<usize>>>),
}

impl IndexRef {
    /// Append the row indexes stored under `key` to `out`.
    pub(crate) fn lookup_into(&self, key: &[Value], out: &mut Vec<usize>) {
        match self {
            IndexRef::Unique(map) => out.extend(map.get(key).copied()),
            IndexRef::Multi(map) => {
                if let Some(list) = map.get(key) {
                    out.extend_from_slice(list);
                }
            }
        }
    }
}

/// A physical, immediately executable plan. Scans hold `Arc` snapshots of
/// table rows, so execution never touches the catalog.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// Scan a snapshot of a base table (or a materialized CTE). `chunks`
    /// carries the table's lazily built columnar image when the planner
    /// enabled vectorized execution for this scan; it was captured under the
    /// same catalog read as `rows`, so the two always describe the same
    /// snapshot. `None` forces the row path.
    Scan {
        rows: Arc<Vec<Row>>,
        width: usize,
        chunks: Option<crate::column::ChunkSlot>,
    },
    /// Scan a virtual `sys.*` system table, materialized from the engine's
    /// telemetry registry at plan time (point-in-time snapshot semantics,
    /// like every other scan). Never index-accessible and never plan-cached.
    VirtualScan {
        name: String,
        rows: Arc<Vec<Row>>,
        width: usize,
    },
    /// Point / multi-point lookup against a table index instead of a full
    /// scan. `keys` holds the row-independent key tuples when the planner
    /// resolved them from equality / `IN` predicates — literals after inline
    /// binding, possibly [`PhysExpr::Param`]-bearing expressions in cached
    /// plan templates (the executor const-evaluates each tuple, dropping
    /// NULL-containing ones). It is `None` when this node is the inner side
    /// of an [`PhysPlan::IndexJoin`] and is probed with keys computed from
    /// the outer side at runtime.
    IndexScan {
        rows: Arc<Vec<Row>>,
        width: usize,
        index_name: String,
        index: IndexRef,
        keys: Option<Vec<Vec<PhysExpr>>>,
    },
    /// Index-nested-loop join: for each probe row, evaluate `probe_keys` and
    /// look the tuple up in the inner side's index — the inner table is never
    /// scanned. Chosen by the planner when the probe side is estimated to be
    /// much smaller than the indexed side.
    IndexJoin {
        probe: Box<PhysPlan>,
        /// Key expressions bound against the probe side's scope, in the
        /// inner index's key-column order.
        probe_keys: Vec<PhysExpr>,
        /// Always an [`PhysPlan::IndexScan`] with `keys: None`.
        inner: Box<PhysPlan>,
        /// When true the inner table's columns precede the probe columns in
        /// the output row (the inner side was the left FROM item).
        inner_is_left: bool,
        /// `Inner`, or `Left` when the probe side is the outer side of a
        /// LEFT JOIN (requires `inner_is_left == false`).
        kind: JoinKind,
        inner_width: usize,
        /// Residual predicate evaluated on joined rows (scope order).
        residual: Option<PhysExpr>,
    },
    /// One empty row — the FROM-less `SELECT`.
    OneRow,
    Filter {
        input: Box<PhysPlan>,
        predicate: PhysExpr,
    },
    Project {
        input: Box<PhysPlan>,
        exprs: Vec<PhysExpr>,
    },
    /// Equi-join executed by the configured [`JoinAlgo`].
    HashJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        kind: JoinKind,
        right_width: usize,
        /// Residual non-equi predicate evaluated on joined rows.
        residual: Option<PhysExpr>,
        algo: JoinAlgo,
    },
    NestedLoopJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        kind: JoinKind,
        right_width: usize,
        predicate: Option<PhysExpr>,
    },
    Aggregate {
        input: Box<PhysPlan>,
        keys: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
    },
    /// Appends one ranking column (`ROW_NUMBER`/`RANK`/`DENSE_RANK`) per
    /// window spec.
    Window {
        input: Box<PhysPlan>,
        func: ast::WindowFunc,
        partition: Vec<PhysExpr>,
        order: Vec<(PhysExpr, bool)>,
    },
    Sort {
        input: Box<PhysPlan>,
        keys: Vec<(PhysExpr, bool)>,
    },
    Limit {
        input: Box<PhysPlan>,
        limit: Option<usize>,
        offset: usize,
    },
    UnionAll {
        inputs: Vec<PhysPlan>,
    },
    Distinct {
        input: Box<PhysPlan>,
    },
}

impl PhysPlan {
    /// Number of operator nodes in the tree (the `nodes` attribute of the
    /// tracer's plan span — a cheap shape fingerprint for spotting plan
    /// changes across trace captures without storing the plan text).
    pub fn node_count(&self) -> usize {
        let children: usize = match self {
            PhysPlan::Scan { .. }
            | PhysPlan::VirtualScan { .. }
            | PhysPlan::IndexScan { .. }
            | PhysPlan::OneRow => 0,
            PhysPlan::IndexJoin { probe, inner, .. } => probe.node_count() + inner.node_count(),
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Window { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. }
            | PhysPlan::Distinct { input } => input.node_count(),
            PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::NestedLoopJoin { left, right, .. } => {
                left.node_count() + right.node_count()
            }
            PhysPlan::UnionAll { inputs } => inputs.iter().map(PhysPlan::node_count).sum(),
        };
        1 + children
    }
}

// Plans (and the expressions they embed) are shared with executor worker
// threads via `Arc`, so the whole tree must stay `Send + Sync`.
#[allow(dead_code)]
fn _assert_plan_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<PhysPlan>();
    assert::<AggSpec>();
}

/// Output of planning a query: the plan plus its output column names.
#[derive(Clone)]
pub struct PlannedQuery {
    pub plan: PhysPlan,
    pub columns: Vec<String>,
    pub scope: Scope,
}

/// A planned FROM item: its plan, scope, and — while the plan is still the
/// bare scan of a base table — the table's access paths, so later planning
/// steps can swap the scan for an index lookup.
struct PlannedItem {
    plan: PhysPlan,
    scope: Scope,
    access: Option<TableAccess>,
}

/// Access-path metadata of a base table captured at planning time.
#[derive(Clone)]
struct TableAccess {
    rows: Arc<Vec<Row>>,
    width: usize,
    /// Primary index first, then secondaries in creation order — the match
    /// loop takes the first covering index, so this is the preference order.
    indexes: Vec<IndexMeta>,
}

#[derive(Clone)]
struct IndexMeta {
    name: String,
    key_columns: Vec<usize>,
    index: IndexRef,
}

/// If every key expression is a bare column and some index's key columns are
/// exactly that column set, return the index plus the permutation mapping
/// each index key column to its position in `keys`.
fn covering_index(access: &TableAccess, keys: &[PhysExpr]) -> Option<(IndexMeta, Vec<usize>)> {
    let cols: Vec<usize> = keys
        .iter()
        .map(|k| match k {
            PhysExpr::Column(c) => Some(*c),
            _ => None,
        })
        .collect::<Option<_>>()?;
    for idx in &access.indexes {
        if idx.key_columns.len() != cols.len() {
            continue;
        }
        let perm: Option<Vec<usize>> = idx
            .key_columns
            .iter()
            .map(|&kc| cols.iter().position(|&c| c == kc))
            .collect();
        if let Some(perm) = perm {
            return Some((idx.clone(), perm));
        }
    }
    None
}

/// Crude cardinality estimate used for the index-nested-loop join choice —
/// exact for scans, heuristic elsewhere. Over-estimating only costs us the
/// optimization; under-estimating costs one hash build we'd have paid anyway.
fn estimate_rows(plan: &PhysPlan) -> usize {
    match plan {
        PhysPlan::Scan { rows, .. } | PhysPlan::VirtualScan { rows, .. } => rows.len(),
        PhysPlan::IndexScan {
            rows, index, keys, ..
        } => match keys {
            Some(k) => match index {
                IndexRef::Unique(_) => k.len(),
                IndexRef::Multi(_) => k.len().saturating_mul(2),
            },
            None => rows.len(),
        },
        PhysPlan::OneRow => 1,
        PhysPlan::Filter { input, .. } => estimate_rows(input) / 3 + 1,
        PhysPlan::Project { input, .. }
        | PhysPlan::Window { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Distinct { input } => estimate_rows(input),
        PhysPlan::Limit { input, limit, .. } => {
            let est = estimate_rows(input);
            limit.map_or(est, |l| l.min(est))
        }
        PhysPlan::HashJoin { left, right, .. } => estimate_rows(left).min(estimate_rows(right)),
        PhysPlan::IndexJoin { probe, .. } => estimate_rows(probe),
        PhysPlan::NestedLoopJoin {
            left,
            right,
            predicate,
            ..
        } => {
            let product = estimate_rows(left).saturating_mul(estimate_rows(right));
            if predicate.is_some() {
                product / 3 + 1
            } else {
                product
            }
        }
        PhysPlan::Aggregate { input, keys, .. } => {
            if keys.is_empty() {
                1
            } else {
                estimate_rows(input) / 4 + 1
            }
        }
        PhysPlan::UnionAll { inputs } => inputs.iter().map(estimate_rows).sum(),
    }
}

/// Decide whether an equi join should run as an index nested loop.
///
/// Returns `(inner_is_left, index, perm)` where `perm[i]` is the position in
/// the probe-side key list of the i-th index key column. The inner side must
/// still be a bare indexed scan, large enough to be worth avoiding a hash
/// build, and the probe side must look at least `INDEX_JOIN_SELECTIVITY`×
/// smaller. Probing the left side into a right-side index (`inner_is_left ==
/// false`) preserves outer-join semantics, so it is valid for LEFT joins;
/// the reverse orientation is inner-join only.
fn index_join_choice(
    l: &PlannedItem,
    left_keys: &[PhysExpr],
    r: &PlannedItem,
    right_keys: &[PhysExpr],
    kind: JoinKind,
) -> Option<(bool, IndexMeta, Vec<usize>)> {
    if let Some(acc) = &r.access {
        if let Some((meta, perm)) = covering_index(acc, right_keys) {
            let inner_rows = acc.rows.len();
            if inner_rows >= MIN_INDEX_JOIN_INNER_ROWS
                && estimate_rows(&l.plan).saturating_mul(INDEX_JOIN_SELECTIVITY) <= inner_rows
            {
                return Some((false, meta, perm));
            }
        }
    }
    if kind == JoinKind::Inner {
        if let Some(acc) = &l.access {
            if let Some((meta, perm)) = covering_index(acc, left_keys) {
                let inner_rows = acc.rows.len();
                if inner_rows >= MIN_INDEX_JOIN_INNER_ROWS
                    && estimate_rows(&r.plan).saturating_mul(INDEX_JOIN_SELECTIVITY) <= inner_rows
                {
                    return Some((true, meta, perm));
                }
            }
        }
    }
    None
}

/// Wrap `input` in a projection — unless the projection is an identity map
/// over a leaf of known width, i.e. a pure column rename (`SELECT * FROM t`,
/// derived-table aliasing like `(SELECT n, term AS j FROM t) AS qx`). Such
/// projections change nothing but names (which live in the scope, not the
/// plan), and eliding them both skips a per-row copy and leaves the bare
/// scan visible to the join planner's index-access machinery.
fn project_or_elide(input: PhysPlan, exprs: Vec<PhysExpr>) -> PhysPlan {
    let width = match &input {
        PhysPlan::Scan { width, .. }
        | PhysPlan::VirtualScan { width, .. }
        | PhysPlan::IndexScan { width, .. } => Some(*width),
        _ => None,
    };
    let identity = width == Some(exprs.len())
        && exprs
            .iter()
            .enumerate()
            .all(|(i, e)| matches!(e, PhysExpr::Column(c) if *c == i));
    if identity {
        input
    } else {
        PhysPlan::Project {
            input: Box::new(input),
            exprs,
        }
    }
}

/// Assemble the `IndexJoin` plan for a choice made by `index_join_choice`.
fn build_index_join(
    l: PlannedItem,
    left_keys: Vec<PhysExpr>,
    r: PlannedItem,
    right_keys: Vec<PhysExpr>,
    kind: JoinKind,
    residual: Option<PhysExpr>,
    (inner_is_left, meta, perm): (bool, IndexMeta, Vec<usize>),
) -> PhysPlan {
    let (probe_plan, probe_key_src, inner_item) = if inner_is_left {
        (r.plan, right_keys, l)
    } else {
        (l.plan, left_keys, r)
    };
    let access = inner_item
        .access
        .expect("index_join_choice picked an inner side with access metadata");
    let probe_keys = perm.iter().map(|&p| probe_key_src[p].clone()).collect();
    let inner = PhysPlan::IndexScan {
        rows: access.rows,
        width: access.width,
        index_name: meta.name,
        index: meta.index,
        keys: None,
    };
    PhysPlan::IndexJoin {
        probe: Box::new(probe_plan),
        probe_keys,
        inner: Box::new(inner),
        inner_is_left,
        kind,
        inner_width: access.width,
        residual,
    }
}

/// Provider of virtual `sys.*` tables, implemented by the engine layer. The
/// current catalog is passed in (rather than re-locked) so providers never
/// re-enter the planner's catalog read lock.
pub trait VirtualTables {
    /// Materialize the named virtual table as a row snapshot, or `None` if
    /// the name is not a known virtual table.
    fn virtual_table(&self, catalog: &Catalog, name: &str) -> Option<(Schema, Arc<Vec<Row>>)>;
}

/// Plans statements against a catalog snapshot.
pub struct Planner<'a> {
    pub catalog: &'a Catalog,
    pub params: &'a [Value],
    pub config: PlannerConfig,
    /// Bind `?` markers symbolically ([`PhysExpr::Param`]) instead of
    /// inlining `params`, producing a cacheable plan template that is
    /// re-bound per execution via [`bind_plan_params`].
    symbolic_params: bool,
    /// Resolver for virtual `sys.*` tables (engine-provided; `None` in
    /// bare planner tests).
    virtuals: Option<&'a dyn VirtualTables>,
    /// Set when any planned table ref resolved to a virtual table; such
    /// plans hold point-in-time telemetry rows and must not be cached.
    used_virtual: bool,
    /// Stack of CTE frames; inner queries see outer CTEs.
    cte_frames: Vec<HashMap<String, CteEntry>>,
    /// Scratch: WHERE conjuncts `join_comma_items` could not place; the
    /// caller turns them into a filter above the join tree.
    leftover_conjuncts: Vec<Expr>,
}

#[derive(Clone)]
enum CteEntry {
    /// Inline: re-plan the AST at each reference.
    Inline(Arc<Query>),
    /// Materialized rows with their scope-relative column names.
    Table(Arc<Vec<Row>>, Vec<String>),
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog, params: &'a [Value], config: PlannerConfig) -> Self {
        Planner {
            catalog,
            params,
            config,
            symbolic_params: false,
            virtuals: None,
            used_virtual: false,
            cte_frames: Vec::new(),
            leftover_conjuncts: Vec::new(),
        }
    }

    /// Attach a virtual-table resolver (the engine) so `sys.*` names plan
    /// as [`PhysPlan::VirtualScan`]s.
    #[must_use]
    pub fn with_virtuals(mut self, virtuals: &'a dyn VirtualTables) -> Self {
        self.virtuals = Some(virtuals);
        self
    }

    /// Keep `?` markers symbolic so the resulting plan can be cached as a
    /// template. The caller must have checked [`params_unsupported`] first:
    /// parameters in positions consumed at plan time (LIMIT/OFFSET,
    /// subquery bodies, materialized CTEs) cannot stay symbolic.
    #[must_use]
    pub fn symbolic(mut self) -> Self {
        self.symbolic_params = true;
        self
    }

    /// Bind an expression honouring the planner's parameter mode.
    fn bind(&self, e: &Expr, scope: &Scope) -> Result<PhysExpr> {
        if self.symbolic_params {
            bind_expr_symbolic(e, scope)
        } else {
            bind_expr(e, scope, self.params)
        }
    }

    /// Whether any table ref in the last planned statement was virtual.
    pub fn used_virtual(&self) -> bool {
        self.used_virtual
    }

    fn lookup_cte(&self, name: &str) -> Option<CteEntry> {
        for frame in self.cte_frames.iter().rev() {
            if let Some(e) = frame.get(&name.to_ascii_lowercase()) {
                return Some(e.clone());
            }
        }
        None
    }

    /// Plan a full query (CTEs + body + ORDER BY/LIMIT).
    pub fn plan_query(&mut self, query: &Query) -> Result<PlannedQuery> {
        let mut frame = HashMap::new();
        for cte in &query.ctes {
            let entry = if self.config.materialize_ctes {
                // Plan and evaluate the CTE eagerly; references scan the rows.
                // Planner-time executions (materialized CTEs here, and the
                // uncorrelated subqueries in `resolve_subqueries`) run on the
                // serial executor: they happen under the planner's catalog
                // borrow, and their results become plain row snapshots.
                self.cte_frames.push(frame.clone());
                let planned = self.plan_query(&cte.query);
                self.cte_frames.pop();
                let planned = planned?;
                let rows = crate::exec::execute(&planned.plan)?;
                CteEntry::Table(Arc::new(rows), planned.columns)
            } else {
                CteEntry::Inline(Arc::new(Query {
                    // Inner CTEs of this WITH are visible to later CTEs via
                    // the frame pushed below; keep the query as-is.
                    ctes: cte.query.ctes.clone(),
                    body: cte.query.body.clone(),
                    order_by: cte.query.order_by.clone(),
                    limit: cte.query.limit.clone(),
                    offset: cte.query.offset.clone(),
                }))
            };
            frame.insert(cte.name.to_ascii_lowercase(), entry);
        }
        self.cte_frames.push(frame);
        let result = self.plan_query_body(query);
        self.cte_frames.pop();
        result
    }

    fn plan_query_body(&mut self, query: &Query) -> Result<PlannedQuery> {
        let mut planned = match &query.body {
            SetExpr::Select(select) => self.plan_select(select, &query.order_by)?,
            SetExpr::Union { .. } => {
                let mut p = self.plan_set_expr(&query.body)?;
                // ORDER BY over a union binds against the union's output.
                if !query.order_by.is_empty() {
                    let keys = self.bind_order_output(&query.order_by, &p.scope, &p.columns)?;
                    p.plan = PhysPlan::Sort {
                        input: Box::new(p.plan),
                        keys,
                    };
                }
                p
            }
        };
        let limit = query
            .limit
            .as_ref()
            .map(|e| self.const_usize(e, "LIMIT"))
            .transpose()?;
        let offset = query
            .offset
            .as_ref()
            .map(|e| self.const_usize(e, "OFFSET"))
            .transpose()?
            .unwrap_or(0);
        if limit.is_some() || offset > 0 {
            planned.plan = PhysPlan::Limit {
                input: Box::new(planned.plan),
                limit,
                offset,
            };
        }
        Ok(planned)
    }

    fn const_usize(&self, e: &Expr, what: &str) -> Result<usize> {
        let bound = self.bind(e, &Scope::default())?;
        let v = bound.eval_const()?;
        v.as_i64()?
            .filter(|&i| i >= 0)
            .map(|i| i as usize)
            .ok_or_else(|| EngineError::plan(format!("{what} must be a non-negative integer")))
    }

    fn plan_set_expr(&mut self, body: &SetExpr) -> Result<PlannedQuery> {
        match body {
            SetExpr::Select(select) => self.plan_select(select, &[]),
            SetExpr::Union { left, right, all } => {
                let l = self.plan_set_expr(left)?;
                let r = self.plan_set_expr(right)?;
                if l.columns.len() != r.columns.len() {
                    return Err(EngineError::plan(format!(
                        "UNION arms have different column counts ({} vs {})",
                        l.columns.len(),
                        r.columns.len()
                    )));
                }
                // Flatten nested unions for fewer copies.
                let mut inputs = Vec::new();
                match l.plan {
                    PhysPlan::UnionAll { inputs: li } if *all => inputs.extend(li),
                    other => inputs.push(other),
                }
                match r.plan {
                    PhysPlan::UnionAll { inputs: ri } if *all => inputs.extend(ri),
                    other => inputs.push(other),
                }
                let mut plan = PhysPlan::UnionAll { inputs };
                if !*all {
                    plan = PhysPlan::Distinct {
                        input: Box::new(plan),
                    };
                }
                Ok(PlannedQuery {
                    plan,
                    columns: l.columns,
                    scope: l.scope,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    /// Plan a single table factor, producing its plan, scope, and (for bare
    /// base-table scans) the table's access paths.
    /// Access-path metadata for a base table, when index planning is on.
    fn table_access(&self, table: &Table) -> Option<TableAccess> {
        if !self.config.use_indexes {
            return None;
        }
        let mut indexes = Vec::new();
        if let Some(p) = &table.primary {
            indexes.push(IndexMeta {
                name: format!("{}.pk", table.name),
                key_columns: p.key_columns.clone(),
                index: IndexRef::Unique(Arc::clone(&p.map)),
            });
        }
        for s in &table.secondary {
            indexes.push(IndexMeta {
                name: s.name.clone(),
                key_columns: s.key_columns.clone(),
                index: IndexRef::Multi(Arc::clone(&s.map)),
            });
        }
        Some(TableAccess {
            rows: Arc::clone(&table.rows),
            width: table.schema.len(),
            indexes,
        })
    }

    /// Find the catalog table whose row store is exactly `rows` (pointer
    /// identity — scans clone the table's `Arc`), if any.
    fn table_access_for_rows(&self, rows: &Arc<Vec<Row>>) -> Option<TableAccess> {
        self.catalog
            .table_names()
            .into_iter()
            .filter_map(|n| self.catalog.get(&n).ok())
            .find(|t| Arc::ptr_eq(&t.rows, rows))
            .and_then(|t| self.table_access(t))
    }

    fn plan_table_ref(&mut self, tref: &TableRef) -> Result<PlannedItem> {
        match tref {
            TableRef::Named { name, alias, .. } => {
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                if let Some(entry) = self.lookup_cte(name) {
                    match entry {
                        CteEntry::Inline(q) => {
                            let planned = self.plan_query(&q)?;
                            let labels = planned
                                .columns
                                .iter()
                                .map(|c| ColLabel::new(Some(&qual), c))
                                .collect();
                            Ok(PlannedItem {
                                plan: planned.plan,
                                scope: Scope::new(labels),
                                access: None,
                            })
                        }
                        CteEntry::Table(rows, cols) => {
                            let width = cols.len();
                            let labels =
                                cols.iter().map(|c| ColLabel::new(Some(&qual), c)).collect();
                            Ok(PlannedItem {
                                // Materialized CTE output has no table-backed
                                // chunk cache; it runs on the row path.
                                plan: PhysPlan::Scan {
                                    rows,
                                    width,
                                    chunks: None,
                                },
                                scope: Scope::new(labels),
                                access: None,
                            })
                        }
                    }
                } else if let Some((schema, rows)) = self
                    .virtuals
                    .and_then(|v| v.virtual_table(self.catalog, name))
                {
                    self.used_virtual = true;
                    let labels = schema
                        .columns
                        .iter()
                        .map(|c| ColLabel::new(Some(&qual), &c.name).with_ty(c.ty))
                        .collect();
                    let width = schema.len();
                    Ok(PlannedItem {
                        plan: PhysPlan::VirtualScan {
                            name: name.to_ascii_lowercase(),
                            rows,
                            width,
                        },
                        scope: Scope::new(labels),
                        // No access paths: virtual tables are never
                        // index-planned.
                        access: None,
                    })
                } else {
                    let table = self.catalog.get(name)?;
                    let labels = table
                        .schema
                        .columns
                        .iter()
                        .map(|c| ColLabel::new(Some(&qual), &c.name).with_ty(c.ty))
                        .collect();
                    let access = self.table_access(table);
                    Ok(PlannedItem {
                        plan: PhysPlan::Scan {
                            rows: Arc::clone(&table.rows),
                            width: table.schema.len(),
                            chunks: self.config.vectorized.then(|| table.chunks.clone()),
                        },
                        scope: Scope::new(labels),
                        access,
                    })
                }
            }
            TableRef::Derived { query, alias } => {
                let planned = self.plan_query(query)?;
                let labels = planned
                    .columns
                    .iter()
                    .map(|c| ColLabel::new(Some(alias), c))
                    .collect();
                // A derived table that planned down to the bare scan of a
                // base table (its identity projection was elided — a pure
                // column-rename subquery, the serving queries' `(SELECT n,
                // term AS j, cnt AS w FROM features) AS qx` shape) keeps the
                // table's access paths, so joins against it can still probe
                // indexes instead of rescanning the whole table.
                let access = match &planned.plan {
                    PhysPlan::Scan { rows, .. } => self.table_access_for_rows(rows),
                    _ => None,
                };
                Ok(PlannedItem {
                    plan: planned.plan,
                    scope: Scope::new(labels),
                    access,
                })
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let l = self.plan_table_ref(left)?;
                let r = self.plan_table_ref(right)?;
                self.plan_join(l, r, *kind, on.as_ref())
            }
        }
    }

    /// Build a join between two planned inputs, detecting equi-keys in `on`.
    /// Equi joins prefer an index-nested-loop plan when one side is a bare
    /// base-table scan with an index covering the join keys and the probe
    /// side is estimated small enough; otherwise they hash-join.
    fn plan_join(
        &mut self,
        l: PlannedItem,
        r: PlannedItem,
        kind: JoinKind,
        on: Option<&Expr>,
    ) -> Result<PlannedItem> {
        let joined_scope = l.scope.join(&r.scope);
        let right_width = r.scope.len();
        let plan = match on {
            None => PhysPlan::NestedLoopJoin {
                left: Box::new(l.plan),
                right: Box::new(r.plan),
                kind,
                right_width,
                predicate: None,
            },
            Some(cond) => {
                let conjuncts = split_conjuncts(cond);
                let (mut left_keys, mut right_keys, mut residual) =
                    (Vec::new(), Vec::new(), Vec::new());
                for c in &conjuncts {
                    if let Some((le, re)) = self.as_equi_key(c, &l.scope, &r.scope)? {
                        left_keys.push(le);
                        right_keys.push(re);
                        continue;
                    }
                    residual.push((*c).clone());
                }
                if left_keys.is_empty() {
                    let predicate = conjoin(&conjuncts);
                    let bound = self.bind(&predicate, &joined_scope)?;
                    PhysPlan::NestedLoopJoin {
                        left: Box::new(l.plan),
                        right: Box::new(r.plan),
                        kind,
                        right_width,
                        predicate: Some(bound),
                    }
                } else {
                    let residual = if residual.is_empty() {
                        None
                    } else {
                        let refs: Vec<&Expr> = residual.iter().collect();
                        Some(self.bind(&conjoin(&refs), &joined_scope)?)
                    };
                    if let Some(choice) = index_join_choice(&l, &left_keys, &r, &right_keys, kind) {
                        build_index_join(l, left_keys, r, right_keys, kind, residual, choice)
                    } else {
                        PhysPlan::HashJoin {
                            left: Box::new(l.plan),
                            right: Box::new(r.plan),
                            left_keys,
                            right_keys,
                            kind,
                            right_width,
                            residual,
                            algo: self.config.join_algo,
                        }
                    }
                }
            }
        };
        Ok(PlannedItem {
            plan,
            scope: joined_scope,
            access: None,
        })
    }

    /// If `expr` is `a = b` with `a` bindable purely in `ls` and `b` in `rs`
    /// (or vice versa), return the bound key pair.
    fn as_equi_key(
        &self,
        expr: &Expr,
        ls: &Scope,
        rs: &Scope,
    ) -> Result<Option<(PhysExpr, PhysExpr)>> {
        let Expr::Binary {
            left,
            op: ast::BinaryOp::Eq,
            right,
            ..
        } = expr
        else {
            return Ok(None);
        };
        let try_bind = |e: &Expr, s: &Scope| self.bind(e, s).ok();
        if let (Some(le), Some(re)) = (try_bind(left, ls), try_bind(right, rs)) {
            return Ok(Some((le, re)));
        }
        if let (Some(le), Some(re)) = (try_bind(right, ls), try_bind(left, rs)) {
            return Ok(Some((le, re)));
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    /// Evaluate every (uncorrelated) subquery inside `e` and replace it with
    /// its result: scalar subqueries become literals, `IN (SELECT ...)`
    /// becomes an `IN` list, `EXISTS` becomes a boolean literal. Correlated
    /// subqueries fail naturally when their outer column references do not
    /// bind inside the subquery's own scope.
    pub(crate) fn resolve_subqueries(&mut self, e: &mut Expr) -> Result<()> {
        match e {
            Expr::ScalarSubquery(q, span) => {
                let span = *span;
                let planned = self.plan_query(q)?;
                let rows = crate::exec::execute(&planned.plan)?;
                if rows.len() > 1 {
                    return Err(EngineError::plan(format!(
                        "scalar subquery returned {} rows",
                        rows.len()
                    )));
                }
                let v = rows
                    .into_iter()
                    .next()
                    .and_then(|r| r.into_iter().next())
                    .unwrap_or(Value::Null);
                *e = Expr::Literal(v, span);
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
                span,
            } => {
                let span = *span;
                self.resolve_subqueries(expr)?;
                let planned = self.plan_query(query)?;
                if planned.columns.len() != 1 {
                    return Err(EngineError::plan(format!(
                        "IN subquery must return one column, got {}",
                        planned.columns.len()
                    )));
                }
                let rows = crate::exec::execute(&planned.plan)?;
                let list = rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.pop().expect("one column"), Span::default()))
                    .collect();
                *e = Expr::InList {
                    expr: expr.clone(),
                    list,
                    negated: *negated,
                    span,
                };
            }
            Expr::Exists {
                query,
                negated,
                span,
            } => {
                let span = *span;
                let planned = self.plan_query(query)?;
                let rows = crate::exec::execute(&planned.plan)?;
                *e = Expr::Literal(Value::Int((rows.is_empty() == *negated) as i64), span);
            }
            _ => {
                let mut result = Ok(());
                visit_children_mut(e, &mut |c| {
                    if result.is_ok() {
                        result = self.resolve_subqueries(c);
                    }
                });
                result?;
            }
        }
        Ok(())
    }

    fn plan_select(&mut self, select: &Select, order_by: &[OrderItem]) -> Result<PlannedQuery> {
        // 0. Evaluate uncorrelated subqueries so the rest of planning only
        //    sees plain expressions.
        let has_subqueries = |s: &Select| -> bool {
            // Cheap structural probe; cloning only when needed.
            fn probe(e: &Expr) -> bool {
                match e {
                    Expr::ScalarSubquery(..) | Expr::InSubquery { .. } | Expr::Exists { .. } => {
                        true
                    }
                    _ => {
                        let mut found = false;
                        visit_children(e, &mut |c| found |= probe(c));
                        found
                    }
                }
            }
            s.selection.as_ref().is_some_and(probe)
                || s.having.as_ref().is_some_and(probe)
                || s.group_by.iter().any(probe)
                || s.projection.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => probe(expr),
                    _ => false,
                })
        };
        let resolved_select;
        let select = if has_subqueries(select) {
            let mut s = select.clone();
            if let Some(sel) = &mut s.selection {
                self.resolve_subqueries(sel)?;
            }
            if let Some(h) = &mut s.having {
                self.resolve_subqueries(h)?;
            }
            for g in &mut s.group_by {
                self.resolve_subqueries(g)?;
            }
            for item in &mut s.projection {
                if let SelectItem::Expr { expr, .. } = item {
                    self.resolve_subqueries(expr)?;
                }
            }
            resolved_select = s;
            &resolved_select
        } else {
            select
        };

        // 1. FROM: plan each comma item.
        let mut items: Vec<PlannedItem> = Vec::with_capacity(select.from.len());
        for tref in &select.from {
            items.push(self.plan_table_ref(tref)?);
        }

        // 2. WHERE conjuncts.
        let conjuncts: Vec<Expr> = select
            .selection
            .as_ref()
            .map(|e| split_conjuncts(e).into_iter().cloned().collect())
            .unwrap_or_default();

        let (mut plan, mut scope) = if items.is_empty() {
            self.leftover_conjuncts = conjuncts.clone();
            (PhysPlan::OneRow, Scope::default())
        } else {
            self.join_comma_items(items, &conjuncts)?
        };

        // Apply any WHERE conjuncts not consumed as join keys / pushdowns.
        // `join_comma_items` marks consumed conjuncts by omission: we simply
        // re-bind everything that still references the full scope and was not
        // consumed — see its return contract below.
        let leftovers = std::mem::take(&mut self.leftover_conjuncts);
        if !leftovers.is_empty() {
            let refs: Vec<&Expr> = leftovers.iter().collect();
            let predicate = self.bind(&conjoin(&refs), &scope)?;
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // 3. Expand projection wildcards into concrete expressions.
        let mut proj_items: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    for label in &scope.labels {
                        proj_items.push((
                            Expr::Column {
                                qualifier: label.qualifier.clone(),
                                name: label.name.clone(),
                                span: Span::default(),
                            },
                            Some(label.name.clone()),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q, wspan) => {
                    let mut any = false;
                    for label in &scope.labels {
                        if label
                            .qualifier
                            .as_deref()
                            .is_some_and(|lq| lq.eq_ignore_ascii_case(q))
                        {
                            proj_items.push((
                                Expr::Column {
                                    qualifier: label.qualifier.clone(),
                                    name: label.name.clone(),
                                    span: *wspan,
                                },
                                Some(label.name.clone()),
                            ));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(EngineError::plan(format!("unknown table alias '{q}.*'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    proj_items.push((expr.clone(), alias.clone()));
                }
            }
        }

        // 4. Aggregation.
        let has_aggregates = !select.group_by.is_empty()
            || proj_items.iter().any(|(e, _)| e.contains_aggregate())
            || select
                .having
                .as_ref()
                .is_some_and(|h| h.contains_aggregate());
        let mut order_items: Vec<OrderItem> = order_by.to_vec();
        if has_aggregates {
            let (agg_plan, agg_scope, rewritten_proj, rewritten_having, rewritten_order) = self
                .plan_aggregate(
                    plan,
                    &scope,
                    &select.group_by,
                    proj_items,
                    select.having.as_ref(),
                    &order_items,
                )?;
            plan = agg_plan;
            scope = agg_scope;
            proj_items = rewritten_proj;
            order_items = rewritten_order;
            if let Some(having) = rewritten_having {
                let predicate = self.bind(&having, &scope)?;
                plan = PhysPlan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            }
        } else if select.having.is_some() {
            return Err(EngineError::plan("HAVING requires GROUP BY or aggregates"));
        }

        // 5. Window functions.
        let mut window_specs: Vec<Expr> = Vec::new();
        for (e, _) in &proj_items {
            collect_windows(e, &mut window_specs);
        }
        for w in window_specs.clone() {
            let Expr::WindowRowNumber {
                func,
                partition_by,
                order_by: worder,
                ..
            } = &w
            else {
                unreachable!()
            };
            let partition = partition_by
                .iter()
                .map(|e| self.bind(e, &scope))
                .collect::<Result<Vec<_>>>()?;
            let order = worder
                .iter()
                .map(|oi| Ok((self.bind(&oi.expr, &scope)?, oi.descending)))
                .collect::<Result<Vec<_>>>()?;
            plan = PhysPlan::Window {
                input: Box::new(plan),
                func: *func,
                partition,
                order,
            };
            let marker = format!("#w{}", scope.len());
            scope.labels.push(ColLabel::bare(&marker));
            let replacement = Expr::col(marker);
            for (e, _) in proj_items.iter_mut() {
                replace_subtree(e, &w, &replacement);
            }
            for oi in order_items.iter_mut() {
                replace_subtree(&mut oi.expr, &w, &replacement);
            }
        }

        // 6. Projection.
        let mut exprs = Vec::with_capacity(proj_items.len());
        let mut out_labels = Vec::with_capacity(proj_items.len());
        let mut columns = Vec::with_capacity(proj_items.len());
        for (i, (e, alias)) in proj_items.iter().enumerate() {
            exprs.push(self.bind(e, &scope)?);
            let name = alias.clone().unwrap_or_else(|| display_name(e, i));
            out_labels.push(ColLabel::bare(&name));
            columns.push(name);
        }
        let out_width = exprs.len();
        let mut out_scope = Scope::new(out_labels);

        // 7. ORDER BY: try output scope (incl. ordinals); fall back to
        //    hidden columns computed from the pre-projection scope.
        let mut sort_keys: Vec<(PhysExpr, bool)> = Vec::new();
        let mut hidden: Vec<PhysExpr> = Vec::new();
        for oi in &order_items {
            if let Expr::Literal(Value::Int(ordinal), _) = oi.expr {
                let idx = (ordinal as usize)
                    .checked_sub(1)
                    .filter(|&i| i < out_width)
                    .ok_or_else(|| {
                        EngineError::plan(format!("ORDER BY ordinal {ordinal} out of range"))
                    })?;
                sort_keys.push((PhysExpr::Column(idx), oi.descending));
                continue;
            }
            match self.bind(&oi.expr, &out_scope) {
                Ok(b) => sort_keys.push((b, oi.descending)),
                Err(_) => {
                    let b = self.bind(&oi.expr, &scope)?;
                    let idx = out_width + hidden.len();
                    hidden.push(b);
                    sort_keys.push((PhysExpr::Column(idx), oi.descending));
                }
            }
        }

        if hidden.is_empty() {
            plan = project_or_elide(plan, exprs);
            if select.distinct {
                plan = PhysPlan::Distinct {
                    input: Box::new(plan),
                };
            }
            if !sort_keys.is_empty() {
                plan = PhysPlan::Sort {
                    input: Box::new(plan),
                    keys: sort_keys,
                };
            }
        } else {
            // Project visible + hidden, sort, then strip hidden.
            exprs.extend(hidden);
            plan = PhysPlan::Project {
                input: Box::new(plan),
                exprs,
            };
            if select.distinct {
                return Err(EngineError::plan(
                    "SELECT DISTINCT with ORDER BY on non-output expressions is not supported",
                ));
            }
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
            plan = PhysPlan::Project {
                input: Box::new(plan),
                exprs: (0..out_width).map(PhysExpr::Column).collect(),
            };
        }
        out_scope.labels.truncate(out_width);
        Ok(PlannedQuery {
            plan,
            columns,
            scope: out_scope,
        })
    }

    /// Greedy left-deep join of comma-separated FROM items using WHERE
    /// conjuncts. Single-item conjuncts are pushed down as filters — or, when
    /// they match an index on a bare base-table scan, converted into an
    /// `IndexScan` point/multi-point lookup. Equi conjuncts become hash-join
    /// keys, or an index-nested-loop join when one side is a bare indexed
    /// scan and the other is estimated small. Conjuncts that cannot be
    /// placed are stored in `self.leftover_conjuncts` for the caller.
    fn join_comma_items(
        &mut self,
        mut items: Vec<PlannedItem>,
        conjuncts: &[Expr],
    ) -> Result<(PhysPlan, Scope)> {
        let mut remaining: Vec<Expr> = conjuncts.to_vec();

        // Push single-item predicates down onto their item.
        for item in items.iter_mut() {
            let mut kept = Vec::new();
            let mut pushed: Vec<Expr> = Vec::new();
            for c in remaining.drain(..) {
                if self.bind(&c, &item.scope).is_ok() {
                    pushed.push(c);
                } else {
                    kept.push(c);
                }
            }
            remaining = kept;
            if !pushed.is_empty() {
                // Equality / IN conjuncts covering an index turn the scan
                // into index lookups; whatever they don't consume stays as a
                // filter on top.
                let mut residual = pushed;
                if let Some(access) = &item.access {
                    if let Some((scan, consumed)) =
                        self.try_index_scan(access, &item.scope, &residual)?
                    {
                        item.plan = scan;
                        residual = residual
                            .into_iter()
                            .enumerate()
                            .filter(|(i, _)| !consumed.contains(i))
                            .map(|(_, c)| c)
                            .collect();
                    }
                }
                item.access = None;
                if !residual.is_empty() {
                    let refs: Vec<&Expr> = residual.iter().collect();
                    let predicate = self.bind(&conjoin(&refs), &item.scope)?;
                    let input = std::mem::replace(&mut item.plan, PhysPlan::OneRow);
                    item.plan = PhysPlan::Filter {
                        input: Box::new(input),
                        predicate,
                    };
                }
            }
        }

        let mut cur = items.remove(0);
        while !items.is_empty() {
            // Find an item connected to the current scope by an equi conjunct.
            let mut chosen: Option<usize> = None;
            'outer: for (idx, item) in items.iter().enumerate() {
                for c in &remaining {
                    if self.as_equi_key(c, &cur.scope, &item.scope)?.is_some() {
                        chosen = Some(idx);
                        break 'outer;
                    }
                }
            }
            match chosen {
                Some(idx) => {
                    let ritem = items.remove(idx);
                    let mut left_keys = Vec::new();
                    let mut right_keys = Vec::new();
                    let mut kept = Vec::new();
                    for c in remaining.drain(..) {
                        if let Some((le, re)) = self.as_equi_key(&c, &cur.scope, &ritem.scope)? {
                            left_keys.push(le);
                            right_keys.push(re);
                        } else {
                            kept.push(c);
                        }
                    }
                    remaining = kept;
                    let right_width = ritem.scope.len();
                    let scope = cur.scope.join(&ritem.scope);
                    let plan = if let Some(choice) =
                        index_join_choice(&cur, &left_keys, &ritem, &right_keys, JoinKind::Inner)
                    {
                        build_index_join(
                            cur,
                            left_keys,
                            ritem,
                            right_keys,
                            JoinKind::Inner,
                            None,
                            choice,
                        )
                    } else {
                        PhysPlan::HashJoin {
                            left: Box::new(cur.plan),
                            right: Box::new(ritem.plan),
                            left_keys,
                            right_keys,
                            kind: JoinKind::Inner,
                            right_width,
                            residual: None,
                            algo: self.config.join_algo,
                        }
                    };
                    cur = PlannedItem {
                        plan,
                        scope,
                        access: None,
                    };
                }
                None => {
                    // Cross join with the next item; applicable predicates
                    // (now bindable over the union scope) are applied after.
                    let ritem = items.remove(0);
                    let right_width = ritem.scope.len();
                    let scope = cur.scope.join(&ritem.scope);
                    let mut plan = PhysPlan::NestedLoopJoin {
                        left: Box::new(cur.plan),
                        right: Box::new(ritem.plan),
                        kind: JoinKind::Cross,
                        right_width,
                        predicate: None,
                    };
                    // Predicates that became bindable attach as a filter now,
                    // keeping them as low in the tree as possible.
                    let mut kept = Vec::new();
                    let mut apply: Vec<Expr> = Vec::new();
                    for c in remaining.drain(..) {
                        if self.bind(&c, &scope).is_ok() {
                            apply.push(c);
                        } else {
                            kept.push(c);
                        }
                    }
                    remaining = kept;
                    if !apply.is_empty() {
                        let refs: Vec<&Expr> = apply.iter().collect();
                        let predicate = self.bind(&conjoin(&refs), &scope)?;
                        plan = PhysPlan::Filter {
                            input: Box::new(plan),
                            predicate,
                        };
                    }
                    cur = PlannedItem {
                        plan,
                        scope,
                        access: None,
                    };
                }
            }
        }
        self.leftover_conjuncts = remaining;
        Ok((cur.plan, cur.scope))
    }

    /// Try to convert pushed-down conjuncts over a bare base-table scan into
    /// an `IndexScan`. Recognizes `col = <const>` and non-negated
    /// `col IN (<consts>)`; if some index's key columns are all constrained,
    /// returns the lookup plan plus the indexes (into `conjuncts`) of the
    /// conjuncts it fully consumed. Literal NULLs are dropped from the key
    /// sets at plan time (`col = NULL` matches nothing) and the executor
    /// re-applies the same rule after parameter substitution; the cartesian
    /// product of IN-list values is capped at `MAX_INDEX_KEYS` per index.
    fn try_index_scan(
        &self,
        access: &TableAccess,
        scope: &Scope,
        conjuncts: &[Expr],
    ) -> Result<Option<(PhysPlan, Vec<usize>)>> {
        // col → (conjunct index, candidate key expressions). First conjunct
        // per column wins; a second one stays behind as a residual filter.
        let mut candidates: HashMap<usize, (usize, Vec<PhysExpr>)> = HashMap::new();
        for (ci, c) in conjuncts.iter().enumerate() {
            let (col, values) = match c {
                Expr::Binary {
                    left,
                    op: ast::BinaryOp::Eq,
                    right,
                    ..
                } => {
                    if let (Some(col), Some(v)) =
                        (self.as_scope_column(left, scope), self.const_expr(right))
                    {
                        (col, vec![v])
                    } else if let (Some(col), Some(v)) =
                        (self.as_scope_column(right, scope), self.const_expr(left))
                    {
                        (col, vec![v])
                    } else {
                        continue;
                    }
                }
                Expr::InList {
                    expr,
                    list,
                    negated: false,
                    ..
                } => {
                    let Some(col) = self.as_scope_column(expr, scope) else {
                        continue;
                    };
                    let Some(values) = list
                        .iter()
                        .map(|e| self.const_expr(e))
                        .collect::<Option<Vec<_>>>()
                    else {
                        continue;
                    };
                    (col, values)
                }
                _ => continue,
            };
            candidates.entry(col).or_insert((ci, values));
        }
        if candidates.is_empty() {
            return Ok(None);
        }
        'indexes: for idx in &access.indexes {
            if !idx.key_columns.iter().all(|c| candidates.contains_key(c)) {
                continue;
            }
            // Cartesian product of per-column value sets. Literal NULLs are
            // dropped and literal duplicates removed here (index maps compare
            // with `Value`'s total equality, which matches `=` for non-NULL
            // operands); symbolic parameter expressions pass through and get
            // the same treatment in the executor once their values are known.
            let mut keys: Vec<Vec<PhysExpr>> = vec![Vec::new()];
            for c in &idx.key_columns {
                let (_, values) = &candidates[c];
                let mut uniq: Vec<&PhysExpr> = Vec::new();
                for v in values {
                    match v {
                        PhysExpr::Literal(val) => {
                            let dup = matches!(val, Value::Null)
                                || uniq
                                    .iter()
                                    .any(|u| matches!(u, PhysExpr::Literal(x) if x == val));
                            if !dup {
                                uniq.push(v);
                            }
                        }
                        _ => uniq.push(v),
                    }
                }
                let mut next = Vec::with_capacity(keys.len() * uniq.len());
                for k in &keys {
                    for v in &uniq {
                        if next.len() >= MAX_INDEX_KEYS {
                            continue 'indexes;
                        }
                        let mut k2 = k.clone();
                        k2.push((*v).clone());
                        next.push(k2);
                    }
                }
                keys = next;
            }
            let consumed: Vec<usize> = idx.key_columns.iter().map(|c| candidates[c].0).collect();
            return Ok(Some((
                PhysPlan::IndexScan {
                    rows: Arc::clone(&access.rows),
                    width: access.width,
                    index_name: idx.name.clone(),
                    index: idx.index.clone(),
                    keys: Some(keys),
                },
                consumed,
            )));
        }
        Ok(None)
    }

    /// `e` as a bare column reference resolved in `scope`, if it is one.
    fn as_scope_column(&self, e: &Expr, scope: &Scope) -> Option<usize> {
        if !matches!(e, Expr::Column { .. }) {
            return None;
        }
        match self.bind(e, scope) {
            Ok(PhysExpr::Column(c)) => Some(c),
            _ => None,
        }
    }

    /// `e` as a row-independent index-key expression: it must bind without
    /// column references, and then either const-folds to a literal now, or
    /// (in symbolic mode) still carries parameter markers and is evaluated
    /// at execution time once they are bound.
    fn const_expr(&self, e: &Expr) -> Option<PhysExpr> {
        let bound = self.bind(e, &Scope::default()).ok()?;
        if bound.contains_param() {
            return Some(bound);
        }
        bound.eval_const().ok().map(PhysExpr::Literal)
    }

    /// Build the Aggregate node and rewrite projection/HAVING/ORDER BY in
    /// terms of its output columns.
    #[allow(clippy::type_complexity)]
    fn plan_aggregate(
        &mut self,
        input: PhysPlan,
        in_scope: &Scope,
        group_by: &[Expr],
        proj_items: Vec<(Expr, Option<String>)>,
        having: Option<&Expr>,
        order_items: &[OrderItem],
    ) -> Result<(
        PhysPlan,
        Scope,
        Vec<(Expr, Option<String>)>,
        Option<Expr>,
        Vec<OrderItem>,
    )> {
        // Collect aggregate calls (deduplicated structurally).
        let mut agg_exprs: Vec<Expr> = Vec::new();
        for (e, _) in &proj_items {
            collect_aggregates(e, &mut agg_exprs);
        }
        if let Some(h) = having {
            collect_aggregates(h, &mut agg_exprs);
        }
        for oi in order_items {
            collect_aggregates(&oi.expr, &mut agg_exprs);
        }

        let keys = group_by
            .iter()
            .map(|e| self.bind(e, in_scope))
            .collect::<Result<Vec<_>>>()?;
        let aggs = agg_exprs
            .iter()
            .map(|e| {
                let Expr::Aggregate {
                    func,
                    arg,
                    distinct,
                    ..
                } = e
                else {
                    unreachable!()
                };
                Ok(AggSpec {
                    func: *func,
                    arg: arg.as_ref().map(|a| self.bind(a, in_scope)).transpose()?,
                    distinct: *distinct,
                })
            })
            .collect::<Result<Vec<_>>>()?;

        // Output scope: group keys keep their column labels when simple.
        let mut labels = Vec::with_capacity(group_by.len() + agg_exprs.len());
        for (i, g) in group_by.iter().enumerate() {
            match g {
                Expr::Column {
                    qualifier, name, ..
                } => labels.push(ColLabel::new(qualifier.as_deref(), name)),
                _ => labels.push(ColLabel::bare(&format!("#g{i}"))),
            }
        }
        for i in 0..agg_exprs.len() {
            labels.push(ColLabel::bare(&format!("#a{i}")));
        }
        let out_scope = Scope::new(labels.clone());

        // Rewrite: replace group expressions and aggregate calls with column
        // references into the aggregate output.
        let rewrite = |e: &mut Expr| {
            for (i, g) in group_by.iter().enumerate() {
                let replacement = match g {
                    Expr::Column { .. } => g.clone(),
                    _ => Expr::col(format!("#g{i}")),
                };
                replace_subtree(e, g, &replacement);
            }
            for (i, a) in agg_exprs.iter().enumerate() {
                replace_subtree(e, a, &Expr::col(format!("#a{i}")));
            }
        };

        let mut new_proj = proj_items;
        for (e, _) in new_proj.iter_mut() {
            rewrite(e);
        }
        let new_having = having.map(|h| {
            let mut h = h.clone();
            rewrite(&mut h);
            h
        });
        let mut new_order = order_items.to_vec();
        for oi in new_order.iter_mut() {
            rewrite(&mut oi.expr);
        }

        Ok((
            PhysPlan::Aggregate {
                input: Box::new(input),
                keys,
                aggs,
            },
            out_scope,
            new_proj,
            new_having,
            new_order,
        ))
    }

    fn bind_order_output(
        &self,
        order_by: &[OrderItem],
        scope: &Scope,
        columns: &[String],
    ) -> Result<Vec<(PhysExpr, bool)>> {
        order_by
            .iter()
            .map(|oi| {
                if let Expr::Literal(Value::Int(ordinal), _) = oi.expr {
                    let idx = (ordinal as usize)
                        .checked_sub(1)
                        .filter(|&i| i < columns.len())
                        .ok_or_else(|| {
                            EngineError::plan(format!("ORDER BY ordinal {ordinal} out of range"))
                        })?;
                    return Ok((PhysExpr::Column(idx), oi.descending));
                }
                Ok((self.bind(&oi.expr, scope)?, oi.descending))
            })
            .collect()
    }
}

/// Split an expression into its top-level AND conjuncts.
pub(crate) fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary {
            left,
            op: ast::BinaryOp::And,
            right,
            ..
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// AND a list of conjuncts back together. Panics on empty input.
pub(crate) fn conjoin(conjuncts: &[&Expr]) -> Expr {
    let mut it = conjuncts.iter();
    let first = (*it.next().expect("conjoin of empty list")).clone();
    it.fold(first, |acc, e| {
        let span = acc.span().cover(e.span());
        Expr::Binary {
            left: Box::new(acc),
            op: ast::BinaryOp::And,
            right: Box::new((*e).clone()),
            span,
        }
    })
}

/// Collect aggregate sub-expressions (structurally deduplicated, outermost
/// only — nested aggregates are invalid and rejected at bind time).
pub(crate) fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Aggregate { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        _ => visit_children(e, &mut |c| collect_aggregates(c, out)),
    }
}

/// Collect window sub-expressions (structurally deduplicated).
pub(crate) fn collect_windows(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::WindowRowNumber { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        _ => visit_children(e, &mut |c| collect_windows(c, out)),
    }
}

pub(crate) fn visit_children(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Literal(..) | Expr::Param(..) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => f(expr),
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            list.iter().for_each(&mut *f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                f(o);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(e2) = else_expr {
                f(e2);
            }
        }
        Expr::Function { args, .. } => args.iter().for_each(&mut *f),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            partition_by.iter().for_each(&mut *f);
            for oi in order_by {
                f(&oi.expr);
            }
        }
        // Subquery bodies are independent scopes; only visit the scalar
        // side of IN.
        Expr::ScalarSubquery(..) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => f(expr),
    }
}

/// Mutable twin of [`visit_children`].
pub(crate) fn visit_children_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match e {
        Expr::Literal(..) | Expr::Param(..) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => f(expr),
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            list.iter_mut().for_each(&mut *f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                f(o);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(e2) = else_expr {
                f(e2);
            }
        }
        Expr::Function { args, .. } => args.iter_mut().for_each(&mut *f),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            partition_by.iter_mut().for_each(&mut *f);
            for oi in order_by {
                f(&mut oi.expr);
            }
        }
        Expr::ScalarSubquery(..) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => f(expr),
    }
}

/// Replace every subtree structurally equal to `target` with `replacement`.
pub(crate) fn replace_subtree(e: &mut Expr, target: &Expr, replacement: &Expr) {
    if e == target {
        *e = replacement.clone();
        return;
    }
    match e {
        Expr::Literal(..) | Expr::Param(..) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            replace_subtree(expr, target, replacement);
        }
        Expr::Binary { left, right, .. } => {
            replace_subtree(left, target, replacement);
            replace_subtree(right, target, replacement);
        }
        Expr::InList { expr, list, .. } => {
            replace_subtree(expr, target, replacement);
            for i in list {
                replace_subtree(i, target, replacement);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            replace_subtree(expr, target, replacement);
            replace_subtree(low, target, replacement);
            replace_subtree(high, target, replacement);
        }
        Expr::Like { expr, pattern, .. } => {
            replace_subtree(expr, target, replacement);
            replace_subtree(pattern, target, replacement);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                replace_subtree(o, target, replacement);
            }
            for (w, t) in branches {
                replace_subtree(w, target, replacement);
                replace_subtree(t, target, replacement);
            }
            if let Some(e2) = else_expr {
                replace_subtree(e2, target, replacement);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                replace_subtree(a, target, replacement);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                replace_subtree(a, target, replacement);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            for p in partition_by {
                replace_subtree(p, target, replacement);
            }
            for oi in order_by {
                replace_subtree(&mut oi.expr, target, replacement);
            }
        }
        Expr::ScalarSubquery(..) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => replace_subtree(expr, target, replacement),
    }
}

// ---------------------------------------------------------------------
// Plan templates: parameter substitution and cacheability analysis
// ---------------------------------------------------------------------

/// Rebuild a cached plan template with every symbolic parameter replaced by
/// its bound value (see [`crate::expr::substitute_params`]). Plan trees are
/// small and row snapshots are shared `Arc`s, so this clone is cheap
/// relative to re-parsing and re-planning the statement.
pub fn bind_plan_params(plan: &PhysPlan, params: &[Value]) -> Result<PhysPlan> {
    let sub = |e: &PhysExpr| substitute_params(e, params);
    let sub_vec = |es: &[PhysExpr]| es.iter().map(&sub).collect::<Result<Vec<_>>>();
    let sub_opt = |e: &Option<PhysExpr>| e.as_ref().map(&sub).transpose();
    let rec = |p: &PhysPlan| bind_plan_params(p, params).map(Box::new);
    Ok(match plan {
        PhysPlan::Scan { .. } | PhysPlan::VirtualScan { .. } | PhysPlan::OneRow => plan.clone(),
        PhysPlan::IndexScan {
            rows,
            width,
            index_name,
            index,
            keys,
        } => PhysPlan::IndexScan {
            rows: Arc::clone(rows),
            width: *width,
            index_name: index_name.clone(),
            index: index.clone(),
            keys: keys
                .as_ref()
                .map(|ks| ks.iter().map(|tuple| sub_vec(tuple)).collect::<Result<_>>())
                .transpose()?,
        },
        PhysPlan::IndexJoin {
            probe,
            probe_keys,
            inner,
            inner_is_left,
            kind,
            inner_width,
            residual,
        } => PhysPlan::IndexJoin {
            probe: rec(probe)?,
            probe_keys: sub_vec(probe_keys)?,
            inner: rec(inner)?,
            inner_is_left: *inner_is_left,
            kind: *kind,
            inner_width: *inner_width,
            residual: sub_opt(residual)?,
        },
        PhysPlan::Filter { input, predicate } => PhysPlan::Filter {
            input: rec(input)?,
            predicate: sub(predicate)?,
        },
        PhysPlan::Project { input, exprs } => PhysPlan::Project {
            input: rec(input)?,
            exprs: sub_vec(exprs)?,
        },
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            right_width,
            residual,
            algo,
        } => PhysPlan::HashJoin {
            left: rec(left)?,
            right: rec(right)?,
            left_keys: sub_vec(left_keys)?,
            right_keys: sub_vec(right_keys)?,
            kind: *kind,
            right_width: *right_width,
            residual: sub_opt(residual)?,
            algo: *algo,
        },
        PhysPlan::NestedLoopJoin {
            left,
            right,
            kind,
            right_width,
            predicate,
        } => PhysPlan::NestedLoopJoin {
            left: rec(left)?,
            right: rec(right)?,
            kind: *kind,
            right_width: *right_width,
            predicate: sub_opt(predicate)?,
        },
        PhysPlan::Aggregate { input, keys, aggs } => PhysPlan::Aggregate {
            input: rec(input)?,
            keys: sub_vec(keys)?,
            aggs: aggs
                .iter()
                .map(|a| {
                    Ok(AggSpec {
                        func: a.func,
                        arg: sub_opt(&a.arg)?,
                        distinct: a.distinct,
                    })
                })
                .collect::<Result<_>>()?,
        },
        PhysPlan::Window {
            input,
            func,
            partition,
            order,
        } => PhysPlan::Window {
            input: rec(input)?,
            func: *func,
            partition: sub_vec(partition)?,
            order: order
                .iter()
                .map(|(e, d)| Ok((sub(e)?, *d)))
                .collect::<Result<_>>()?,
        },
        PhysPlan::Sort { input, keys } => PhysPlan::Sort {
            input: rec(input)?,
            keys: keys
                .iter()
                .map(|(e, d)| Ok((sub(e)?, *d)))
                .collect::<Result<_>>()?,
        },
        PhysPlan::Limit {
            input,
            limit,
            offset,
        } => PhysPlan::Limit {
            input: rec(input)?,
            limit: *limit,
            offset: *offset,
        },
        PhysPlan::UnionAll { inputs } => PhysPlan::UnionAll {
            inputs: inputs
                .iter()
                .map(|p| bind_plan_params(p, params))
                .collect::<Result<_>>()?,
        },
        PhysPlan::Distinct { input } => PhysPlan::Distinct { input: rec(input)? },
    })
}

/// Does any expression anywhere in `q` — including CTE bodies, derived
/// tables, ORDER BY / LIMIT, and subquery bodies — contain a `?` marker?
pub fn query_contains_params(q: &Query) -> bool {
    q.ctes.iter().any(|c| query_contains_params(&c.query))
        || q.order_by.iter().any(|oi| expr_contains_params(&oi.expr))
        || q.limit.as_ref().is_some_and(expr_contains_params)
        || q.offset.as_ref().is_some_and(expr_contains_params)
        || set_contains_params(&q.body)
}

fn set_contains_params(s: &SetExpr) -> bool {
    match s {
        SetExpr::Select(sel) => select_contains_params(sel),
        SetExpr::Union { left, right, .. } => {
            set_contains_params(left) || set_contains_params(right)
        }
    }
}

fn select_contains_params(s: &Select) -> bool {
    s.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => expr_contains_params(expr),
        _ => false,
    }) || s.selection.as_ref().is_some_and(expr_contains_params)
        || s.group_by.iter().any(expr_contains_params)
        || s.having.as_ref().is_some_and(expr_contains_params)
        || s.from.iter().any(tref_contains_params)
}

fn tref_contains_params(t: &TableRef) -> bool {
    match t {
        TableRef::Named { .. } => false,
        TableRef::Derived { query, .. } => query_contains_params(query),
        TableRef::Join {
            left, right, on, ..
        } => {
            tref_contains_params(left)
                || tref_contains_params(right)
                || on.as_ref().is_some_and(expr_contains_params)
        }
    }
}

fn expr_contains_params(e: &Expr) -> bool {
    match e {
        Expr::Param(..) => true,
        Expr::ScalarSubquery(q, _) => query_contains_params(q),
        Expr::Exists { query, .. } => query_contains_params(query),
        Expr::InSubquery { expr, query, .. } => {
            expr_contains_params(expr) || query_contains_params(query)
        }
        _ => {
            let mut found = false;
            visit_children(e, &mut |c| found |= expr_contains_params(c));
            found
        }
    }
}

/// True when `q` uses parameters in a position the planner consumes at plan
/// time, which a cached template cannot keep symbolic: LIMIT/OFFSET
/// expressions (folded to plan constants), subquery bodies (planned *and
/// executed* during planning), or CTE bodies when `materialize_ctes`
/// evaluates them during planning. Such statements plan inline with their
/// actual parameter values and stay uncached.
pub fn params_unsupported(q: &Query, materialize_ctes: bool) -> bool {
    if q.limit.as_ref().is_some_and(expr_contains_params)
        || q.offset.as_ref().is_some_and(expr_contains_params)
    {
        return true;
    }
    for c in &q.ctes {
        let bad = if materialize_ctes {
            query_contains_params(&c.query)
        } else {
            params_unsupported(&c.query, materialize_ctes)
        };
        if bad {
            return true;
        }
    }
    q.order_by.iter().any(|oi| unsupported_in_expr(&oi.expr))
        || unsupported_in_set(&q.body, materialize_ctes)
}

fn unsupported_in_set(s: &SetExpr, mat: bool) -> bool {
    match s {
        SetExpr::Select(sel) => unsupported_in_select(sel, mat),
        SetExpr::Union { left, right, .. } => {
            unsupported_in_set(left, mat) || unsupported_in_set(right, mat)
        }
    }
}

fn unsupported_in_select(s: &Select, mat: bool) -> bool {
    s.projection.iter().any(|i| match i {
        SelectItem::Expr { expr, .. } => unsupported_in_expr(expr),
        _ => false,
    }) || s.selection.as_ref().is_some_and(unsupported_in_expr)
        || s.group_by.iter().any(unsupported_in_expr)
        || s.having.as_ref().is_some_and(unsupported_in_expr)
        || s.from.iter().any(|t| unsupported_in_tref(t, mat))
}

fn unsupported_in_tref(t: &TableRef, mat: bool) -> bool {
    match t {
        TableRef::Named { .. } => false,
        TableRef::Derived { query, .. } => params_unsupported(query, mat),
        TableRef::Join {
            left, right, on, ..
        } => {
            unsupported_in_tref(left, mat)
                || unsupported_in_tref(right, mat)
                || on.as_ref().is_some_and(unsupported_in_expr)
        }
    }
}

fn unsupported_in_expr(e: &Expr) -> bool {
    match e {
        // A subquery body is executed during planning; any parameter inside
        // it would need a value before the template exists.
        Expr::ScalarSubquery(q, _) => query_contains_params(q),
        Expr::Exists { query, .. } => query_contains_params(query),
        Expr::InSubquery { expr, query, .. } => {
            query_contains_params(query) || unsupported_in_expr(expr)
        }
        _ => {
            let mut found = false;
            visit_children(e, &mut |c| found |= unsupported_in_expr(c));
            found
        }
    }
}

/// Derive a display name for an unaliased projection expression.
pub(crate) fn display_name(e: &Expr, index: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => func.name().to_lowercase(),
        Expr::Function { name, .. } => name.to_lowercase(),
        _ => format!("col{index}"),
    }
}
