//! Query planner: AST → physical plan.
//!
//! The planner follows the classic layering (scan → filter → join →
//! aggregate → window → project → distinct → sort → limit) with a few
//! practical optimizations that matter for BornSQL-style workloads:
//!
//! * single-table predicates are pushed below joins;
//! * equi-join conjuncts in the WHERE clause of comma-joins are detected and
//!   turned into hash joins (greedy left-deep ordering);
//! * CTEs are either inlined (pipelined, the default — this is the paper's
//!   "no intermediate materialization" claim) or materialized once,
//!   depending on [`PlannerConfig::materialize_ctes`].

use std::collections::HashMap;
use std::sync::Arc;

use crate::ast::{self, Expr, JoinKind, OrderItem, Query, Select, SelectItem, SetExpr, TableRef};
use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::expr::{bind_expr, ColLabel, PhysExpr, Scope};
use crate::value::{Row, Value};

/// Which algorithm executes detected equi-joins.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum JoinAlgo {
    /// Build a hash table on the right side, probe with the left.
    #[default]
    Hash,
    /// Sort both sides on the key and merge (an O(n log n) engine without
    /// hashing — the profile-C stand-in).
    SortMerge,
}

/// Planner options — these are the knobs the benchmark harness sweeps to
/// emulate different DBMS profiles (see DESIGN.md, "Substitutions").
#[derive(Debug, Clone, Copy)]
pub struct PlannerConfig {
    /// Algorithm for detected equi-joins. Joins with no equi conjunct always
    /// fall back to a nested loop.
    pub join_algo: JoinAlgo,
    /// Evaluate each CTE once into an in-memory table instead of inlining
    /// its plan at every reference.
    pub materialize_ctes: bool,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        PlannerConfig {
            join_algo: JoinAlgo::Hash,
            materialize_ctes: false,
        }
    }
}

/// Aggregate specification inside an [`PhysPlan::Aggregate`].
#[derive(Debug, Clone)]
pub struct AggSpec {
    pub func: ast::AggregateFunc,
    /// `None` for `COUNT(*)`.
    pub arg: Option<PhysExpr>,
    pub distinct: bool,
}

/// A physical, immediately executable plan. Scans hold `Arc` snapshots of
/// table rows, so execution never touches the catalog.
#[derive(Debug, Clone)]
pub enum PhysPlan {
    /// Scan a snapshot of a base table (or a materialized CTE).
    Scan {
        rows: Arc<Vec<Row>>,
        width: usize,
    },
    /// One empty row — the FROM-less `SELECT`.
    OneRow,
    Filter {
        input: Box<PhysPlan>,
        predicate: PhysExpr,
    },
    Project {
        input: Box<PhysPlan>,
        exprs: Vec<PhysExpr>,
    },
    /// Equi-join executed by the configured [`JoinAlgo`].
    HashJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        left_keys: Vec<PhysExpr>,
        right_keys: Vec<PhysExpr>,
        kind: JoinKind,
        right_width: usize,
        /// Residual non-equi predicate evaluated on joined rows.
        residual: Option<PhysExpr>,
        algo: JoinAlgo,
    },
    NestedLoopJoin {
        left: Box<PhysPlan>,
        right: Box<PhysPlan>,
        kind: JoinKind,
        right_width: usize,
        predicate: Option<PhysExpr>,
    },
    Aggregate {
        input: Box<PhysPlan>,
        keys: Vec<PhysExpr>,
        aggs: Vec<AggSpec>,
    },
    /// Appends one ranking column (`ROW_NUMBER`/`RANK`/`DENSE_RANK`) per
    /// window spec.
    Window {
        input: Box<PhysPlan>,
        func: ast::WindowFunc,
        partition: Vec<PhysExpr>,
        order: Vec<(PhysExpr, bool)>,
    },
    Sort {
        input: Box<PhysPlan>,
        keys: Vec<(PhysExpr, bool)>,
    },
    Limit {
        input: Box<PhysPlan>,
        limit: Option<usize>,
        offset: usize,
    },
    UnionAll {
        inputs: Vec<PhysPlan>,
    },
    Distinct {
        input: Box<PhysPlan>,
    },
}

// Plans (and the expressions they embed) are shared with executor worker
// threads via `Arc`, so the whole tree must stay `Send + Sync`.
#[allow(dead_code)]
fn _assert_plan_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<PhysPlan>();
    assert::<AggSpec>();
}

/// Output of planning a query: the plan plus its output column names.
pub struct PlannedQuery {
    pub plan: PhysPlan,
    pub columns: Vec<String>,
    pub scope: Scope,
}

/// Plans statements against a catalog snapshot.
pub struct Planner<'a> {
    pub catalog: &'a Catalog,
    pub params: &'a [Value],
    pub config: PlannerConfig,
    /// Stack of CTE frames; inner queries see outer CTEs.
    cte_frames: Vec<HashMap<String, CteEntry>>,
    /// Scratch: WHERE conjuncts `join_comma_items` could not place; the
    /// caller turns them into a filter above the join tree.
    leftover_conjuncts: Vec<Expr>,
}

#[derive(Clone)]
enum CteEntry {
    /// Inline: re-plan the AST at each reference.
    Inline(Arc<Query>),
    /// Materialized rows with their scope-relative column names.
    Table(Arc<Vec<Row>>, Vec<String>),
}

impl<'a> Planner<'a> {
    pub fn new(catalog: &'a Catalog, params: &'a [Value], config: PlannerConfig) -> Self {
        Planner {
            catalog,
            params,
            config,
            cte_frames: Vec::new(),
            leftover_conjuncts: Vec::new(),
        }
    }

    fn lookup_cte(&self, name: &str) -> Option<CteEntry> {
        for frame in self.cte_frames.iter().rev() {
            if let Some(e) = frame.get(&name.to_ascii_lowercase()) {
                return Some(e.clone());
            }
        }
        None
    }

    /// Plan a full query (CTEs + body + ORDER BY/LIMIT).
    pub fn plan_query(&mut self, query: &Query) -> Result<PlannedQuery> {
        let mut frame = HashMap::new();
        for cte in &query.ctes {
            let entry = if self.config.materialize_ctes {
                // Plan and evaluate the CTE eagerly; references scan the rows.
                // Planner-time executions (materialized CTEs here, and the
                // uncorrelated subqueries in `resolve_subqueries`) run on the
                // serial executor: they happen under the planner's catalog
                // borrow, and their results become plain row snapshots.
                self.cte_frames.push(frame.clone());
                let planned = self.plan_query(&cte.query);
                self.cte_frames.pop();
                let planned = planned?;
                let rows = crate::exec::execute(&planned.plan)?;
                CteEntry::Table(Arc::new(rows), planned.columns)
            } else {
                CteEntry::Inline(Arc::new(Query {
                    // Inner CTEs of this WITH are visible to later CTEs via
                    // the frame pushed below; keep the query as-is.
                    ctes: cte.query.ctes.clone(),
                    body: cte.query.body.clone(),
                    order_by: cte.query.order_by.clone(),
                    limit: cte.query.limit.clone(),
                    offset: cte.query.offset.clone(),
                }))
            };
            frame.insert(cte.name.to_ascii_lowercase(), entry);
        }
        self.cte_frames.push(frame);
        let result = self.plan_query_body(query);
        self.cte_frames.pop();
        result
    }

    fn plan_query_body(&mut self, query: &Query) -> Result<PlannedQuery> {
        let mut planned = match &query.body {
            SetExpr::Select(select) => self.plan_select(select, &query.order_by)?,
            SetExpr::Union { .. } => {
                let mut p = self.plan_set_expr(&query.body)?;
                // ORDER BY over a union binds against the union's output.
                if !query.order_by.is_empty() {
                    let keys = self.bind_order_output(&query.order_by, &p.scope, &p.columns)?;
                    p.plan = PhysPlan::Sort {
                        input: Box::new(p.plan),
                        keys,
                    };
                }
                p
            }
        };
        let limit = query
            .limit
            .as_ref()
            .map(|e| self.const_usize(e, "LIMIT"))
            .transpose()?;
        let offset = query
            .offset
            .as_ref()
            .map(|e| self.const_usize(e, "OFFSET"))
            .transpose()?
            .unwrap_or(0);
        if limit.is_some() || offset > 0 {
            planned.plan = PhysPlan::Limit {
                input: Box::new(planned.plan),
                limit,
                offset,
            };
        }
        Ok(planned)
    }

    fn const_usize(&self, e: &Expr, what: &str) -> Result<usize> {
        let bound = bind_expr(e, &Scope::default(), self.params)?;
        let v = bound.eval_const()?;
        v.as_i64()?
            .filter(|&i| i >= 0)
            .map(|i| i as usize)
            .ok_or_else(|| EngineError::plan(format!("{what} must be a non-negative integer")))
    }

    fn plan_set_expr(&mut self, body: &SetExpr) -> Result<PlannedQuery> {
        match body {
            SetExpr::Select(select) => self.plan_select(select, &[]),
            SetExpr::Union { left, right, all } => {
                let l = self.plan_set_expr(left)?;
                let r = self.plan_set_expr(right)?;
                if l.columns.len() != r.columns.len() {
                    return Err(EngineError::plan(format!(
                        "UNION arms have different column counts ({} vs {})",
                        l.columns.len(),
                        r.columns.len()
                    )));
                }
                // Flatten nested unions for fewer copies.
                let mut inputs = Vec::new();
                match l.plan {
                    PhysPlan::UnionAll { inputs: li } if *all => inputs.extend(li),
                    other => inputs.push(other),
                }
                match r.plan {
                    PhysPlan::UnionAll { inputs: ri } if *all => inputs.extend(ri),
                    other => inputs.push(other),
                }
                let mut plan = PhysPlan::UnionAll { inputs };
                if !*all {
                    plan = PhysPlan::Distinct {
                        input: Box::new(plan),
                    };
                }
                Ok(PlannedQuery {
                    plan,
                    columns: l.columns,
                    scope: l.scope,
                })
            }
        }
    }

    // ------------------------------------------------------------------
    // FROM clause
    // ------------------------------------------------------------------

    /// Plan a single table factor, producing its plan and scope.
    fn plan_table_ref(&mut self, tref: &TableRef) -> Result<(PhysPlan, Scope)> {
        match tref {
            TableRef::Named { name, alias } => {
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                if let Some(entry) = self.lookup_cte(name) {
                    match entry {
                        CteEntry::Inline(q) => {
                            let planned = self.plan_query(&q)?;
                            let labels = planned
                                .columns
                                .iter()
                                .map(|c| ColLabel::new(Some(&qual), c))
                                .collect();
                            Ok((planned.plan, Scope::new(labels)))
                        }
                        CteEntry::Table(rows, cols) => {
                            let width = cols.len();
                            let labels =
                                cols.iter().map(|c| ColLabel::new(Some(&qual), c)).collect();
                            Ok((PhysPlan::Scan { rows, width }, Scope::new(labels)))
                        }
                    }
                } else {
                    let table = self.catalog.get(name)?;
                    let labels = table
                        .schema
                        .columns
                        .iter()
                        .map(|c| ColLabel::new(Some(&qual), &c.name))
                        .collect();
                    Ok((
                        PhysPlan::Scan {
                            rows: Arc::clone(&table.rows),
                            width: table.schema.len(),
                        },
                        Scope::new(labels),
                    ))
                }
            }
            TableRef::Derived { query, alias } => {
                let planned = self.plan_query(query)?;
                let labels = planned
                    .columns
                    .iter()
                    .map(|c| ColLabel::new(Some(alias), c))
                    .collect();
                Ok((planned.plan, Scope::new(labels)))
            }
            TableRef::Join {
                left,
                right,
                kind,
                on,
            } => {
                let (lp, ls) = self.plan_table_ref(left)?;
                let (rp, rs) = self.plan_table_ref(right)?;
                self.plan_join(lp, ls, rp, rs, *kind, on.as_ref())
            }
        }
    }

    /// Build a join between two planned inputs, detecting equi-keys in `on`.
    fn plan_join(
        &mut self,
        lp: PhysPlan,
        ls: Scope,
        rp: PhysPlan,
        rs: Scope,
        kind: JoinKind,
        on: Option<&Expr>,
    ) -> Result<(PhysPlan, Scope)> {
        let joined_scope = ls.join(&rs);
        let right_width = rs.len();
        let plan = match on {
            None => PhysPlan::NestedLoopJoin {
                left: Box::new(lp),
                right: Box::new(rp),
                kind,
                right_width,
                predicate: None,
            },
            Some(cond) => {
                let conjuncts = split_conjuncts(cond);
                let (mut left_keys, mut right_keys, mut residual) =
                    (Vec::new(), Vec::new(), Vec::new());
                for c in &conjuncts {
                    if let Some((le, re)) = self.as_equi_key(c, &ls, &rs)? {
                        left_keys.push(le);
                        right_keys.push(re);
                        continue;
                    }
                    residual.push((*c).clone());
                }
                if left_keys.is_empty() {
                    let predicate = conjoin(&conjuncts);
                    let bound = bind_expr(&predicate, &joined_scope, self.params)?;
                    PhysPlan::NestedLoopJoin {
                        left: Box::new(lp),
                        right: Box::new(rp),
                        kind,
                        right_width,
                        predicate: Some(bound),
                    }
                } else {
                    let residual = if residual.is_empty() {
                        None
                    } else {
                        let refs: Vec<&Expr> = residual.iter().collect();
                        Some(bind_expr(&conjoin(&refs), &joined_scope, self.params)?)
                    };
                    PhysPlan::HashJoin {
                        left: Box::new(lp),
                        right: Box::new(rp),
                        left_keys,
                        right_keys,
                        kind,
                        right_width,
                        residual,
                        algo: self.config.join_algo,
                    }
                }
            }
        };
        Ok((plan, joined_scope))
    }

    /// If `expr` is `a = b` with `a` bindable purely in `ls` and `b` in `rs`
    /// (or vice versa), return the bound key pair.
    fn as_equi_key(
        &self,
        expr: &Expr,
        ls: &Scope,
        rs: &Scope,
    ) -> Result<Option<(PhysExpr, PhysExpr)>> {
        let Expr::Binary {
            left,
            op: ast::BinaryOp::Eq,
            right,
        } = expr
        else {
            return Ok(None);
        };
        let try_bind = |e: &Expr, s: &Scope| bind_expr(e, s, self.params).ok();
        if let (Some(le), Some(re)) = (try_bind(left, ls), try_bind(right, rs)) {
            return Ok(Some((le, re)));
        }
        if let (Some(le), Some(re)) = (try_bind(right, ls), try_bind(left, rs)) {
            return Ok(Some((le, re)));
        }
        Ok(None)
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    /// Evaluate every (uncorrelated) subquery inside `e` and replace it with
    /// its result: scalar subqueries become literals, `IN (SELECT ...)`
    /// becomes an `IN` list, `EXISTS` becomes a boolean literal. Correlated
    /// subqueries fail naturally when their outer column references do not
    /// bind inside the subquery's own scope.
    pub(crate) fn resolve_subqueries(&mut self, e: &mut Expr) -> Result<()> {
        match e {
            Expr::ScalarSubquery(q) => {
                let planned = self.plan_query(q)?;
                let rows = crate::exec::execute(&planned.plan)?;
                if rows.len() > 1 {
                    return Err(EngineError::plan(format!(
                        "scalar subquery returned {} rows",
                        rows.len()
                    )));
                }
                let v = rows
                    .into_iter()
                    .next()
                    .and_then(|r| r.into_iter().next())
                    .unwrap_or(Value::Null);
                *e = Expr::Literal(v);
            }
            Expr::InSubquery {
                expr,
                query,
                negated,
            } => {
                self.resolve_subqueries(expr)?;
                let planned = self.plan_query(query)?;
                if planned.columns.len() != 1 {
                    return Err(EngineError::plan(format!(
                        "IN subquery must return one column, got {}",
                        planned.columns.len()
                    )));
                }
                let rows = crate::exec::execute(&planned.plan)?;
                let list = rows
                    .into_iter()
                    .map(|mut r| Expr::Literal(r.pop().expect("one column")))
                    .collect();
                *e = Expr::InList {
                    expr: expr.clone(),
                    list,
                    negated: *negated,
                };
            }
            Expr::Exists { query, negated } => {
                let planned = self.plan_query(query)?;
                let rows = crate::exec::execute(&planned.plan)?;
                *e = Expr::Literal(Value::Int((rows.is_empty() == *negated) as i64));
            }
            _ => {
                let mut result = Ok(());
                visit_children_mut(e, &mut |c| {
                    if result.is_ok() {
                        result = self.resolve_subqueries(c);
                    }
                });
                result?;
            }
        }
        Ok(())
    }

    fn plan_select(&mut self, select: &Select, order_by: &[OrderItem]) -> Result<PlannedQuery> {
        // 0. Evaluate uncorrelated subqueries so the rest of planning only
        //    sees plain expressions.
        let has_subqueries = |s: &Select| -> bool {
            // Cheap structural probe; cloning only when needed.
            fn probe(e: &Expr) -> bool {
                match e {
                    Expr::ScalarSubquery(_) | Expr::InSubquery { .. } | Expr::Exists { .. } => true,
                    _ => {
                        let mut found = false;
                        visit_children(e, &mut |c| found |= probe(c));
                        found
                    }
                }
            }
            s.selection.as_ref().is_some_and(probe)
                || s.having.as_ref().is_some_and(probe)
                || s.group_by.iter().any(probe)
                || s.projection.iter().any(|i| match i {
                    SelectItem::Expr { expr, .. } => probe(expr),
                    _ => false,
                })
        };
        let resolved_select;
        let select = if has_subqueries(select) {
            let mut s = select.clone();
            if let Some(sel) = &mut s.selection {
                self.resolve_subqueries(sel)?;
            }
            if let Some(h) = &mut s.having {
                self.resolve_subqueries(h)?;
            }
            for g in &mut s.group_by {
                self.resolve_subqueries(g)?;
            }
            for item in &mut s.projection {
                if let SelectItem::Expr { expr, .. } = item {
                    self.resolve_subqueries(expr)?;
                }
            }
            resolved_select = s;
            &resolved_select
        } else {
            select
        };

        // 1. FROM: plan each comma item.
        let mut items: Vec<(PhysPlan, Scope)> = Vec::with_capacity(select.from.len());
        for tref in &select.from {
            items.push(self.plan_table_ref(tref)?);
        }

        // 2. WHERE conjuncts.
        let conjuncts: Vec<Expr> = select
            .selection
            .as_ref()
            .map(|e| split_conjuncts(e).into_iter().cloned().collect())
            .unwrap_or_default();

        let (mut plan, mut scope) = if items.is_empty() {
            self.leftover_conjuncts = conjuncts.clone();
            (PhysPlan::OneRow, Scope::default())
        } else {
            self.join_comma_items(items, &conjuncts)?
        };

        // Apply any WHERE conjuncts not consumed as join keys / pushdowns.
        // `join_comma_items` marks consumed conjuncts by omission: we simply
        // re-bind everything that still references the full scope and was not
        // consumed — see its return contract below.
        let leftovers = std::mem::take(&mut self.leftover_conjuncts);
        if !leftovers.is_empty() {
            let refs: Vec<&Expr> = leftovers.iter().collect();
            let predicate = bind_expr(&conjoin(&refs), &scope, self.params)?;
            plan = PhysPlan::Filter {
                input: Box::new(plan),
                predicate,
            };
        }

        // 3. Expand projection wildcards into concrete expressions.
        let mut proj_items: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    for label in &scope.labels {
                        proj_items.push((
                            Expr::Column {
                                qualifier: label.qualifier.clone(),
                                name: label.name.clone(),
                            },
                            Some(label.name.clone()),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q) => {
                    let mut any = false;
                    for label in &scope.labels {
                        if label
                            .qualifier
                            .as_deref()
                            .is_some_and(|lq| lq.eq_ignore_ascii_case(q))
                        {
                            proj_items.push((
                                Expr::Column {
                                    qualifier: label.qualifier.clone(),
                                    name: label.name.clone(),
                                },
                                Some(label.name.clone()),
                            ));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(EngineError::plan(format!("unknown table alias '{q}.*'")));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    proj_items.push((expr.clone(), alias.clone()));
                }
            }
        }

        // 4. Aggregation.
        let has_aggregates = !select.group_by.is_empty()
            || proj_items.iter().any(|(e, _)| e.contains_aggregate())
            || select
                .having
                .as_ref()
                .is_some_and(|h| h.contains_aggregate());
        let mut order_items: Vec<OrderItem> = order_by.to_vec();
        if has_aggregates {
            let (agg_plan, agg_scope, rewritten_proj, rewritten_having, rewritten_order) = self
                .plan_aggregate(
                    plan,
                    &scope,
                    &select.group_by,
                    proj_items,
                    select.having.as_ref(),
                    &order_items,
                )?;
            plan = agg_plan;
            scope = agg_scope;
            proj_items = rewritten_proj;
            order_items = rewritten_order;
            if let Some(having) = rewritten_having {
                let predicate = bind_expr(&having, &scope, self.params)?;
                plan = PhysPlan::Filter {
                    input: Box::new(plan),
                    predicate,
                };
            }
        } else if select.having.is_some() {
            return Err(EngineError::plan("HAVING requires GROUP BY or aggregates"));
        }

        // 5. Window functions.
        let mut window_specs: Vec<Expr> = Vec::new();
        for (e, _) in &proj_items {
            collect_windows(e, &mut window_specs);
        }
        for w in window_specs.clone() {
            let Expr::WindowRowNumber {
                func,
                partition_by,
                order_by: worder,
            } = &w
            else {
                unreachable!()
            };
            let partition = partition_by
                .iter()
                .map(|e| bind_expr(e, &scope, self.params))
                .collect::<Result<Vec<_>>>()?;
            let order = worder
                .iter()
                .map(|oi| Ok((bind_expr(&oi.expr, &scope, self.params)?, oi.descending)))
                .collect::<Result<Vec<_>>>()?;
            plan = PhysPlan::Window {
                input: Box::new(plan),
                func: *func,
                partition,
                order,
            };
            let marker = format!("#w{}", scope.len());
            scope.labels.push(ColLabel::bare(&marker));
            let replacement = Expr::col(marker);
            for (e, _) in proj_items.iter_mut() {
                replace_subtree(e, &w, &replacement);
            }
            for oi in order_items.iter_mut() {
                replace_subtree(&mut oi.expr, &w, &replacement);
            }
        }

        // 6. Projection.
        let mut exprs = Vec::with_capacity(proj_items.len());
        let mut out_labels = Vec::with_capacity(proj_items.len());
        let mut columns = Vec::with_capacity(proj_items.len());
        for (i, (e, alias)) in proj_items.iter().enumerate() {
            exprs.push(bind_expr(e, &scope, self.params)?);
            let name = alias.clone().unwrap_or_else(|| display_name(e, i));
            out_labels.push(ColLabel::bare(&name));
            columns.push(name);
        }
        let out_width = exprs.len();
        let mut out_scope = Scope::new(out_labels);

        // 7. ORDER BY: try output scope (incl. ordinals); fall back to
        //    hidden columns computed from the pre-projection scope.
        let mut sort_keys: Vec<(PhysExpr, bool)> = Vec::new();
        let mut hidden: Vec<PhysExpr> = Vec::new();
        for oi in &order_items {
            if let Expr::Literal(Value::Int(ordinal)) = oi.expr {
                let idx = (ordinal as usize)
                    .checked_sub(1)
                    .filter(|&i| i < out_width)
                    .ok_or_else(|| {
                        EngineError::plan(format!("ORDER BY ordinal {ordinal} out of range"))
                    })?;
                sort_keys.push((PhysExpr::Column(idx), oi.descending));
                continue;
            }
            match bind_expr(&oi.expr, &out_scope, self.params) {
                Ok(b) => sort_keys.push((b, oi.descending)),
                Err(_) => {
                    let b = bind_expr(&oi.expr, &scope, self.params)?;
                    let idx = out_width + hidden.len();
                    hidden.push(b);
                    sort_keys.push((PhysExpr::Column(idx), oi.descending));
                }
            }
        }

        if hidden.is_empty() {
            plan = PhysPlan::Project {
                input: Box::new(plan),
                exprs,
            };
            if select.distinct {
                plan = PhysPlan::Distinct {
                    input: Box::new(plan),
                };
            }
            if !sort_keys.is_empty() {
                plan = PhysPlan::Sort {
                    input: Box::new(plan),
                    keys: sort_keys,
                };
            }
        } else {
            // Project visible + hidden, sort, then strip hidden.
            exprs.extend(hidden);
            plan = PhysPlan::Project {
                input: Box::new(plan),
                exprs,
            };
            if select.distinct {
                return Err(EngineError::plan(
                    "SELECT DISTINCT with ORDER BY on non-output expressions is not supported",
                ));
            }
            plan = PhysPlan::Sort {
                input: Box::new(plan),
                keys: sort_keys,
            };
            plan = PhysPlan::Project {
                input: Box::new(plan),
                exprs: (0..out_width).map(PhysExpr::Column).collect(),
            };
        }
        out_scope.labels.truncate(out_width);
        Ok(PlannedQuery {
            plan,
            columns,
            scope: out_scope,
        })
    }

    /// Greedy left-deep join of comma-separated FROM items using WHERE
    /// conjuncts. Single-item conjuncts are pushed down as filters; equi
    /// conjuncts become hash-join keys. Conjuncts that cannot be placed are
    /// stored in `self.leftover_conjuncts` for the caller.
    fn join_comma_items(
        &mut self,
        mut items: Vec<(PhysPlan, Scope)>,
        conjuncts: &[Expr],
    ) -> Result<(PhysPlan, Scope)> {
        let mut remaining: Vec<Expr> = conjuncts.to_vec();

        // Push single-item predicates down onto their item.
        for (plan, scope) in items.iter_mut() {
            let mut kept = Vec::new();
            let mut pushed: Vec<Expr> = Vec::new();
            for c in remaining.drain(..) {
                if bind_expr(&c, scope, self.params).is_ok() {
                    pushed.push(c);
                } else {
                    kept.push(c);
                }
            }
            remaining = kept;
            if !pushed.is_empty() {
                let refs: Vec<&Expr> = pushed.iter().collect();
                let predicate = bind_expr(&conjoin(&refs), scope, self.params)?;
                let input = std::mem::replace(plan, PhysPlan::OneRow);
                *plan = PhysPlan::Filter {
                    input: Box::new(input),
                    predicate,
                };
            }
        }

        let (mut plan, mut scope) = items.remove(0);
        while !items.is_empty() {
            // Find an item connected to the current scope by an equi conjunct.
            let mut chosen: Option<usize> = None;
            'outer: for (idx, (_, iscope)) in items.iter().enumerate() {
                for c in &remaining {
                    if self.as_equi_key(c, &scope, iscope)?.is_some() {
                        chosen = Some(idx);
                        break 'outer;
                    }
                }
            }
            match chosen {
                Some(idx) => {
                    let (rp, rs) = items.remove(idx);
                    let mut left_keys = Vec::new();
                    let mut right_keys = Vec::new();
                    let mut kept = Vec::new();
                    for c in remaining.drain(..) {
                        if let Some((le, re)) = self.as_equi_key(&c, &scope, &rs)? {
                            left_keys.push(le);
                            right_keys.push(re);
                        } else {
                            kept.push(c);
                        }
                    }
                    remaining = kept;
                    let right_width = rs.len();
                    scope = scope.join(&rs);
                    plan = PhysPlan::HashJoin {
                        left: Box::new(plan),
                        right: Box::new(rp),
                        left_keys,
                        right_keys,
                        kind: JoinKind::Inner,
                        right_width,
                        residual: None,
                        algo: self.config.join_algo,
                    };
                }
                None => {
                    // Cross join with the next item; applicable predicates
                    // (now bindable over the union scope) are applied after.
                    let (rp, rs) = items.remove(0);
                    let right_width = rs.len();
                    scope = scope.join(&rs);
                    plan = PhysPlan::NestedLoopJoin {
                        left: Box::new(plan),
                        right: Box::new(rp),
                        kind: JoinKind::Cross,
                        right_width,
                        predicate: None,
                    };
                    // Predicates that became bindable attach as a filter now,
                    // keeping them as low in the tree as possible.
                    let mut kept = Vec::new();
                    let mut apply: Vec<Expr> = Vec::new();
                    for c in remaining.drain(..) {
                        if bind_expr(&c, &scope, self.params).is_ok() {
                            apply.push(c);
                        } else {
                            kept.push(c);
                        }
                    }
                    remaining = kept;
                    if !apply.is_empty() {
                        let refs: Vec<&Expr> = apply.iter().collect();
                        let predicate = bind_expr(&conjoin(&refs), &scope, self.params)?;
                        plan = PhysPlan::Filter {
                            input: Box::new(plan),
                            predicate,
                        };
                    }
                }
            }
        }
        self.leftover_conjuncts = remaining;
        Ok((plan, scope))
    }

    /// Build the Aggregate node and rewrite projection/HAVING/ORDER BY in
    /// terms of its output columns.
    #[allow(clippy::type_complexity)]
    fn plan_aggregate(
        &mut self,
        input: PhysPlan,
        in_scope: &Scope,
        group_by: &[Expr],
        proj_items: Vec<(Expr, Option<String>)>,
        having: Option<&Expr>,
        order_items: &[OrderItem],
    ) -> Result<(
        PhysPlan,
        Scope,
        Vec<(Expr, Option<String>)>,
        Option<Expr>,
        Vec<OrderItem>,
    )> {
        // Collect aggregate calls (deduplicated structurally).
        let mut agg_exprs: Vec<Expr> = Vec::new();
        for (e, _) in &proj_items {
            collect_aggregates(e, &mut agg_exprs);
        }
        if let Some(h) = having {
            collect_aggregates(h, &mut agg_exprs);
        }
        for oi in order_items {
            collect_aggregates(&oi.expr, &mut agg_exprs);
        }

        let keys = group_by
            .iter()
            .map(|e| bind_expr(e, in_scope, self.params))
            .collect::<Result<Vec<_>>>()?;
        let aggs = agg_exprs
            .iter()
            .map(|e| {
                let Expr::Aggregate {
                    func,
                    arg,
                    distinct,
                } = e
                else {
                    unreachable!()
                };
                Ok(AggSpec {
                    func: *func,
                    arg: arg
                        .as_ref()
                        .map(|a| bind_expr(a, in_scope, self.params))
                        .transpose()?,
                    distinct: *distinct,
                })
            })
            .collect::<Result<Vec<_>>>()?;

        // Output scope: group keys keep their column labels when simple.
        let mut labels = Vec::with_capacity(group_by.len() + agg_exprs.len());
        for (i, g) in group_by.iter().enumerate() {
            match g {
                Expr::Column { qualifier, name } => {
                    labels.push(ColLabel::new(qualifier.as_deref(), name))
                }
                _ => labels.push(ColLabel::bare(&format!("#g{i}"))),
            }
        }
        for i in 0..agg_exprs.len() {
            labels.push(ColLabel::bare(&format!("#a{i}")));
        }
        let out_scope = Scope::new(labels.clone());

        // Rewrite: replace group expressions and aggregate calls with column
        // references into the aggregate output.
        let rewrite = |e: &mut Expr| {
            for (i, g) in group_by.iter().enumerate() {
                let replacement = match g {
                    Expr::Column { .. } => g.clone(),
                    _ => Expr::col(format!("#g{i}")),
                };
                replace_subtree(e, g, &replacement);
            }
            for (i, a) in agg_exprs.iter().enumerate() {
                replace_subtree(e, a, &Expr::col(format!("#a{i}")));
            }
        };

        let mut new_proj = proj_items;
        for (e, _) in new_proj.iter_mut() {
            rewrite(e);
        }
        let new_having = having.map(|h| {
            let mut h = h.clone();
            rewrite(&mut h);
            h
        });
        let mut new_order = order_items.to_vec();
        for oi in new_order.iter_mut() {
            rewrite(&mut oi.expr);
        }

        Ok((
            PhysPlan::Aggregate {
                input: Box::new(input),
                keys,
                aggs,
            },
            out_scope,
            new_proj,
            new_having,
            new_order,
        ))
    }

    fn bind_order_output(
        &self,
        order_by: &[OrderItem],
        scope: &Scope,
        columns: &[String],
    ) -> Result<Vec<(PhysExpr, bool)>> {
        order_by
            .iter()
            .map(|oi| {
                if let Expr::Literal(Value::Int(ordinal)) = oi.expr {
                    let idx = (ordinal as usize)
                        .checked_sub(1)
                        .filter(|&i| i < columns.len())
                        .ok_or_else(|| {
                            EngineError::plan(format!("ORDER BY ordinal {ordinal} out of range"))
                        })?;
                    return Ok((PhysExpr::Column(idx), oi.descending));
                }
                Ok((bind_expr(&oi.expr, scope, self.params)?, oi.descending))
            })
            .collect()
    }
}

/// Split an expression into its top-level AND conjuncts.
fn split_conjuncts(expr: &Expr) -> Vec<&Expr> {
    let mut out = Vec::new();
    fn walk<'e>(e: &'e Expr, out: &mut Vec<&'e Expr>) {
        if let Expr::Binary {
            left,
            op: ast::BinaryOp::And,
            right,
        } = e
        {
            walk(left, out);
            walk(right, out);
        } else {
            out.push(e);
        }
    }
    walk(expr, &mut out);
    out
}

/// AND a list of conjuncts back together. Panics on empty input.
fn conjoin(conjuncts: &[&Expr]) -> Expr {
    let mut it = conjuncts.iter();
    let first = (*it.next().expect("conjoin of empty list")).clone();
    it.fold(first, |acc, e| Expr::Binary {
        left: Box::new(acc),
        op: ast::BinaryOp::And,
        right: Box::new((*e).clone()),
    })
}

/// Collect aggregate sub-expressions (structurally deduplicated, outermost
/// only — nested aggregates are invalid and rejected at bind time).
fn collect_aggregates(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::Aggregate { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        _ => visit_children(e, &mut |c| collect_aggregates(c, out)),
    }
}

/// Collect window sub-expressions (structurally deduplicated).
fn collect_windows(e: &Expr, out: &mut Vec<Expr>) {
    match e {
        Expr::WindowRowNumber { .. } => {
            if !out.contains(e) {
                out.push(e.clone());
            }
        }
        _ => visit_children(e, &mut |c| collect_windows(c, out)),
    }
}

fn visit_children(e: &Expr, f: &mut impl FnMut(&Expr)) {
    match e {
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => f(expr),
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            list.iter().for_each(&mut *f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                f(o);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(e2) = else_expr {
                f(e2);
            }
        }
        Expr::Function { args, .. } => args.iter().for_each(&mut *f),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            partition_by.iter().for_each(&mut *f);
            for oi in order_by {
                f(&oi.expr);
            }
        }
        // Subquery bodies are independent scopes; only visit the scalar
        // side of IN.
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => f(expr),
    }
}

/// Mutable twin of [`visit_children`].
fn visit_children_mut(e: &mut Expr, f: &mut impl FnMut(&mut Expr)) {
    match e {
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => f(expr),
        Expr::Binary { left, right, .. } => {
            f(left);
            f(right);
        }
        Expr::InList { expr, list, .. } => {
            f(expr);
            list.iter_mut().for_each(&mut *f);
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            f(expr);
            f(low);
            f(high);
        }
        Expr::Like { expr, pattern, .. } => {
            f(expr);
            f(pattern);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                f(o);
            }
            for (w, t) in branches {
                f(w);
                f(t);
            }
            if let Some(e2) = else_expr {
                f(e2);
            }
        }
        Expr::Function { args, .. } => args.iter_mut().for_each(&mut *f),
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                f(a);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            partition_by.iter_mut().for_each(&mut *f);
            for oi in order_by {
                f(&mut oi.expr);
            }
        }
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => f(expr),
    }
}

/// Replace every subtree structurally equal to `target` with `replacement`.
fn replace_subtree(e: &mut Expr, target: &Expr, replacement: &Expr) {
    if e == target {
        *e = replacement.clone();
        return;
    }
    match e {
        Expr::Literal(_) | Expr::Param(_) | Expr::Column { .. } => {}
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            replace_subtree(expr, target, replacement)
        }
        Expr::Binary { left, right, .. } => {
            replace_subtree(left, target, replacement);
            replace_subtree(right, target, replacement);
        }
        Expr::InList { expr, list, .. } => {
            replace_subtree(expr, target, replacement);
            for i in list {
                replace_subtree(i, target, replacement);
            }
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            replace_subtree(expr, target, replacement);
            replace_subtree(low, target, replacement);
            replace_subtree(high, target, replacement);
        }
        Expr::Like { expr, pattern, .. } => {
            replace_subtree(expr, target, replacement);
            replace_subtree(pattern, target, replacement);
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
        } => {
            if let Some(o) = operand {
                replace_subtree(o, target, replacement);
            }
            for (w, t) in branches {
                replace_subtree(w, target, replacement);
                replace_subtree(t, target, replacement);
            }
            if let Some(e2) = else_expr {
                replace_subtree(e2, target, replacement);
            }
        }
        Expr::Function { args, .. } => {
            for a in args {
                replace_subtree(a, target, replacement);
            }
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                replace_subtree(a, target, replacement);
            }
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            for p in partition_by {
                replace_subtree(p, target, replacement);
            }
            for oi in order_by {
                replace_subtree(&mut oi.expr, target, replacement);
            }
        }
        Expr::ScalarSubquery(_) | Expr::Exists { .. } => {}
        Expr::InSubquery { expr, .. } => replace_subtree(expr, target, replacement),
    }
}

/// Derive a display name for an unaliased projection expression.
fn display_name(e: &Expr, index: usize) -> String {
    match e {
        Expr::Column { name, .. } => name.clone(),
        Expr::Aggregate { func, .. } => func.name().to_lowercase(),
        Expr::Function { name, .. } => name.to_lowercase(),
        _ => format!("col{index}"),
    }
}
