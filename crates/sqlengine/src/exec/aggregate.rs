//! Hash aggregation with grouped state machines.
//!
//! The parallel path gives each worker a morsel of the input and a private
//! (group → partial state) map plus a first-seen group order list. Partials
//! are merged on the coordinator in chunk order, which reproduces the serial
//! executor's global first-seen group order exactly. DISTINCT aggregates do
//! not fold values inside workers at all — each worker ships its ordered
//! list of locally-new values and the coordinator folds them in merged
//! (global first-seen) order, so DISTINCT results are byte-identical to
//! serial. The only permitted divergence is non-DISTINCT float SUM/AVG,
//! where partial sums combine in chunk order rather than row order.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use crate::ast::AggregateFunc;
use crate::error::{EngineError, Result};
use crate::expr::PhysExpr;
use crate::plan::{AggSpec, PhysPlan};
use crate::value::{Row, Value};

use super::context::{approx_row_bytes, approx_value_bytes, ChargeBuf, ChunkJob, MemoryBudget};
use super::{ExecContext, NodeOut};

/// Running state for one aggregate over one group. Shared with the
/// vectorized aggregate in [`super::vector`], which drives the same state
/// machine column-at-a-time.
#[derive(Debug, Clone)]
pub(super) enum AggState {
    Count(i64),
    SumInt(i64, bool), // (sum, saw_any)
    SumFloat(f64, bool),
    Avg { sum: f64, count: i64 },
    Min(Option<Value>),
    Max(Option<Value>),
}

impl AggState {
    pub(super) fn new(spec: &AggSpec) -> AggState {
        match spec.func {
            AggregateFunc::Count => AggState::Count(0),
            AggregateFunc::Sum => AggState::SumInt(0, false),
            AggregateFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
            AggregateFunc::Min => AggState::Min(None),
            AggregateFunc::Max => AggState::Max(None),
        }
    }

    pub(super) fn update(&mut self, v: Value) -> Result<()> {
        if v.is_null() {
            return Ok(()); // aggregates skip NULLs (COUNT(*) handled outside)
        }
        match self {
            AggState::Count(c) => *c += 1,
            AggState::SumInt(acc, seen) => match v {
                Value::Int(i) => {
                    *acc += i;
                    *seen = true;
                }
                Value::Float(f) => {
                    *self = AggState::SumFloat(*acc as f64 + f, true);
                }
                other => {
                    return Err(EngineError::exec(format!(
                        "SUM of non-numeric value {other}"
                    )))
                }
            },
            AggState::SumFloat(acc, seen) => {
                let f = v.as_f64()?.expect("null handled");
                *acc += f;
                *seen = true;
            }
            AggState::Avg { sum, count } => {
                *sum += v.as_f64()?.expect("null handled");
                *count += 1;
            }
            AggState::Min(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v);
                }
            }
            AggState::Max(cur) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v);
                }
            }
        }
        Ok(())
    }

    /// Fold another partial state for the same aggregate into `self`.
    /// `other` must come from a later chunk, so float partial sums are
    /// combined left-to-right in chunk order.
    pub(super) fn merge(&mut self, other: AggState) {
        match (&mut *self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (AggState::SumInt(a, sa), AggState::SumInt(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::SumInt(a, sa), AggState::SumFloat(b, sb)) => {
                let seen = *sa | sb;
                *self = AggState::SumFloat(*a as f64 + b, seen);
            }
            (AggState::SumFloat(a, sa), AggState::SumInt(b, sb)) => {
                *a += b as f64;
                *sa |= sb;
            }
            (AggState::SumFloat(a, sa), AggState::SumFloat(b, sb)) => {
                *a += b;
                *sa |= sb;
            }
            (AggState::Avg { sum, count }, AggState::Avg { sum: s2, count: c2 }) => {
                *sum += s2;
                *count += c2;
            }
            (AggState::Min(cur), AggState::Min(Some(v))) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_lt()) {
                    *cur = Some(v);
                }
            }
            (AggState::Max(cur), AggState::Max(Some(v))) => {
                if cur.as_ref().is_none_or(|c| v.total_cmp(c).is_gt()) {
                    *cur = Some(v);
                }
            }
            (AggState::Min(_), AggState::Min(None)) | (AggState::Max(_), AggState::Max(None)) => {}
            _ => unreachable!("partial states of one aggregate share a variant"),
        }
    }

    pub(super) fn finish(self) -> Value {
        match self {
            AggState::Count(c) => Value::Int(c),
            AggState::SumInt(acc, seen) => {
                if seen {
                    Value::Int(acc)
                } else {
                    Value::Null
                }
            }
            AggState::SumFloat(acc, seen) => {
                if seen {
                    Value::Float(acc)
                } else {
                    Value::Null
                }
            }
            AggState::Avg { sum, count } => {
                if count == 0 {
                    Value::Null
                } else {
                    Value::Float(sum / count as f64)
                }
            }
            AggState::Min(v) => v.unwrap_or(Value::Null),
            AggState::Max(v) => v.unwrap_or(Value::Null),
        }
    }
}

pub(crate) fn aggregate(
    input: &PhysPlan,
    keys: &[PhysExpr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<NodeOut> {
    // Fully eligible chains aggregate straight over the columnar chunks
    // without materializing the filtered input.
    if let Some(out) = super::vector::vectorized_aggregate(input, keys, aggs, ctx)? {
        return Ok(out);
    }
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let rows = super::run_input(input, ctx, &mut children, &mut rows_in)?;

    let parallel = ctx.should_parallelize(rows.len());
    let out = if parallel {
        parallel_aggregate(rows, keys, aggs, ctx)?
    } else {
        serial_aggregate(&rows, keys, aggs, ctx.budget())?
    };
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: if parallel { ctx.parallelism() } else { 1 },
        children,
    })
}

fn serial_aggregate(
    rows: &[Row],
    keys: &[PhysExpr],
    aggs: &[AggSpec],
    budget: &MemoryBudget,
) -> Result<Vec<Row>> {
    // Group states plus per-group DISTINCT sets for distinct aggregates.
    struct Group {
        states: Vec<AggState>,
        distinct_seen: Vec<Option<HashSet<Value>>>,
    }
    let new_group = || Group {
        states: aggs.iter().map(AggState::new).collect(),
        distinct_seen: aggs
            .iter()
            .map(|a| {
                if a.distinct {
                    Some(HashSet::new())
                } else {
                    None
                }
            })
            .collect(),
    };

    let mut groups: HashMap<Vec<Value>, Group> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new(); // first-seen group order
    let mut charge = ChargeBuf::new(budget);
    // Each new group owns two key copies (map + order list) plus its states.
    let group_overhead = (aggs.len() * std::mem::size_of::<AggState>()) as u64;

    for row in rows {
        let mut key = Vec::with_capacity(keys.len());
        for k in keys {
            key.push(k.eval(row)?);
        }
        let group = match groups.get_mut(&key) {
            Some(g) => g,
            None => {
                charge.add(2 * approx_row_bytes(&key) + group_overhead)?;
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(new_group)
            }
        };
        for (i, spec) in aggs.iter().enumerate() {
            let v = match &spec.arg {
                None => Value::Int(1), // COUNT(*): every row counts
                Some(a) => a.eval(row)?,
            };
            if v.is_null() {
                continue;
            }
            if let Some(seen) = &mut group.distinct_seen[i] {
                charge.add(approx_value_bytes(&v))?;
                if !seen.insert(v.clone()) {
                    continue;
                }
            }
            group.states[i].update(v)?;
        }
    }
    charge.flush()?;

    // Global aggregate over empty input still yields one row of defaults.
    if groups.is_empty() && keys.is_empty() {
        return Ok(vec![default_row(aggs)]);
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let group = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        for s in group.states {
            row.push(s.finish());
        }
        out.push(row);
    }
    Ok(out)
}

pub(super) fn default_row(aggs: &[AggSpec]) -> Row {
    aggs.iter().map(|a| AggState::new(a).finish()).collect()
}

/// Per-worker partial aggregate for one group. Non-DISTINCT aggregates fold
/// into `states` immediately; DISTINCT aggregates only record their
/// locally-new values (set for dedup, vec for first-seen order) and fold at
/// merge time.
struct Partial {
    states: Vec<AggState>,
    distinct: Vec<Option<(HashSet<Value>, Vec<Value>)>>,
}

/// One worker's result: first-seen group order plus the partial group map.
type ChunkOut = (Vec<Vec<Value>>, HashMap<Vec<Value>, Partial>);

fn parallel_aggregate(
    rows: Arc<Vec<Row>>,
    keys: &[PhysExpr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let keys_arc: Arc<Vec<PhysExpr>> = Arc::new(keys.to_vec());
    let aggs_arc: Arc<Vec<AggSpec>> = Arc::new(aggs.to_vec());

    let jobs: Vec<ChunkJob<Result<ChunkOut>>> = ctx
        .morsels(rows.len())
        .into_iter()
        .map(|range| {
            let rows = Arc::clone(&rows);
            let keys = Arc::clone(&keys_arc);
            let aggs = Arc::clone(&aggs_arc);
            let budget = Arc::clone(ctx.budget());
            let job: ChunkJob<Result<ChunkOut>> =
                Box::new(move || partial_chunk(&rows[range], &keys, &aggs, &budget));
            job
        })
        .collect();

    // Merge chunks in order. A group's first-seen position is its position in
    // the earliest chunk containing it, so walking chunk order rebuilds the
    // serial order; likewise each DISTINCT value's first occurrence lands in
    // the earliest chunk, so folding ordered value lists in chunk order
    // replays the serial update sequence.
    struct Merged {
        states: Vec<AggState>,
        distinct_seen: Vec<Option<HashSet<Value>>>,
    }
    let mut groups: HashMap<Vec<Value>, Merged> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();

    for chunk in ctx.run_jobs(jobs) {
        let (chunk_order, mut chunk_groups) = chunk?;
        for key in chunk_order {
            let partial = chunk_groups.remove(&key).expect("key recorded in order");
            match groups.get_mut(&key) {
                None => {
                    let mut merged = Merged {
                        states: partial.states,
                        distinct_seen: aggs.iter().map(|a| a.distinct.then(HashSet::new)).collect(),
                    };
                    fold_distinct(
                        &mut merged.states,
                        &mut merged.distinct_seen,
                        partial.distinct,
                    )?;
                    order.push(key.clone());
                    groups.insert(key, merged);
                }
                Some(merged) => {
                    for (state, other) in merged.states.iter_mut().zip(partial.states) {
                        state.merge(other);
                    }
                    fold_distinct(
                        &mut merged.states,
                        &mut merged.distinct_seen,
                        partial.distinct,
                    )?;
                }
            }
        }
    }

    if groups.is_empty() && keys.is_empty() {
        return Ok(vec![default_row(aggs)]);
    }

    let mut out = Vec::with_capacity(groups.len());
    for key in order {
        let group = groups.remove(&key).expect("group recorded in order");
        let mut row = key;
        for s in group.states {
            row.push(s.finish());
        }
        out.push(row);
    }
    Ok(out)
}

/// Fold a chunk's ordered DISTINCT value lists into the merged group state,
/// skipping values an earlier chunk already contributed.
fn fold_distinct(
    states: &mut [AggState],
    distinct_seen: &mut [Option<HashSet<Value>>],
    chunk_distinct: Vec<Option<(HashSet<Value>, Vec<Value>)>>,
) -> Result<()> {
    for (i, slot) in chunk_distinct.into_iter().enumerate() {
        if let Some((_, ordered)) = slot {
            let seen = distinct_seen[i]
                .as_mut()
                .expect("distinct slot matches spec");
            for v in ordered {
                if seen.insert(v.clone()) {
                    states[i].update(v)?;
                }
            }
        }
    }
    Ok(())
}

/// Build one worker's partial aggregation over a morsel.
fn partial_chunk(
    rows: &[Row],
    keys: &[PhysExpr],
    aggs: &[AggSpec],
    budget: &MemoryBudget,
) -> Result<ChunkOut> {
    let new_partial = || Partial {
        states: aggs.iter().map(AggState::new).collect(),
        distinct: aggs
            .iter()
            .map(|a| a.distinct.then(|| (HashSet::new(), Vec::new())))
            .collect(),
    };
    let mut groups: HashMap<Vec<Value>, Partial> = HashMap::new();
    let mut order: Vec<Vec<Value>> = Vec::new();
    let mut charge = ChargeBuf::new(budget);
    let group_overhead = (aggs.len() * std::mem::size_of::<AggState>()) as u64;

    for row in rows {
        let mut key = Vec::with_capacity(keys.len());
        for k in keys {
            key.push(k.eval(row)?);
        }
        let group = match groups.get_mut(&key) {
            Some(g) => g,
            None => {
                charge.add(2 * approx_row_bytes(&key) + group_overhead)?;
                order.push(key.clone());
                groups.entry(key.clone()).or_insert_with(new_partial)
            }
        };
        for (i, spec) in aggs.iter().enumerate() {
            let v = match &spec.arg {
                None => Value::Int(1),
                Some(a) => a.eval(row)?,
            };
            if v.is_null() {
                continue;
            }
            match &mut group.distinct[i] {
                Some((set, ordered)) => {
                    charge.add(approx_value_bytes(&v))?;
                    if set.insert(v.clone()) {
                        ordered.push(v);
                    }
                }
                None => group.states[i].update(v)?,
            }
        }
    }
    charge.flush()?;
    Ok((order, groups))
}
