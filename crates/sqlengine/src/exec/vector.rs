//! Vectorized operator kernels over columnar chunks.
//!
//! Eligible `Filter`/`Project` prefixes of a scan pipeline (and fully
//! eligible `Aggregate` chains) execute chunk-at-a-time instead of
//! row-at-a-time: each [`ColumnChunk`] flows through the stages as a
//! *selection vector* of surviving row offsets plus a *virtual column map*
//! (projection without materialization), and only the final output columns
//! of the surviving rows are gathered into `Value` rows at the end — late
//! materialization. A chunk is the unit of parallelism: morsel jobs take
//! chunk ranges, so the existing submission-order merge keeps results
//! deterministic.
//!
//! Eligibility is deliberately restricted to expressions whose evaluation
//! can never error and never yields a non-boolean for filters: comparisons,
//! `IS [NOT] NULL`, and `[NOT] BETWEEN` over bare columns/literals, composed
//! with `AND`/`OR`. Within that grammar every sub-expression evaluates to
//! `Int(0|1)` or `Null`, so selection-vector refinement (`AND` = sequential
//! refinement, `OR` = sorted union) is exactly three-valued logic as the row
//! evaluator computes it — a filter keeps a row iff the predicate is TRUE.
//! Everything outside the grammar (arithmetic, `LIKE`, `IN`, functions,
//! DISTINCT aggregates) falls back to the row path, per operator: a chain
//! runs its eligible prefix vectorized and the rest row-at-a-time.
//!
//! Divergence note: vectorized aggregation updates aggregate states
//! column-at-a-time within a chunk, so when an *erroring* aggregate (e.g.
//! `SUM` over text) fails, the reported row may differ from the row path's;
//! result values for non-erroring queries are identical (serial float sums
//! are accumulated in row order, bit-identically; parallel sums combine in
//! chunk order, the same divergence class the row path already permits).

use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

use crate::ast::BinaryOp;
use crate::column::{ColVec, ColumnChunk, ColumnData};
use crate::error::Result;
use crate::explain::op_label;
use crate::expr::PhysExpr;
use crate::plan::{AggSpec, PhysPlan};
use crate::value::{Row, Value};

use super::aggregate::{default_row, AggState};
use super::context::{approx_row_bytes, check_deadline, ChunkJob, MemoryBudget, StageCounter};
use super::scan::{collect_chain, StageSpec};
use super::{ExecContext, NodeOut, OpStats};

/// A bare column reference or literal — the only expressions kernels accept.
fn is_simple(e: &PhysExpr) -> bool {
    matches!(e, PhysExpr::Column(_) | PhysExpr::Literal(_))
}

/// The filter-kernel grammar (see module docs): infallible, boolean-valued.
fn filter_eligible(pred: &PhysExpr) -> bool {
    match pred {
        PhysExpr::Binary { left, op, right } => match op {
            BinaryOp::Eq
            | BinaryOp::NotEq
            | BinaryOp::Lt
            | BinaryOp::LtEq
            | BinaryOp::Gt
            | BinaryOp::GtEq => is_simple(left) && is_simple(right),
            BinaryOp::And | BinaryOp::Or => filter_eligible(left) && filter_eligible(right),
            _ => false,
        },
        PhysExpr::IsNull { expr, .. } => is_simple(expr),
        PhysExpr::Between {
            expr, low, high, ..
        } => is_simple(expr) && is_simple(low) && is_simple(high),
        _ => false,
    }
}

fn project_eligible(exprs: &[PhysExpr]) -> bool {
    exprs.iter().all(is_simple)
}

fn agg_eligible(keys: &[PhysExpr], aggs: &[AggSpec]) -> bool {
    keys.iter().all(is_simple)
        && aggs
            .iter()
            .all(|a| !a.distinct && a.arg.as_ref().is_none_or(is_simple))
}

/// Whether a pipeline stage node has a vectorized kernel.
fn stage_eligible(node: &PhysPlan) -> bool {
    match node {
        PhysPlan::Filter { predicate, .. } => filter_eligible(predicate),
        PhysPlan::Project { exprs, .. } => project_eligible(exprs),
        _ => false,
    }
}

/// Length of the eligible stage prefix (stages are innermost-first).
fn prefix_len(nodes: &[&PhysPlan]) -> usize {
    nodes.iter().take_while(|n| stage_eligible(n)).count()
}

/// The execution mode of one operator: `Some(true)` = runs vectorized,
/// `Some(false)` = has a vectorized variant but runs on the row path here,
/// `None` = operator has no vectorized variant. Mirrors the executor's
/// prefix rule exactly: a node is vectorized iff its own kernel exists *and*
/// everything below it is vectorized down to a chunk-carrying scan.
pub(crate) fn node_mode(plan: &PhysPlan) -> Option<bool> {
    match plan {
        PhysPlan::Scan { chunks, .. } => Some(chunks.is_some()),
        PhysPlan::Filter { input, predicate } => {
            Some(filter_eligible(predicate) && node_mode(input) == Some(true))
        }
        PhysPlan::Project { input, exprs } => {
            Some(project_eligible(exprs) && node_mode(input) == Some(true))
        }
        PhysPlan::Aggregate { input, keys, aggs } => {
            Some(agg_eligible(keys, aggs) && node_mode(input) == Some(true))
        }
        _ => None,
    }
}

/// ` mode=vectorized` / ` mode=row` suffix for operator labels; empty for
/// operators without a vectorized variant.
pub(crate) fn mode_suffix(plan: &PhysPlan) -> &'static str {
    match node_mode(plan) {
        Some(true) => " mode=vectorized",
        Some(false) => " mode=row",
        None => "",
    }
}

/// Recover the execution mode from a rendered `EXPLAIN` label (the inverse
/// of [`mode_suffix`]): the tracer derives operator spans from `OpStats`
/// trees, which carry only the label, and attaches the mode as a typed
/// span attribute instead of label text.
pub(crate) fn mode_of_label(label: &str) -> Option<&'static str> {
    if label.contains(" mode=vectorized") {
        Some("vectorized")
    } else if label.contains(" mode=row") {
        Some("row")
    } else {
        None
    }
}

/// Count `(vectorized, row)` operators over the whole plan tree, for the
/// telemetry registry (`exec.vectorized_ops` / `exec.row_ops`).
pub(crate) fn count_modes(plan: &PhysPlan) -> (u64, u64) {
    fn walk(plan: &PhysPlan, acc: &mut (u64, u64)) {
        match node_mode(plan) {
            Some(true) => acc.0 += 1,
            Some(false) => acc.1 += 1,
            None => {}
        }
        match plan {
            PhysPlan::Scan { .. }
            | PhysPlan::VirtualScan { .. }
            | PhysPlan::IndexScan { .. }
            | PhysPlan::OneRow => {}
            PhysPlan::Filter { input, .. }
            | PhysPlan::Project { input, .. }
            | PhysPlan::Aggregate { input, .. }
            | PhysPlan::Window { input, .. }
            | PhysPlan::Sort { input, .. }
            | PhysPlan::Limit { input, .. }
            | PhysPlan::Distinct { input } => walk(input, acc),
            PhysPlan::HashJoin { left, right, .. }
            | PhysPlan::NestedLoopJoin { left, right, .. } => {
                walk(left, acc);
                walk(right, acc);
            }
            PhysPlan::IndexJoin { probe, inner, .. } => {
                walk(probe, acc);
                walk(inner, acc);
            }
            PhysPlan::UnionAll { inputs } => {
                for i in inputs {
                    walk(i, acc);
                }
            }
        }
    }
    let mut acc = (0, 0);
    walk(plan, &mut acc);
    acc
}

/// A virtual output column: either a source chunk column or a literal.
/// `Project` stages remap this instead of materializing rows.
#[derive(Clone)]
enum VCol {
    Src(usize),
    Lit(Value),
}

/// Resolve a simple expression against the current virtual column map.
fn resolve(map: &[VCol], e: &PhysExpr) -> VCol {
    match e {
        PhysExpr::Column(i) => map[*i].clone(),
        PhysExpr::Literal(v) => VCol::Lit(v.clone()),
        _ => unreachable!("eligibility admits only columns and literals"),
    }
}

/// The exact stored value a virtual column yields at row offset `i`.
fn val_of(chunk: &ColumnChunk, v: &VCol, i: usize) -> Value {
    match v {
        VCol::Src(c) => chunk.value_at(i, *c),
        VCol::Lit(v) => v.clone(),
    }
}

/// `total_cmp` ordering → comparison verdict, mirroring `eval_binary`'s
/// `Compare` arm exactly.
fn ord_ok(op: BinaryOp, ord: Ordering) -> bool {
    match op {
        BinaryOp::Eq => ord == Ordering::Equal,
        BinaryOp::NotEq => ord != Ordering::Equal,
        BinaryOp::Lt => ord == Ordering::Less,
        BinaryOp::LtEq => ord != Ordering::Greater,
        BinaryOp::Gt => ord == Ordering::Greater,
        BinaryOp::GtEq => ord != Ordering::Less,
        _ => unreachable!("comparison operator"),
    }
}

/// Mirror `lit op col` as `col flip(op) lit`.
fn flip(op: BinaryOp) -> BinaryOp {
    match op {
        BinaryOp::Lt => BinaryOp::Gt,
        BinaryOp::LtEq => BinaryOp::GtEq,
        BinaryOp::Gt => BinaryOp::Lt,
        BinaryOp::GtEq => BinaryOp::LtEq,
        other => other, // Eq / NotEq are symmetric
    }
}

/// Column-vs-literal comparison kernel with typed fast loops. NULL operands
/// never match (`x op NULL` is `Null`, which a filter drops).
fn compare_col_lit(col: &ColVec, op: BinaryOp, lit: &Value, sel: &[u32]) -> Vec<u32> {
    if lit.is_null() {
        return Vec::new();
    }
    let mut out = Vec::new();
    // A constant verdict for every non-null row (numbers sort before
    // strings, so e.g. an Int column against a Str literal is always Less).
    let mut constant = |verdict: bool, col: &ColVec| {
        if verdict {
            out.extend(sel.iter().copied().filter(|&i| !col.is_null(i as usize)));
        }
    };
    match &col.data {
        ColumnData::Int(xs) => match lit {
            Value::Int(b) => {
                for &i in sel {
                    let i_us = i as usize;
                    if !col.is_null(i_us) && ord_ok(op, xs[i_us].cmp(b)) {
                        out.push(i);
                    }
                }
            }
            Value::Float(b) => {
                for &i in sel {
                    let i_us = i as usize;
                    if !col.is_null(i_us) && ord_ok(op, (xs[i_us] as f64).total_cmp(b)) {
                        out.push(i);
                    }
                }
            }
            Value::Str(_) => constant(ord_ok(op, Ordering::Less), col),
            Value::Null => unreachable!("null literal handled above"),
        },
        ColumnData::Float(xs) => match lit {
            Value::Int(b) => {
                let b = *b as f64;
                for &i in sel {
                    let i_us = i as usize;
                    if !col.is_null(i_us) && ord_ok(op, xs[i_us].total_cmp(&b)) {
                        out.push(i);
                    }
                }
            }
            Value::Float(b) => {
                for &i in sel {
                    let i_us = i as usize;
                    if !col.is_null(i_us) && ord_ok(op, xs[i_us].total_cmp(b)) {
                        out.push(i);
                    }
                }
            }
            Value::Str(_) => constant(ord_ok(op, Ordering::Less), col),
            Value::Null => unreachable!("null literal handled above"),
        },
        ColumnData::Dict { codes, values, .. } => {
            // One verdict per dictionary code, then a code-indexed scan.
            let verdicts: Vec<bool> = values
                .iter()
                .map(|s| {
                    let ord = match lit {
                        Value::Str(b) => s.as_ref().cmp(b.as_ref()),
                        // Strings sort after numbers.
                        _ => Ordering::Greater,
                    };
                    ord_ok(op, ord)
                })
                .collect();
            for &i in sel {
                let i_us = i as usize;
                if !col.is_null(i_us) && verdicts[codes[i_us] as usize] {
                    out.push(i);
                }
            }
        }
        ColumnData::Values(xs) => {
            for &i in sel {
                let v = &xs[i as usize];
                if !v.is_null() && ord_ok(op, v.total_cmp(lit)) {
                    out.push(i);
                }
            }
        }
    }
    out
}

/// Generic column-vs-column comparison.
fn compare_cols(chunk: &ColumnChunk, a: usize, op: BinaryOp, b: usize, sel: &[u32]) -> Vec<u32> {
    let (ca, cb) = (chunk.column(a), chunk.column(b));
    sel.iter()
        .copied()
        .filter(|&i| {
            let i_us = i as usize;
            !ca.is_null(i_us)
                && !cb.is_null(i_us)
                && ord_ok(op, ca.value_at(i_us).total_cmp(&cb.value_at(i_us)))
        })
        .collect()
}

fn compare(
    chunk: &ColumnChunk,
    map: &[VCol],
    left: &PhysExpr,
    op: BinaryOp,
    right: &PhysExpr,
    sel: &[u32],
) -> Vec<u32> {
    match (resolve(map, left), resolve(map, right)) {
        (VCol::Lit(a), VCol::Lit(b)) => {
            if !a.is_null() && !b.is_null() && ord_ok(op, a.total_cmp(&b)) {
                sel.to_vec()
            } else {
                Vec::new()
            }
        }
        (VCol::Src(c), VCol::Lit(b)) => compare_col_lit(chunk.column(c), op, &b, sel),
        (VCol::Lit(a), VCol::Src(c)) => compare_col_lit(chunk.column(c), flip(op), &a, sel),
        (VCol::Src(a), VCol::Src(b)) => compare_cols(chunk, a, op, b, sel),
    }
}

fn is_null_kernel(
    chunk: &ColumnChunk,
    map: &[VCol],
    expr: &PhysExpr,
    negated: bool,
    sel: &[u32],
) -> Vec<u32> {
    match resolve(map, expr) {
        VCol::Lit(v) => {
            if v.is_null() != negated {
                sel.to_vec()
            } else {
                Vec::new()
            }
        }
        VCol::Src(c) => {
            let col = chunk.column(c);
            sel.iter()
                .copied()
                .filter(|&i| col.is_null(i as usize) != negated)
                .collect()
        }
    }
}

fn between_kernel(
    chunk: &ColumnChunk,
    map: &[VCol],
    exprs: (&PhysExpr, &PhysExpr, &PhysExpr),
    negated: bool,
    sel: &[u32],
) -> Vec<u32> {
    let e = resolve(map, exprs.0);
    let lo = resolve(map, exprs.1);
    let hi = resolve(map, exprs.2);
    // Typed fast path for the common `int_col BETWEEN int AND int`.
    if let (VCol::Src(c), VCol::Lit(Value::Int(lo)), VCol::Lit(Value::Int(hi))) = (&e, &lo, &hi) {
        let col = chunk.column(*c);
        if let ColumnData::Int(xs) = &col.data {
            return sel
                .iter()
                .copied()
                .filter(|&i| {
                    let i_us = i as usize;
                    !col.is_null(i_us) && ((xs[i_us] >= *lo && xs[i_us] <= *hi) != negated)
                })
                .collect();
        }
    }
    sel.iter()
        .copied()
        .filter(|&i| {
            let i_us = i as usize;
            let v = val_of(chunk, &e, i_us);
            let l = val_of(chunk, &lo, i_us);
            let h = val_of(chunk, &hi, i_us);
            !v.is_null() && !l.is_null() && !h.is_null() && {
                let inside =
                    v.total_cmp(&l) != Ordering::Less && v.total_cmp(&h) != Ordering::Greater;
                inside != negated
            }
        })
        .collect()
}

/// Union of two sorted selection vectors (both subsequences of one parent).
fn merge_union(a: Vec<u32>, b: Vec<u32>) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len().max(b.len()));
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

/// Refine a selection vector through one eligible predicate. `AND` refines
/// sequentially (TRUE∧TRUE survives; FALSE/NULL drops either way); `OR`
/// evaluates both sides on the *same* input selection and unions — sound
/// because sub-expressions in the grammar cannot error, so short-circuit
/// order is unobservable.
fn apply_pred(chunk: &ColumnChunk, map: &[VCol], pred: &PhysExpr, sel: &[u32]) -> Vec<u32> {
    match pred {
        PhysExpr::Binary { left, op, right } => match op {
            BinaryOp::And => {
                let sel = apply_pred(chunk, map, left, sel);
                apply_pred(chunk, map, right, &sel)
            }
            BinaryOp::Or => {
                let a = apply_pred(chunk, map, left, sel);
                let b = apply_pred(chunk, map, right, sel);
                merge_union(a, b)
            }
            _ => compare(chunk, map, left, *op, right, sel),
        },
        PhysExpr::IsNull { expr, negated } => is_null_kernel(chunk, map, expr, *negated, sel),
        PhysExpr::Between {
            expr,
            low,
            high,
            negated,
        } => between_kernel(chunk, map, (expr, low, high), *negated, sel),
        _ => unreachable!("filter eligibility checked"),
    }
}

/// Per-chunk pipeline configuration shared by every kernel driver.
struct ChunkPipeline<'a> {
    stages: &'a [StageSpec],
    counters: &'a [StageCounter],
    timed: bool,
    deadline: Option<Instant>,
}

/// Run the stage pipeline over one chunk, producing the surviving selection
/// vector and the virtual column map of the final output.
fn run_stages(chunk: &ColumnChunk, pipe: &ChunkPipeline<'_>) -> (Vec<VCol>, Vec<u32>) {
    let mut map: Vec<VCol> = (0..chunk.width()).map(VCol::Src).collect();
    let mut sel: Vec<u32> = (0..chunk.len() as u32).collect();
    for (stage, counter) in pipe.stages.iter().zip(pipe.counters) {
        let started = pipe.timed.then(Instant::now);
        let rows_in = sel.len();
        match stage {
            StageSpec::Filter(pred) => sel = apply_pred(chunk, &map, pred, &sel),
            StageSpec::Project(exprs) => {
                map = exprs.iter().map(|e| resolve(&map, e)).collect();
            }
        }
        let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
        counter.add(rows_in, sel.len(), nanos);
    }
    (map, sel)
}

/// Pipeline + late materialization: gather only the final output columns of
/// the surviving rows.
fn run_chunk(chunk: &ColumnChunk, pipe: &ChunkPipeline<'_>) -> Result<Vec<Row>> {
    check_deadline(pipe.deadline)?;
    let (map, sel) = run_stages(chunk, pipe);
    Ok(sel
        .iter()
        .map(|&i| map.iter().map(|vc| val_of(chunk, vc, i as usize)).collect())
        .collect())
}

/// Result of running the vectorized prefix of a scan pipeline.
pub(super) struct PrefixOut {
    pub rows: Vec<Row>,
    /// How many (innermost-first) stages the prefix covered; the caller runs
    /// the rest on the row machinery.
    pub stages_done: usize,
    pub parallel: bool,
    /// Rows in the source snapshot (for the source's stats leaf).
    pub source_rows: usize,
}

/// Execute the eligible prefix of a Filter/Project chain over the source's
/// columnar image. Returns `None` when the source carries no chunk slot or
/// no stage is eligible — the caller then runs the whole chain row-wise.
/// Prefix stage counters are filled exactly like the row path's.
pub(super) fn prefix_run(
    nodes: &[&PhysPlan],
    source: &PhysPlan,
    counters: &Arc<Vec<StageCounter>>,
    ctx: &ExecContext,
) -> Result<Option<PrefixOut>> {
    let PhysPlan::Scan {
        rows,
        width,
        chunks: Some(slot),
    } = source
    else {
        return Ok(None);
    };
    let n = prefix_len(nodes);
    if n == 0 {
        return Ok(None);
    }
    let chunked = slot.get_or_build(rows, *width);
    let stages: Arc<Vec<StageSpec>> =
        Arc::new(nodes[..n].iter().map(|nd| StageSpec::of(nd)).collect());
    let timed = ctx.stats_enabled();
    let deadline = ctx.deadline();
    let parallel = ctx.should_parallelize(chunked.row_count());
    let out_rows = if parallel {
        let jobs: Vec<ChunkJob<Result<Vec<Row>>>> = ctx
            .morsels(chunked.chunk_count())
            .into_iter()
            .map(|range| {
                let stages = Arc::clone(&stages);
                let counters = Arc::clone(counters);
                let chunked = Arc::clone(&chunked);
                let job: ChunkJob<Result<Vec<Row>>> = Box::new(move || {
                    let pipe = ChunkPipeline {
                        stages: &stages,
                        counters: &counters,
                        timed,
                        deadline,
                    };
                    let mut out = Vec::new();
                    for chunk in &chunked.chunks()[range] {
                        out.extend(run_chunk(chunk, &pipe)?);
                    }
                    Ok(out)
                });
                job
            })
            .collect();
        let mut out = Vec::new();
        for chunk in ctx.run_jobs(jobs) {
            out.extend(chunk?);
        }
        out
    } else {
        let pipe = ChunkPipeline {
            stages: &stages,
            counters,
            timed,
            deadline,
        };
        let mut out = Vec::new();
        for chunk in chunked.chunks() {
            out.extend(run_chunk(chunk, &pipe)?);
        }
        out
    };
    Ok(Some(PrefixOut {
        rows: out_rows,
        stages_done: n,
        parallel,
        source_rows: chunked.row_count(),
    }))
}

/// Group accumulator in global first-seen order: `order[g]` is group `g`'s
/// key, `states[g]` its per-aggregate running states.
#[derive(Default)]
struct GroupAcc {
    index: HashMap<Vec<Value>, usize>,
    order: Vec<Vec<Value>>,
    states: Vec<Vec<AggState>>,
}

/// Aggregate one chunk into `acc`, without materializing filtered rows:
/// stages yield a selection + virtual map, keys are gathered per surviving
/// row, and aggregate updates run column-at-a-time per aggregate (row order
/// within each state, so serial float sums are bit-identical to row order).
fn agg_chunk(
    chunk: &ColumnChunk,
    pipe: &ChunkPipeline<'_>,
    keys: &[PhysExpr],
    aggs: &[AggSpec],
    budget: &MemoryBudget,
    acc: &mut GroupAcc,
) -> Result<()> {
    check_deadline(pipe.deadline)?;
    let (map, sel) = run_stages(chunk, pipe);
    let key_cols: Vec<VCol> = keys.iter().map(|k| resolve(&map, k)).collect();
    let mut gids = Vec::with_capacity(sel.len());
    for &i in &sel {
        let key: Vec<Value> = key_cols
            .iter()
            .map(|vc| val_of(chunk, vc, i as usize))
            .collect();
        let gid = match acc.index.get(&key) {
            Some(&g) => g,
            None => {
                // Same accounting as the row path's hash aggregate: two key
                // copies (index map + order list) plus the state vector.
                budget.charge(
                    2 * approx_row_bytes(&key)
                        + (aggs.len() * std::mem::size_of::<AggState>()) as u64,
                )?;
                let g = acc.order.len();
                acc.order.push(key.clone());
                acc.states.push(aggs.iter().map(AggState::new).collect());
                acc.index.insert(key, g);
                g
            }
        };
        gids.push(gid);
    }
    for (ai, spec) in aggs.iter().enumerate() {
        match spec.arg.as_ref().map(|e| resolve(&map, e)) {
            // COUNT(*): every surviving row counts.
            None => {
                for &g in &gids {
                    acc.states[g][ai].update(Value::Int(1))?;
                }
            }
            Some(vc) => {
                for (&i, &g) in sel.iter().zip(&gids) {
                    let v = val_of(chunk, &vc, i as usize);
                    if !v.is_null() {
                        acc.states[g][ai].update(v)?;
                    }
                }
            }
        }
    }
    Ok(())
}

/// One parallel worker's partial aggregation: local first-seen group order
/// plus the per-group states.
type VChunkOut = (Vec<Vec<Value>>, HashMap<Vec<Value>, Vec<AggState>>);

/// Vectorized hash aggregate over a fully eligible `Scan → [Filter/Project]*
/// → Aggregate` chain. Returns `None` (fall back to the row path) when the
/// chain or the aggregate spec is outside the kernel grammar.
pub(super) fn vectorized_aggregate(
    input: &PhysPlan,
    keys: &[PhysExpr],
    aggs: &[AggSpec],
    ctx: &ExecContext,
) -> Result<Option<NodeOut>> {
    if !agg_eligible(keys, aggs) {
        return Ok(None);
    }
    let (nodes, source) = collect_chain(input);
    let PhysPlan::Scan {
        rows,
        width,
        chunks: Some(slot),
    } = source
    else {
        return Ok(None);
    };
    if prefix_len(&nodes) != nodes.len() {
        return Ok(None);
    }
    let chunked = slot.get_or_build(rows, *width);
    let stages: Arc<Vec<StageSpec>> = Arc::new(nodes.iter().map(|nd| StageSpec::of(nd)).collect());
    let counters: Arc<Vec<StageCounter>> =
        Arc::new((0..stages.len()).map(|_| StageCounter::default()).collect());
    let timed = ctx.stats_enabled();
    let deadline = ctx.deadline();
    let parallel = ctx.should_parallelize(chunked.row_count());

    let mut acc = GroupAcc::default();
    if parallel {
        let keys_arc: Arc<Vec<PhysExpr>> = Arc::new(keys.to_vec());
        let aggs_arc: Arc<Vec<AggSpec>> = Arc::new(aggs.to_vec());
        let jobs: Vec<ChunkJob<Result<VChunkOut>>> = ctx
            .morsels(chunked.chunk_count())
            .into_iter()
            .map(|range| {
                let stages = Arc::clone(&stages);
                let counters = Arc::clone(&counters);
                let chunked = Arc::clone(&chunked);
                let keys = Arc::clone(&keys_arc);
                let aggs = Arc::clone(&aggs_arc);
                let budget = Arc::clone(ctx.budget());
                let job: ChunkJob<Result<VChunkOut>> = Box::new(move || {
                    let pipe = ChunkPipeline {
                        stages: &stages,
                        counters: &counters,
                        timed,
                        deadline,
                    };
                    let mut local = GroupAcc::default();
                    for chunk in &chunked.chunks()[range] {
                        agg_chunk(chunk, &pipe, &keys, &aggs, &budget, &mut local)?;
                    }
                    let map: HashMap<Vec<Value>, Vec<AggState>> =
                        local.order.iter().cloned().zip(local.states).collect();
                    Ok((local.order, map))
                });
                job
            })
            .collect();
        // Merge partials in chunk order: a group's first appearance fixes
        // its global position, and float partial sums combine left-to-right
        // in chunk order (the row path's parallel convention).
        for result in ctx.run_jobs(jobs) {
            let (chunk_order, mut chunk_states) = result?;
            for key in chunk_order {
                let partial = chunk_states.remove(&key).expect("key recorded in order");
                match acc.index.get(&key) {
                    None => {
                        acc.index.insert(key.clone(), acc.order.len());
                        acc.order.push(key);
                        acc.states.push(partial);
                    }
                    Some(&g) => {
                        for (state, other) in acc.states[g].iter_mut().zip(partial) {
                            state.merge(other);
                        }
                    }
                }
            }
        }
    } else {
        let pipe = ChunkPipeline {
            stages: &stages,
            counters: &counters,
            timed,
            deadline,
        };
        for chunk in chunked.chunks() {
            agg_chunk(chunk, &pipe, keys, aggs, ctx.budget(), &mut acc)?;
        }
    }

    let out = if acc.order.is_empty() && keys.is_empty() {
        vec![default_row(aggs)]
    } else {
        acc.order
            .into_iter()
            .zip(acc.states)
            .map(|(key, states)| {
                let mut row = key;
                for s in states {
                    row.push(s.finish());
                }
                row
            })
            .collect()
    };

    let workers = if parallel { ctx.parallelism() } else { 1 };
    let morsels = if parallel {
        ctx.morsels(chunked.chunk_count()).len()
    } else {
        1
    };
    // Rows the Aggregate consumed = rows surviving the last stage.
    let rows_in = match counters.last() {
        Some(c) => c.snapshot().1,
        None => chunked.row_count(),
    };
    let children = if timed {
        // Nest the stage stats exactly like the row path renders them:
        // source leaf innermost, stages wrapping outward.
        let mut node = OpStats::leaf(op_label(source), chunked.row_count());
        for (i, stage_node) in nodes.iter().enumerate() {
            let (rows_in, rows_out, elapsed) = counters[i].snapshot();
            node = OpStats {
                label: op_label(stage_node),
                rows_in,
                rows_out,
                elapsed,
                workers,
                morsels,
                mem_bytes: 0,
                children: vec![node],
            };
        }
        vec![node]
    } else {
        Vec::new()
    };
    Ok(Some(NodeOut {
        rows: out,
        rows_in,
        workers,
        children,
    }))
}
