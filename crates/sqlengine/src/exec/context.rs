//! Execution context: parallelism, the worker pool, and runtime statistics.
//!
//! [`ExecContext`] is threaded through every operator. It decides whether an
//! operator may run its morsel-parallel path (and hands it the shared
//! [`WorkerPool`]), and whether per-operator [`OpStats`] are collected for
//! `EXPLAIN ANALYZE`.
//!
//! The pool is built on `std::thread` + `std::sync::mpsc` only — the build
//! environment has no crates.io access, so no external dependency (rayon,
//! crossbeam) is used. Workers are spawned once and live as long as the pool;
//! jobs are `'static` closures, so operators share their inputs with workers
//! via `Arc` (row vectors are already reference counted end to end).

use std::ops::Range;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::error::{EngineError, Result, Span};
use crate::plan::PhysPlan;
use crate::value::{Row, Value};

/// Inputs smaller than this never take a parallel path: morsel dispatch costs
/// a few microseconds per chunk, which only pays off for non-trivial row
/// counts. Keep this small enough that integration tests exercise the
/// parallel operators with modest fixtures.
pub(crate) const PAR_ROW_THRESHOLD: usize = 128;

/// A boxed per-morsel job an operator submits to [`ExecContext::run_jobs`].
pub(crate) type ChunkJob<T> = Box<dyn FnOnce() -> T + Send + 'static>;

/// Target number of morsels handed out per worker. More than one chunk per
/// worker smooths load imbalance (selective filters, skewed join keys)
/// without work stealing.
const MORSELS_PER_WORKER: usize = 4;

/// Operators accumulate charge amounts locally and flush them to the shared
/// [`MemoryBudget`] in chunks of this size, so budget accounting costs one
/// atomic per ~32 KiB of materialized state rather than one per row.
pub(crate) const CHARGE_FLUSH_BYTES: u64 = 32 * 1024;

/// Per-statement memory budget for pipeline-breaking operators.
///
/// Charged (conservatively, charge-only — no release on operator completion,
/// so the figure tracked is *cumulative materialized bytes*, an upper bound
/// on live usage) at the allocation sites that can grow without bound with
/// input size: hash-join build tables, aggregation hash tables, sort key
/// runs, DISTINCT/UNION dedup sets, and batched-predict literal tables.
/// When a charge pushes usage past the limit the operator aborts with
/// [`EngineError::ResourceExhausted`] — a clean, retryable statement error
/// instead of a process OOM. The peak is always tracked (budgeted or not)
/// and lands in `sys.query_log`.
#[derive(Debug)]
pub struct MemoryBudget {
    /// Budget in bytes; `u64::MAX` means unlimited (track peak only).
    limit: u64,
    used: AtomicU64,
    peak: AtomicU64,
}

impl MemoryBudget {
    /// Track peak usage without enforcing any limit.
    pub fn unlimited() -> MemoryBudget {
        MemoryBudget::limited(u64::MAX)
    }

    /// Enforce a budget of `limit` bytes.
    pub fn limited(limit: u64) -> MemoryBudget {
        MemoryBudget {
            limit,
            used: AtomicU64::new(0),
            peak: AtomicU64::new(0),
        }
    }

    /// Charge `bytes` against the budget, failing with
    /// [`EngineError::ResourceExhausted`] once usage exceeds the limit. The
    /// error carries an empty span; the engine attaches the statement span
    /// at the entry point.
    pub fn charge(&self, bytes: u64) -> Result<()> {
        let used = self.used.fetch_add(bytes, Ordering::Relaxed) + bytes;
        self.peak.fetch_max(used, Ordering::Relaxed);
        if used > self.limit {
            return Err(EngineError::resource_exhausted(
                format!(
                    "statement memory budget exceeded: operator state reached \
                     {used} bytes of a {} byte budget",
                    self.limit
                ),
                Span::default(),
            ));
        }
        Ok(())
    }

    /// Peak bytes charged so far.
    pub fn peak_bytes(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }

    /// Cumulative bytes charged so far (charge-only, monotonic). Sampling
    /// this before and after an operator runs attributes materialized bytes
    /// to that operator and its children — the `peak_mem_bytes` span
    /// attribute of pipeline breakers.
    pub fn used_bytes(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }
}

/// Rough heap footprint of one row: the inline `Value`s plus string heap
/// payloads plus the row vector's own header. Exact malloc accounting is not
/// the point — the estimate only has to scale with the real allocation so a
/// budget bounds it within a small constant factor.
pub(crate) fn approx_value_bytes(v: &Value) -> u64 {
    let heap = match v {
        Value::Str(s) => s.len(),
        _ => 0,
    };
    (std::mem::size_of::<Value>() + heap) as u64
}

pub(crate) fn approx_row_bytes(row: &Row) -> u64 {
    let heap: usize = row
        .iter()
        .map(|v| match v {
            Value::Str(s) => s.len(),
            _ => 0,
        })
        .sum();
    (std::mem::size_of::<Row>() + row.len() * std::mem::size_of::<Value>() + heap) as u64
}

/// Local accumulator over a shared [`MemoryBudget`]: buffers charges and
/// flushes every [`CHARGE_FLUSH_BYTES`] so tight per-row loops pay amortized
/// cost. Call [`ChargeBuf::flush`] (or drop the final partial charge — it is
/// flushed on the next add) when precision matters; operators flush at the
/// end of their build loops.
pub(crate) struct ChargeBuf<'a> {
    budget: &'a MemoryBudget,
    pending: u64,
}

impl<'a> ChargeBuf<'a> {
    pub(crate) fn new(budget: &'a MemoryBudget) -> ChargeBuf<'a> {
        ChargeBuf { budget, pending: 0 }
    }

    pub(crate) fn add(&mut self, bytes: u64) -> Result<()> {
        self.pending += bytes;
        if self.pending >= CHARGE_FLUSH_BYTES {
            self.flush()?;
        }
        Ok(())
    }

    pub(crate) fn add_row(&mut self, row: &Row) -> Result<()> {
        self.add(approx_row_bytes(row))
    }

    pub(crate) fn flush(&mut self) -> Result<()> {
        if self.pending > 0 {
            let pending = std::mem::take(&mut self.pending);
            self.budget.charge(pending)?;
        }
        Ok(())
    }
}

/// Runtime statistics for one operator in an executed plan, collected when
/// the context has stats enabled (`EXPLAIN ANALYZE`).
///
/// `elapsed` is inclusive of children for tree operators. For operators that
/// run inside a fused morsel pipeline, `elapsed` is the CPU time summed
/// across workers (the convention parallel DBMSs use for per-worker stats).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// Operator label as rendered by `EXPLAIN` (e.g. `HashJoin [Inner, 1 keys]`).
    pub label: String,
    /// Rows consumed from all inputs.
    pub rows_in: usize,
    /// Rows produced.
    pub rows_out: usize,
    /// Time attributed to this operator (see struct docs).
    pub elapsed: Duration,
    /// Workers this operator actually fanned out to (1 = serial path).
    pub workers: usize,
    /// Morsels the input was split into when the operator fanned out
    /// (1 = serial path).
    pub morsels: usize,
    /// Bytes charged against the statement memory budget while this operator
    /// (and its children) ran — pipeline-breaker state attribution. 0 for
    /// streaming operators.
    pub mem_bytes: u64,
    pub children: Vec<OpStats>,
}

impl OpStats {
    pub(crate) fn leaf(label: String, rows_out: usize) -> OpStats {
        OpStats {
            label,
            rows_in: 0,
            rows_out,
            elapsed: Duration::ZERO,
            workers: 1,
            morsels: 1,
            mem_bytes: 0,
            children: Vec::new(),
        }
    }

    /// Depth-first search for the first node whose label starts with `prefix`.
    pub fn find(&self, prefix: &str) -> Option<&OpStats> {
        if self.label.starts_with(prefix) {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(prefix))
    }
}

/// A persistent worker pool: `n` threads draining a shared job channel.
pub struct WorkerPool {
    tx: Mutex<Option<mpsc::Sender<Job>>>,
    workers: Mutex<Vec<thread::JoinHandle<()>>>,
    size: usize,
}

type Job = Box<dyn FnOnce() + Send + 'static>;

impl WorkerPool {
    /// Spawn a pool of `size` workers (`size` is clamped to at least 1).
    pub fn new(size: usize) -> WorkerPool {
        let size = size.max(1);
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let workers = (0..size)
            .map(|i| {
                let rx = Arc::clone(&rx);
                thread::Builder::new()
                    .name(format!("sqlengine-worker-{i}"))
                    .spawn(move || loop {
                        // Take the lock only to receive; run the job unlocked
                        // so other workers keep draining the channel. A
                        // poisoned lock just means some worker panicked while
                        // *receiving* (jobs run unlocked and are
                        // panic-caught); the channel itself is still sound.
                        let job = {
                            let guard = rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => job(),
                            Err(_) => break, // pool dropped
                        }
                    })
                    .expect("failed to spawn sqlengine worker thread")
            })
            .collect();
        WorkerPool {
            tx: Mutex::new(Some(tx)),
            workers: Mutex::new(workers),
            size,
        }
    }

    pub fn size(&self) -> usize {
        self.size
    }

    /// Run every job on the pool and return their results in submission
    /// order (this ordering is what makes parallel operators deterministic).
    /// A panicking job is resumed on the calling thread; the worker survives.
    pub fn run<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        let n = jobs.len();
        let (rtx, rrx) = mpsc::channel::<(usize, thread::Result<T>)>();
        {
            // Recover rather than propagate poisoning: the sender is only
            // cloned under this lock, so a panic elsewhere cannot have left
            // it half-updated.
            let guard = self.tx.lock().unwrap_or_else(|e| e.into_inner());
            let tx = guard.as_ref().expect("worker pool already shut down");
            for (i, job) in jobs.into_iter().enumerate() {
                let rtx = rtx.clone();
                tx.send(Box::new(move || {
                    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
                    let _ = rtx.send((i, result));
                }))
                .expect("worker pool hung up");
            }
        }
        drop(rtx);
        let mut out: Vec<Option<T>> = (0..n).map(|_| None).collect();
        for _ in 0..n {
            let (i, result) = rrx.recv().expect("worker dropped its result");
            match result {
                Ok(v) => out[i] = Some(v),
                Err(panic) => std::panic::resume_unwind(panic),
            }
        }
        out.into_iter()
            .map(|o| o.expect("every job reports exactly once"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's recv loop. Poisoned locks
        // are recovered, not propagated — panicking in drop aborts.
        self.tx.lock().unwrap_or_else(|e| e.into_inner()).take();
        let mut workers = self.workers.lock().unwrap_or_else(|e| e.into_inner());
        for handle in workers.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Per-query execution context: parallelism knob, shared pool, stats switch,
/// and the statement deadline.
#[derive(Clone)]
pub struct ExecContext {
    parallelism: usize,
    pool: Option<Arc<WorkerPool>>,
    collect_stats: bool,
    /// Absolute point after which execution aborts with
    /// [`EngineError::Timeout`]. Checked at operator dispatch and morsel
    /// boundaries; `None` disables the check.
    deadline: Option<Instant>,
    /// Per-statement memory budget charged by pipeline-breaking operators.
    /// Always present; defaults to an unlimited (peak-tracking) budget.
    budget: Arc<MemoryBudget>,
    /// Telemetry registry for the worker-idle wait rollup (`None` outside a
    /// [`Database`] statement or when telemetry is disabled, in which case
    /// `run_jobs` reads no clocks).
    ///
    /// [`Database`]: crate::Database
    telemetry: Option<Arc<crate::telemetry::Telemetry>>,
}

impl ExecContext {
    /// The exact serial executor (`parallelism = 1`): no pool, no chunking —
    /// byte-identical to the pre-refactor interpreter.
    pub fn serial() -> ExecContext {
        ExecContext {
            parallelism: 1,
            pool: None,
            collect_stats: false,
            deadline: None,
            budget: Arc::new(MemoryBudget::unlimited()),
            telemetry: None,
        }
    }

    /// A context owning its own pool of `parallelism` workers.
    pub fn new(parallelism: usize) -> ExecContext {
        let parallelism = parallelism.max(1);
        ExecContext {
            parallelism,
            pool: (parallelism > 1).then(|| Arc::new(WorkerPool::new(parallelism))),
            collect_stats: false,
            deadline: None,
            budget: Arc::new(MemoryBudget::unlimited()),
            telemetry: None,
        }
    }

    /// A context borrowing a long-lived pool (the [`Database`] path, so
    /// queries do not pay thread spawns).
    ///
    /// [`Database`]: crate::Database
    pub fn with_pool(parallelism: usize, pool: Arc<WorkerPool>) -> ExecContext {
        let parallelism = parallelism.max(1);
        ExecContext {
            pool: (parallelism > 1).then_some(pool),
            parallelism,
            collect_stats: false,
            deadline: None,
            budget: Arc::new(MemoryBudget::unlimited()),
            telemetry: None,
        }
    }

    /// Builder-style statement deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> ExecContext {
        self.deadline = Some(deadline);
        self
    }

    /// Builder-style memory budget (shared with the statement's bookkeeping
    /// so the engine can read the peak afterwards).
    pub fn with_budget(mut self, budget: Arc<MemoryBudget>) -> ExecContext {
        self.budget = budget;
        self
    }

    /// Builder-style telemetry handle: enables the `worker_idle` wait
    /// rollup around worker-pool fan-outs.
    pub fn with_telemetry(mut self, telemetry: Arc<crate::telemetry::Telemetry>) -> ExecContext {
        self.telemetry = Some(telemetry);
        self
    }

    /// The statement's memory budget; operators clone the `Arc` into morsel
    /// jobs.
    pub(crate) fn budget(&self) -> &Arc<MemoryBudget> {
        &self.budget
    }

    /// The statement deadline, if any (`Copy`, so morsel jobs can capture it
    /// into `'static` closures).
    pub(crate) fn deadline(&self) -> Option<Instant> {
        self.deadline
    }

    /// Error out if the statement deadline has passed.
    pub(crate) fn check_timeout(&self) -> Result<()> {
        check_deadline(self.deadline)
    }

    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    pub(crate) fn stats_enabled(&self) -> bool {
        self.collect_stats
    }

    /// Whether an operator over `n_rows` input rows should take its
    /// morsel-parallel path.
    pub(crate) fn should_parallelize(&self, n_rows: usize) -> bool {
        self.parallelism > 1 && self.pool.is_some() && n_rows >= PAR_ROW_THRESHOLD
    }

    /// Split `0..len` into morsel ranges for this context.
    pub(crate) fn morsels(&self, len: usize) -> Vec<Range<usize>> {
        morsel_ranges(len, self.parallelism * MORSELS_PER_WORKER)
    }

    /// Run chunk jobs on the pool, results in chunk order. When a telemetry
    /// handle is present, the coordinator's blocking time (submission
    /// through last result) is rolled up as `worker_idle` wait.
    pub(crate) fn run_jobs<T: Send + 'static>(
        &self,
        jobs: Vec<Box<dyn FnOnce() -> T + Send + 'static>>,
    ) -> Vec<T> {
        match &self.pool {
            Some(pool) if jobs.len() > 1 => {
                let timed = self.telemetry.as_deref().map(|t| (t, Instant::now()));
                let out = pool.run(jobs);
                if let Some((telemetry, start)) = timed {
                    telemetry.wait_worker_idle_us.record(start.elapsed());
                }
                out
            }
            _ => jobs.into_iter().map(|j| j()).collect(),
        }
    }

    /// Execute a plan to completion.
    pub fn execute(&self, plan: &PhysPlan) -> Result<Vec<Row>> {
        Ok(super::run(plan, self)?.0)
    }

    /// Execute a plan and collect the per-operator statistics tree
    /// (`EXPLAIN ANALYZE`).
    pub fn execute_with_stats(&self, plan: &PhysPlan) -> Result<(Vec<Row>, OpStats)> {
        let ctx = ExecContext {
            parallelism: self.parallelism,
            pool: self.pool.clone(),
            collect_stats: true,
            deadline: self.deadline,
            budget: Arc::clone(&self.budget),
            telemetry: self.telemetry.clone(),
        };
        let (rows, stats) = super::run(plan, &ctx)?;
        Ok((rows, stats.expect("stats were requested")))
    }
}

/// Free-function form of the deadline check, for morsel jobs that captured
/// `Option<Instant>` rather than a whole context.
pub(crate) fn check_deadline(deadline: Option<Instant>) -> Result<()> {
    match deadline {
        Some(d) if Instant::now() >= d => Err(EngineError::Timeout),
        _ => Ok(()),
    }
}

/// Split `0..len` into at most `max_chunks` contiguous ranges of near-equal
/// size. Never returns an empty range; returns a single range when `len` is
/// small.
pub(crate) fn morsel_ranges(len: usize, max_chunks: usize) -> Vec<Range<usize>> {
    if len == 0 {
        return std::iter::once(0..0).collect();
    }
    let chunks = max_chunks.clamp(1, len);
    let base = len / chunks;
    let extra = len % chunks; // first `extra` chunks get one more row
    let mut ranges = Vec::with_capacity(chunks);
    let mut start = 0;
    for i in 0..chunks {
        let size = base + usize::from(i < extra);
        ranges.push(start..start + size);
        start += size;
    }
    ranges
}

/// Per-stage counters accumulated by fused morsel pipelines; nanoseconds are
/// summed across workers with relaxed atomics (exact sums, racy only in
/// ordering, which does not matter for totals).
#[derive(Default)]
pub(crate) struct StageCounter {
    pub rows_in: AtomicU64,
    pub rows_out: AtomicU64,
    pub nanos: AtomicU64,
}

impl StageCounter {
    pub(crate) fn add(&self, rows_in: usize, rows_out: usize, nanos: u64) {
        self.rows_in.fetch_add(rows_in as u64, Ordering::Relaxed);
        self.rows_out.fetch_add(rows_out as u64, Ordering::Relaxed);
        self.nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> (usize, usize, Duration) {
        (
            self.rows_in.load(Ordering::Relaxed) as usize,
            self.rows_out.load(Ordering::Relaxed) as usize,
            Duration::from_nanos(self.nanos.load(Ordering::Relaxed)),
        )
    }
}

// The whole execution layer must be shareable across worker threads.
#[allow(dead_code)]
fn _assert_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<ExecContext>();
    assert::<WorkerPool>();
    assert::<OpStats>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsel_ranges_cover_exactly() {
        for len in [0usize, 1, 2, 7, 128, 1000, 1001] {
            for chunks in [1usize, 2, 3, 8, 16] {
                let ranges = morsel_ranges(len, chunks);
                assert!(!ranges.is_empty());
                let mut next = 0;
                for r in &ranges {
                    assert_eq!(r.start, next);
                    if len > 0 {
                        assert!(r.end > r.start, "empty morsel for len={len}");
                    }
                    next = r.end;
                }
                assert_eq!(next, len);
                assert!(ranges.len() <= chunks.max(1));
            }
        }
    }

    #[test]
    fn pool_runs_jobs_in_submission_order() {
        let pool = WorkerPool::new(4);
        let jobs: Vec<Box<dyn FnOnce() -> usize + Send>> = (0..64)
            .map(|i| {
                let f: Box<dyn FnOnce() -> usize + Send> = Box::new(move || i * i);
                f
            })
            .collect();
        let results = pool.run(jobs);
        assert_eq!(results, (0..64).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn budget_charges_and_tracks_peak() {
        let b = MemoryBudget::limited(1000);
        b.charge(400).unwrap();
        b.charge(500).unwrap();
        assert_eq!(b.peak_bytes(), 900);
        let err = b.charge(200).unwrap_err();
        assert!(matches!(err, EngineError::ResourceExhausted { .. }));
        assert!(err.is_retryable());
        // Peak keeps tracking past the failure point.
        assert_eq!(b.peak_bytes(), 1100);
    }

    #[test]
    fn unlimited_budget_never_fails() {
        let b = MemoryBudget::unlimited();
        b.charge(u64::MAX / 2).unwrap();
        assert_eq!(b.peak_bytes(), u64::MAX / 2);
    }

    #[test]
    fn charge_buf_flushes_at_granularity() {
        let b = MemoryBudget::limited(CHARGE_FLUSH_BYTES * 2);
        let mut buf = ChargeBuf::new(&b);
        // Stays local until the flush threshold trips.
        buf.add(CHARGE_FLUSH_BYTES - 1).unwrap();
        assert_eq!(b.peak_bytes(), 0);
        buf.add(1).unwrap();
        assert_eq!(b.peak_bytes(), CHARGE_FLUSH_BYTES);
        buf.add(5).unwrap();
        buf.flush().unwrap();
        assert_eq!(b.peak_bytes(), CHARGE_FLUSH_BYTES + 5);
    }

    #[test]
    fn pool_survives_panicking_job() {
        let pool = WorkerPool::new(2);
        let bad: Vec<Box<dyn FnOnce() -> usize + Send>> =
            vec![Box::new(|| panic!("job panic for test"))];
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| pool.run(bad)));
        assert!(caught.is_err());
        // The pool still works after a job panicked.
        let ok: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![Box::new(|| 7), Box::new(|| 35)];
        assert_eq!(pool.run(ok).iter().sum::<usize>(), 42);
    }
}
