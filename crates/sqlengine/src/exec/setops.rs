//! Set operations and row-count operators: `LIMIT`/`OFFSET`, `UNION ALL`,
//! `DISTINCT`.
//!
//! `DISTINCT` (which also implements `UNION` dedup — the planner lowers
//! `UNION` to `Distinct` over `UnionAll`) is hash-partitioned in parallel
//! mode: every row is hashed once with a fixed-seed hasher, each hash
//! partition is deduplicated by one worker, and the surviving first
//! occurrences are emitted in original input order — so the output is
//! identical to the serial path.

use std::collections::hash_map::DefaultHasher;
use std::collections::{HashMap, HashSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::Result;
use crate::plan::PhysPlan;
use crate::value::Row;

use super::context::{ChargeBuf, ChunkJob};
use super::{ExecContext, NodeOut, OpStats};

/// `LIMIT`/`OFFSET`. The window is taken in place (drain the offset prefix,
/// truncate the tail) instead of cloning `rows[start..end]`. When the child
/// is a `Sort` and a limit is present, the sort runs as top-k: it only ever
/// produces the first `offset + limit` rows.
pub(crate) fn limit(
    input: &PhysPlan,
    limit: Option<usize>,
    offset: usize,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let (mut rows, rows_in, children) = match (input, limit) {
        (PhysPlan::Sort { .. }, Some(l)) => {
            let (rows, stats) = super::sort::top_k(input, offset + l, ctx)?;
            let rows_in = rows.len();
            (rows, rows_in, stats.into_iter().collect())
        }
        _ => {
            let mut children = Vec::new();
            let mut rows_in = 0usize;
            let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;
            (super::into_owned(shared), rows_in, children)
        }
    };

    if let Some(l) = limit {
        rows.truncate((offset + l).min(rows.len()));
    }
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    Ok(NodeOut {
        rows,
        rows_in,
        workers: 1,
        children,
    })
}

pub(crate) fn union_all(inputs: &[PhysPlan], ctx: &ExecContext) -> Result<NodeOut> {
    // Children run serially: a child operator may itself fan out to the
    // shared pool, and nesting run_jobs inside a pool job would deadlock.
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let mut out = Vec::new();
    // UNION ALL concatenates fully-materialized child outputs; this is also
    // the operator that materializes batched-predict literal item tables
    // (inlined `VALUES`-style CTEs of one literal SELECT per item), so the
    // accumulated output is charged against the statement budget.
    let mut charge = ChargeBuf::new(ctx.budget());
    for input in inputs {
        let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;
        let owned = super::into_owned(shared);
        for row in &owned {
            charge.add_row(row)?;
        }
        charge.flush()?;
        if out.is_empty() {
            out = owned;
        } else {
            out.extend(owned);
        }
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}

pub(crate) fn distinct(input: &PhysPlan, ctx: &ExecContext) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;

    if ctx.should_parallelize(shared.len()) {
        return parallel_distinct(shared, rows_in, children, ctx);
    }
    let rows = super::into_owned(shared);
    let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
    let mut out = Vec::new();
    let mut charge = ChargeBuf::new(ctx.budget());
    for row in rows {
        // The dedup set holds a full copy of every kept row.
        charge.add_row(&row)?;
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    charge.flush()?;
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}

/// Hash-partitioned parallel DISTINCT.
///
/// Phase 1 hashes every row morsel-parallel with a fixed-seed hasher (all
/// workers agree on partition assignment). Phase 2 hands each of
/// `parallelism` hash partitions to one worker, which walks the partition in
/// input order and keeps the index of the first occurrence of every distinct
/// row (bucketed by full hash; collisions resolved by row equality).
/// Partitions are disjoint, so concatenating the kept indexes and sorting
/// restores the global first-occurrence order the serial path emits.
fn parallel_distinct(
    shared: Arc<Vec<Row>>,
    rows_in: usize,
    children: Vec<OpStats>,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let hash_jobs: Vec<ChunkJob<Vec<u64>>> = ctx
        .morsels(shared.len())
        .into_iter()
        .map(|range| {
            let rows = Arc::clone(&shared);
            let job: ChunkJob<Vec<u64>> =
                Box::new(move || rows[range].iter().map(row_hash).collect());
            job
        })
        .collect();
    let mut hashes = Vec::with_capacity(shared.len());
    for chunk in ctx.run_jobs(hash_jobs) {
        hashes.extend(chunk);
    }
    // Hash vector (8B each) plus the per-partition dedup buckets, which hold
    // two usize indexes per surviving row in the worst case.
    ctx.budget().charge(24 * hashes.len() as u64)?;
    let hashes = Arc::new(hashes);

    let nparts = ctx.parallelism();
    let part_jobs: Vec<ChunkJob<Vec<usize>>> = (0..nparts)
        .map(|p| {
            let rows = Arc::clone(&shared);
            let hashes = Arc::clone(&hashes);
            let job: ChunkJob<Vec<usize>> = Box::new(move || {
                let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
                let mut kept = Vec::new();
                for (i, &h) in hashes.iter().enumerate() {
                    if (h as usize) % nparts != p {
                        continue;
                    }
                    let bucket = buckets.entry(h).or_default();
                    if bucket.iter().all(|&j| rows[j] != rows[i]) {
                        bucket.push(i);
                        kept.push(i);
                    }
                }
                kept
            });
            job
        })
        .collect();
    let mut kept: Vec<usize> = Vec::new();
    for part in ctx.run_jobs(part_jobs) {
        kept.extend(part);
    }
    kept.sort_unstable();

    let mut rows = super::into_owned(shared);
    let out = kept
        .into_iter()
        .map(|i| std::mem::take(&mut rows[i]))
        .collect();
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: ctx.parallelism(),
        children,
    })
}

/// Fixed-seed row hash (`DefaultHasher::new()` uses fixed keys), so every
/// worker computes identical partition assignments.
fn row_hash(row: &Row) -> u64 {
    let mut h = DefaultHasher::new();
    row.hash(&mut h);
    h.finish()
}
