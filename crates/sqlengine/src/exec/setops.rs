//! Set operations and row-count operators: `LIMIT`/`OFFSET`, `UNION ALL`,
//! `DISTINCT`.

use std::collections::HashSet;

use crate::error::Result;
use crate::plan::PhysPlan;
use crate::value::Row;

use super::{ExecContext, NodeOut};

/// `LIMIT`/`OFFSET`. The window is taken in place (drain the offset prefix,
/// truncate the tail) instead of cloning `rows[start..end]`. When the child
/// is a `Sort` and a limit is present, the sort runs as top-k: it only ever
/// produces the first `offset + limit` rows.
pub(crate) fn limit(
    input: &PhysPlan,
    limit: Option<usize>,
    offset: usize,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let (mut rows, rows_in, children) = match (input, limit) {
        (PhysPlan::Sort { .. }, Some(l)) => {
            let (rows, stats) = super::sort::top_k(input, offset + l, ctx)?;
            let rows_in = rows.len();
            (rows, rows_in, stats.into_iter().collect())
        }
        _ => {
            let mut children = Vec::new();
            let mut rows_in = 0usize;
            let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;
            (super::into_owned(shared), rows_in, children)
        }
    };

    if let Some(l) = limit {
        rows.truncate((offset + l).min(rows.len()));
    }
    if offset > 0 {
        rows.drain(..offset.min(rows.len()));
    }
    Ok(NodeOut {
        rows,
        rows_in,
        workers: 1,
        children,
    })
}

pub(crate) fn union_all(inputs: &[PhysPlan], ctx: &ExecContext) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let mut out = Vec::new();
    for input in inputs {
        let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;
        let owned = super::into_owned(shared);
        if out.is_empty() {
            out = owned;
        } else {
            out.extend(owned);
        }
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}

pub(crate) fn distinct(input: &PhysPlan, ctx: &ExecContext) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;
    let rows = super::into_owned(shared);
    let mut seen: HashSet<Row> = HashSet::with_capacity(rows.len());
    let mut out = Vec::new();
    for row in rows {
        if seen.insert(row.clone()) {
            out.push(row);
        }
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}
