//! Sort, top-k (`ORDER BY ... LIMIT`), and window ranking.
//!
//! Sorting is morsel-parallel end to end: per-row key evaluation fans out
//! over morsels, each worker sorts one run, and the sorted runs are combined
//! by pairwise parallel merge rounds. The comparator ties on original row
//! index, making it a *total* order — no two elements compare equal — so the
//! merge is unambiguous and the parallel result is identical to the serial
//! stable sort. Top-k avoids the full sort with a `select_nth_unstable_by`
//! partition followed by sorting just the head — the same index tiebreak
//! makes the head exactly the first k rows the stable full sort would
//! produce.

use std::sync::Arc;
use std::time::Instant;

use crate::ast::WindowFunc;
use crate::error::Result;
use crate::explain::op_label;
use crate::expr::PhysExpr;
use crate::plan::PhysPlan;
use crate::value::{Row, Value};

use super::context::{approx_row_bytes, ChargeBuf, ChunkJob};
use super::{ExecContext, NodeOut, OpStats};

/// Evaluate sort keys for every row, morsel-parallel when worthwhile.
fn eval_keys(
    rows: &Arc<Vec<Row>>,
    keys: &[(PhysExpr, bool)],
    ctx: &ExecContext,
) -> Result<Vec<Vec<Value>>> {
    if ctx.should_parallelize(rows.len()) {
        let exprs: Arc<Vec<PhysExpr>> = Arc::new(keys.iter().map(|(e, _)| e.clone()).collect());
        let jobs: Vec<ChunkJob<Result<Vec<Vec<Value>>>>> = ctx
            .morsels(rows.len())
            .into_iter()
            .map(|range| {
                let rows = Arc::clone(rows);
                let exprs = Arc::clone(&exprs);
                let budget = Arc::clone(ctx.budget());
                let job: ChunkJob<Result<Vec<Vec<Value>>>> = Box::new(move || {
                    let mut out = Vec::with_capacity(range.len());
                    let mut charge = ChargeBuf::new(&budget);
                    for row in &rows[range] {
                        let mut kv = Vec::with_capacity(exprs.len());
                        for e in exprs.iter() {
                            kv.push(e.eval(row)?);
                        }
                        charge.add(approx_row_bytes(&kv) + 8)?;
                        out.push(kv);
                    }
                    charge.flush()?;
                    Ok(out)
                });
                job
            })
            .collect();
        let mut out = Vec::with_capacity(rows.len());
        for chunk in ctx.run_jobs(jobs) {
            out.extend(chunk?);
        }
        Ok(out)
    } else {
        let mut out = Vec::with_capacity(rows.len());
        let mut charge = ChargeBuf::new(ctx.budget());
        for row in rows.iter() {
            let mut kv = Vec::with_capacity(keys.len());
            for (expr, _) in keys {
                kv.push(expr.eval(row)?);
            }
            charge.add(approx_row_bytes(&kv) + 8)?;
            out.push(kv);
        }
        charge.flush()?;
        Ok(out)
    }
}

/// Total-order comparator over (key values, original index). The index
/// tiebreak reproduces stable-sort semantics even through unstable
/// selection/sorting.
fn cmp_keyed(
    keys: &[(PhysExpr, bool)],
    (ka, ia): &(Vec<Value>, usize),
    (kb, ib): &(Vec<Value>, usize),
) -> std::cmp::Ordering {
    for (i, (_, desc)) in keys.iter().enumerate() {
        let ord = ka[i].total_cmp(&kb[i]);
        let ord = if *desc { ord.reverse() } else { ord };
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    ia.cmp(ib)
}

pub(crate) fn sort(
    input: &PhysPlan,
    keys: &[(PhysExpr, bool)],
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;

    let parallel = ctx.should_parallelize(shared.len());
    let key_values = eval_keys(&shared, keys, ctx)?;
    let mut keyed: Vec<(Vec<Value>, usize)> = key_values
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    if parallel {
        keyed = parallel_sort(keyed, keys, ctx);
    } else {
        keyed.sort_by(|a, b| cmp_keyed(keys, a, b));
    }

    let mut rows = super::into_owned(shared);
    let mut out = Vec::with_capacity(rows.len());
    for (_, i) in keyed {
        out.push(std::mem::take(&mut rows[i]));
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: if parallel { ctx.parallelism() } else { 1 },
        children,
    })
}

type Keyed = (Vec<Value>, usize);

/// Parallel sort: one run per worker sorted on the pool, then pairwise
/// parallel merge rounds. Because [`cmp_keyed`] is a total order (index
/// tiebreak), `sort_unstable_by` inside a run and the two-way merges both
/// reproduce the serial stable sort exactly.
fn parallel_sort(
    mut keyed: Vec<Keyed>,
    keys: &[(PhysExpr, bool)],
    ctx: &ExecContext,
) -> Vec<Keyed> {
    let keys: Arc<Vec<(PhysExpr, bool)>> = Arc::new(keys.to_vec());
    // One run per worker (not per morsel): fewer, larger runs keep the merge
    // tree shallow, and run sorting is already load-balanced by size.
    let mut runs: Vec<Vec<Keyed>> = super::context::morsel_ranges(keyed.len(), ctx.parallelism())
        .into_iter()
        .rev()
        .map(|range| keyed.split_off(range.start))
        .collect();
    runs.reverse();
    let jobs: Vec<ChunkJob<Vec<Keyed>>> = runs
        .into_iter()
        .map(|mut run| {
            let keys = Arc::clone(&keys);
            let job: ChunkJob<Vec<Keyed>> = Box::new(move || {
                run.sort_unstable_by(|a, b| cmp_keyed(&keys, a, b));
                run
            });
            job
        })
        .collect();
    let mut runs = ctx.run_jobs(jobs);
    while runs.len() > 1 {
        let mut jobs: Vec<ChunkJob<Vec<Keyed>>> = Vec::with_capacity(runs.len().div_ceil(2));
        let mut iter = runs.into_iter();
        while let Some(a) = iter.next() {
            let job: ChunkJob<Vec<Keyed>> = match iter.next() {
                Some(b) => {
                    let keys = Arc::clone(&keys);
                    Box::new(move || merge_runs(a, b, &keys))
                }
                None => Box::new(move || a),
            };
            jobs.push(job);
        }
        runs = ctx.run_jobs(jobs);
    }
    runs.pop().unwrap_or_default()
}

/// Two-way merge of sorted runs under the total order.
fn merge_runs(a: Vec<Keyed>, b: Vec<Keyed>, keys: &[(PhysExpr, bool)]) -> Vec<Keyed> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let mut a = a.into_iter().peekable();
    let mut b = b.into_iter().peekable();
    loop {
        match (a.peek(), b.peek()) {
            (Some(x), Some(y)) => {
                if cmp_keyed(keys, x, y) == std::cmp::Ordering::Greater {
                    out.push(b.next().expect("peeked"));
                } else {
                    out.push(a.next().expect("peeked"));
                }
            }
            (Some(_), None) => out.push(a.next().expect("peeked")),
            (None, Some(_)) => out.push(b.next().expect("peeked")),
            (None, None) => break,
        }
    }
    out
}

/// `ORDER BY ... LIMIT`: return only the first `k` rows of the sort, found by
/// partition-selection instead of a full sort. Called by the `Limit`
/// operator; `plan` must be the `Sort` node, and the returned stats (when
/// collected) describe it.
pub(crate) fn top_k(
    plan: &PhysPlan,
    k: usize,
    ctx: &ExecContext,
) -> Result<(Vec<Row>, Option<OpStats>)> {
    let PhysPlan::Sort { input, keys } = plan else {
        unreachable!("top_k is only called on Sort nodes");
    };
    let start = ctx.stats_enabled().then(Instant::now);
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let shared = super::run_input(input, ctx, &mut children, &mut rows_in)?;

    let key_values = eval_keys(&shared, keys, ctx)?;
    let mut keyed: Vec<(Vec<Value>, usize)> = key_values
        .into_iter()
        .enumerate()
        .map(|(i, k)| (k, i))
        .collect();
    if k < keyed.len() && k > 0 {
        keyed.select_nth_unstable_by(k - 1, |a, b| cmp_keyed(keys, a, b));
        keyed.truncate(k);
    }
    keyed.sort_by(|a, b| cmp_keyed(keys, a, b));
    if k == 0 {
        keyed.clear();
    }

    let mut rows = super::into_owned(shared);
    let mut out = Vec::with_capacity(keyed.len());
    for (_, i) in keyed {
        out.push(std::mem::take(&mut rows[i]));
    }
    let stats = start.map(|t| OpStats {
        label: format!("{} (top-k, k={k})", op_label(plan)),
        rows_in,
        rows_out: out.len(),
        elapsed: t.elapsed(),
        workers: 1,
        morsels: 1,
        mem_bytes: 0,
        children,
    });
    Ok((out, stats))
}

pub(crate) fn window_rank(
    input: &PhysPlan,
    func: WindowFunc,
    partition: &[PhysExpr],
    order: &[(PhysExpr, bool)],
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let rows = super::run_input(input, ctx, &mut children, &mut rows_in)?;

    // (partition key, order key, original index)
    let mut keyed: Vec<(Vec<Value>, Vec<Value>, usize)> = Vec::with_capacity(rows.len());
    let mut charge = ChargeBuf::new(ctx.budget());
    for (i, row) in rows.iter().enumerate() {
        let mut pk = Vec::with_capacity(partition.len());
        for p in partition {
            pk.push(p.eval(row)?);
        }
        let mut ok = Vec::with_capacity(order.len());
        for (e, _) in order {
            ok.push(e.eval(row)?);
        }
        charge.add(approx_row_bytes(&pk) + approx_row_bytes(&ok) + 8)?;
        keyed.push((pk, ok, i));
    }
    charge.flush()?;
    let cmp_order = |oa: &[Value], ob: &[Value]| {
        for (i, (_, desc)) in order.iter().enumerate() {
            let ord = oa[i].total_cmp(&ob[i]);
            let ord = if *desc { ord.reverse() } else { ord };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    };
    keyed.sort_by(|(pa, oa, ia), (pb, ob, ib)| {
        for (x, y) in pa.iter().zip(pb) {
            let ord = x.total_cmp(y);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        cmp_order(oa, ob).then(ia.cmp(ib))
    });
    let mut out = vec![Vec::new(); rows.len()];
    let mut row_number = 0i64; // position within partition
    let mut rank = 0i64; // RANK (with gaps)
    let mut dense = 0i64; // DENSE_RANK
    let mut prev_partition: Option<&Vec<Value>> = None;
    let mut prev_order: Option<&Vec<Value>> = None;
    for (pk, ok, i) in &keyed {
        let same_partition = prev_partition == Some(pk);
        if same_partition {
            row_number += 1;
            let tie = prev_order
                .map(|po| cmp_order(po, ok) == std::cmp::Ordering::Equal)
                .unwrap_or(false);
            if !tie {
                rank = row_number;
                dense += 1;
            }
        } else {
            row_number = 1;
            rank = 1;
            dense = 1;
        }
        prev_partition = Some(pk);
        prev_order = Some(ok);
        let value = match func {
            WindowFunc::RowNumber => row_number,
            WindowFunc::Rank => rank,
            WindowFunc::DenseRank => dense,
        };
        let mut row = rows[*i].clone();
        row.push(Value::Int(value));
        out[*i] = row;
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}
