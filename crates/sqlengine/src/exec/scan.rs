//! Scan-side operators: chunked Filter/Project morsel pipelines.
//!
//! Consecutive `Filter`/`Project` nodes over a common source are executed as
//! one fused pipeline: the source is materialized (or borrowed straight from
//! the base-table snapshot), then every morsel of it flows through all
//! stages before the next morsel starts. In parallel mode the morsels are
//! processed by the worker pool; per-stage row counters and (when
//! `EXPLAIN ANALYZE` runs) per-stage worker time are accumulated so the
//! stats tree still reports each operator individually.

use std::sync::Arc;
use std::time::Instant;

use crate::error::Result;
use crate::explain::op_label;
use crate::expr::PhysExpr;
use crate::plan::PhysPlan;
use crate::value::{Row, Value};

use super::context::{ChunkJob, StageCounter};
use super::{ExecContext, NodeOut, OpStats};

/// One owned stage of a fused pipeline (owned so morsel jobs are `'static`;
/// the clone happens once per operator per query, not per row). Shared with
/// the vectorized kernels in [`super::vector`], which run the same stages
/// over columnar chunks.
pub(super) enum StageSpec {
    Filter(PhysExpr),
    Project(Vec<PhysExpr>),
}

/// A morsel flowing between pipeline stages. Filters over a shared source
/// keep row *references* — nothing is cloned until a `Project` rebuilds the
/// rows or the morsel is materialized at the end of the pipeline. This makes
/// the common `Scan → Filter → Project` shape clone-free on the parallel
/// path, matching the move-only serial path's allocation behaviour.
enum Morsel<'a> {
    Borrowed(Vec<&'a Row>),
    Owned(Vec<Row>),
}

impl Morsel<'_> {
    fn len(&self) -> usize {
        match self {
            Morsel::Borrowed(refs) => refs.len(),
            Morsel::Owned(rows) => rows.len(),
        }
    }

    /// Materialize the morsel; clones only if no stage ever owned the rows
    /// (i.e. a filter-only pipeline over a shared source).
    fn into_rows(self) -> Vec<Row> {
        match self {
            Morsel::Borrowed(refs) => refs.into_iter().cloned().collect(),
            Morsel::Owned(rows) => rows,
        }
    }
}

impl StageSpec {
    pub(super) fn of(node: &PhysPlan) -> StageSpec {
        match node {
            PhysPlan::Filter { predicate, .. } => StageSpec::Filter(predicate.clone()),
            PhysPlan::Project { exprs, .. } => StageSpec::Project(exprs.clone()),
            _ => unreachable!("pipeline stages are Filter/Project only"),
        }
    }

    /// First stage: read from the shared source slice.
    fn apply_slice<'a>(&self, rows: &'a [Row]) -> Result<Morsel<'a>> {
        match self {
            StageSpec::Filter(pred) => {
                let mut out = Vec::new();
                for row in rows {
                    if pred.eval(row)?.as_bool()? == Some(true) {
                        out.push(row);
                    }
                }
                Ok(Morsel::Borrowed(out))
            }
            StageSpec::Project(exprs) => {
                let mut out = Vec::with_capacity(rows.len());
                project_into(rows, exprs, &mut out)?;
                Ok(Morsel::Owned(out))
            }
        }
    }

    /// Later stages: consume the morsel produced by the previous stage.
    fn apply<'a>(&self, morsel: Morsel<'a>) -> Result<Morsel<'a>> {
        match (self, morsel) {
            (StageSpec::Filter(pred), Morsel::Borrowed(refs)) => {
                let mut out = Vec::new();
                for row in refs {
                    if pred.eval(row)?.as_bool()? == Some(true) {
                        out.push(row);
                    }
                }
                Ok(Morsel::Borrowed(out))
            }
            (StageSpec::Filter(pred), Morsel::Owned(rows)) => {
                Ok(Morsel::Owned(filter_owned(rows, pred)?))
            }
            (StageSpec::Project(exprs), Morsel::Borrowed(refs)) => {
                // Column-only projections skip expression dispatch and clone
                // exactly the referenced columns.
                if let Some(cols) = column_only(exprs) {
                    let out = refs
                        .into_iter()
                        .map(|row| cols.iter().map(|&i| row[i].clone()).collect())
                        .collect();
                    return Ok(Morsel::Owned(out));
                }
                let mut out = Vec::with_capacity(refs.len());
                let mut scratch: Vec<Value> = Vec::with_capacity(exprs.len());
                for row in refs {
                    for e in exprs {
                        scratch.push(e.eval(row)?);
                    }
                    out.push(scratch.split_off(0));
                }
                Ok(Morsel::Owned(out))
            }
            (StageSpec::Project(exprs), Morsel::Owned(rows)) => {
                Ok(Morsel::Owned(project_owned(rows, exprs)?))
            }
        }
    }
}

/// Point / multi-point index lookup: fetch the rows stored under each literal
/// key tuple. Key tuples containing NULL are skipped (`col = NULL` and
/// `col IN (..., NULL, ...)` never match), and the fetched row indexes are
/// sorted and deduplicated so the output preserves table order — exactly the
/// rows a full scan + filter would produce, in the same order.
pub(crate) fn index_scan(
    rows: &Arc<Vec<Row>>,
    index: &crate::plan::IndexRef,
    keys: &[Vec<Value>],
) -> NodeOut {
    let mut idxs: Vec<usize> = Vec::new();
    for key in keys {
        if key.iter().any(Value::is_null) {
            continue;
        }
        index.lookup_into(key, &mut idxs);
    }
    idxs.sort_unstable();
    idxs.dedup();
    let out: Vec<Row> = idxs.iter().map(|&i| rows[i].clone()).collect();
    NodeOut::new(out)
}

/// Walk a chain of `Filter`/`Project` nodes down to its source. Returns the
/// stage nodes innermost-first plus the source plan.
pub(super) fn collect_chain(mut plan: &PhysPlan) -> (Vec<&PhysPlan>, &PhysPlan) {
    let mut nodes = Vec::new();
    while let PhysPlan::Filter { input, .. } | PhysPlan::Project { input, .. } = plan {
        nodes.push(plan);
        plan = input;
    }
    nodes.reverse();
    (nodes, plan)
}

/// Execute the Filter/Project chain rooted at `plan`.
///
/// When the source scan carries a columnar chunk slot, the eligible
/// innermost stages run vectorized first ([`super::vector::prefix_run`]);
/// any remaining stages continue on the row machinery below, consuming the
/// prefix output. Stage counters are shared across both halves, so the
/// `EXPLAIN ANALYZE` stats are identical in shape to the pure row path.
pub(crate) fn run_pipeline(plan: &PhysPlan, ctx: &ExecContext) -> Result<NodeOut> {
    let (nodes, source) = collect_chain(plan);
    let n_stages = nodes.len();

    let counters: Arc<Vec<StageCounter>> =
        Arc::new((0..n_stages).map(|_| StageCounter::default()).collect());
    let timed = ctx.stats_enabled();
    let deadline = ctx.deadline();

    let mut children = Vec::new();
    let mut source_count = 0usize;
    let (source_rows, first_row_stage, prefix_parallel) =
        match super::vector::prefix_run(&nodes, source, &counters, ctx)? {
            Some(out) => {
                if timed {
                    children.push(OpStats::leaf(op_label(source), out.source_rows));
                }
                (Arc::new(out.rows), out.stages_done, out.parallel)
            }
            None => {
                let rows = super::run_input(source, ctx, &mut children, &mut source_count)?;
                (rows, 0, false)
            }
        };

    let remaining = &nodes[first_row_stage..];
    let source_len = source_rows.len();
    let mut parallel = prefix_parallel;
    let rows = if remaining.is_empty() {
        super::into_owned(source_rows)
    } else if ctx.should_parallelize(source_rows.len()) {
        parallel = true;
        let specs: Arc<Vec<StageSpec>> =
            Arc::new(remaining.iter().map(|n| StageSpec::of(n)).collect());
        let jobs: Vec<ChunkJob<Result<Vec<Row>>>> = ctx
            .morsels(source_rows.len())
            .into_iter()
            .map(|range| {
                let specs = Arc::clone(&specs);
                let counters = Arc::clone(&counters);
                let source = Arc::clone(&source_rows);
                let job: ChunkJob<Result<Vec<Row>>> = Box::new(move || {
                    run_morsel(
                        &source[range],
                        &specs,
                        &counters[first_row_stage..],
                        timed,
                        deadline,
                    )
                });
                job
            })
            .collect();
        let mut rows = Vec::new();
        for chunk in ctx.run_jobs(jobs) {
            rows.extend(chunk?);
        }
        rows
    } else {
        // Serial path: stage-at-a-time over the whole input, moving rows
        // between stages exactly like the original interpreter. When the
        // source is an intermediate result (sole owner), unwrap the Arc so
        // the first stage moves rows too instead of cloning survivors.
        let specs: Vec<StageSpec> = remaining.iter().map(|n| StageSpec::of(n)).collect();
        if Arc::strong_count(&source_rows) == 1 {
            run_chain_owned(
                super::into_owned(source_rows),
                &specs,
                &counters[first_row_stage..],
                timed,
                deadline,
            )?
        } else {
            run_morsel(
                &source_rows,
                &specs,
                &counters[first_row_stage..],
                timed,
                deadline,
            )?
        }
    };

    // Assemble per-stage stats for every stage but the outermost (which the
    // dispatcher wraps with wall-clock time).
    let workers = if parallel { ctx.parallelism() } else { 1 };
    let morsels = if parallel {
        ctx.morsels(source_len).len()
    } else {
        1
    };
    if ctx.stats_enabled() {
        for (i, node) in nodes.iter().enumerate().take(n_stages - 1) {
            let (rows_in, rows_out, elapsed) = counters[i].snapshot();
            children = vec![OpStats {
                label: op_label(node),
                rows_in,
                rows_out,
                elapsed,
                // Inner fused stages run on the same morsel workers as the
                // outermost stage.
                workers,
                morsels,
                mem_bytes: 0,
                children: std::mem::take(&mut children),
            }];
        }
    }
    let rows_in = counters[n_stages - 1].snapshot().0;
    Ok(NodeOut {
        rows,
        rows_in,
        workers,
        children,
    })
}

/// Push one morsel through every stage. The first stage reads the shared
/// slice; later stages consume the previous stage's output in place.
fn run_morsel(
    source: &[Row],
    specs: &[StageSpec],
    counters: &[StageCounter],
    timed: bool,
    deadline: Option<Instant>,
) -> Result<Vec<Row>> {
    let mut cur: Option<Morsel> = None;
    for (spec, counter) in specs.iter().zip(counters) {
        super::context::check_deadline(deadline)?;
        let started = timed.then(Instant::now);
        let (rows_in, out) = match cur.take() {
            None => (source.len(), spec.apply_slice(source)?),
            Some(morsel) => (morsel.len(), spec.apply(morsel)?),
        };
        let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
        counter.add(rows_in, out.len(), nanos);
        cur = Some(out);
    }
    Ok(cur.expect("pipeline has at least one stage").into_rows())
}

/// Serial variant of [`run_morsel`] that owns its input outright, so every
/// stage (including the first) moves rows instead of cloning them.
fn run_chain_owned(
    rows: Vec<Row>,
    specs: &[StageSpec],
    counters: &[StageCounter],
    timed: bool,
    deadline: Option<Instant>,
) -> Result<Vec<Row>> {
    let mut cur = rows;
    for (spec, counter) in specs.iter().zip(counters) {
        super::context::check_deadline(deadline)?;
        let started = timed.then(Instant::now);
        let rows_in = cur.len();
        cur = match spec.apply(Morsel::Owned(cur))? {
            Morsel::Owned(rows) => rows,
            Morsel::Borrowed(_) => unreachable!("owned morsels stay owned"),
        };
        let nanos = started.map_or(0, |t| t.elapsed().as_nanos() as u64);
        counter.add(rows_in, cur.len(), nanos);
    }
    Ok(cur)
}

/// Filter owned rows, moving survivors (the original serial behaviour).
pub(crate) fn filter_owned(rows: Vec<Row>, predicate: &PhysExpr) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    for row in rows {
        if predicate.eval(&row)?.as_bool()? == Some(true) {
            out.push(row);
        }
    }
    Ok(out)
}

/// If every projection expression is a bare column reference, return the
/// column indices.
fn column_only(exprs: &[PhysExpr]) -> Option<Vec<usize>> {
    exprs
        .iter()
        .map(|e| match e {
            PhysExpr::Column(i) => Some(*i),
            _ => None,
        })
        .collect()
}

/// Project a shared slice into `out`.
///
/// Pure-column projections skip expression evaluation entirely; general
/// expression lists are evaluated through one reused scratch buffer instead
/// of allocating a fresh working `Vec` per row.
pub(crate) fn project_into(rows: &[Row], exprs: &[PhysExpr], out: &mut Vec<Row>) -> Result<()> {
    out.reserve(rows.len());
    if let Some(cols) = column_only(exprs) {
        for row in rows {
            out.push(cols.iter().map(|&i| row[i].clone()).collect());
        }
        return Ok(());
    }
    let mut scratch: Vec<Value> = Vec::with_capacity(exprs.len());
    for row in rows {
        for e in exprs {
            scratch.push(e.eval(row)?);
        }
        out.push(scratch.split_off(0));
    }
    Ok(())
}

/// Project owned rows without cloning pass-through columns: non-column
/// expressions are evaluated first against the intact row, then each
/// bare-column output slot takes its value by *move* on that column's last
/// reference (earlier duplicate references clone). `SELECT` lists that only
/// reorder or narrow columns — including the planner's hidden-sort-column
/// strip — clone no values at all.
pub(crate) fn project_owned(rows: Vec<Row>, exprs: &[PhysExpr]) -> Result<Vec<Row>> {
    let col_slots: Vec<Option<usize>> = exprs
        .iter()
        .map(|e| match e {
            PhysExpr::Column(i) => Some(*i),
            _ => None,
        })
        .collect();
    let movable: Vec<bool> = col_slots
        .iter()
        .enumerate()
        .map(|(j, c)| c.is_some() && !col_slots[j + 1..].contains(c))
        .collect();
    let mut out = Vec::with_capacity(rows.len());
    let mut scratch: Vec<Value> = Vec::with_capacity(exprs.len());
    for mut row in rows {
        for (j, e) in exprs.iter().enumerate() {
            scratch.push(match col_slots[j] {
                Some(_) => Value::Null, // filled by the move pass below
                None => e.eval(&row)?,
            });
        }
        for (j, c) in col_slots.iter().enumerate() {
            if let Some(i) = c {
                scratch[j] = if movable[j] {
                    std::mem::replace(&mut row[*i], Value::Null)
                } else {
                    row[*i].clone()
                };
            }
        }
        out.push(scratch.split_off(0));
    }
    Ok(out)
}
