//! Join operators: hash join (serial and partitioned-parallel), sort-merge
//! join, and nested-loop join.
//!
//! The parallel hash join runs in three phases: (1) morsel-parallel key
//! extraction over the build (right) side, (2) one build job per partition
//! (`hash(key) % P`) assembling that partition's table in original row
//! order, (3) morsel-parallel probe over the left side. Because every probe
//! chunk preserves left order and match lists preserve right order, the
//! concatenated output is identical to the serial join's output.

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::ast::JoinKind;
use crate::error::Result;
use crate::expr::PhysExpr;
use crate::plan::PhysPlan;
use crate::value::{Row, Value};

use super::context::{approx_row_bytes, ChargeBuf, ChunkJob, MemoryBudget};
use super::{ExecContext, NodeOut};

/// Hash of an equi-join key. `DefaultHasher::new()` is deterministic within
/// a process, so build and probe agree on partition assignment.
/// A build-side row reduced to (key hash, key values, original index).
type KeyedRow = (u64, Vec<Value>, usize);

fn hash_key(key: &[Value]) -> u64 {
    let mut h = std::collections::hash_map::DefaultHasher::new();
    key.hash(&mut h);
    h.finish()
}

/// Evaluate join-key expressions for one row; `None` when any key is NULL
/// (NULL never matches an equi-join key).
fn eval_key(row: &[Value], keys: &[PhysExpr]) -> Result<Option<Vec<Value>>> {
    let mut out = Vec::with_capacity(keys.len());
    for k in keys {
        let v = k.eval(row)?;
        if v.is_null() {
            return Ok(None);
        }
        out.push(v);
    }
    Ok(Some(out))
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn hash_join(
    left: &PhysPlan,
    right: &PhysPlan,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let left_rows = super::run_input(left, ctx, &mut children, &mut rows_in)?;
    let right_rows = super::run_input(right, ctx, &mut children, &mut rows_in)?;

    let parallel = ctx.should_parallelize(left_rows.len().max(right_rows.len()));
    let rows = if parallel {
        parallel_hash_join(
            left_rows,
            right_rows,
            left_keys,
            right_keys,
            kind,
            right_width,
            residual,
            ctx,
        )?
    } else {
        serial_hash_join(
            &left_rows,
            &right_rows,
            left_keys,
            right_keys,
            kind,
            right_width,
            residual,
            ctx.budget(),
        )?
    };
    Ok(NodeOut {
        rows,
        rows_in,
        workers: if parallel { ctx.parallelism() } else { 1 },
        children,
    })
}

#[allow(clippy::too_many_arguments)]
fn serial_hash_join(
    left_rows: &[Row],
    right_rows: &[Row],
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
    budget: &MemoryBudget,
) -> Result<Vec<Row>> {
    // Build on the right side, probe with the left (preserves left order,
    // which also gives LEFT JOIN for free). The table is pre-sized from the
    // build side's row count.
    let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(right_rows.len());
    let mut charge = ChargeBuf::new(budget);
    for (i, row) in right_rows.iter().enumerate() {
        if let Some(key) = eval_key(row, right_keys)? {
            // The build table owns the key values plus one index per row.
            charge.add(approx_row_bytes(&key) + std::mem::size_of::<usize>() as u64)?;
            table.entry(key).or_default().push(i);
        }
    }
    charge.flush()?;

    let mut out = Vec::new();
    for lrow in left_rows {
        probe_one(
            lrow,
            left_keys,
            |key| table.get(key),
            right_rows,
            kind,
            right_width,
            residual,
            &mut out,
        )?;
    }
    Ok(out)
}

/// Probe the table for one left row, appending joined rows (and the LEFT
/// JOIN NULL-fill when unmatched) to `out`.
#[allow(clippy::too_many_arguments)]
fn probe_one<'t>(
    lrow: &Row,
    left_keys: &[PhysExpr],
    lookup: impl FnOnce(&[Value]) -> Option<&'t Vec<usize>>,
    right_rows: &[Row],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
    out: &mut Vec<Row>,
) -> Result<()> {
    let mut matched = false;
    if let Some(key) = eval_key(lrow, left_keys)? {
        if let Some(idxs) = lookup(&key) {
            for &ri in idxs {
                let mut joined = lrow.clone();
                joined.extend(right_rows[ri].iter().cloned());
                if let Some(r) = residual {
                    if r.eval(&joined)?.as_bool()? != Some(true) {
                        continue;
                    }
                }
                matched = true;
                out.push(joined);
            }
        }
    }
    if !matched && kind == JoinKind::Left {
        let mut joined = lrow.clone();
        joined.extend(std::iter::repeat_n(Value::Null, right_width));
        out.push(joined);
    }
    Ok(())
}

#[allow(clippy::too_many_arguments)]
fn parallel_hash_join(
    left_rows: Arc<Vec<Row>>,
    right_rows: Arc<Vec<Row>>,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
    ctx: &ExecContext,
) -> Result<Vec<Row>> {
    let partitions = ctx.parallelism();

    // Phase 1: morsel-parallel key extraction over the build side. The
    // extracted keyed rows are what the per-partition build tables own, so
    // charging the statement budget here covers the parallel build too.
    let right_keys_arc: Arc<Vec<PhysExpr>> = Arc::new(right_keys.to_vec());
    let extract_jobs: Vec<ChunkJob<Result<Vec<KeyedRow>>>> = ctx
        .morsels(right_rows.len())
        .into_iter()
        .map(|range| {
            let rows = Arc::clone(&right_rows);
            let keys = Arc::clone(&right_keys_arc);
            let budget = Arc::clone(ctx.budget());
            let job: ChunkJob<Result<Vec<KeyedRow>>> = Box::new(move || {
                let mut out = Vec::with_capacity(range.len());
                let mut charge = ChargeBuf::new(&budget);
                for i in range {
                    if let Some(key) = eval_key(&rows[i], &keys)? {
                        charge.add(approx_row_bytes(&key) + 16)?;
                        out.push((hash_key(&key), key, i));
                    }
                }
                charge.flush()?;
                Ok(out)
            });
            job
        })
        .collect();
    let mut keyed: Vec<Vec<KeyedRow>> = Vec::new();
    for chunk in ctx.run_jobs(extract_jobs) {
        keyed.push(chunk?);
    }
    let keyed = Arc::new(keyed);
    let keyed_total: usize = keyed.iter().map(Vec::len).sum();

    // Phase 2: one build job per partition. Chunks are walked in order, so
    // each partition's match lists hold right indices in ascending order.
    let build_jobs: Vec<ChunkJob<HashMap<Vec<Value>, Vec<usize>>>> = (0..partitions)
        .map(|p| {
            let keyed = Arc::clone(&keyed);
            let cap = keyed_total / partitions + 1;
            let job: ChunkJob<HashMap<Vec<Value>, Vec<usize>>> = Box::new(move || {
                let mut table: HashMap<Vec<Value>, Vec<usize>> = HashMap::with_capacity(cap);
                for chunk in keyed.iter() {
                    for (h, key, i) in chunk {
                        if *h as usize % partitions == p {
                            table.entry(key.clone()).or_default().push(*i);
                        }
                    }
                }
                table
            });
            job
        })
        .collect();
    let tables = Arc::new(ctx.run_jobs(build_jobs));

    // Phase 3: morsel-parallel probe with the left side.
    let left_keys_arc: Arc<Vec<PhysExpr>> = Arc::new(left_keys.to_vec());
    let residual_arc: Arc<Option<PhysExpr>> = Arc::new(residual.clone());
    let probe_jobs: Vec<ChunkJob<Result<Vec<Row>>>> = ctx
        .morsels(left_rows.len())
        .into_iter()
        .map(|range| {
            let left = Arc::clone(&left_rows);
            let right = Arc::clone(&right_rows);
            let tables = Arc::clone(&tables);
            let keys = Arc::clone(&left_keys_arc);
            let residual = Arc::clone(&residual_arc);
            let job: ChunkJob<Result<Vec<Row>>> = Box::new(move || {
                let mut out = Vec::new();
                for lrow in &left[range] {
                    probe_one(
                        lrow,
                        &keys,
                        |key| tables[hash_key(key) as usize % partitions].get(key),
                        &right,
                        kind,
                        right_width,
                        &residual,
                        &mut out,
                    )?;
                }
                Ok(out)
            });
            job
        })
        .collect();
    let mut out = Vec::new();
    for chunk in ctx.run_jobs(probe_jobs) {
        out.extend(chunk?);
    }
    Ok(out)
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn sort_merge_join(
    left: &PhysPlan,
    right: &PhysPlan,
    left_keys: &[PhysExpr],
    right_keys: &[PhysExpr],
    kind: JoinKind,
    right_width: usize,
    residual: &Option<PhysExpr>,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let left_rows = super::run_input(left, ctx, &mut children, &mut rows_in)?;
    let right_rows = super::run_input(right, ctx, &mut children, &mut rows_in)?;

    // Materialize (key, index) pairs and sort both sides. NULL keys never
    // match and are dropped from the merge (LEFT JOIN keeps their rows).
    // This operator emulates an engine without hash joins (profile C), so it
    // stays serial by design.
    let keyed = |rows: &[Row], keys: &[PhysExpr]| -> Result<Vec<(Vec<Value>, usize)>> {
        let mut out = Vec::with_capacity(rows.len());
        let mut charge = ChargeBuf::new(ctx.budget());
        for (i, row) in rows.iter().enumerate() {
            if let Some(k) = eval_key(row, keys)? {
                charge.add(approx_row_bytes(&k) + 8)?;
                out.push((k, i));
            }
        }
        charge.flush()?;
        out.sort_by(|(a, _), (b, _)| cmp_keys(a, b));
        Ok(out)
    };
    let lk = keyed(&left_rows, left_keys)?;
    let rk = keyed(&right_rows, right_keys)?;

    let mut matched_left = vec![false; left_rows.len()];
    let mut out = Vec::new();
    let (mut li, mut ri) = (0usize, 0usize);
    while li < lk.len() && ri < rk.len() {
        match cmp_keys(&lk[li].0, &rk[ri].0) {
            std::cmp::Ordering::Less => li += 1,
            std::cmp::Ordering::Greater => ri += 1,
            std::cmp::Ordering::Equal => {
                // Extent of the equal run on each side.
                let lstart = li;
                while li < lk.len() && cmp_keys(&lk[li].0, &rk[ri].0).is_eq() {
                    li += 1;
                }
                let rstart = ri;
                while ri < rk.len() && cmp_keys(&lk[lstart].0, &rk[ri].0).is_eq() {
                    ri += 1;
                }
                for &(_, l_idx) in &lk[lstart..li] {
                    for &(_, r_idx) in &rk[rstart..ri] {
                        let mut joined = left_rows[l_idx].clone();
                        joined.extend(right_rows[r_idx].iter().cloned());
                        if let Some(r) = residual {
                            if r.eval(&joined)?.as_bool()? != Some(true) {
                                continue;
                            }
                        }
                        matched_left[l_idx] = true;
                        out.push(joined);
                    }
                }
            }
        }
    }
    if kind == JoinKind::Left {
        for (i, row) in left_rows.iter().enumerate() {
            if !matched_left[i] {
                let mut joined = row.clone();
                joined.extend(std::iter::repeat_n(Value::Null, right_width));
                out.push(joined);
            }
        }
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}

fn cmp_keys(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.total_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

pub(crate) fn nested_loop_join(
    left: &PhysPlan,
    right: &PhysPlan,
    kind: JoinKind,
    right_width: usize,
    predicate: &Option<PhysExpr>,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let left_rows = super::run_input(left, ctx, &mut children, &mut rows_in)?;
    let right_rows = super::run_input(right, ctx, &mut children, &mut rows_in)?;

    let deadline = ctx.deadline();
    let parallel = ctx.should_parallelize(left_rows.len());
    let rows = if parallel {
        let predicate_arc: Arc<Option<PhysExpr>> = Arc::new(predicate.clone());
        let jobs: Vec<ChunkJob<Result<Vec<Row>>>> = ctx
            .morsels(left_rows.len())
            .into_iter()
            .map(|range| {
                let left = Arc::clone(&left_rows);
                let right = Arc::clone(&right_rows);
                let predicate = Arc::clone(&predicate_arc);
                let budget = Arc::clone(ctx.budget());
                let job: ChunkJob<Result<Vec<Row>>> = Box::new(move || {
                    nested_loop_chunk(
                        &left[range],
                        &right,
                        kind,
                        right_width,
                        &predicate,
                        deadline,
                        &budget,
                    )
                });
                job
            })
            .collect();
        let mut out = Vec::new();
        for chunk in ctx.run_jobs(jobs) {
            out.extend(chunk?);
        }
        out
    } else {
        nested_loop_chunk(
            &left_rows,
            &right_rows,
            kind,
            right_width,
            predicate,
            deadline,
            ctx.budget(),
        )?
    };
    Ok(NodeOut {
        rows,
        rows_in,
        workers: if parallel { ctx.parallelism() } else { 1 },
        children,
    })
}

fn nested_loop_chunk(
    left_rows: &[Row],
    right_rows: &[Row],
    kind: JoinKind,
    right_width: usize,
    predicate: &Option<PhysExpr>,
    deadline: Option<std::time::Instant>,
    budget: &MemoryBudget,
) -> Result<Vec<Row>> {
    let mut out = Vec::new();
    let mut charge = ChargeBuf::new(budget);
    for lrow in left_rows {
        // The one operator whose output is quadratic in its input: check the
        // deadline per outer row so an unconstrained cross join cannot run
        // unbounded.
        super::context::check_deadline(deadline)?;
        let mut matched = false;
        for rrow in right_rows {
            let mut joined = lrow.clone();
            joined.extend(rrow.iter().cloned());
            let keep = match predicate {
                None => true,
                Some(p) => p.eval(&joined)?.as_bool()? == Some(true),
            };
            if keep {
                matched = true;
                // The one operator whose *output* is quadratic in its input:
                // charge every materialized row, so an unconstrained cross
                // join aborts on budget instead of OOMing.
                charge.add_row(&joined)?;
                out.push(joined);
            }
        }
        if !matched && kind == JoinKind::Left {
            let mut joined = lrow.clone();
            joined.extend(std::iter::repeat_n(Value::Null, right_width));
            charge.add_row(&joined)?;
            out.push(joined);
        }
    }
    charge.flush()?;
    Ok(out)
}

/// Index-nested-loop join: run the probe side, then look each probe row's key
/// tuple up in the inner side's index — the inner table is never scanned.
///
/// Matched inner row indexes are sorted ascending per probe row (secondary
/// index postings lists are unordered after in-place UPDATE maintenance), so
/// with the probe on the left the output ordering matches the serial hash
/// join exactly. `inner_is_left` flips the column order of the output rows to
/// match the FROM-clause scope when the indexed table was the left item.
#[allow(clippy::too_many_arguments)]
pub(crate) fn index_join(
    probe: &PhysPlan,
    probe_keys: &[PhysExpr],
    inner: &PhysPlan,
    inner_is_left: bool,
    kind: JoinKind,
    inner_width: usize,
    residual: &Option<PhysExpr>,
    ctx: &ExecContext,
) -> Result<NodeOut> {
    let PhysPlan::IndexScan {
        rows: inner_rows,
        index,
        ..
    } = inner
    else {
        return Err(crate::error::EngineError::exec(
            "IndexJoin inner side must be an IndexScan",
        ));
    };
    let mut children = Vec::new();
    let mut rows_in = 0usize;
    let probe_rows = super::run_input(probe, ctx, &mut children, &mut rows_in)?;

    let mut out = Vec::new();
    let mut idxs: Vec<usize> = Vec::new();
    let mut fetched = 0usize;
    for prow in probe_rows.iter() {
        let mut matched = false;
        if let Some(key) = eval_key(prow, probe_keys)? {
            idxs.clear();
            index.lookup_into(&key, &mut idxs);
            idxs.sort_unstable();
            fetched += idxs.len();
            for &ii in &idxs {
                let irow = &inner_rows[ii];
                let joined: Row = if inner_is_left {
                    irow.iter().chain(prow.iter()).cloned().collect()
                } else {
                    prow.iter().chain(irow.iter()).cloned().collect()
                };
                if let Some(r) = residual {
                    if r.eval(&joined)?.as_bool()? != Some(true) {
                        continue;
                    }
                }
                matched = true;
                out.push(joined);
            }
        }
        if !matched && kind == JoinKind::Left {
            // The probe side is the outer side; null-fill the inner columns.
            let mut joined = prow.clone();
            joined.extend(std::iter::repeat_n(Value::Null, inner_width));
            out.push(joined);
        }
    }
    if ctx.stats_enabled() {
        children.push(super::OpStats::leaf(
            crate::explain::op_label(inner),
            fetched,
        ));
    }
    Ok(NodeOut {
        rows: out,
        rows_in,
        workers: 1,
        children,
    })
}
