//! Physical plan execution.
//!
//! The executor is organized as one module per operator family:
//!
//! * [`scan`] — scans plus chunked Filter/Project morsel pipelines;
//! * [`join`] — hash join (partitioned build + probe), sort-merge, nested loop;
//! * [`aggregate`] — hash aggregation with per-worker partial maps;
//! * [`sort`] — sort (parallel run-sort + pairwise merge), top-k
//!   (`ORDER BY ... LIMIT`), and window ranking;
//! * [`setops`] — `UNION ALL`, `DISTINCT` (hash-partitioned dedup), `LIMIT`.
//!
//! Every operator executes through an [`ExecContext`], which carries the
//! parallelism knob, the shared worker pool, and the `EXPLAIN ANALYZE` stats
//! switch. With `parallelism = 1` each operator takes its exact serial path,
//! producing byte-identical results to the original single-function
//! interpreter; with `parallelism >= 2` the data-parallel operators split
//! their inputs into morsels and merge per-worker results deterministically
//! (chunk order), so row order and content still match the serial executor —
//! the only permitted difference is float rounding in parallel aggregation,
//! where partial sums are combined in chunk order rather than row order.
//!
//! Operators materialize their outputs (`Vec<Row>`); inputs are shared with
//! workers as `Arc<Vec<Row>>`, which also lets operators consume table scans
//! without the defensive full-copy the old interpreter made.

mod aggregate;
mod context;
mod join;
mod scan;
mod setops;
mod sort;
mod vector;

pub(crate) use context::check_deadline;
pub use context::{ExecContext, MemoryBudget, OpStats, WorkerPool};
pub(crate) use vector::{count_modes, mode_of_label, mode_suffix, node_mode};

use std::sync::Arc;
use std::time::Instant;

use crate::error::Result;
use crate::explain::op_label;
use crate::plan::PhysPlan;
use crate::value::Row;

/// Execute a plan to completion on the serial executor.
///
/// This is the compatibility entry point used by the planner for CTE
/// materialization and uncorrelated subqueries (which run at plan time,
/// before a context exists). Query execution goes through
/// [`ExecContext::execute`].
pub fn execute(plan: &PhysPlan) -> Result<Vec<Row>> {
    ExecContext::serial().execute(plan)
}

/// What an operator hands back to the dispatcher: its output rows, how many
/// input rows it consumed, and the stats of its children (empty unless the
/// context collects stats).
pub(crate) struct NodeOut {
    pub rows: Vec<Row>,
    pub rows_in: usize,
    /// Workers this operator actually fanned out to (1 = serial path).
    pub workers: usize,
    pub children: Vec<OpStats>,
}

impl NodeOut {
    pub(crate) fn new(rows: Vec<Row>) -> NodeOut {
        NodeOut {
            rows,
            rows_in: 0,
            workers: 1,
            children: Vec::new(),
        }
    }
}

/// Execute one node, wrapping the operator output in an [`OpStats`] record
/// when stats are enabled. `mem_bytes` is the statement-budget charge delta
/// across the node (inclusive of children, like `elapsed`), attributing
/// materialized pipeline-breaker state to the operator that built it.
pub(crate) fn run(plan: &PhysPlan, ctx: &ExecContext) -> Result<(Vec<Row>, Option<OpStats>)> {
    let start = ctx
        .stats_enabled()
        .then(|| (Instant::now(), ctx.budget().used_bytes()));
    let out = dispatch(plan, ctx)?;
    let stats = start.map(|(t, mem_before)| OpStats {
        label: op_label(plan),
        rows_in: out.rows_in,
        rows_out: out.rows.len(),
        elapsed: t.elapsed(),
        workers: out.workers,
        morsels: if out.workers > 1 {
            ctx.morsels(out.rows_in).len()
        } else {
            1
        },
        mem_bytes: ctx.budget().used_bytes().saturating_sub(mem_before),
        children: out.children,
    });
    Ok((out.rows, stats))
}

fn dispatch(plan: &PhysPlan, ctx: &ExecContext) -> Result<NodeOut> {
    // Operator-boundary timeout check: every node passes through here, so a
    // deep plan cannot run past its deadline by more than one operator's
    // work (tight loops inside operators check at morsel boundaries too).
    ctx.check_timeout()?;
    match plan {
        PhysPlan::Scan { rows, .. } | PhysPlan::VirtualScan { rows, .. } => {
            Ok(NodeOut::new(rows.as_ref().clone()))
        }
        PhysPlan::IndexScan {
            rows, index, keys, ..
        } => match keys {
            Some(keys) => {
                // Key tuples are constant expressions (literals once any
                // parameters are bound); evaluate them to values here.
                // `index_scan` drops NULL-containing tuples and dedups row
                // indexes, so duplicate tuples are harmless.
                let key_values: Vec<Vec<crate::value::Value>> = keys
                    .iter()
                    .map(|tuple| tuple.iter().map(|e| e.eval_const()).collect())
                    .collect::<Result<_>>()?;
                Ok(scan::index_scan(rows, index, &key_values))
            }
            None => Err(crate::error::EngineError::exec(
                "probe-driven IndexScan can only run inside an IndexJoin",
            )),
        },
        PhysPlan::IndexJoin {
            probe,
            probe_keys,
            inner,
            inner_is_left,
            kind,
            inner_width,
            residual,
        } => join::index_join(
            probe,
            probe_keys,
            inner,
            *inner_is_left,
            *kind,
            *inner_width,
            residual,
            ctx,
        ),
        PhysPlan::OneRow => Ok(NodeOut::new(vec![Vec::new()])),
        PhysPlan::Filter { .. } | PhysPlan::Project { .. } => scan::run_pipeline(plan, ctx),
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            right_keys,
            kind,
            right_width,
            residual,
            algo,
        } => match algo {
            crate::plan::JoinAlgo::Hash => join::hash_join(
                left,
                right,
                left_keys,
                right_keys,
                *kind,
                *right_width,
                residual,
                ctx,
            ),
            crate::plan::JoinAlgo::SortMerge => join::sort_merge_join(
                left,
                right,
                left_keys,
                right_keys,
                *kind,
                *right_width,
                residual,
                ctx,
            ),
        },
        PhysPlan::NestedLoopJoin {
            left,
            right,
            kind,
            right_width,
            predicate,
        } => join::nested_loop_join(left, right, *kind, *right_width, predicate, ctx),
        PhysPlan::Aggregate { input, keys, aggs } => aggregate::aggregate(input, keys, aggs, ctx),
        PhysPlan::Window {
            input,
            func,
            partition,
            order,
        } => sort::window_rank(input, *func, partition, order, ctx),
        PhysPlan::Sort { input, keys } => sort::sort(input, keys, ctx),
        PhysPlan::Limit {
            input,
            limit,
            offset,
        } => setops::limit(input, *limit, *offset, ctx),
        PhysPlan::UnionAll { inputs } => setops::union_all(inputs, ctx),
        PhysPlan::Distinct { input } => setops::distinct(input, ctx),
    }
}

/// Execute a child plan for an operator that only *reads* its input.
///
/// Base-table scans are returned as a cheap `Arc` clone of the catalog
/// snapshot instead of a deep row copy; any other child runs normally and its
/// output is wrapped. The child's stats node (when collected) and row count
/// are appended to `children` / `rows_in`.
pub(crate) fn run_input(
    plan: &PhysPlan,
    ctx: &ExecContext,
    children: &mut Vec<OpStats>,
    rows_in: &mut usize,
) -> Result<Arc<Vec<Row>>> {
    let rows = match plan {
        PhysPlan::Scan { rows, .. } | PhysPlan::VirtualScan { rows, .. } => {
            if ctx.stats_enabled() {
                children.push(OpStats::leaf(op_label(plan), rows.len()));
            }
            Arc::clone(rows)
        }
        _ => {
            let (rows, stats) = run(plan, ctx)?;
            if let Some(s) = stats {
                children.push(s);
            }
            Arc::new(rows)
        }
    };
    *rows_in += rows.len();
    Ok(rows)
}

/// Recover owned rows from a shared input, cloning only when the snapshot is
/// still referenced elsewhere (i.e. the child was a base-table scan).
pub(crate) fn into_owned(rows: Arc<Vec<Row>>) -> Vec<Row> {
    Arc::try_unwrap(rows).unwrap_or_else(|shared| shared.as_ref().clone())
}
