//! Bound (physical) expressions and their evaluator.
//!
//! The planner resolves AST expressions against a [`Scope`] — the ordered,
//! possibly-qualified column labels of the operator input — producing a
//! [`PhysExpr`] whose column references are plain offsets. Evaluation is a
//! straightforward tree walk over a row slice.

use std::sync::Arc;

use crate::ast::{self, BinaryOp, UnaryOp};
use crate::error::{EngineError, Result};
use crate::value::{DataType, Value};

/// A column label visible in a scope: optional table qualifier plus name,
/// and the statically inferred type of the column (from the catalog for base
/// tables, from type inference for derived columns, `Any` when unknown).
#[derive(Debug, Clone)]
pub struct ColLabel {
    pub qualifier: Option<String>,
    pub name: String,
    pub ty: DataType,
}

impl ColLabel {
    pub fn new(qualifier: Option<&str>, name: &str) -> Self {
        ColLabel {
            qualifier: qualifier.map(|s| s.to_string()),
            name: name.to_string(),
            ty: DataType::Any,
        }
    }

    pub fn bare(name: &str) -> Self {
        ColLabel {
            qualifier: None,
            name: name.to_string(),
            ty: DataType::Any,
        }
    }

    /// Attach a statically known type to this label.
    pub fn with_ty(mut self, ty: DataType) -> Self {
        self.ty = ty;
        self
    }
}

impl PartialEq for ColLabel {
    /// Labels compare by identity (qualifier + name); the inferred type is an
    /// annotation and never participates in equality.
    fn eq(&self, other: &Self) -> bool {
        self.qualifier == other.qualifier && self.name == other.name
    }
}

/// The ordered set of columns an expression may reference.
#[derive(Debug, Clone, Default)]
pub struct Scope {
    pub labels: Vec<ColLabel>,
}

impl Scope {
    pub fn new(labels: Vec<ColLabel>) -> Self {
        Scope { labels }
    }

    /// Concatenate two scopes (join output).
    pub fn join(&self, other: &Scope) -> Scope {
        let mut labels = self.labels.clone();
        labels.extend(other.labels.iter().cloned());
        Scope { labels }
    }

    pub fn len(&self) -> usize {
        self.labels.len()
    }

    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }

    /// Resolve `[qualifier.]name` to a column offset.
    pub fn resolve(&self, qualifier: Option<&str>, name: &str) -> Result<usize> {
        let mut found: Option<usize> = None;
        for (i, label) in self.labels.iter().enumerate() {
            let name_matches = label.name.eq_ignore_ascii_case(name);
            let qual_matches = match (qualifier, &label.qualifier) {
                (None, _) => true,
                (Some(q), Some(lq)) => q.eq_ignore_ascii_case(lq),
                (Some(_), None) => false,
            };
            if name_matches && qual_matches {
                if found.is_some() {
                    return Err(EngineError::plan(format!(
                        "ambiguous column reference '{}{}'",
                        qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                        name
                    )));
                }
                found = Some(i);
            }
        }
        found.ok_or_else(|| {
            EngineError::plan(format!(
                "unknown column '{}{}'",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name
            ))
        })
    }
}

/// Scalar functions supported by the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalarFunc {
    Pow,
    Ln,
    Log10,
    Exp,
    Abs,
    Sqrt,
    Coalesce,
    NullIf,
    Length,
    Lower,
    Upper,
    Substr,
    Round,
    Floor,
    Ceil,
    Sign,
    Mod,
    Trim,
    Replace,
    Instr,
    Concat,
}

impl ScalarFunc {
    /// Look a function up by (upper-case) SQL name.
    pub fn from_name(name: &str) -> Option<ScalarFunc> {
        Some(match name {
            "POW" | "POWER" => ScalarFunc::Pow,
            "LN" => ScalarFunc::Ln,
            "LOG" | "LOG10" => ScalarFunc::Log10,
            "EXP" => ScalarFunc::Exp,
            "ABS" => ScalarFunc::Abs,
            "SQRT" => ScalarFunc::Sqrt,
            "COALESCE" | "IFNULL" => ScalarFunc::Coalesce,
            "NULLIF" => ScalarFunc::NullIf,
            "LENGTH" => ScalarFunc::Length,
            "LOWER" => ScalarFunc::Lower,
            "UPPER" => ScalarFunc::Upper,
            "SUBSTR" | "SUBSTRING" => ScalarFunc::Substr,
            "ROUND" => ScalarFunc::Round,
            "FLOOR" => ScalarFunc::Floor,
            "CEIL" | "CEILING" => ScalarFunc::Ceil,
            "SIGN" => ScalarFunc::Sign,
            "MOD" => ScalarFunc::Mod,
            "TRIM" => ScalarFunc::Trim,
            "REPLACE" => ScalarFunc::Replace,
            "INSTR" => ScalarFunc::Instr,
            "CONCAT" => ScalarFunc::Concat,
            _ => return None,
        })
    }

    pub(crate) fn arity_ok(&self, n: usize) -> bool {
        match self {
            ScalarFunc::Pow | ScalarFunc::NullIf | ScalarFunc::Mod | ScalarFunc::Instr => n == 2,
            ScalarFunc::Replace => n == 3,
            ScalarFunc::Coalesce | ScalarFunc::Concat => n >= 1,
            ScalarFunc::Substr => n == 2 || n == 3,
            ScalarFunc::Round => n == 1 || n == 2,
            _ => n == 1,
        }
    }
}

/// A bound expression: column references resolved to offsets, parameters
/// substituted (or kept symbolic for cached plan templates), functions
/// resolved.
#[derive(Debug, Clone)]
pub enum PhysExpr {
    Literal(Value),
    /// Unbound positional parameter (1-based). Only present in plan
    /// *templates* produced by symbolic binding ([`bind_expr_symbolic`]);
    /// [`substitute_params`] replaces every occurrence with the bound value
    /// before execution, so the evaluator never sees one.
    Param(usize),
    Column(usize),
    Unary {
        op: UnaryOp,
        expr: Box<PhysExpr>,
    },
    Binary {
        left: Box<PhysExpr>,
        op: BinaryOp,
        right: Box<PhysExpr>,
    },
    IsNull {
        expr: Box<PhysExpr>,
        negated: bool,
    },
    InList {
        expr: Box<PhysExpr>,
        list: Vec<PhysExpr>,
        negated: bool,
    },
    Between {
        expr: Box<PhysExpr>,
        low: Box<PhysExpr>,
        high: Box<PhysExpr>,
        negated: bool,
    },
    Like {
        expr: Box<PhysExpr>,
        pattern: Box<PhysExpr>,
        negated: bool,
    },
    Case {
        operand: Option<Box<PhysExpr>>,
        branches: Vec<(PhysExpr, PhysExpr)>,
        else_expr: Option<Box<PhysExpr>>,
    },
    Cast {
        expr: Box<PhysExpr>,
        ty: DataType,
    },
    Function {
        func: ScalarFunc,
        args: Vec<PhysExpr>,
    },
}

/// How parameter markers are bound: inlined as literals from the bound
/// value slice (the classic path), or kept symbolic as [`PhysExpr::Param`]
/// nodes so the resulting plan can be cached as a template and re-bound per
/// execution.
#[derive(Clone, Copy)]
pub enum ParamBinding<'a> {
    Inline(&'a [Value]),
    Symbolic,
}

/// Bind an AST expression against `scope`, substituting `params`.
///
/// Aggregate and window expressions must have been rewritten away by the
/// planner before binding; finding one here is a planning bug surfaced as an
/// error.
pub fn bind_expr(expr: &ast::Expr, scope: &Scope, params: &[Value]) -> Result<PhysExpr> {
    bind_expr_with(expr, scope, ParamBinding::Inline(params))
}

/// [`bind_expr`] with parameters kept symbolic (plan-template mode).
pub fn bind_expr_symbolic(expr: &ast::Expr, scope: &Scope) -> Result<PhysExpr> {
    bind_expr_with(expr, scope, ParamBinding::Symbolic)
}

/// Shared binder; `binding` selects how `?` markers are handled.
pub fn bind_expr_with(expr: &ast::Expr, scope: &Scope, binding: ParamBinding) -> Result<PhysExpr> {
    use ast::Expr as E;
    let bind = |e: &ast::Expr| bind_expr_with(e, scope, binding);
    Ok(match expr {
        E::Literal(v, _) => PhysExpr::Literal(v.clone()),
        E::Param(i, _) => match binding {
            ParamBinding::Inline(params) => {
                let v = params.get(i - 1).ok_or_else(|| {
                    EngineError::Parameter(format!(
                        "parameter ?{i} referenced but only {} bound",
                        params.len()
                    ))
                })?;
                PhysExpr::Literal(v.clone())
            }
            ParamBinding::Symbolic => PhysExpr::Param(*i),
        },
        E::Column {
            qualifier, name, ..
        } => PhysExpr::Column(scope.resolve(qualifier.as_deref(), name)?),
        E::Unary { op, expr, .. } => PhysExpr::Unary {
            op: *op,
            expr: Box::new(bind(expr)?),
        },
        E::Binary {
            left, op, right, ..
        } => PhysExpr::Binary {
            left: Box::new(bind(left)?),
            op: *op,
            right: Box::new(bind(right)?),
        },
        E::IsNull { expr, negated, .. } => PhysExpr::IsNull {
            expr: Box::new(bind(expr)?),
            negated: *negated,
        },
        E::InList {
            expr,
            list,
            negated,
            ..
        } => PhysExpr::InList {
            expr: Box::new(bind(expr)?),
            list: list.iter().map(bind).collect::<Result<_>>()?,
            negated: *negated,
        },
        E::Between {
            expr,
            low,
            high,
            negated,
            ..
        } => PhysExpr::Between {
            expr: Box::new(bind(expr)?),
            low: Box::new(bind(low)?),
            high: Box::new(bind(high)?),
            negated: *negated,
        },
        E::Like {
            expr,
            pattern,
            negated,
            ..
        } => PhysExpr::Like {
            expr: Box::new(bind(expr)?),
            pattern: Box::new(bind(pattern)?),
            negated: *negated,
        },
        E::Case {
            operand,
            branches,
            else_expr,
            ..
        } => PhysExpr::Case {
            operand: operand.as_deref().map(&bind).transpose()?.map(Box::new),
            branches: branches
                .iter()
                .map(|(w, t)| Ok((bind(w)?, bind(t)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr.as_deref().map(&bind).transpose()?.map(Box::new),
        },
        E::Cast { expr, ty, .. } => PhysExpr::Cast {
            expr: Box::new(bind(expr)?),
            ty: *ty,
        },
        E::Function { name, args, .. } => {
            let func = ScalarFunc::from_name(name)
                .ok_or_else(|| EngineError::plan(format!("unknown function '{name}'")))?;
            if !func.arity_ok(args.len()) {
                return Err(EngineError::plan(format!(
                    "wrong number of arguments ({}) for {name}",
                    args.len()
                )));
            }
            PhysExpr::Function {
                func,
                args: args.iter().map(bind).collect::<Result<_>>()?,
            }
        }
        E::Aggregate { .. } => {
            return Err(EngineError::plan(
                "aggregate function used outside of an aggregating context",
            ))
        }
        E::WindowRowNumber { .. } => {
            return Err(EngineError::plan(
                "window function used in an unsupported position",
            ))
        }
        E::ScalarSubquery(..) | E::InSubquery { .. } | E::Exists { .. } => {
            return Err(EngineError::plan(
                "subquery used in a position where it cannot be resolved \
                 (only uncorrelated subqueries in SELECT/WHERE/HAVING are supported)",
            ))
        }
    })
}

impl PhysExpr {
    /// Evaluate against a row.
    pub fn eval(&self, row: &[Value]) -> Result<Value> {
        match self {
            PhysExpr::Literal(v) => Ok(v.clone()),
            // Templates are re-bound via `substitute_params` before they
            // reach the executor; evaluating a leftover marker is a bug.
            PhysExpr::Param(i) => Err(EngineError::Parameter(format!(
                "parameter ?{i} evaluated without a bound value"
            ))),
            PhysExpr::Column(i) => Ok(row[*i].clone()),
            PhysExpr::Unary { op, expr } => {
                let v = expr.eval(row)?;
                eval_unary(*op, v)
            }
            PhysExpr::Binary { left, op, right } => match op {
                BinaryOp::And => {
                    // Three-valued logic with short circuit.
                    let l = left.eval(row)?.as_bool()?;
                    if l == Some(false) {
                        return Ok(Value::Int(0));
                    }
                    let r = right.eval(row)?.as_bool()?;
                    Ok(match (l, r) {
                        (Some(true), Some(true)) => Value::Int(1),
                        (_, Some(false)) => Value::Int(0),
                        _ => Value::Null,
                    })
                }
                BinaryOp::Or => {
                    let l = left.eval(row)?.as_bool()?;
                    if l == Some(true) {
                        return Ok(Value::Int(1));
                    }
                    let r = right.eval(row)?.as_bool()?;
                    Ok(match (l, r) {
                        (Some(false), Some(false)) => Value::Int(0),
                        (_, Some(true)) => Value::Int(1),
                        _ => Value::Null,
                    })
                }
                _ => {
                    let l = left.eval(row)?;
                    let r = right.eval(row)?;
                    eval_binary(l, *op, r)
                }
            },
            PhysExpr::IsNull { expr, negated } => {
                let v = expr.eval(row)?;
                Ok(Value::Int((v.is_null() != *negated) as i64))
            }
            PhysExpr::InList {
                expr,
                list,
                negated,
            } => {
                let v = expr.eval(row)?;
                if v.is_null() {
                    return Ok(Value::Null);
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(row)?;
                    match v.sql_eq(&iv) {
                        Some(true) => return Ok(Value::Int(!*negated as i64)),
                        Some(false) => {}
                        None => saw_null = true,
                    }
                }
                if saw_null {
                    Ok(Value::Null)
                } else {
                    Ok(Value::Int(*negated as i64))
                }
            }
            PhysExpr::Between {
                expr,
                low,
                high,
                negated,
            } => {
                let v = expr.eval(row)?;
                let lo = low.eval(row)?;
                let hi = high.eval(row)?;
                if v.is_null() || lo.is_null() || hi.is_null() {
                    return Ok(Value::Null);
                }
                let inside = v.total_cmp(&lo) != std::cmp::Ordering::Less
                    && v.total_cmp(&hi) != std::cmp::Ordering::Greater;
                Ok(Value::Int((inside != *negated) as i64))
            }
            PhysExpr::Like {
                expr,
                pattern,
                negated,
            } => {
                let v = expr.eval(row)?;
                let p = pattern.eval(row)?;
                if v.is_null() || p.is_null() {
                    return Ok(Value::Null);
                }
                let text = v.as_str_lossy()?.unwrap().into_owned();
                let pat = p.as_str_lossy()?.unwrap().into_owned();
                let matched = like_match(&text, &pat);
                Ok(Value::Int((matched != *negated) as i64))
            }
            PhysExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                match operand {
                    Some(op_expr) => {
                        let op_val = op_expr.eval(row)?;
                        for (when, then) in branches {
                            let w = when.eval(row)?;
                            if op_val.sql_eq(&w) == Some(true) {
                                return then.eval(row);
                            }
                        }
                    }
                    None => {
                        for (when, then) in branches {
                            if when.eval(row)?.as_bool()? == Some(true) {
                                return then.eval(row);
                            }
                        }
                    }
                }
                match else_expr {
                    Some(e) => e.eval(row),
                    None => Ok(Value::Null),
                }
            }
            PhysExpr::Cast { expr, ty } => expr.eval(row)?.cast_to(*ty),
            PhysExpr::Function { func, args } => eval_function(*func, args, row),
        }
    }

    /// Evaluate an expression that must not reference any columns (LIMIT etc.).
    pub fn eval_const(&self) -> Result<Value> {
        self.eval(&[])
    }

    /// Whether this (sub)tree still carries an unbound parameter marker.
    pub fn contains_param(&self) -> bool {
        match self {
            PhysExpr::Param(_) => true,
            PhysExpr::Literal(_) | PhysExpr::Column(_) => false,
            PhysExpr::Unary { expr, .. } | PhysExpr::IsNull { expr, .. } => expr.contains_param(),
            PhysExpr::Cast { expr, .. } => expr.contains_param(),
            PhysExpr::Binary { left, right, .. } => left.contains_param() || right.contains_param(),
            PhysExpr::InList { expr, list, .. } => {
                expr.contains_param() || list.iter().any(PhysExpr::contains_param)
            }
            PhysExpr::Between {
                expr, low, high, ..
            } => expr.contains_param() || low.contains_param() || high.contains_param(),
            PhysExpr::Like { expr, pattern, .. } => {
                expr.contains_param() || pattern.contains_param()
            }
            PhysExpr::Case {
                operand,
                branches,
                else_expr,
            } => {
                operand.as_deref().is_some_and(PhysExpr::contains_param)
                    || branches
                        .iter()
                        .any(|(w, t)| w.contains_param() || t.contains_param())
                    || else_expr.as_deref().is_some_and(PhysExpr::contains_param)
            }
            PhysExpr::Function { args, .. } => args.iter().any(PhysExpr::contains_param),
        }
    }
}

/// Rebuild a plan-template expression with every [`PhysExpr::Param`]
/// replaced by its bound value. Errors when a marker references past the end
/// of `params`, with the same message the inline binder produces.
pub fn substitute_params(e: &PhysExpr, params: &[Value]) -> Result<PhysExpr> {
    let sub = |e: &PhysExpr| substitute_params(e, params);
    let sub_box = |e: &PhysExpr| sub(e).map(Box::new);
    Ok(match e {
        PhysExpr::Param(i) => {
            let v = params.get(i - 1).ok_or_else(|| {
                EngineError::Parameter(format!(
                    "parameter ?{i} referenced but only {} bound",
                    params.len()
                ))
            })?;
            PhysExpr::Literal(v.clone())
        }
        PhysExpr::Literal(_) | PhysExpr::Column(_) => e.clone(),
        PhysExpr::Unary { op, expr } => PhysExpr::Unary {
            op: *op,
            expr: sub_box(expr)?,
        },
        PhysExpr::Binary { left, op, right } => PhysExpr::Binary {
            left: sub_box(left)?,
            op: *op,
            right: sub_box(right)?,
        },
        PhysExpr::IsNull { expr, negated } => PhysExpr::IsNull {
            expr: sub_box(expr)?,
            negated: *negated,
        },
        PhysExpr::InList {
            expr,
            list,
            negated,
        } => PhysExpr::InList {
            expr: sub_box(expr)?,
            list: list.iter().map(sub).collect::<Result<_>>()?,
            negated: *negated,
        },
        PhysExpr::Between {
            expr,
            low,
            high,
            negated,
        } => PhysExpr::Between {
            expr: sub_box(expr)?,
            low: sub_box(low)?,
            high: sub_box(high)?,
            negated: *negated,
        },
        PhysExpr::Like {
            expr,
            pattern,
            negated,
        } => PhysExpr::Like {
            expr: sub_box(expr)?,
            pattern: sub_box(pattern)?,
            negated: *negated,
        },
        PhysExpr::Case {
            operand,
            branches,
            else_expr,
        } => PhysExpr::Case {
            operand: operand.as_deref().map(&sub_box).transpose()?,
            branches: branches
                .iter()
                .map(|(w, t)| Ok((sub(w)?, sub(t)?)))
                .collect::<Result<_>>()?,
            else_expr: else_expr.as_deref().map(&sub_box).transpose()?,
        },
        PhysExpr::Cast { expr, ty } => PhysExpr::Cast {
            expr: sub_box(expr)?,
            ty: *ty,
        },
        PhysExpr::Function { func, args } => PhysExpr::Function {
            func: *func,
            args: args.iter().map(sub).collect::<Result<_>>()?,
        },
    })
}

fn eval_unary(op: UnaryOp, v: Value) -> Result<Value> {
    match op {
        UnaryOp::Neg => match v {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(-i)),
            Value::Float(f) => Ok(Value::Float(-f)),
            Value::Str(s) => Err(EngineError::exec(format!("cannot negate string '{s}'"))),
        },
        UnaryOp::Not => match v.as_bool()? {
            None => Ok(Value::Null),
            Some(b) => Ok(Value::Int(!b as i64)),
        },
    }
}

/// Static outcome of applying a binary operator to a pair of operand types.
///
/// This table is the single source of truth for implicit coercions: the
/// runtime evaluator ([`eval_binary`]) dispatches through it, and the
/// semantic analyzer consults it to predict result types and reject
/// type-shaped runtime errors before execution. `DataType::Any` only occurs
/// on the static side (unknown column types, NULL literals); runtime values
/// that survive NULL propagation always have a concrete type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BinCoercion {
    /// Integer arithmetic: `Int op Int → Int` (wrapping; `/` and `%` error
    /// on a zero divisor).
    IntArith,
    /// Float arithmetic: any numeric mix involving a `Real → Real`.
    FloatArith,
    /// Arithmetic over an operand of unknown type: result type unknown.
    AnyArith,
    /// `||` stringifies both sides (numbers render lossily) `→ Text`.
    Concat,
    /// Comparison via the total value order `→ Int` (boolean). Never errors:
    /// a string compares after every number instead of failing (SQLite
    /// type-order semantics) — pinned by the coercion matrix tests.
    Compare,
    /// `AND`/`OR` over boolean-coercible operands `→ Int` (boolean).
    Bool,
    /// Arithmetic over a definitely-`Text` operand: always a type error
    /// ("expected a numeric value").
    ErrTextArith,
    /// `AND`/`OR`/`NOT` over a definitely-`Text` operand: always a type
    /// error ("used in a boolean context").
    ErrTextBool,
}

/// The coercion decision for `l op r`. Shared by the evaluator and sema.
pub(crate) fn coerce(op: BinaryOp, l: DataType, r: DataType) -> BinCoercion {
    use BinaryOp::*;
    use DataType::*;
    match op {
        Add | Sub | Mul | Div | Mod => match (l, r) {
            (Text, _) | (_, Text) => BinCoercion::ErrTextArith,
            (Integer, Integer) => BinCoercion::IntArith,
            (Any, _) | (_, Any) => BinCoercion::AnyArith,
            _ => BinCoercion::FloatArith,
        },
        Concat => BinCoercion::Concat,
        Eq | NotEq | Lt | LtEq | Gt | GtEq => BinCoercion::Compare,
        And | Or => match (l, r) {
            (Text, _) | (_, Text) => BinCoercion::ErrTextBool,
            _ => BinCoercion::Bool,
        },
    }
}

fn eval_binary(l: Value, op: BinaryOp, r: Value) -> Result<Value> {
    use BinaryOp::*;
    // Every operator that reaches here propagates NULL (AND/OR short-circuit
    // in `eval` and never arrive).
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match coerce(op, l.data_type(), r.data_type()) {
        BinCoercion::IntArith => {
            let (Value::Int(a), Value::Int(b)) = (&l, &r) else {
                unreachable!("IntArith implies two integers")
            };
            let (a, b) = (*a, *b);
            Ok(match op {
                Add => Value::Int(a.wrapping_add(b)),
                Sub => Value::Int(a.wrapping_sub(b)),
                Mul => Value::Int(a.wrapping_mul(b)),
                Div => {
                    if b == 0 {
                        return Err(EngineError::exec("integer division by zero"));
                    }
                    Value::Int(a / b)
                }
                Mod => {
                    if b == 0 {
                        return Err(EngineError::exec("integer modulo by zero"));
                    }
                    Value::Int(a % b)
                }
                _ => unreachable!(),
            })
        }
        BinCoercion::FloatArith | BinCoercion::AnyArith | BinCoercion::ErrTextArith => {
            // `as_f64` raises the canonical "expected a numeric value" error
            // for text operands (left operand reported first).
            let a = l.as_f64()?.expect("null handled");
            let b = r.as_f64()?.expect("null handled");
            Ok(Value::Float(match op {
                Add => a + b,
                Sub => a - b,
                Mul => a * b,
                Div => a / b,
                Mod => a % b,
                _ => unreachable!(),
            }))
        }
        BinCoercion::Concat => {
            let a = l.as_str_lossy()?.unwrap();
            let b = r.as_str_lossy()?.unwrap();
            let mut s = String::with_capacity(a.len() + b.len());
            s.push_str(&a);
            s.push_str(&b);
            Ok(Value::Str(Arc::from(s.as_str())))
        }
        BinCoercion::Compare => {
            let ord = l.total_cmp(&r);
            let b = match op {
                Eq => ord == std::cmp::Ordering::Equal,
                NotEq => ord != std::cmp::Ordering::Equal,
                Lt => ord == std::cmp::Ordering::Less,
                LtEq => ord != std::cmp::Ordering::Greater,
                Gt => ord == std::cmp::Ordering::Greater,
                GtEq => ord != std::cmp::Ordering::Less,
                _ => unreachable!(),
            };
            Ok(Value::Int(b as i64))
        }
        BinCoercion::Bool | BinCoercion::ErrTextBool => {
            unreachable!("AND/OR handled in eval with short-circuit")
        }
    }
}

fn eval_function(func: ScalarFunc, args: &[PhysExpr], row: &[Value]) -> Result<Value> {
    // COALESCE must not eagerly error on later args; handle it first.
    if func == ScalarFunc::Coalesce {
        for a in args {
            let v = a.eval(row)?;
            if !v.is_null() {
                return Ok(v);
            }
        }
        return Ok(Value::Null);
    }
    let vals: Vec<Value> = args.iter().map(|a| a.eval(row)).collect::<Result<_>>()?;
    let num1 = |v: &Value| -> Result<Option<f64>> { v.as_f64() };
    match func {
        ScalarFunc::Coalesce => unreachable!(),
        ScalarFunc::Pow => {
            let (Some(a), Some(b)) = (num1(&vals[0])?, num1(&vals[1])?) else {
                return Ok(Value::Null);
            };
            Ok(Value::Float(a.powf(b)))
        }
        ScalarFunc::Ln => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Float(a.ln())),
        },
        ScalarFunc::Log10 => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Float(a.log10())),
        },
        ScalarFunc::Exp => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Float(a.exp())),
        },
        ScalarFunc::Sqrt => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Float(a.sqrt())),
        },
        ScalarFunc::Abs => match &vals[0] {
            Value::Null => Ok(Value::Null),
            Value::Int(i) => Ok(Value::Int(i.wrapping_abs())),
            Value::Float(f) => Ok(Value::Float(f.abs())),
            Value::Str(s) => Err(EngineError::exec(format!("ABS of string '{s}'"))),
        },
        ScalarFunc::Sign => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Int(if a > 0.0 {
                1
            } else if a < 0.0 {
                -1
            } else {
                0
            })),
        },
        ScalarFunc::NullIf => {
            if vals[0].sql_eq(&vals[1]) == Some(true) {
                Ok(Value::Null)
            } else {
                Ok(vals[0].clone())
            }
        }
        ScalarFunc::Length => match &vals[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::Int(v.as_str_lossy()?.unwrap().chars().count() as i64)),
        },
        ScalarFunc::Lower => match &vals[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::text(v.as_str_lossy()?.unwrap().to_lowercase())),
        },
        ScalarFunc::Upper => match &vals[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::text(v.as_str_lossy()?.unwrap().to_uppercase())),
        },
        ScalarFunc::Substr => {
            if vals[0].is_null() {
                return Ok(Value::Null);
            }
            let s = vals[0].as_str_lossy()?.unwrap().into_owned();
            let chars: Vec<char> = s.chars().collect();
            let start = vals[1].as_i64()?.unwrap_or(1).max(1) as usize;
            let len = if vals.len() == 3 {
                vals[2].as_i64()?.unwrap_or(0).max(0) as usize
            } else {
                chars.len()
            };
            let out: String = chars.iter().skip(start - 1).take(len).collect();
            Ok(Value::text(out))
        }
        ScalarFunc::Round => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => {
                let digits = if vals.len() == 2 {
                    vals[1].as_i64()?.unwrap_or(0)
                } else {
                    0
                };
                let factor = 10f64.powi(digits as i32);
                Ok(Value::Float((a * factor).round() / factor))
            }
        },
        ScalarFunc::Floor => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Float(a.floor())),
        },
        ScalarFunc::Ceil => match num1(&vals[0])? {
            None => Ok(Value::Null),
            Some(a) => Ok(Value::Float(a.ceil())),
        },
        ScalarFunc::Mod => {
            let (Some(a), Some(b)) = (vals[0].as_f64()?, vals[1].as_f64()?) else {
                return Ok(Value::Null);
            };
            match (&vals[0], &vals[1]) {
                (Value::Int(x), Value::Int(y)) => {
                    if *y == 0 {
                        return Err(EngineError::exec("integer modulo by zero"));
                    }
                    Ok(Value::Int(x % y))
                }
                _ => Ok(Value::Float(a % b)),
            }
        }
        ScalarFunc::Trim => match &vals[0] {
            Value::Null => Ok(Value::Null),
            v => Ok(Value::text(v.as_str_lossy()?.unwrap().trim())),
        },
        ScalarFunc::Replace => {
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let s = vals[0].as_str_lossy()?.unwrap().into_owned();
            let from = vals[1].as_str_lossy()?.unwrap().into_owned();
            let to = vals[2].as_str_lossy()?.unwrap().into_owned();
            if from.is_empty() {
                return Ok(Value::text(s));
            }
            Ok(Value::text(s.replace(&from, &to)))
        }
        ScalarFunc::Instr => {
            if vals[0].is_null() || vals[1].is_null() {
                return Ok(Value::Null);
            }
            let hay = vals[0].as_str_lossy()?.unwrap().into_owned();
            let needle = vals[1].as_str_lossy()?.unwrap().into_owned();
            // 1-based character position; 0 when absent (SQLite semantics).
            let pos = match hay.find(&needle) {
                Some(byte_idx) => hay[..byte_idx].chars().count() as i64 + 1,
                None => 0,
            };
            Ok(Value::Int(pos))
        }
        ScalarFunc::Concat => {
            // MySQL-style CONCAT: NULL if any argument is NULL.
            if vals.iter().any(Value::is_null) {
                return Ok(Value::Null);
            }
            let mut out = String::new();
            for v in &vals {
                out.push_str(&v.as_str_lossy()?.unwrap());
            }
            Ok(Value::text(out))
        }
    }
}

/// SQL LIKE matching with `%` (any run) and `_` (single char), case-sensitive.
fn like_match(text: &str, pattern: &str) -> bool {
    let t: Vec<char> = text.chars().collect();
    let p: Vec<char> = pattern.chars().collect();
    // Iterative two-pointer with backtracking on the last `%`.
    let (mut ti, mut pi) = (0usize, 0usize);
    let (mut star_p, mut star_t): (Option<usize>, usize) = (None, 0);
    while ti < t.len() {
        if pi < p.len() && (p[pi] == '_' || p[pi] == t[ti]) {
            ti += 1;
            pi += 1;
        } else if pi < p.len() && p[pi] == '%' {
            star_p = Some(pi);
            star_t = ti;
            pi += 1;
        } else if let Some(sp) = star_p {
            pi = sp + 1;
            star_t += 1;
            ti = star_t;
        } else {
            return false;
        }
    }
    while pi < p.len() && p[pi] == '%' {
        pi += 1;
    }
    pi == p.len()
}

// Bound expressions are evaluated concurrently by executor workers against
// shared row snapshots; `Value` rides inside rows and aggregation state that
// cross thread boundaries. Neither may grow non-`Send`/`Sync` interior state
// (e.g. `Rc`, `RefCell`) — this assertion turns such a change into a compile
// error at the definition site.
#[allow(dead_code)]
fn _assert_expr_send_sync() {
    fn assert<T: Send + Sync>() {}
    assert::<PhysExpr>();
    assert::<crate::value::Value>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_statement;

    fn bind(sql_expr: &str, scope: &Scope, params: &[Value]) -> PhysExpr {
        let stmt = parse_statement(&format!("SELECT {sql_expr}")).unwrap();
        let crate::ast::Statement::Query(q) = stmt else {
            panic!()
        };
        let crate::ast::SetExpr::Select(s) = q.body else {
            panic!()
        };
        let crate::ast::SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        bind_expr(expr, scope, params).unwrap()
    }

    fn eval(sql_expr: &str) -> Value {
        bind(sql_expr, &Scope::default(), &[]).eval(&[]).unwrap()
    }

    #[test]
    fn arithmetic_int_vs_float() {
        assert_eq!(eval("2613 / 100"), Value::Int(26));
        assert_eq!(eval("1 / 2"), Value::Int(0));
        assert_eq!(eval("1.0 / 2"), Value::Float(0.5));
        assert_eq!(eval("7 % 10"), Value::Int(7));
        assert_eq!(eval("2 + 3 * 4"), Value::Int(14));
    }

    #[test]
    fn concat_and_functions() {
        assert_eq!(eval("'a' || 'b' || 3"), Value::text("ab3"));
        assert_eq!(eval("POW(2, 10)"), Value::Float(1024.0));
        assert_eq!(eval("ABS(-3)"), Value::Int(3));
        assert_eq!(eval("COALESCE(NULL, NULL, 5)"), Value::Int(5));
        let Value::Float(l) = eval("LN(EXP(1.0))") else {
            panic!()
        };
        assert!((l - 1.0).abs() < 1e-12);
    }

    #[test]
    fn null_propagation() {
        assert!(eval("NULL + 1").is_null());
        assert!(eval("NULL = NULL").is_null());
        assert_eq!(eval("NULL IS NULL"), Value::Int(1));
        assert_eq!(eval("1 IS NOT NULL"), Value::Int(1));
    }

    #[test]
    fn three_valued_logic() {
        assert_eq!(eval("NULL AND 0"), Value::Int(0));
        assert!(eval("NULL AND 1").is_null());
        assert_eq!(eval("NULL OR 1"), Value::Int(1));
        assert!(eval("NULL OR 0").is_null());
    }

    #[test]
    fn case_expressions() {
        assert_eq!(
            eval("CASE WHEN 1 > 2 THEN 'a' WHEN 2 > 1 THEN 'b' ELSE 'c' END"),
            Value::text("b")
        );
        assert_eq!(
            eval("CASE 3 WHEN 1 THEN 'x' WHEN 3 THEN 'y' END"),
            Value::text("y")
        );
        assert!(eval("CASE WHEN 0 THEN 1 END").is_null());
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("hello world", "hello%"));
        assert!(like_match("hello", "h_llo"));
        assert!(like_match("abc", "%"));
        assert!(!like_match("abc", "a_"));
        assert!(like_match("a%c", "a%c"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert!(like_match("xxabyy", "%ab%"));
    }

    #[test]
    fn column_resolution() {
        let scope = Scope::new(vec![
            ColLabel::new(Some("t"), "a"),
            ColLabel::new(Some("u"), "a"),
            ColLabel::new(Some("t"), "b"),
        ]);
        assert_eq!(scope.resolve(Some("u"), "a").unwrap(), 1);
        assert_eq!(scope.resolve(None, "b").unwrap(), 2);
        assert!(scope.resolve(None, "a").is_err()); // ambiguous
        assert!(scope.resolve(None, "zzz").is_err()); // unknown
    }

    #[test]
    fn params_substitute() {
        let e = bind("? + ?", &Scope::default(), &[Value::Int(2), Value::Int(40)]);
        assert_eq!(e.eval(&[]).unwrap(), Value::Int(42));
    }

    #[test]
    fn division_by_zero_int_errors_float_inf() {
        let scope = Scope::default();
        assert!(bind("1 / 0", &scope, &[]).eval(&[]).is_err());
        assert_eq!(eval("1.0 / 0.0"), Value::Float(f64::INFINITY));
    }

    #[test]
    fn in_and_between() {
        assert_eq!(eval("2 IN (1, 2, 3)"), Value::Int(1));
        assert_eq!(eval("5 NOT IN (1, 2, 3)"), Value::Int(1));
        assert!(eval("5 IN (1, NULL)").is_null());
        assert_eq!(eval("2 BETWEEN 1 AND 3"), Value::Int(1));
        assert_eq!(eval("0 NOT BETWEEN 1 AND 3"), Value::Int(1));
    }

    #[test]
    fn coercion_matrix_arithmetic() {
        use BinaryOp::*;
        use DataType::*;
        // Integer-only arithmetic stays integer.
        assert_eq!(coerce(Add, Integer, Integer), BinCoercion::IntArith);
        assert_eq!(coerce(Div, Integer, Integer), BinCoercion::IntArith);
        // Any Real operand promotes to float.
        assert_eq!(coerce(Add, Integer, Real), BinCoercion::FloatArith);
        assert_eq!(coerce(Mul, Real, Real), BinCoercion::FloatArith);
        // Text in arithmetic is a type error regardless of the other side.
        assert_eq!(coerce(Add, Text, Integer), BinCoercion::ErrTextArith);
        assert_eq!(coerce(Sub, Real, Text), BinCoercion::ErrTextArith);
        assert_eq!(coerce(Mod, Text, Any), BinCoercion::ErrTextArith);
        // Unknown operand type: outcome unknown until runtime.
        assert_eq!(coerce(Add, Any, Integer), BinCoercion::AnyArith);
        assert_eq!(coerce(Div, Any, Any), BinCoercion::AnyArith);
    }

    #[test]
    fn coercion_matrix_compare_concat_bool() {
        use BinaryOp::*;
        use DataType::*;
        // Comparisons never error — strings order after numbers.
        for lt in [Integer, Real, Text, Any] {
            for rt in [Integer, Real, Text, Any] {
                assert_eq!(coerce(Eq, lt, rt), BinCoercion::Compare);
                assert_eq!(coerce(Lt, lt, rt), BinCoercion::Compare);
            }
        }
        // Concat stringifies everything.
        assert_eq!(coerce(Concat, Integer, Text), BinCoercion::Concat);
        assert_eq!(coerce(Concat, Real, Any), BinCoercion::Concat);
        // Logic over text is a type error; over numbers/unknown it is fine.
        assert_eq!(coerce(And, Text, Integer), BinCoercion::ErrTextBool);
        assert_eq!(coerce(Or, Any, Text), BinCoercion::ErrTextBool);
        assert_eq!(coerce(And, Integer, Any), BinCoercion::Bool);
    }

    #[test]
    fn runtime_agrees_with_coercion_table() {
        // IntArith
        assert_eq!(eval("3 + 4"), Value::Int(7));
        // FloatArith
        assert_eq!(eval("3 + 4.5"), Value::Float(7.5));
        // ErrTextArith: text in arithmetic errors with the canonical message.
        let err = bind("'x' + 1", &Scope::default(), &[])
            .eval(&[])
            .unwrap_err();
        assert!(err.to_string().contains("expected a numeric value"));
        // Compare never errors: a string sorts after every number.
        assert_eq!(eval("'x' > 999"), Value::Int(1));
        assert_eq!(eval("'1' = 1"), Value::Int(0));
        // Concat stringifies numbers.
        assert_eq!(eval("1 || 2.5"), Value::text("12.5"));
        // ErrTextBool
        let err = bind("'x' AND 1", &Scope::default(), &[])
            .eval(&[])
            .unwrap_err();
        assert!(err.to_string().contains("used in a boolean context"));
    }

    #[test]
    fn string_functions() {
        assert_eq!(eval("LOWER('AbC')"), Value::text("abc"));
        assert_eq!(eval("UPPER('AbC')"), Value::text("ABC"));
        assert_eq!(eval("LENGTH('héllo')"), Value::Int(5));
        assert_eq!(eval("SUBSTR('hello', 2, 3)"), Value::text("ell"));
        assert_eq!(eval("NULLIF(3, 3)"), Value::Null);
        assert_eq!(eval("NULLIF(3, 4)"), Value::Int(3));
    }
}
