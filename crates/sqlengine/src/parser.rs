//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::error::{EngineError, Result, Span};
use crate::lexer::{tokenize_spanned, Token};
use crate::value::{DataType, Value};

/// Parse a single SQL statement (a trailing semicolon is allowed).
pub fn parse_statement(sql: &str) -> Result<Statement> {
    let (tokens, spans) = tokenize_spanned(sql)?;
    let mut p = Parser {
        tokens,
        spans,
        pos: 0,
    };
    let stmt = p.statement()?;
    p.consume_if(&Token::Semicolon);
    if !p.at_end() {
        return Err(p.err(format!("unexpected trailing input: {:?}", p.peek())));
    }
    Ok(stmt)
}

/// Parse a script of semicolon-separated statements.
pub fn parse_script(sql: &str) -> Result<Vec<Statement>> {
    Ok(parse_script_spanned(sql)?
        .into_iter()
        .map(|(stmt, _)| stmt)
        .collect())
}

/// Like [`parse_script`], but each statement carries the byte span of its
/// source text (exclusive of the separating semicolon), so callers can
/// attribute per-statement telemetry to the original SQL.
pub fn parse_script_spanned(sql: &str) -> Result<Vec<(Statement, Span)>> {
    let (tokens, spans) = tokenize_spanned(sql)?;
    let mut p = Parser {
        tokens,
        spans,
        pos: 0,
    };
    let mut stmts = Vec::new();
    while !p.at_end() {
        if p.consume_if(&Token::Semicolon) {
            continue;
        }
        let first = p.pos;
        let stmt = p.statement()?;
        stmts.push((stmt, p.span_from(first)));
        if !p.at_end() && !p.consume_if(&Token::Semicolon) {
            return Err(p.err("expected ';' between statements".into()));
        }
    }
    Ok(stmts)
}

struct Parser {
    tokens: Vec<Token>,
    spans: Vec<Span>,
    pos: usize,
}

impl Parser {
    fn err(&self, message: String) -> EngineError {
        EngineError::Parse {
            message,
            position: self.pos,
        }
    }

    /// Byte span of the token at `pos` (empty when out of range).
    fn span_at(&self, pos: usize) -> Span {
        self.spans.get(pos).copied().unwrap_or_default()
    }

    /// Byte span covering tokens `start .. self.pos` (exclusive end).
    fn span_from(&self, start: usize) -> Span {
        let end = self.pos.min(self.spans.len());
        if start >= end {
            return Span::default();
        }
        self.spans[start].cover(self.spans[end - 1])
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_ahead(&self, n: usize) -> Option<&Token> {
        self.tokens.get(self.pos + n)
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn consume_if(&mut self, tok: &Token) -> bool {
        if self.peek() == Some(tok) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, tok: &Token) -> Result<()> {
        if self.consume_if(tok) {
            Ok(())
        } else {
            Err(self.err(format!("expected {:?}, found {:?}", tok, self.peek())))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Keyword(k)) if k == kw)
    }

    fn consume_keyword(&mut self, kw: &str) -> bool {
        if self.peek_keyword(kw) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(self.err(format!("expected {kw}, found {:?}", self.peek())))
        }
    }

    /// Accept an identifier; certain non-reserved keywords are allowed as
    /// identifiers (column names like `key`, `index` show up in practice).
    fn identifier(&mut self) -> Result<String> {
        match self.advance() {
            Some(Token::Ident(name)) => Ok(name),
            Some(Token::Keyword(k))
                if matches!(
                    k.as_str(),
                    "KEY"
                        | "INDEX"
                        | "COUNT"
                        | "SUM"
                        | "AVG"
                        | "MIN"
                        | "MAX"
                        | "SET"
                        | "ALL"
                        | "LEFT"
                        | "RIGHT"
                        | "DO"
                        | "TEXT"
                        | "REAL"
                ) =>
            {
                Ok(k.to_lowercase())
            }
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    // ------------------------------------------------------------------
    // Statements
    // ------------------------------------------------------------------

    fn statement(&mut self) -> Result<Statement> {
        match self.peek() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "SELECT" | "WITH" => Ok(Statement::Query(self.query()?)),
                "EXPLAIN" => {
                    self.pos += 1;
                    let paren_mode = |w: &str| match w {
                        "check" => Some(ExplainMode::Check),
                        "verify" => Some(ExplainMode::Verify),
                        "trace" => Some(ExplainMode::Trace),
                        _ => None,
                    };
                    let mode = if self.consume_keyword("ANALYZE") {
                        ExplainMode::Analyze
                    } else if let Some(mode) = (self.peek() == Some(&Token::LParen)
                        && self.peek_ahead(2) == Some(&Token::RParen))
                    .then(|| match self.peek_ahead(1) {
                        Some(Token::Ident(w)) => paren_mode(&w.to_ascii_lowercase()),
                        _ => None,
                    })
                    .flatten()
                    {
                        self.pos += 3;
                        mode
                    } else {
                        ExplainMode::Plan
                    };
                    Ok(Statement::Explain {
                        mode,
                        query: self.query()?,
                    })
                }
                "CREATE" => self.create(),
                "DROP" => self.drop_table(),
                "INSERT" => self.insert(),
                "DELETE" => self.delete(),
                "UPDATE" => self.update(),
                "BEGIN" => {
                    self.pos += 1;
                    let _ = self.consume_keyword("TRANSACTION");
                    Ok(Statement::Begin)
                }
                "COMMIT" => {
                    self.pos += 1;
                    let _ = self.consume_keyword("TRANSACTION");
                    Ok(Statement::Commit)
                }
                "ROLLBACK" => {
                    self.pos += 1;
                    let _ = self.consume_keyword("TRANSACTION");
                    Ok(Statement::Rollback)
                }
                other => Err(self.err(format!("unsupported statement '{other}'"))),
            },
            other => Err(self.err(format!("expected statement, found {other:?}"))),
        }
    }

    fn create(&mut self) -> Result<Statement> {
        self.expect_keyword("CREATE")?;
        let unique = self.consume_keyword("UNIQUE");
        // TEMP/TEMPORARY are accepted and ignored (all tables are in-memory).
        let _ = self.consume_keyword("TEMP") || self.consume_keyword("TEMPORARY");
        if self.consume_keyword("TABLE") {
            if unique {
                return Err(self.err("UNIQUE TABLE is not valid".into()));
            }
            self.create_table()
        } else if self.consume_keyword("INDEX") {
            self.create_index(unique)
        } else {
            Err(self.err("expected TABLE or INDEX after CREATE".into()))
        }
    }

    fn if_not_exists(&mut self) -> Result<bool> {
        if self.consume_keyword("IF") {
            self.expect_keyword("NOT")?;
            self.expect_keyword("EXISTS")?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        let if_not_exists = self.if_not_exists()?;
        let name = self.identifier()?;
        if self.consume_keyword("AS") {
            let query = self.query()?;
            return Ok(Statement::CreateTableAs {
                name,
                if_not_exists,
                query,
            });
        }
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        let mut primary_key: Vec<String> = Vec::new();
        loop {
            if self.consume_keyword("PRIMARY") {
                self.expect_keyword("KEY")?;
                self.expect(&Token::LParen)?;
                loop {
                    primary_key.push(self.identifier()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            } else {
                let col_name = self.identifier()?;
                let ty = self.data_type()?;
                // Inline constraints.
                loop {
                    if self.consume_keyword("PRIMARY") {
                        self.expect_keyword("KEY")?;
                        primary_key.push(col_name.clone());
                    } else if self.consume_keyword("NOT") {
                        self.expect_keyword("NULL")?;
                    } else if self.consume_keyword("UNIQUE") {
                        // Treated as single-column primary key when no PK given.
                        if primary_key.is_empty() {
                            primary_key.push(col_name.clone());
                        }
                    } else {
                        break;
                    }
                }
                columns.push(ColumnDef { name: col_name, ty });
            }
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateTable(CreateTable {
            name,
            if_not_exists,
            columns,
            primary_key,
        }))
    }

    fn data_type(&mut self) -> Result<DataType> {
        let ty = match self.advance() {
            Some(Token::Keyword(k)) => match k.as_str() {
                "INTEGER" | "INT" | "BIGINT" => DataType::Integer,
                "REAL" | "FLOAT" => DataType::Real,
                "DOUBLE" => {
                    let _ = self.consume_keyword("PRECISION");
                    DataType::Real
                }
                "TEXT" => DataType::Text,
                "VARCHAR" => {
                    // Optional length argument.
                    if self.consume_if(&Token::LParen) {
                        let _ = self.advance();
                        self.expect(&Token::RParen)?;
                    }
                    DataType::Text
                }
                other => return Err(self.err(format!("unknown type '{other}'"))),
            },
            other => return Err(self.err(format!("expected a type, found {other:?}"))),
        };
        Ok(ty)
    }

    fn create_index(&mut self, unique: bool) -> Result<Statement> {
        let if_not_exists = self.if_not_exists()?;
        let name = self.identifier()?;
        self.expect_keyword("ON")?;
        let table = self.identifier()?;
        self.expect(&Token::LParen)?;
        let mut columns = Vec::new();
        loop {
            columns.push(self.identifier()?);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        self.expect(&Token::RParen)?;
        Ok(Statement::CreateIndex(CreateIndex {
            name,
            table,
            columns,
            unique,
            if_not_exists,
        }))
    }

    fn drop_table(&mut self) -> Result<Statement> {
        self.expect_keyword("DROP")?;
        self.expect_keyword("TABLE")?;
        let if_exists = if self.consume_keyword("IF") {
            self.expect_keyword("EXISTS")?;
            true
        } else {
            false
        };
        let name = self.identifier()?;
        Ok(Statement::DropTable { name, if_exists })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table_span = self.span_at(self.pos);
        let table = self.identifier()?;
        let mut columns = Vec::new();
        if self.consume_if(&Token::LParen) {
            loop {
                columns.push(self.identifier()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let source = if self.consume_keyword("VALUES") {
            let mut rows = Vec::new();
            loop {
                self.expect(&Token::LParen)?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
                rows.push(row);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            InsertSource::Values(rows)
        } else {
            InsertSource::Query(self.query()?)
        };
        let on_conflict = if self.consume_keyword("ON") {
            self.expect_keyword("CONFLICT")?;
            let mut target_columns = Vec::new();
            if self.consume_if(&Token::LParen) {
                loop {
                    target_columns.push(self.identifier()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                self.expect(&Token::RParen)?;
            }
            self.expect_keyword("DO")?;
            let action = if self.consume_keyword("NOTHING") {
                ConflictAction::DoNothing
            } else {
                self.expect_keyword("UPDATE")?;
                self.expect_keyword("SET")?;
                let mut assignments = Vec::new();
                loop {
                    let col = self.identifier()?;
                    self.expect(&Token::Eq)?;
                    assignments.push((col, self.expr()?));
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
                ConflictAction::DoUpdate(assignments)
            };
            Some(OnConflict {
                target_columns,
                action,
            })
        } else {
            None
        };
        Ok(Statement::Insert(Insert {
            table,
            table_span,
            columns,
            source,
            on_conflict,
        }))
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table_span = self.span_at(self.pos);
        let table = self.identifier()?;
        let predicate = if self.consume_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Delete {
            table,
            table_span,
            predicate,
        })
    }

    fn update(&mut self) -> Result<Statement> {
        self.expect_keyword("UPDATE")?;
        let table_span = self.span_at(self.pos);
        let table = self.identifier()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.identifier()?;
            self.expect(&Token::Eq)?;
            assignments.push((col, self.expr()?));
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let predicate = if self.consume_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Statement::Update {
            table,
            table_span,
            assignments,
            predicate,
        })
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn query(&mut self) -> Result<Query> {
        let mut ctes = Vec::new();
        if self.consume_keyword("WITH") {
            loop {
                let name = self.identifier()?;
                self.expect_keyword("AS")?;
                self.expect(&Token::LParen)?;
                let query = self.query()?;
                self.expect(&Token::RParen)?;
                ctes.push(Cte { name, query });
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.set_expr()?;
        let mut order_by = Vec::new();
        if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                order_by.push(self.order_item()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let mut limit = None;
        let mut offset = None;
        if self.consume_keyword("LIMIT") {
            limit = Some(self.expr()?);
            if self.consume_keyword("OFFSET") {
                offset = Some(self.expr()?);
            }
        }
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
            offset,
        })
    }

    fn set_expr(&mut self) -> Result<SetExpr> {
        let mut left = self.set_primary()?;
        while self.consume_keyword("UNION") {
            let all = self.consume_keyword("ALL");
            let right = self.set_primary()?;
            left = SetExpr::Union {
                left: Box::new(left),
                right: Box::new(right),
                all,
            };
        }
        Ok(left)
    }

    fn set_primary(&mut self) -> Result<SetExpr> {
        if self.consume_if(&Token::LParen) {
            // Parenthesized query body.
            let inner = self.set_expr()?;
            self.expect(&Token::RParen)?;
            Ok(inner)
        } else {
            Ok(SetExpr::Select(Box::new(self.select()?)))
        }
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_keyword("SELECT")?;
        let distinct = self.consume_keyword("DISTINCT");
        let _ = self.consume_keyword("ALL");
        let mut projection = Vec::new();
        loop {
            projection.push(self.select_item()?);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        if self.consume_keyword("FROM") {
            loop {
                from.push(self.table_ref()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let selection = if self.consume_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.consume_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let having = if self.consume_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
            group_by,
            having,
        })
    }

    fn select_item(&mut self) -> Result<SelectItem> {
        if self.consume_if(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        // `alias.*`
        if let (Some(Token::Ident(name)), Some(Token::Dot), Some(Token::Star)) =
            (self.peek(), self.peek_ahead(1), self.peek_ahead(2))
        {
            let name = name.clone();
            let span = self.span_at(self.pos).cover(self.span_at(self.pos + 2));
            self.pos += 3;
            return Ok(SelectItem::QualifiedWildcard(name, span));
        }
        let expr = self.expr()?;
        let alias = if self.consume_keyword("AS") {
            Some(self.identifier()?)
        } else if let Some(Token::Ident(_)) = self.peek() {
            // Implicit alias: `SELECT a b FROM ...` — allow only a bare ident.
            Some(self.identifier()?)
        } else {
            None
        };
        Ok(SelectItem::Expr { expr, alias })
    }

    fn table_ref(&mut self) -> Result<TableRef> {
        let mut base = self.table_factor()?;
        loop {
            let kind = if self.consume_keyword("JOIN") || {
                if self.peek_keyword("INNER") {
                    self.pos += 1;
                    self.expect_keyword("JOIN")?;
                    true
                } else {
                    false
                }
            } {
                JoinKind::Inner
            } else if self.peek_keyword("LEFT") {
                self.pos += 1;
                let _ = self.consume_keyword("OUTER");
                self.expect_keyword("JOIN")?;
                JoinKind::Left
            } else if self.peek_keyword("CROSS") {
                self.pos += 1;
                self.expect_keyword("JOIN")?;
                JoinKind::Cross
            } else {
                break;
            };
            let right = self.table_factor()?;
            let on = if kind != JoinKind::Cross && self.consume_keyword("ON") {
                Some(self.expr()?)
            } else {
                None
            };
            base = TableRef::Join {
                left: Box::new(base),
                right: Box::new(right),
                kind,
                on,
            };
        }
        Ok(base)
    }

    fn table_factor(&mut self) -> Result<TableRef> {
        if self.consume_if(&Token::LParen) {
            let query = self.query()?;
            self.expect(&Token::RParen)?;
            let alias =
                if self.consume_keyword("AS") || matches!(self.peek(), Some(Token::Ident(_))) {
                    self.identifier()?
                } else {
                    return Err(self.err("derived table requires an alias".into()));
                };
            Ok(TableRef::Derived {
                query: Box::new(query),
                alias,
            })
        } else {
            let span = self.span_at(self.pos);
            let mut name = self.identifier()?;
            // Dotted table names (e.g. the virtual `sys.metrics`) fold into
            // a single qualified name; resolution decides what it means.
            if self.consume_if(&Token::Dot) {
                name = format!("{name}.{}", self.identifier()?);
            }
            let alias =
                if self.consume_keyword("AS") || matches!(self.peek(), Some(Token::Ident(_))) {
                    Some(self.identifier()?)
                } else {
                    None
                };
            Ok(TableRef::Named { name, alias, span })
        }
    }

    fn order_item(&mut self) -> Result<OrderItem> {
        let expr = self.expr()?;
        let descending = if self.consume_keyword("DESC") {
            true
        } else {
            let _ = self.consume_keyword("ASC");
            false
        };
        Ok(OrderItem { expr, descending })
    }

    // ------------------------------------------------------------------
    // Expressions (precedence climbing)
    // ------------------------------------------------------------------

    fn expr(&mut self) -> Result<Expr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<Expr> {
        let start = self.pos;
        let mut left = self.and_expr()?;
        while self.consume_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
                span: self.span_from(start),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr> {
        let start = self.pos;
        let mut left = self.not_expr()?;
        while self.consume_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
                span: self.span_from(start),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr> {
        let start = self.pos;
        if self.consume_keyword("NOT") {
            let inner = self.not_expr()?;
            Ok(Expr::Unary {
                op: UnaryOp::Not,
                expr: Box::new(inner),
                span: self.span_from(start),
            })
        } else {
            self.comparison()
        }
    }

    fn comparison(&mut self) -> Result<Expr> {
        let start = self.pos;
        let left = self.additive()?;
        // IS [NOT] NULL
        if self.consume_keyword("IS") {
            let negated = self.consume_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
                span: self.span_from(start),
            });
        }
        let negated = if self.peek_keyword("NOT")
            && matches!(
                self.peek_ahead(1),
                Some(Token::Keyword(k)) if k == "IN" || k == "BETWEEN" || k == "LIKE"
            ) {
            self.pos += 1;
            true
        } else {
            false
        };
        if self.consume_keyword("IN") {
            self.expect(&Token::LParen)?;
            if matches!(self.peek(), Some(Token::Keyword(k)) if k == "SELECT" || k == "WITH") {
                let query = self.query()?;
                self.expect(&Token::RParen)?;
                return Ok(Expr::InSubquery {
                    expr: Box::new(left),
                    query: Box::new(query),
                    negated,
                    span: self.span_from(start),
                });
            }
            let mut list = Vec::new();
            loop {
                list.push(self.expr()?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::InList {
                expr: Box::new(left),
                list,
                negated,
                span: self.span_from(start),
            });
        }
        if self.consume_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
                negated,
                span: self.span_from(start),
            });
        }
        if self.consume_keyword("LIKE") {
            let pattern = self.additive()?;
            return Ok(Expr::Like {
                expr: Box::new(left),
                pattern: Box::new(pattern),
                negated,
                span: self.span_from(start),
            });
        }
        let op = match self.peek() {
            Some(Token::Eq) => Some(BinaryOp::Eq),
            Some(Token::NotEq) => Some(BinaryOp::NotEq),
            Some(Token::Lt) => Some(BinaryOp::Lt),
            Some(Token::LtEq) => Some(BinaryOp::LtEq),
            Some(Token::Gt) => Some(BinaryOp::Gt),
            Some(Token::GtEq) => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.pos += 1;
            let right = self.additive()?;
            Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
                span: self.span_from(start),
            })
        } else {
            Ok(left)
        }
    }

    fn additive(&mut self) -> Result<Expr> {
        let start = self.pos;
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                Some(Token::Plus) => BinaryOp::Add,
                Some(Token::Minus) => BinaryOp::Sub,
                Some(Token::Concat) => BinaryOp::Concat,
                _ => break,
            };
            self.pos += 1;
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
                span: self.span_from(start),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr> {
        let start = self.pos;
        let mut left = self.unary()?;
        loop {
            let op = match self.peek() {
                Some(Token::Star) => BinaryOp::Mul,
                Some(Token::Slash) => BinaryOp::Div,
                Some(Token::Percent) => BinaryOp::Mod,
                _ => break,
            };
            self.pos += 1;
            let right = self.unary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
                span: self.span_from(start),
            };
        }
        Ok(left)
    }

    fn unary(&mut self) -> Result<Expr> {
        let start = self.pos;
        if self.consume_if(&Token::Minus) {
            let inner = self.unary()?;
            Ok(Expr::Unary {
                op: UnaryOp::Neg,
                expr: Box::new(inner),
                span: self.span_from(start),
            })
        } else if self.consume_if(&Token::Plus) {
            self.unary()
        } else {
            self.primary()
        }
    }

    fn primary(&mut self) -> Result<Expr> {
        let start = self.pos;
        match self.peek().cloned() {
            Some(Token::Int(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(v), self.span_from(start)))
            }
            Some(Token::Float(v)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Float(v), self.span_from(start)))
            }
            Some(Token::Str(s)) => {
                self.pos += 1;
                Ok(Expr::Literal(Value::text(s), self.span_from(start)))
            }
            Some(Token::Param(i)) => {
                self.pos += 1;
                Ok(Expr::Param(i, self.span_from(start)))
            }
            Some(Token::LParen) => {
                self.pos += 1;
                if matches!(self.peek(), Some(Token::Keyword(k)) if k == "SELECT" || k == "WITH") {
                    let query = self.query()?;
                    self.expect(&Token::RParen)?;
                    return Ok(Expr::ScalarSubquery(Box::new(query), self.span_from(start)));
                }
                let inner = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(inner)
            }
            Some(Token::Keyword(k)) => self.keyword_primary(&k),
            Some(Token::Ident(_)) => self.ident_primary(),
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }

    fn keyword_primary(&mut self, k: &str) -> Result<Expr> {
        let start = self.pos;
        match k {
            "NULL" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Null, self.span_from(start)))
            }
            "TRUE" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(1), self.span_from(start)))
            }
            "FALSE" => {
                self.pos += 1;
                Ok(Expr::Literal(Value::Int(0), self.span_from(start)))
            }
            "CASE" => self.case_expr(),
            "CAST" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let expr = self.expr()?;
                self.expect_keyword("AS")?;
                let ty = self.data_type()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Cast {
                    expr: Box::new(expr),
                    ty,
                    span: self.span_from(start),
                })
            }
            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                // Aggregate unless not followed by '(' (then treat as column).
                if self.peek_ahead(1) != Some(&Token::LParen) {
                    self.pos += 1;
                    return self.ident_tail(k.to_lowercase(), start);
                }
                let func = match k {
                    "COUNT" => AggregateFunc::Count,
                    "SUM" => AggregateFunc::Sum,
                    "AVG" => AggregateFunc::Avg,
                    "MIN" => AggregateFunc::Min,
                    "MAX" => AggregateFunc::Max,
                    _ => unreachable!(),
                };
                self.pos += 2; // keyword + '('
                let distinct = self.consume_keyword("DISTINCT");
                let arg = if self.consume_if(&Token::Star) {
                    if func != AggregateFunc::Count {
                        return Err(self.err(format!("{k}(*) is only valid for COUNT")));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect(&Token::RParen)?;
                Ok(Expr::Aggregate {
                    func,
                    arg,
                    distinct,
                    span: self.span_from(start),
                })
            }
            "ROW_NUMBER" | "RANK" | "DENSE_RANK" => {
                let func = match k {
                    "ROW_NUMBER" => WindowFunc::RowNumber,
                    "RANK" => WindowFunc::Rank,
                    _ => WindowFunc::DenseRank,
                };
                self.pos += 1;
                self.expect(&Token::LParen)?;
                self.expect(&Token::RParen)?;
                self.expect_keyword("OVER")?;
                self.expect(&Token::LParen)?;
                let mut partition_by = Vec::new();
                if self.consume_keyword("PARTITION") {
                    self.expect_keyword("BY")?;
                    loop {
                        partition_by.push(self.expr()?);
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                }
                let mut order_by = Vec::new();
                if self.consume_keyword("ORDER") {
                    self.expect_keyword("BY")?;
                    loop {
                        order_by.push(self.order_item()?);
                        if !self.consume_if(&Token::Comma) {
                            break;
                        }
                    }
                }
                self.expect(&Token::RParen)?;
                Ok(Expr::WindowRowNumber {
                    func,
                    partition_by,
                    order_by,
                    span: self.span_from(start),
                })
            }
            "EXISTS" => {
                self.pos += 1;
                self.expect(&Token::LParen)?;
                let query = self.query()?;
                self.expect(&Token::RParen)?;
                Ok(Expr::Exists {
                    query: Box::new(query),
                    negated: false,
                    span: self.span_from(start),
                })
            }
            "EXCLUDED" => {
                // `excluded.col` inside ON CONFLICT DO UPDATE.
                self.pos += 1;
                self.expect(&Token::Dot)?;
                let name = self.identifier()?;
                Ok(Expr::Column {
                    qualifier: Some("excluded".into()),
                    name,
                    span: self.span_from(start),
                })
            }
            other => Err(self.err(format!("unexpected keyword '{other}' in expression"))),
        }
    }

    fn case_expr(&mut self) -> Result<Expr> {
        let start = self.pos;
        self.expect_keyword("CASE")?;
        let operand = if !self.peek_keyword("WHEN") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        let mut branches = Vec::new();
        while self.consume_keyword("WHEN") {
            let when = self.expr()?;
            self.expect_keyword("THEN")?;
            let then = self.expr()?;
            branches.push((when, then));
        }
        if branches.is_empty() {
            return Err(self.err("CASE requires at least one WHEN branch".into()));
        }
        let else_expr = if self.consume_keyword("ELSE") {
            Some(Box::new(self.expr()?))
        } else {
            None
        };
        self.expect_keyword("END")?;
        Ok(Expr::Case {
            operand,
            branches,
            else_expr,
            span: self.span_from(start),
        })
    }

    fn ident_primary(&mut self) -> Result<Expr> {
        let start = self.pos;
        let name = self.identifier()?;
        self.ident_tail(name, start)
    }

    /// Continue parsing a primary whose leading identifier (`name`) has
    /// already been consumed: function call, qualified column, or bare column.
    /// `start` is the token position of that identifier.
    fn ident_tail(&mut self, name: String, start: usize) -> Result<Expr> {
        // Function call?
        if self.peek() == Some(&Token::LParen) {
            self.pos += 1;
            let mut args = Vec::new();
            if self.peek() != Some(&Token::RParen) {
                loop {
                    args.push(self.expr()?);
                    if !self.consume_if(&Token::Comma) {
                        break;
                    }
                }
            }
            self.expect(&Token::RParen)?;
            return Ok(Expr::Function {
                name: name.to_uppercase(),
                args,
                span: self.span_from(start),
            });
        }
        // Qualified column?
        if self.consume_if(&Token::Dot) {
            let col = self.identifier()?;
            return Ok(Expr::Column {
                qualifier: Some(name),
                name: col,
                span: self.span_from(start),
            });
        }
        Ok(Expr::Column {
            qualifier: None,
            name,
            span: self.span_from(start),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(sql: &str) -> Statement {
        parse_statement(sql).unwrap_or_else(|e| panic!("parse failed for {sql:?}: {e}"))
    }

    #[test]
    fn parses_select_with_joins_and_group_by() {
        let stmt = parse(
            "SELECT X_nj.j AS j, Y_nk.k AS k, SUM(X_nj.w * Y_nk.w) AS w \
             FROM X_nj, Y_nk WHERE X_nj.n = Y_nk.n GROUP BY X_nj.j, Y_nk.k",
        );
        let Statement::Query(q) = stmt else {
            panic!("expected query")
        };
        let SetExpr::Select(s) = q.body else {
            panic!("expected select")
        };
        assert_eq!(s.projection.len(), 3);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.group_by.len(), 2);
    }

    #[test]
    fn parses_with_cte_and_union_all() {
        let stmt = parse(
            "WITH a AS (SELECT 1 AS x), b AS (SELECT 2 AS x) \
             SELECT x FROM a UNION ALL SELECT x FROM b ORDER BY x DESC LIMIT 1",
        );
        let Statement::Query(q) = stmt else { panic!() };
        assert_eq!(q.ctes.len(), 2);
        assert!(matches!(q.body, SetExpr::Union { all: true, .. }));
        assert_eq!(q.order_by.len(), 1);
        assert!(q.order_by[0].descending);
        assert!(q.limit.is_some());
    }

    #[test]
    fn parses_row_number_window() {
        let stmt =
            parse("SELECT n, k, ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC) AS r FROM t");
        let Statement::Query(q) = stmt else { panic!() };
        let SetExpr::Select(s) = q.body else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.projection[2] else {
            panic!()
        };
        assert!(matches!(expr, Expr::WindowRowNumber { .. }));
    }

    #[test]
    fn parses_insert_on_conflict_do_update() {
        let stmt = parse(
            "INSERT INTO corpus (j, k, w) SELECT j, k, w FROM P_jk \
             ON CONFLICT (j, k) DO UPDATE SET w = corpus.w + excluded.w",
        );
        let Statement::Insert(ins) = stmt else {
            panic!()
        };
        assert_eq!(ins.columns, vec!["j", "k", "w"]);
        let oc = ins.on_conflict.unwrap();
        assert_eq!(oc.target_columns, vec!["j", "k"]);
        let ConflictAction::DoUpdate(assignments) = oc.action else {
            panic!()
        };
        assert_eq!(assignments.len(), 1);
        assert_eq!(assignments[0].0, "w");
    }

    #[test]
    fn parses_create_table_with_pk() {
        let stmt = parse(
            "CREATE TABLE IF NOT EXISTS m_corpus (j TEXT, k INTEGER, w REAL, PRIMARY KEY (j, k))",
        );
        let Statement::CreateTable(ct) = stmt else {
            panic!()
        };
        assert!(ct.if_not_exists);
        assert_eq!(ct.columns.len(), 3);
        assert_eq!(ct.primary_key, vec!["j", "k"]);
    }

    #[test]
    fn parses_case_cast_functions() {
        parse("SELECT CASE WHEN a > 0 THEN 'pos' ELSE 'neg' END, CAST(x AS REAL), POW(w, 2.0), LN(w) FROM t");
    }

    #[test]
    fn parses_concat_and_modulo() {
        let stmt = parse("SELECT 'k:' || name FROM t WHERE id % 10 <= 3");
        let Statement::Query(_) = stmt else { panic!() };
    }

    #[test]
    fn parses_derived_table() {
        parse(
            "SELECT r.n FROM (SELECT n, ROW_NUMBER() OVER (PARTITION BY n ORDER BY w DESC) AS r FROM t) AS r WHERE r.r = 1",
        );
    }

    #[test]
    fn parses_select_without_from() {
        parse("SELECT 13 AS n");
    }

    #[test]
    fn parses_delete_update() {
        parse("DELETE FROM t WHERE id < 5");
        parse("UPDATE params SET a = 0.5, b = 1.0 WHERE model = 'm'");
    }

    #[test]
    fn parses_script() {
        let stmts =
            parse_script("CREATE TABLE t (a INTEGER); INSERT INTO t VALUES (1), (2);").unwrap();
        assert_eq!(stmts.len(), 2);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_statement("SELEC 1").is_err());
        assert!(parse_statement("SELECT FROM").is_err());
        assert!(parse_statement("SELECT 1 extra garbage ,,,").is_err());
    }

    #[test]
    fn parses_left_join() {
        let stmt = parse("SELECT a.x FROM a LEFT JOIN b ON a.id = b.id");
        let Statement::Query(q) = stmt else { panic!() };
        let SetExpr::Select(s) = q.body else { panic!() };
        assert!(matches!(
            &s.from[0],
            TableRef::Join {
                kind: JoinKind::Left,
                ..
            }
        ));
    }

    #[test]
    fn parses_in_between_like() {
        parse("SELECT * FROM t WHERE a IN (1, 2, 3) AND b BETWEEN 0 AND 9 AND c LIKE 'x%' AND d NOT IN (4)");
    }

    #[test]
    fn parses_count_distinct() {
        let stmt = parse("SELECT COUNT(DISTINCT j) FROM x");
        let Statement::Query(q) = stmt else { panic!() };
        let SetExpr::Select(s) = q.body else { panic!() };
        let SelectItem::Expr { expr, .. } = &s.projection[0] else {
            panic!()
        };
        assert!(matches!(
            expr,
            Expr::Aggregate {
                func: AggregateFunc::Count,
                distinct: true,
                ..
            }
        ));
    }
}
