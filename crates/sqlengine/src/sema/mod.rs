//! Static semantic analysis: name resolution, type inference, and misuse
//! diagnostics over the AST, *before* planning or execution.
//!
//! The analyzer mirrors the planner's pipeline step for step — CTE frames,
//! FROM-scope construction, wildcard expansion, the aggregate rewrite with
//! `#g`/`#a` markers, window markers, projection naming, and the ORDER BY
//! output-scope-then-fallback resolution — so that a query which passes
//! [`check_statement`] binds and plans the same way it was checked. On top
//! of the planner's structural rules it adds what binding alone cannot see:
//!
//! * bottom-up **type inference** using the declared column types in the
//!   catalog (rows are coerced to their declared types on insert, so the
//!   static types are trustworthy) and the same [`coerce`] table the runtime
//!   evaluator dispatches through;
//! * **misuse diagnostics** with byte spans: unknown/ambiguous columns,
//!   aggregates in WHERE/GROUP BY, nested aggregates, window functions
//!   outside the SELECT list, non-grouped column references, arity and
//!   type errors;
//! * **constant-expression errors** (`SELECT 1/0`) caught at check time by
//!   the strictness-aware folder in [`fold`].
//!
//! Typing is deliberately lenient wherever the engine is dynamically typed:
//! `Any` (untyped columns, parameters, `NULL`) passes everywhere, and only
//! certainly-wrong expressions — a declared-`TEXT` operand in arithmetic, a
//! `SUM` over a `TEXT` column — are rejected. The invariant, pinned by a
//! property test, is that a query which passes `check` never raises a
//! *type-shaped* runtime error.

pub(crate) mod fold;

use std::collections::HashMap;

use crate::ast::{
    AggregateFunc, BinaryOp, Cte, Expr, Insert, InsertSource, OrderItem, Query, Select, SelectItem,
    SetExpr, Statement, TableRef, UnaryOp,
};
use crate::catalog::Catalog;
use crate::error::{EngineError, Result, Span};
use crate::expr::{coerce, BinCoercion, ColLabel, ScalarFunc, Scope};
use crate::plan::{collect_aggregates, collect_windows, display_name, replace_subtree};
use crate::value::{DataType, Value};

/// The result of a successful static check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckReport {
    /// Output columns of the checked query with their inferred types
    /// (empty for DML and DDL statements).
    pub columns: Vec<(String, DataType)>,
}

/// Statically check a statement against `catalog`. Queries return their
/// typed output schema; DML statements are validated (target table and
/// columns, predicate and assignment types, conflict clauses) and return an
/// empty report. DDL and transaction-control statements are validated by
/// the catalog at execution time and pass through unchecked.
pub fn check_statement(catalog: &Catalog, stmt: &Statement) -> Result<CheckReport> {
    let mut a = Analyzer::new(catalog);
    match stmt {
        Statement::Query(q)
        | Statement::Explain { query: q, .. }
        | Statement::CreateTableAs { query: q, .. } => Ok(CheckReport {
            columns: a.check_query(q)?,
        }),
        Statement::Insert(insert) => {
            a.check_insert(insert)?;
            Ok(CheckReport { columns: vec![] })
        }
        Statement::Delete {
            table,
            table_span,
            predicate,
        } => {
            a.check_delete(table, *table_span, predicate.as_ref())?;
            Ok(CheckReport { columns: vec![] })
        }
        Statement::Update {
            table,
            table_span,
            assignments,
            predicate,
        } => {
            a.check_update(table, *table_span, assignments, predicate.as_ref())?;
            Ok(CheckReport { columns: vec![] })
        }
        Statement::CreateTable(_)
        | Statement::CreateIndex(_)
        | Statement::DropTable { .. }
        | Statement::Begin
        | Statement::Commit
        | Statement::Rollback => Ok(CheckReport { columns: vec![] }),
    }
}

/// Statically check a bare query (used by `EXPLAIN (CHECK)`).
pub fn check_query(catalog: &Catalog, query: &Query) -> Result<CheckReport> {
    Ok(CheckReport {
        columns: Analyzer::new(catalog).check_query(query)?,
    })
}

/// Which clause an expression is being checked in. Drives the placement
/// rules for aggregates, window functions, and subqueries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Clause {
    Projection,
    Where,
    GroupBy,
    Having,
    OrderBy,
    JoinOn,
    /// DML predicates (DELETE/UPDATE WHERE): subqueries are resolved by the
    /// engine before binding, so they are allowed here.
    DmlPredicate,
    /// Positions bound directly with `bind_expr` and no subquery resolution:
    /// INSERT VALUES rows, UPDATE / DO UPDATE SET assignments, LIMIT/OFFSET.
    Bare,
}

impl Clause {
    fn allows_subqueries(self) -> bool {
        matches!(
            self,
            Clause::Projection
                | Clause::Where
                | Clause::GroupBy
                | Clause::Having
                | Clause::DmlPredicate
        )
    }
}

/// Per-expression checking context.
#[derive(Clone, Copy)]
struct Ctx<'s> {
    clause: Clause,
    /// Inside an aggregate argument (nested aggregates are invalid).
    in_aggregate: bool,
    /// Inside a window's PARTITION BY / ORDER BY (windows cannot nest).
    in_window: bool,
    /// The pre-aggregation scope, set while checking the rewritten
    /// projection/HAVING/ORDER BY of a grouped query. A column that resolves
    /// here but not in the aggregate output scope gets the "must appear in
    /// GROUP BY" diagnostic instead of "unknown column".
    pre_group_scope: Option<&'s Scope>,
}

impl Ctx<'_> {
    fn clause(clause: Clause) -> Ctx<'static> {
        Ctx {
            clause,
            in_aggregate: false,
            in_window: false,
            pre_group_scope: None,
        }
    }
}

struct Analyzer<'a> {
    catalog: &'a Catalog,
    /// CTE name → output columns, innermost frame last. CTEs are visible to
    /// later CTEs of the same WITH and to the query body, in order.
    cte_frames: Vec<HashMap<String, Vec<(String, DataType)>>>,
}

/// Least upper bound of two static types: equal types keep themselves, the
/// numeric pair widens to `REAL`, everything else (and anything unknown)
/// becomes `ANY`.
fn unify(a: DataType, b: DataType) -> DataType {
    use DataType::*;
    match (a, b) {
        (a, b) if a == b => a,
        (Integer, Real) | (Real, Integer) => Real,
        _ => Any,
    }
}

fn op_symbol(op: BinaryOp) -> &'static str {
    use BinaryOp::*;
    match op {
        Add => "+",
        Sub => "-",
        Mul => "*",
        Div => "/",
        Mod => "%",
        Concat => "||",
        Eq => "=",
        NotEq => "<>",
        Lt => "<",
        LtEq => "<=",
        Gt => ">",
        GtEq => ">=",
        And => "AND",
        Or => "OR",
    }
}

impl<'a> Analyzer<'a> {
    fn new(catalog: &'a Catalog) -> Self {
        Analyzer {
            catalog,
            cte_frames: Vec::new(),
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    fn check_query(&mut self, query: &Query) -> Result<Vec<(String, DataType)>> {
        let mut frame: HashMap<String, Vec<(String, DataType)>> = HashMap::new();
        for cte in &query.ctes {
            let cols = self.check_cte(cte, &frame);
            frame.insert(cte.name.to_ascii_lowercase(), cols?);
        }
        self.cte_frames.push(frame);
        let result = self.check_query_body(query);
        self.cte_frames.pop();
        result
    }

    fn check_cte(
        &mut self,
        cte: &Cte,
        earlier: &HashMap<String, Vec<(String, DataType)>>,
    ) -> Result<Vec<(String, DataType)>> {
        // Each CTE sees the CTEs defined before it in the same WITH.
        self.cte_frames.push(earlier.clone());
        let cols = self.check_query(&cte.query);
        self.cte_frames.pop();
        cols
    }

    fn check_query_body(&mut self, query: &Query) -> Result<Vec<(String, DataType)>> {
        let cols = match &query.body {
            SetExpr::Select(select) => self.check_select(select, &query.order_by)?,
            SetExpr::Union { .. } => {
                let cols = self.check_set_expr(&query.body)?;
                // ORDER BY over a union binds against the union's output.
                let scope = Scope::new(
                    cols.iter()
                        .map(|(n, t)| ColLabel::bare(n).with_ty(*t))
                        .collect(),
                );
                for oi in &query.order_by {
                    self.check_order_item(oi, &scope, cols.len(), None)
                        .map(|_| ())?;
                }
                cols
            }
        };
        if let Some(e) = &query.limit {
            self.check_limit(e, "LIMIT")?;
        }
        if let Some(e) = &query.offset {
            self.check_limit(e, "OFFSET")?;
        }
        Ok(cols)
    }

    fn check_set_expr(&mut self, body: &SetExpr) -> Result<Vec<(String, DataType)>> {
        match body {
            SetExpr::Select(select) => self.check_select(select, &[]),
            SetExpr::Union { left, right, .. } => {
                let l = self.check_set_expr(left)?;
                let r = self.check_set_expr(right)?;
                if l.len() != r.len() {
                    return Err(EngineError::sema(
                        format!(
                            "UNION arms have different column counts ({} vs {})",
                            l.len(),
                            r.len()
                        ),
                        Span::default(),
                    ));
                }
                // Column names come from the left arm; types unify.
                Ok(l.into_iter()
                    .zip(r)
                    .map(|((name, lt), (_, rt))| (name, unify(lt, rt)))
                    .collect())
            }
        }
    }

    /// Mirror the planner's `const_usize`: LIMIT/OFFSET must bind over an
    /// empty scope; when parameter-free it must fold to a non-negative
    /// integer at check time.
    fn check_limit(&mut self, e: &Expr, what: &str) -> Result<()> {
        self.infer(e, &Scope::default(), Ctx::clause(Clause::Bare))?;
        if !fold::is_const(e) {
            // Contains a parameter; the value is only known at execution.
            return Ok(());
        }
        let mut c = e.clone();
        fold::fold_expr(&mut c, true)?;
        match &c {
            Expr::Literal(Value::Int(i), _) if *i >= 0 => Ok(()),
            _ => Err(EngineError::sema(
                format!("{what} must be a non-negative integer"),
                e.span(),
            )),
        }
    }

    // ------------------------------------------------------------------
    // SELECT
    // ------------------------------------------------------------------

    fn check_select(
        &mut self,
        select: &Select,
        order_by: &[OrderItem],
    ) -> Result<Vec<(String, DataType)>> {
        // 1. FROM: build the input scope.
        let mut scope = Scope::default();
        for (i, tref) in select.from.iter().enumerate() {
            let s = self.check_table_ref(tref)?;
            scope = if i == 0 { s } else { scope.join(&s) };
        }

        // 2. WHERE.
        if let Some(sel) = &select.selection {
            let ty = self.infer(sel, &scope, Ctx::clause(Clause::Where))?;
            self.require_boolean(ty, sel.span())?;
            fold::check_expr(sel)?;
        }

        // 3. Expand projection wildcards (mirrors the planner: before
        //    aggregation, so expanded columns join the grouping checks).
        let mut proj_items: Vec<(Expr, Option<String>)> = Vec::new();
        for item in &select.projection {
            match item {
                SelectItem::Wildcard => {
                    for label in &scope.labels {
                        proj_items.push((
                            Expr::Column {
                                qualifier: label.qualifier.clone(),
                                name: label.name.clone(),
                                span: Span::default(),
                            },
                            Some(label.name.clone()),
                        ));
                    }
                }
                SelectItem::QualifiedWildcard(q, wspan) => {
                    let mut any = false;
                    for label in &scope.labels {
                        if label
                            .qualifier
                            .as_deref()
                            .is_some_and(|lq| lq.eq_ignore_ascii_case(q))
                        {
                            proj_items.push((
                                Expr::Column {
                                    qualifier: label.qualifier.clone(),
                                    name: label.name.clone(),
                                    span: *wspan,
                                },
                                Some(label.name.clone()),
                            ));
                            any = true;
                        }
                    }
                    if !any {
                        return Err(EngineError::sema(
                            format!("unknown table alias '{q}.*'"),
                            *wspan,
                        ));
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    proj_items.push((expr.clone(), alias.clone()));
                }
            }
        }

        // 4. Aggregation (same trigger as the planner).
        let has_aggregates = !select.group_by.is_empty()
            || proj_items.iter().any(|(e, _)| e.contains_aggregate())
            || select
                .having
                .as_ref()
                .is_some_and(|h| h.contains_aggregate());
        let mut order_items: Vec<OrderItem> = order_by.to_vec();
        let mut having = select.having.clone();
        let pre_group_scope;
        let mut grouped: Option<&Scope> = None;

        if has_aggregates {
            // GROUP BY expressions check over the input scope; aggregates
            // and windows inside them are rejected by `infer`.
            let mut group_types = Vec::with_capacity(select.group_by.len());
            for g in &select.group_by {
                group_types.push(self.infer(g, &scope, Ctx::clause(Clause::GroupBy))?);
                fold::check_expr(g)?;
            }

            // Collect aggregate calls (structurally deduplicated) from the
            // projection, HAVING, and ORDER BY — exactly what the planner
            // turns into aggregate output columns.
            let mut agg_exprs: Vec<Expr> = Vec::new();
            for (e, _) in &proj_items {
                collect_aggregates(e, &mut agg_exprs);
            }
            if let Some(h) = &having {
                collect_aggregates(h, &mut agg_exprs);
            }
            for oi in &order_items {
                collect_aggregates(&oi.expr, &mut agg_exprs);
            }
            let mut agg_types = Vec::with_capacity(agg_exprs.len());
            for a in &agg_exprs {
                let Expr::Aggregate {
                    func, arg, span, ..
                } = a
                else {
                    unreachable!("collect_aggregates yields aggregate nodes")
                };
                agg_types.push(self.aggregate_type(*func, arg.as_deref(), &scope, *span)?);
            }

            // Aggregate output scope: group keys keep their labels when they
            // are simple columns; synthesized keys and aggregates get typed
            // `#g{i}` / `#a{i}` markers (mirrors `plan_aggregate`).
            let mut labels = Vec::with_capacity(group_types.len() + agg_types.len());
            for (i, (g, ty)) in select.group_by.iter().zip(&group_types).enumerate() {
                match g {
                    Expr::Column {
                        qualifier, name, ..
                    } => labels.push(ColLabel::new(qualifier.as_deref(), name).with_ty(*ty)),
                    _ => labels.push(ColLabel::bare(&format!("#g{i}")).with_ty(*ty)),
                }
            }
            for (i, ty) in agg_types.iter().enumerate() {
                labels.push(ColLabel::bare(&format!("#a{i}")).with_ty(*ty));
            }
            let out_scope = Scope::new(labels);

            let rewrite = |e: &mut Expr| {
                for (i, g) in select.group_by.iter().enumerate() {
                    let replacement = match g {
                        Expr::Column { .. } => g.clone(),
                        _ => Expr::col(format!("#g{i}")),
                    };
                    replace_subtree(e, g, &replacement);
                }
                for (i, a) in agg_exprs.iter().enumerate() {
                    replace_subtree(e, a, &Expr::col(format!("#a{i}")));
                }
            };
            for (e, _) in proj_items.iter_mut() {
                rewrite(e);
            }
            if let Some(h) = having.as_mut() {
                rewrite(h);
            }
            for oi in order_items.iter_mut() {
                rewrite(&mut oi.expr);
            }

            pre_group_scope = std::mem::replace(&mut scope, out_scope);
            grouped = Some(&pre_group_scope);
        } else if let Some(h) = &select.having {
            return Err(EngineError::sema(
                "HAVING requires GROUP BY or aggregates",
                h.span(),
            ));
        }

        // 5. HAVING checks over the aggregate output scope.
        if let Some(h) = &having {
            let ctx = Ctx {
                pre_group_scope: grouped,
                ..Ctx::clause(Clause::Having)
            };
            let ty = self.infer(h, &scope, ctx)?;
            self.require_boolean(ty, h.span())?;
            fold::check_expr(h)?;
        }

        // 6. Window functions: collected from the projection only (mirrors
        //    the planner), children check over the current scope, then each
        //    window becomes a typed `#w` marker in projection and ORDER BY.
        //    Any window the analyzer later *encounters* during inference is
        //    therefore misplaced.
        let mut window_specs: Vec<Expr> = Vec::new();
        for (e, _) in &proj_items {
            collect_windows(e, &mut window_specs);
        }
        for w in window_specs.clone() {
            let Expr::WindowRowNumber {
                partition_by,
                order_by: worder,
                ..
            } = &w
            else {
                unreachable!("collect_windows yields window nodes")
            };
            let wctx = Ctx {
                in_window: true,
                pre_group_scope: grouped,
                ..Ctx::clause(Clause::Projection)
            };
            for p in partition_by {
                self.infer(p, &scope, wctx)?;
            }
            for oi in worder {
                self.infer(&oi.expr, &scope, wctx)?;
            }
            let marker = format!("#w{}", scope.len());
            scope
                .labels
                .push(ColLabel::bare(&marker).with_ty(DataType::Integer));
            let replacement = Expr::col(marker);
            for (e, _) in proj_items.iter_mut() {
                replace_subtree(e, &w, &replacement);
            }
            for oi in order_items.iter_mut() {
                replace_subtree(&mut oi.expr, &w, &replacement);
            }
        }

        // 7. Projection: infer each output type and derive output names the
        //    same way the planner does.
        let mut out: Vec<(String, DataType)> = Vec::with_capacity(proj_items.len());
        for (i, (e, alias)) in proj_items.iter().enumerate() {
            let ctx = Ctx {
                pre_group_scope: grouped,
                ..Ctx::clause(Clause::Projection)
            };
            let ty = self.infer(e, &scope, ctx)?;
            fold::check_expr(e)?;
            let name = alias.clone().unwrap_or_else(|| display_name(e, i));
            out.push((name, ty));
        }

        // 8. ORDER BY: ordinals check against the output width; otherwise
        //    try the output scope and fall back to the pre-projection scope
        //    (the planner computes a hidden sort column in that case, which
        //    SELECT DISTINCT forbids).
        let out_scope = Scope::new(
            out.iter()
                .map(|(n, t)| ColLabel::bare(n).with_ty(*t))
                .collect(),
        );
        let mut hidden = false;
        for oi in &order_items {
            hidden |= self.check_order_item(oi, &out_scope, out.len(), Some(&scope))?;
        }
        if select.distinct && hidden {
            return Err(EngineError::sema(
                "SELECT DISTINCT with ORDER BY on non-output expressions is not supported",
                Span::default(),
            ));
        }

        Ok(out)
    }

    /// Check one ORDER BY item. Returns true when the item only resolved
    /// against the fallback (pre-projection) scope, i.e. the planner would
    /// need a hidden sort column.
    fn check_order_item(
        &mut self,
        oi: &OrderItem,
        out_scope: &Scope,
        out_width: usize,
        fallback: Option<&Scope>,
    ) -> Result<bool> {
        if let Expr::Literal(Value::Int(ordinal), span) = &oi.expr {
            (*ordinal as usize)
                .checked_sub(1)
                .filter(|&i| i < out_width)
                .ok_or_else(|| {
                    EngineError::sema(format!("ORDER BY ordinal {ordinal} out of range"), *span)
                })?;
            return Ok(false);
        }
        let ctx = Ctx::clause(Clause::OrderBy);
        match self.infer(&oi.expr, out_scope, ctx) {
            Ok(_) => Ok(false),
            Err(out_err) => match fallback {
                Some(scope) => {
                    self.infer(&oi.expr, scope, ctx)?;
                    Ok(true)
                }
                None => Err(out_err),
            },
        }
    }

    // ------------------------------------------------------------------
    // FROM
    // ------------------------------------------------------------------

    fn check_table_ref(&mut self, tref: &TableRef) -> Result<Scope> {
        match tref {
            TableRef::Named { name, alias, span } => {
                let qual = alias.clone().unwrap_or_else(|| name.clone());
                if let Some(cols) = self.lookup_cte(name) {
                    return Ok(Scope::new(
                        cols.iter()
                            .map(|(n, t)| ColLabel::new(Some(&qual), n).with_ty(*t))
                            .collect(),
                    ));
                }
                // Virtual `sys.*` tables have static schemas the analyzer
                // resolves without consulting any runtime registry.
                if let Some(schema) = crate::telemetry::sys::schema(name) {
                    return Ok(Scope::new(
                        schema
                            .columns
                            .iter()
                            .map(|c| ColLabel::new(Some(&qual), &c.name).with_ty(c.ty))
                            .collect(),
                    ));
                }
                if crate::telemetry::sys::is_sys_name(name) {
                    return Err(EngineError::sema(
                        format!("unknown system table '{name}'"),
                        *span,
                    ));
                }
                let table = self.catalog.get(name).map_err(|_| {
                    EngineError::sema(format!("table '{name}' does not exist"), *span)
                })?;
                Ok(Scope::new(
                    table
                        .schema
                        .columns
                        .iter()
                        .map(|c| ColLabel::new(Some(&qual), &c.name).with_ty(c.ty))
                        .collect(),
                ))
            }
            TableRef::Derived { query, alias } => {
                let cols = self.check_query(query)?;
                Ok(Scope::new(
                    cols.iter()
                        .map(|(n, t)| ColLabel::new(Some(alias), n).with_ty(*t))
                        .collect(),
                ))
            }
            TableRef::Join {
                left, right, on, ..
            } => {
                let l = self.check_table_ref(left)?;
                let r = self.check_table_ref(right)?;
                let joined = l.join(&r);
                if let Some(cond) = on {
                    let ty = self.infer(cond, &joined, Ctx::clause(Clause::JoinOn))?;
                    self.require_boolean(ty, cond.span())?;
                    fold::check_expr(cond)?;
                }
                Ok(joined)
            }
        }
    }

    fn lookup_cte(&self, name: &str) -> Option<&Vec<(String, DataType)>> {
        let key = name.to_ascii_lowercase();
        self.cte_frames.iter().rev().find_map(|f| f.get(&key))
    }

    // ------------------------------------------------------------------
    // DML
    // ------------------------------------------------------------------

    fn check_insert(&mut self, insert: &Insert) -> Result<()> {
        let table = self.catalog.get(&insert.table).map_err(|_| {
            EngineError::sema(
                format!("table '{}' does not exist", insert.table),
                insert.table_span,
            )
        })?;
        for c in &insert.columns {
            if table.schema.position(c).is_none() {
                return Err(EngineError::sema(
                    format!("unknown column '{c}' in INSERT INTO {}", insert.table),
                    insert.table_span,
                ));
            }
        }
        let expected = if insert.columns.is_empty() {
            table.schema.len()
        } else {
            insert.columns.len()
        };
        match &insert.source {
            InsertSource::Values(rows) => {
                let empty = Scope::default();
                for row in rows {
                    if row.len() != expected {
                        return Err(EngineError::sema(
                            format!(
                                "INSERT expects {expected} values per row, got {}",
                                row.len()
                            ),
                            row.first()
                                .map(|e| e.span().cover(row.last().unwrap().span()))
                                .unwrap_or(insert.table_span),
                        ));
                    }
                    for e in row {
                        self.infer(e, &empty, Ctx::clause(Clause::Bare))?;
                        fold::check_expr(e)?;
                    }
                }
            }
            InsertSource::Query(q) => {
                let cols = self.check_query(q)?;
                if cols.len() != expected {
                    return Err(EngineError::sema(
                        format!(
                            "INSERT expects {expected} values per row, got {}",
                            cols.len()
                        ),
                        insert.table_span,
                    ));
                }
            }
        }
        if let Some(oc) = &insert.on_conflict {
            let primary = table.primary.as_ref().ok_or_else(|| {
                EngineError::sema(
                    format!(
                        "ON CONFLICT on table '{}' which has no unique index",
                        insert.table
                    ),
                    insert.table_span,
                )
            })?;
            if !oc.target_columns.is_empty() {
                let mut target = Vec::with_capacity(oc.target_columns.len());
                for c in &oc.target_columns {
                    target.push(table.schema.position(c).ok_or_else(|| {
                        EngineError::sema(
                            format!("unknown conflict column '{c}'"),
                            insert.table_span,
                        )
                    })?);
                }
                target.sort_unstable();
                let mut key = primary.key_columns.clone();
                key.sort_unstable();
                if target != key {
                    return Err(EngineError::sema(
                        format!(
                            "ON CONFLICT target does not match the unique index of '{}'",
                            insert.table
                        ),
                        insert.table_span,
                    ));
                }
            }
            if let crate::ast::ConflictAction::DoUpdate(assignments) = &oc.action {
                // DO UPDATE expressions see [existing row, excluded row];
                // bare columns resolve to the existing row (mirrors the
                // engine's `qualify_bare_columns` rewrite).
                let mut labels: Vec<ColLabel> = table
                    .schema
                    .columns
                    .iter()
                    .map(|c| ColLabel::new(Some(&table.name), &c.name).with_ty(c.ty))
                    .collect();
                labels.extend(
                    table
                        .schema
                        .columns
                        .iter()
                        .map(|c| ColLabel::new(Some("excluded"), &c.name).with_ty(c.ty)),
                );
                let scope = Scope::new(labels);
                for (col, expr) in assignments {
                    if table.schema.position(col).is_none() {
                        return Err(EngineError::sema(
                            format!("unknown column '{col}' in DO UPDATE SET"),
                            expr.span(),
                        ));
                    }
                    let mut e = expr.clone();
                    crate::engine::qualify_bare_columns(&mut e, &table.name);
                    self.infer(&e, &scope, Ctx::clause(Clause::Bare))?;
                    fold::check_expr(&e)?;
                }
            }
        }
        Ok(())
    }

    fn check_delete(
        &mut self,
        table: &str,
        table_span: Span,
        predicate: Option<&Expr>,
    ) -> Result<()> {
        let scope = self.dml_table_scope(table, table_span)?;
        if let Some(p) = predicate {
            let ty = self.infer(p, &scope, Ctx::clause(Clause::DmlPredicate))?;
            self.require_boolean(ty, p.span())?;
            fold::check_expr(p)?;
        }
        Ok(())
    }

    fn check_update(
        &mut self,
        table: &str,
        table_span: Span,
        assignments: &[(String, Expr)],
        predicate: Option<&Expr>,
    ) -> Result<()> {
        let scope = self.dml_table_scope(table, table_span)?;
        let t = self.catalog.get(table).expect("checked by dml_table_scope");
        for (col, expr) in assignments {
            if t.schema.position(col).is_none() {
                return Err(EngineError::sema(
                    format!("unknown column '{col}' in UPDATE"),
                    expr.span(),
                ));
            }
            self.infer(expr, &scope, Ctx::clause(Clause::Bare))?;
            fold::check_expr(expr)?;
        }
        if let Some(p) = predicate {
            let ty = self.infer(p, &scope, Ctx::clause(Clause::DmlPredicate))?;
            self.require_boolean(ty, p.span())?;
            fold::check_expr(p)?;
        }
        Ok(())
    }

    /// Scope of a DML target table: columns visible bare and table-qualified,
    /// with declared types.
    fn dml_table_scope(&self, table: &str, table_span: Span) -> Result<Scope> {
        let t = self.catalog.get(table).map_err(|_| {
            EngineError::sema(format!("table '{table}' does not exist"), table_span)
        })?;
        Ok(Scope::new(
            t.schema
                .columns
                .iter()
                .map(|c| ColLabel::new(Some(&t.name), &c.name).with_ty(c.ty))
                .collect(),
        ))
    }

    // ------------------------------------------------------------------
    // Expression inference
    // ------------------------------------------------------------------

    /// Infer the static type of `e` over `scope`, reporting misuse with the
    /// node's source span. Returns `Any` wherever the type cannot be known
    /// statically — only certainly-wrong expressions error.
    fn infer(&mut self, e: &Expr, scope: &Scope, ctx: Ctx) -> Result<DataType> {
        match e {
            Expr::Literal(v, _) => Ok(v.data_type()),
            Expr::Param(..) => Ok(DataType::Any),
            Expr::Column {
                qualifier,
                name,
                span,
            } => self.resolve_column(scope, qualifier.as_deref(), name, *span, ctx),
            Expr::Unary { op, expr, .. } => {
                let t = self.infer(expr, scope, ctx)?;
                match op {
                    UnaryOp::Neg => match t {
                        DataType::Text => {
                            Err(EngineError::sema("cannot negate a TEXT value", expr.span()))
                        }
                        t => Ok(t),
                    },
                    UnaryOp::Not => {
                        self.require_boolean(t, expr.span())?;
                        Ok(DataType::Integer)
                    }
                }
            }
            Expr::Binary {
                left, op, right, ..
            } => {
                let lt = self.infer(left, scope, ctx)?;
                let rt = self.infer(right, scope, ctx)?;
                match coerce(*op, lt, rt) {
                    BinCoercion::IntArith => Ok(DataType::Integer),
                    BinCoercion::FloatArith => Ok(DataType::Real),
                    BinCoercion::AnyArith => Ok(DataType::Any),
                    BinCoercion::Concat => Ok(DataType::Text),
                    BinCoercion::Compare | BinCoercion::Bool => Ok(DataType::Integer),
                    BinCoercion::ErrTextArith => {
                        // Report the left operand first, like the evaluator.
                        let side = if lt == DataType::Text { left } else { right };
                        Err(EngineError::sema(
                            format!(
                                "operand of '{}' expected a numeric value, found TEXT",
                                op_symbol(*op)
                            ),
                            side.span(),
                        ))
                    }
                    BinCoercion::ErrTextBool => {
                        let side = if lt == DataType::Text { left } else { right };
                        Err(EngineError::sema(
                            "TEXT value used in a boolean context",
                            side.span(),
                        ))
                    }
                }
            }
            Expr::IsNull { expr, .. } => {
                self.infer(expr, scope, ctx)?;
                Ok(DataType::Integer)
            }
            Expr::InList { expr, list, .. } => {
                self.infer(expr, scope, ctx)?;
                for item in list {
                    self.infer(item, scope, ctx)?;
                }
                Ok(DataType::Integer)
            }
            Expr::Between {
                expr, low, high, ..
            } => {
                self.infer(expr, scope, ctx)?;
                self.infer(low, scope, ctx)?;
                self.infer(high, scope, ctx)?;
                Ok(DataType::Integer)
            }
            Expr::Like { expr, pattern, .. } => {
                // LIKE stringifies both sides lossily; no type requirement.
                self.infer(expr, scope, ctx)?;
                self.infer(pattern, scope, ctx)?;
                Ok(DataType::Integer)
            }
            Expr::Case {
                operand,
                branches,
                else_expr,
                ..
            } => {
                match operand {
                    Some(o) => {
                        // Operand form compares with `sql_eq`: never a type
                        // error, whatever the WHEN types are.
                        self.infer(o, scope, ctx)?;
                        for (w, _) in branches {
                            self.infer(w, scope, ctx)?;
                        }
                    }
                    None => {
                        for (w, _) in branches {
                            let wt = self.infer(w, scope, ctx)?;
                            self.require_boolean(wt, w.span())?;
                        }
                    }
                }
                let mut ty: Option<DataType> = None;
                for (_, t) in branches {
                    let tt = self.infer(t, scope, ctx)?;
                    ty = Some(match ty {
                        None => tt,
                        Some(prev) => unify(prev, tt),
                    });
                }
                match else_expr {
                    Some(el) => {
                        let et = self.infer(el, scope, ctx)?;
                        ty = Some(match ty {
                            None => et,
                            Some(prev) => unify(prev, et),
                        });
                    }
                    // A missing ELSE yields NULL, so the type is unknown.
                    None => ty = Some(DataType::Any),
                }
                Ok(ty.unwrap_or(DataType::Any))
            }
            Expr::Cast { expr, ty, .. } => {
                self.infer(expr, scope, ctx)?;
                Ok(*ty)
            }
            Expr::Function { name, args, span } => {
                let Some(func) = ScalarFunc::from_name(name) else {
                    return Err(EngineError::sema(
                        format!("unknown function '{name}'"),
                        *span,
                    ));
                };
                if !func.arity_ok(args.len()) {
                    return Err(EngineError::sema(
                        format!("wrong number of arguments ({}) for {name}", args.len()),
                        *span,
                    ));
                }
                let mut arg_types = Vec::with_capacity(args.len());
                for a in args {
                    arg_types.push(self.infer(a, scope, ctx)?);
                }
                self.function_type(func, args, &arg_types)
            }
            Expr::Aggregate { span, .. } => Err(EngineError::sema(
                match (ctx.in_aggregate, ctx.clause) {
                    (true, _) => "nested aggregate functions are not supported",
                    (_, Clause::Where) => "aggregate function not allowed in WHERE",
                    (_, Clause::GroupBy) => "aggregate function not allowed in GROUP BY",
                    (_, Clause::JoinOn) => "aggregate function not allowed in JOIN conditions",
                    _ => "aggregate function used outside of an aggregating context",
                },
                *span,
            )),
            Expr::WindowRowNumber { span, .. } => Err(EngineError::sema(
                match (ctx.in_window, ctx.clause) {
                    (true, _) => "window functions cannot be nested",
                    (_, Clause::OrderBy) => {
                        "window function in ORDER BY must also appear in the SELECT list"
                    }
                    (_, Clause::Where) => "window function not allowed in WHERE",
                    (_, Clause::GroupBy) => "window function not allowed in GROUP BY",
                    (_, Clause::Having) => "window function not allowed in HAVING",
                    (_, Clause::JoinOn) => "window function not allowed in JOIN conditions",
                    _ => "window function used in an unsupported position",
                },
                *span,
            )),
            Expr::ScalarSubquery(q, span) => {
                self.require_subqueries(ctx, *span)?;
                let cols = self.check_query(q)?;
                Ok(cols.first().map(|(_, t)| *t).unwrap_or(DataType::Any))
            }
            Expr::InSubquery {
                expr, query, span, ..
            } => {
                self.require_subqueries(ctx, *span)?;
                self.infer(expr, scope, ctx)?;
                let cols = self.check_query(query)?;
                if cols.len() != 1 {
                    return Err(EngineError::sema(
                        format!("IN subquery must return one column, got {}", cols.len()),
                        *span,
                    ));
                }
                Ok(DataType::Integer)
            }
            Expr::Exists { query, span, .. } => {
                self.require_subqueries(ctx, *span)?;
                self.check_query(query)?;
                Ok(DataType::Integer)
            }
        }
    }

    fn require_subqueries(&self, ctx: Ctx, span: Span) -> Result<()> {
        if ctx.clause.allows_subqueries() && !ctx.in_aggregate && !ctx.in_window {
            Ok(())
        } else {
            Err(EngineError::sema(
                "subquery is not supported in this position \
                 (only uncorrelated subqueries in SELECT/WHERE/HAVING are supported)",
                span,
            ))
        }
    }

    fn require_boolean(&self, ty: DataType, span: Span) -> Result<()> {
        if ty == DataType::Text {
            return Err(EngineError::sema(
                "TEXT value used in a boolean context",
                span,
            ));
        }
        Ok(())
    }

    fn resolve_column(
        &self,
        scope: &Scope,
        qualifier: Option<&str>,
        name: &str,
        span: Span,
        ctx: Ctx,
    ) -> Result<DataType> {
        let display = || {
            format!(
                "{}{}",
                qualifier.map(|q| format!("{q}.")).unwrap_or_default(),
                name
            )
        };
        let mut found: Option<usize> = None;
        for (i, label) in scope.labels.iter().enumerate() {
            let name_matches = label.name.eq_ignore_ascii_case(name);
            let qual_matches = match (qualifier, &label.qualifier) {
                (None, _) => true,
                (Some(q), Some(lq)) => q.eq_ignore_ascii_case(lq),
                (Some(_), None) => false,
            };
            if name_matches && qual_matches {
                if found.is_some() {
                    return Err(EngineError::sema(
                        format!("ambiguous column reference '{}'", display()),
                        span,
                    ));
                }
                found = Some(i);
            }
        }
        match found {
            Some(i) => Ok(scope.labels[i].ty),
            None => {
                // In a grouped query a column that exists in the input but
                // not in the aggregate output was simply not grouped.
                if let Some(pre) = ctx.pre_group_scope {
                    if pre.resolve(qualifier, name).is_ok() {
                        return Err(EngineError::sema(
                            format!(
                                "column '{}' must appear in the GROUP BY clause \
                                 or be used in an aggregate function",
                                display()
                            ),
                            span,
                        ));
                    }
                }
                Err(EngineError::sema(
                    format!("unknown column '{}'", display()),
                    span,
                ))
            }
        }
    }

    /// Result type of an aggregate call; checks the argument expression.
    fn aggregate_type(
        &mut self,
        func: AggregateFunc,
        arg: Option<&Expr>,
        scope: &Scope,
        span: Span,
    ) -> Result<DataType> {
        let ctx = Ctx {
            in_aggregate: true,
            ..Ctx::clause(Clause::Projection)
        };
        let arg_ty = match arg {
            Some(a) => Some(self.infer(a, scope, ctx)?),
            None => None,
        };
        match func {
            AggregateFunc::Count => Ok(DataType::Integer),
            AggregateFunc::Sum => match arg_ty {
                Some(DataType::Text) => Err(EngineError::sema(
                    "SUM expected a numeric argument, found TEXT",
                    arg.map(|a| a.span()).unwrap_or(span),
                )),
                Some(t) => Ok(t),
                None => Ok(DataType::Any),
            },
            AggregateFunc::Avg => match arg_ty {
                Some(DataType::Text) => Err(EngineError::sema(
                    "AVG expected a numeric argument, found TEXT",
                    arg.map(|a| a.span()).unwrap_or(span),
                )),
                _ => Ok(DataType::Real),
            },
            // MIN/MAX use the total value order and pass the value through.
            AggregateFunc::Min | AggregateFunc::Max => Ok(arg_ty.unwrap_or(DataType::Any)),
        }
    }

    /// Result type of a scalar function call; rejects definitely-`TEXT`
    /// arguments in numeric positions (mirroring `eval_function`'s `as_f64`
    /// errors). String functions accept any type via lossy stringification.
    fn function_type(
        &self,
        func: ScalarFunc,
        args: &[Expr],
        arg_types: &[DataType],
    ) -> Result<DataType> {
        use ScalarFunc::*;
        let numeric = |i: usize| -> Result<()> {
            if arg_types[i] == DataType::Text {
                return Err(EngineError::sema(
                    "expected a numeric value, found TEXT",
                    args[i].span(),
                ));
            }
            Ok(())
        };
        match func {
            Pow => {
                numeric(0)?;
                numeric(1)?;
                Ok(DataType::Real)
            }
            Ln | Log10 | Exp | Sqrt | Floor | Ceil => {
                numeric(0)?;
                Ok(DataType::Real)
            }
            Round => {
                // The optional digits argument goes through `as_i64`, whose
                // failures are value-shaped; only the base is checked.
                numeric(0)?;
                Ok(DataType::Real)
            }
            Abs => {
                numeric(0)?;
                Ok(arg_types[0])
            }
            Sign => {
                numeric(0)?;
                Ok(DataType::Integer)
            }
            Mod => {
                numeric(0)?;
                numeric(1)?;
                Ok(match (arg_types[0], arg_types[1]) {
                    (DataType::Integer, DataType::Integer) => DataType::Integer,
                    (DataType::Any, _) | (_, DataType::Any) => DataType::Any,
                    _ => DataType::Real,
                })
            }
            Coalesce => Ok(arg_types
                .iter()
                .copied()
                .reduce(unify)
                .unwrap_or(DataType::Any)),
            NullIf => Ok(arg_types[0]),
            Length | Instr => Ok(DataType::Integer),
            Lower | Upper | Substr | Trim | Replace | Concat => Ok(DataType::Text),
        }
    }
}
