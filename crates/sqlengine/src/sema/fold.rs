//! Constant folding for the semantic analyzer.
//!
//! Deterministic, parameter-free subtrees are evaluated at check time by
//! binding them over an empty scope and running the ordinary evaluator, so
//! folding can never disagree with execution. A folded subtree that
//! *errors* (e.g. `1/0`) is reported as a [`Sema`](crate::EngineError::Sema)
//! diagnostic — but only in *strict* positions, i.e. positions the evaluator
//! is guaranteed to reach when a row reaches the expression. Lazily
//! evaluated positions (the right arm of `AND`/`OR`, `CASE` branches,
//! `COALESCE` tails, `IN`-list members) are folded opportunistically and
//! left alone when they error, matching the engine's short-circuit
//! semantics.

use crate::ast::Expr;
use crate::error::{EngineError, Result};
use crate::expr::{bind_expr, ScalarFunc, Scope};

/// True when `e` contains no column references, parameters, subqueries,
/// aggregates, or window functions anywhere — i.e. it is a deterministic
/// compile-time constant (every scalar function in the engine is
/// deterministic).
pub(crate) fn is_const(e: &Expr) -> bool {
    match e {
        Expr::Literal(..) => true,
        Expr::Param(..)
        | Expr::Column { .. }
        | Expr::Aggregate { .. }
        | Expr::WindowRowNumber { .. }
        | Expr::ScalarSubquery(..)
        | Expr::InSubquery { .. }
        | Expr::Exists { .. } => false,
        _ => {
            let mut ok = true;
            crate::plan::visit_children(e, &mut |c| ok &= is_const(c));
            ok
        }
    }
}

/// Fold every constant subtree of `e` in place. `strict` positions turn a
/// constant-evaluation error into a `Sema` diagnostic spanning the offending
/// subtree; non-strict (lazily evaluated) positions leave erroring subtrees
/// unfolded.
pub(crate) fn fold_expr(e: &mut Expr, strict: bool) -> Result<()> {
    if is_const(e) {
        let span = e.span();
        // Type-level problems inside the subtree are the type checker's job;
        // a bind failure here just means there is nothing to fold.
        if let Ok(bound) = bind_expr(e, &Scope::default(), &[]) {
            match bound.eval_const() {
                Ok(v) => *e = Expr::Literal(v, span),
                Err(err) if strict => {
                    return Err(EngineError::sema(
                        format!("constant expression error: {}", err.message()),
                        span,
                    ));
                }
                Err(_) => {}
            }
        }
        return Ok(());
    }
    match e {
        Expr::Literal(..) | Expr::Param(..) | Expr::Column { .. } => Ok(()),
        Expr::Unary { expr, .. } | Expr::IsNull { expr, .. } | Expr::Cast { expr, .. } => {
            fold_expr(expr, strict)
        }
        Expr::Binary {
            left, op, right, ..
        } => {
            fold_expr(left, strict)?;
            // The right arm of AND/OR may be short-circuited away.
            let lazy = matches!(op, crate::ast::BinaryOp::And | crate::ast::BinaryOp::Or);
            fold_expr(right, strict && !lazy)
        }
        Expr::InList { expr, list, .. } => {
            fold_expr(expr, strict)?;
            // Members are probed in order only until one matches.
            for item in list {
                fold_expr(item, false)?;
            }
            Ok(())
        }
        Expr::Between {
            expr, low, high, ..
        } => {
            fold_expr(expr, strict)?;
            fold_expr(low, strict)?;
            fold_expr(high, strict)
        }
        Expr::Like { expr, pattern, .. } => {
            fold_expr(expr, strict)?;
            fold_expr(pattern, strict)
        }
        Expr::Case {
            operand,
            branches,
            else_expr,
            ..
        } => {
            if let Some(o) = operand {
                fold_expr(o, strict)?;
            }
            // WHEN/THEN/ELSE arms are all conditionally evaluated.
            for (w, t) in branches.iter_mut() {
                fold_expr(w, false)?;
                fold_expr(t, false)?;
            }
            if let Some(el) = else_expr {
                fold_expr(el, false)?;
            }
            Ok(())
        }
        Expr::Function { name, args, .. } => {
            // COALESCE/IFNULL evaluates lazily left-to-right; every other
            // function evaluates all of its arguments.
            let lazy_tail = ScalarFunc::from_name(name) == Some(ScalarFunc::Coalesce);
            for (i, a) in args.iter_mut().enumerate() {
                fold_expr(a, strict && !(lazy_tail && i > 0))?;
            }
            Ok(())
        }
        Expr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                // Evaluated per input row, if any arrive.
                fold_expr(a, false)?;
            }
            Ok(())
        }
        Expr::WindowRowNumber {
            partition_by,
            order_by,
            ..
        } => {
            for p in partition_by {
                fold_expr(p, false)?;
            }
            for oi in order_by {
                fold_expr(&mut oi.expr, false)?;
            }
            Ok(())
        }
        // Subquery bodies are checked independently; only the scalar side of
        // IN folds here.
        Expr::ScalarSubquery(..) | Expr::Exists { .. } => Ok(()),
        Expr::InSubquery { expr, .. } => fold_expr(expr, strict),
    }
}

/// Non-mutating strict check: report any constant-evaluation error that
/// execution would be guaranteed to hit.
pub(crate) fn check_expr(e: &Expr) -> Result<()> {
    let mut clone = e.clone();
    fold_expr(&mut clone, true)
}

/// Fold every constant subtree of every expression in `q` in place,
/// non-strictly (erroring subtrees are left alone — the strict check has
/// already run by the time this is called). Used on the plan-cache path so
/// cached plans are built over folded literals.
pub(crate) fn fold_query(q: &mut crate::ast::Query) {
    for cte in &mut q.ctes {
        fold_query(&mut cte.query);
    }
    fold_set_expr(&mut q.body);
    for oi in &mut q.order_by {
        let _ = fold_expr(&mut oi.expr, false);
    }
    if let Some(e) = &mut q.limit {
        let _ = fold_expr(e, false);
    }
    if let Some(e) = &mut q.offset {
        let _ = fold_expr(e, false);
    }
}

fn fold_set_expr(body: &mut crate::ast::SetExpr) {
    use crate::ast::{SelectItem, SetExpr, TableRef};
    match body {
        SetExpr::Union { left, right, .. } => {
            fold_set_expr(left);
            fold_set_expr(right);
        }
        SetExpr::Select(select) => {
            for item in &mut select.projection {
                if let SelectItem::Expr { expr, .. } = item {
                    let _ = fold_expr(expr, false);
                }
            }
            fn fold_tref(tref: &mut TableRef) {
                match tref {
                    TableRef::Named { .. } => {}
                    TableRef::Derived { query, .. } => fold_query(query),
                    TableRef::Join {
                        left, right, on, ..
                    } => {
                        fold_tref(left);
                        fold_tref(right);
                        if let Some(cond) = on {
                            let _ = fold_expr(cond, false);
                        }
                    }
                }
            }
            for tref in &mut select.from {
                fold_tref(tref);
            }
            if let Some(sel) = &mut select.selection {
                let _ = fold_expr(sel, false);
            }
            for g in &mut select.group_by {
                let _ = fold_expr(g, false);
            }
            if let Some(h) = &mut select.having {
                let _ = fold_expr(h, false);
            }
        }
    }
}
