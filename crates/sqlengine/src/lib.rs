//! # sqlengine — an embedded, from-scratch relational SQL engine
//!
//! This crate is the DBMS substrate for the BornSQL reproduction (see the
//! workspace `DESIGN.md`). It implements, in pure Rust with no external SQL
//! dependencies:
//!
//! * a lexer, recursive-descent parser, and AST for a practical SQL subset
//!   (`SELECT` with CTEs, joins, `GROUP BY`/`HAVING`, window `ROW_NUMBER`,
//!   `UNION [ALL]`, `ORDER BY`/`LIMIT`; `CREATE TABLE`/`INDEX`;
//!   `INSERT ... ON CONFLICT DO UPDATE`; `UPDATE`; `DELETE`);
//! * an index-aware planner with predicate pushdown, equi-join detection
//!   (hash joins), inline-vs-materialized CTE strategies, index-scan
//!   selection for equality and `IN`-list predicates, and a cost-gated
//!   index-nested-loop join for small probes against indexed tables;
//! * a morsel-parallel row executor (one module per operator family) with
//!   hash joins, index scans/joins, hash aggregation, window and sort
//!   operators, an optional worker pool (`EngineConfig::parallelism`), and
//!   per-operator runtime statistics surfaced through `EXPLAIN ANALYZE`;
//! * a derived columnar storage layer (`column`): lazily built fixed-size
//!   chunks of typed column vectors with null masks and per-chunk
//!   dictionaries for low-cardinality TEXT, driving vectorized
//!   filter/project/aggregate kernels with selection vectors and late
//!   materialization (`EngineConfig::vectorized`, default on; `EXPLAIN`
//!   prints `mode=vectorized|row` per operator);
//! * an in-memory catalog with maintained primary-key (unique) and
//!   secondary indexes (`CREATE [UNIQUE] INDEX`), kept up to date
//!   incrementally across `INSERT`/`UPDATE`/`DELETE` and used by the
//!   planner for point and multi-point lookups;
//! * a static semantic analyzer (`sema`) that runs between parsing and
//!   planning on every execution path: scoped name resolution, bottom-up
//!   type inference from declared column types, aggregate/window placement
//!   rules, and constant folding, all reported as spanned diagnostics
//!   before anything executes (`Database::check`, `EXPLAIN (CHECK)`);
//! * a plan cache keyed by SQL text and catalog version: repeated
//!   parameterless queries (the model-serving hot path) skip parsing and
//!   planning entirely, and any DDL/DML invalidates stale entries;
//! * a durability subsystem (`wal`): a CRC-framed write-ahead log of
//!   committed logical changes over an injectable [`StorageIo`] backend,
//!   checkpointing, and crash recovery that replays the log and truncates
//!   torn tails (`Database::open` / `Database::persistent`), plus
//!   fault-injection storage (`MemIo`, `FaultyIo`) for crash-consistency
//!   tests;
//! * a post-planning static plan verifier (`verify`) that walks every
//!   physical plan against the sema-typed output scope and the live
//!   catalog, checking five invariant classes (output schema, index-key
//!   integrity, vectorized-mode eligibility, parameter-slot discipline,
//!   deterministic-merge arity). It runs on every plan in debug builds and
//!   behind `EngineConfig::verify_plans` otherwise, and is surfaced through
//!   `EXPLAIN (VERIFY)` plus `verify.*` counters in `sys.metrics`;
//! * a hierarchical statement tracer (`trace`): sampled per-statement span
//!   trees with wait-state attribution (admission queue, group-commit fsync
//!   leader/follower, WAL retry backoff, worker-pool idle), captured under
//!   `EngineConfig::trace_sampling` and queryable as `sys.trace_spans` /
//!   `sys.wait_events`, with `EXPLAIN (TRACE)` rendering the span tree
//!   inline.
//!
//! ## Durability quick-start
//!
//! ```no_run
//! use sqlengine::{Database, EngineConfig, SyncPolicy};
//!
//! let db = Database::open(
//!     "data/mydb",
//!     EngineConfig::default().with_wal_sync(SyncPolicy::Always),
//! ).unwrap();
//! db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, v TEXT)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 'hello')").unwrap();
//! // Reopening after a crash replays the write-ahead log.
//! drop(db);
//! let db = Database::persistent("data/mydb").unwrap();
//! assert_eq!(db.table_rows("t").unwrap(), 1);
//! ```
//!
//! ## Quick example
//!
//! ```
//! use sqlengine::{Database, Value};
//!
//! let db = Database::new();
//! db.execute("CREATE TABLE t (n INTEGER, w REAL)").unwrap();
//! db.execute("INSERT INTO t VALUES (1, 0.5), (1, 1.5), (2, 4.0)").unwrap();
//! let r = db.query("SELECT n, SUM(w) AS w FROM t GROUP BY n ORDER BY n").unwrap();
//! assert_eq!(r.rows[0], vec![Value::Int(1), Value::Float(2.0)]);
//! assert_eq!(r.rows[1], vec![Value::Int(2), Value::Float(4.0)]);
//! ```

#![forbid(unsafe_code)]

pub(crate) mod admission;
pub mod ast;
pub mod catalog;
pub mod column;
pub mod csv;
pub mod engine;
pub mod error;
pub mod exec;
pub mod explain;
pub mod expr;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod sema;
pub mod snapshot;
pub mod telemetry;
pub mod trace;
pub mod value;
pub mod verify;
pub mod wal;

pub use ast::ExplainMode;
pub use engine::{Database, EngineConfig, Prepared, QueryResult, StatementResult};
pub use error::{EngineError, Result, Span};
pub use exec::{ExecContext, MemoryBudget, OpStats, WorkerPool};
pub use plan::JoinAlgo;
pub use sema::CheckReport;
pub use snapshot::Snapshot;
pub use telemetry::{QueryLogEntry, QueryStatus, Telemetry};
pub use trace::{SpanRec, StatementTrace, TraceSampling, WaitClass};
pub use value::{DataType, Row, Value};
pub use verify::{ParamDiscipline, SnapshotGuarantee, VerifyReport, VerifyRule, Violation};
pub use wal::{FaultKind, FaultyIo, FileIo, MemIo, StorageIo, SyncPolicy, WalRetry};
