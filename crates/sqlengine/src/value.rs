//! Runtime values and data types.
//!
//! A [`Value`] is the unit of data flowing through the executor. Values are
//! dynamically typed with SQL-style coercion between `Int` and `Float` in
//! arithmetic and comparisons. Floats are given a *total* order (IEEE-754
//! `total_cmp` semantics with NULL sorting first) so that values can be used
//! as grouping keys and sort keys.

use std::borrow::Cow;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

use crate::error::{EngineError, Result};

/// Logical column type as declared in `CREATE TABLE`.
///
/// The engine is dynamically typed at runtime; declared types are used for
/// display, for `CAST`, and to coerce inserted literals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    Integer,
    Real,
    Text,
    /// Declared type unknown / any (columns of derived tables).
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataType::Integer => write!(f, "INTEGER"),
            DataType::Real => write!(f, "REAL"),
            DataType::Text => write!(f, "TEXT"),
            DataType::Any => write!(f, "ANY"),
        }
    }
}

/// A dynamically typed SQL value.
#[derive(Debug, Clone)]
pub enum Value {
    Null,
    Int(i64),
    Float(f64),
    Str(Arc<str>),
}

impl Value {
    /// Construct a text value.
    pub fn text(s: impl AsRef<str>) -> Self {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// True when the value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The dynamic type of this value.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Null => DataType::Any,
            Value::Int(_) => DataType::Integer,
            Value::Float(_) => DataType::Real,
            Value::Str(_) => DataType::Text,
        }
    }

    /// Numeric view of the value, coercing `Int` to `f64`.
    ///
    /// Returns an error for text; `Null` propagates as `None`.
    pub fn as_f64(&self) -> Result<Option<f64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i as f64)),
            Value::Float(f) => Ok(Some(*f)),
            Value::Str(s) => Err(EngineError::exec(format!(
                "expected a numeric value, found string '{s}'"
            ))),
        }
    }

    /// Integer view of the value. Floats with zero fraction are accepted.
    pub fn as_i64(&self) -> Result<Option<i64>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i)),
            Value::Float(f) if f.fract() == 0.0 => Ok(Some(*f as i64)),
            other => Err(EngineError::exec(format!(
                "expected an integer value, found {other}"
            ))),
        }
    }

    /// String view; numbers render with their display form.
    pub fn as_str_lossy(&self) -> Result<Option<Cow<'_, str>>> {
        match self {
            Value::Null => Ok(None),
            Value::Str(s) => Ok(Some(Cow::Borrowed(s))),
            Value::Int(i) => Ok(Some(Cow::Owned(i.to_string()))),
            Value::Float(f) => Ok(Some(Cow::Owned(format_float(*f)))),
        }
    }

    /// SQL truthiness: NULL is unknown (None), zero is false.
    pub fn as_bool(&self) -> Result<Option<bool>> {
        match self {
            Value::Null => Ok(None),
            Value::Int(i) => Ok(Some(*i != 0)),
            Value::Float(f) => Ok(Some(*f != 0.0)),
            Value::Str(s) => Err(EngineError::exec(format!(
                "string '{s}' used in a boolean context"
            ))),
        }
    }

    /// Cast to a declared type following SQLite-style lenient rules.
    pub fn cast_to(&self, ty: DataType) -> Result<Value> {
        if self.is_null() {
            return Ok(Value::Null);
        }
        match ty {
            DataType::Any => Ok(self.clone()),
            DataType::Integer => match self {
                Value::Int(i) => Ok(Value::Int(*i)),
                Value::Float(f) => Ok(Value::Int(*f as i64)),
                Value::Str(s) => s
                    .trim()
                    .parse::<i64>()
                    .map(Value::Int)
                    .map_err(|_| EngineError::exec(format!("cannot cast '{s}' to INTEGER"))),
                Value::Null => unreachable!(),
            },
            DataType::Real => match self {
                Value::Int(i) => Ok(Value::Float(*i as f64)),
                Value::Float(f) => Ok(Value::Float(*f)),
                Value::Str(s) => s
                    .trim()
                    .parse::<f64>()
                    .map(Value::Float)
                    .map_err(|_| EngineError::exec(format!("cannot cast '{s}' to REAL"))),
                Value::Null => unreachable!(),
            },
            DataType::Text => Ok(Value::text(
                self.as_str_lossy()?.expect("non-null checked above"),
            )),
        }
    }

    /// Total-order comparison used for ORDER BY, grouping and DISTINCT.
    ///
    /// NULL sorts before everything; numbers compare numerically across
    /// Int/Float; numbers sort before strings (SQLite type-order style).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Str(_), _) => Ordering::Greater,
            (_, Str(_)) => Ordering::Less,
        }
    }

    /// SQL equality (`=`): NULL compared with anything is unknown (None).
    pub fn sql_eq(&self, other: &Value) -> Option<bool> {
        if self.is_null() || other.is_null() {
            return None;
        }
        Some(self.total_cmp(other) == Ordering::Equal)
    }
}

/// Format a float the way SQL engines commonly render it (no trailing `.0`
/// suppression surprises: integral floats keep one decimal).
pub fn format_float(f: f64) -> String {
    if f.fract() == 0.0 && f.is_finite() && f.abs() < 1e15 {
        format!("{f:.1}")
    } else {
        format!("{f}")
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{}", format_float(*x)),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.total_cmp(other) == Ordering::Equal
    }
}

impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        self.total_cmp(other)
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            // Hash ints and integral floats identically so that grouping keys
            // agree with `total_cmp` equality across Int/Float.
            Value::Int(i) => {
                1u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                1u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Str(s) => {
                2u8.hash(state);
                s.hash(state);
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::text(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(Arc::from(v.as_str()))
    }
}

/// A row of values.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_cmp_orders_nulls_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(0)), Ordering::Less);
        assert_eq!(Value::Int(0).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn int_float_compare_numerically() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.0)), Ordering::Equal);
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(
            Value::Float(3.0).total_cmp(&Value::Int(2)),
            Ordering::Greater
        );
    }

    #[test]
    fn hash_agrees_with_equality_across_int_float() {
        use std::collections::hash_map::DefaultHasher;
        let h = |v: &Value| {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        };
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn sql_eq_null_is_unknown() {
        assert_eq!(Value::Null.sql_eq(&Value::Int(1)), None);
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(1)), Some(true));
        assert_eq!(Value::Int(1).sql_eq(&Value::Int(2)), Some(false));
    }

    #[test]
    fn casts() {
        assert_eq!(
            Value::text("42").cast_to(DataType::Integer).unwrap(),
            Value::Int(42)
        );
        assert_eq!(
            Value::Int(3).cast_to(DataType::Real).unwrap(),
            Value::Float(3.0)
        );
        assert!(Value::text("abc").cast_to(DataType::Integer).is_err());
        assert!(Value::Null.cast_to(DataType::Integer).unwrap().is_null());
    }

    #[test]
    fn string_sorts_after_numbers() {
        assert_eq!(
            Value::text("a").total_cmp(&Value::Int(999)),
            Ordering::Greater
        );
    }

    #[test]
    fn as_f64_rejects_text() {
        assert!(Value::text("x").as_f64().is_err());
        assert_eq!(Value::Int(2).as_f64().unwrap(), Some(2.0));
        assert_eq!(Value::Null.as_f64().unwrap(), None);
    }
}
