//! `EXPLAIN`-style plan rendering.
//!
//! [`Database::explain`](crate::Database::explain) plans a query and renders
//! the physical operator tree, which is how the benchmark harness verifies
//! which join strategy a profile actually selected. `EXPLAIN ANALYZE`
//! renders the [`OpStats`] tree recorded during an actual execution instead,
//! annotating every operator with observed row counts and wall-clock time.

use crate::exec::OpStats;
use crate::plan::{JoinAlgo, PhysPlan};
use crate::trace::SpanRec;

/// Render a plan as an indented operator tree.
pub fn render_plan(plan: &PhysPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

/// One-line label for an operator node, shared between `EXPLAIN` rendering
/// and the executor's `EXPLAIN ANALYZE` stats collection. Operators with a
/// vectorized variant carry a ` mode=vectorized` / ` mode=row` suffix
/// reflecting how the executor will actually run them.
pub(crate) fn op_label(plan: &PhysPlan) -> String {
    let mode = crate::exec::mode_suffix(plan);
    match plan {
        PhysPlan::Scan { rows, width, .. } => {
            format!("Scan [{} rows × {} cols]{mode}", rows.len(), width)
        }
        PhysPlan::VirtualScan { name, rows, width } => {
            format!("VirtualScan {name} [{} rows × {} cols]", rows.len(), width)
        }
        PhysPlan::IndexScan {
            rows,
            index_name,
            keys,
            ..
        } => match keys {
            Some(k) => format!(
                "IndexScan {index_name} ({} keys) [of {} rows]",
                k.len(),
                rows.len()
            ),
            None => format!("IndexScan {index_name} (probed) [of {} rows]", rows.len()),
        },
        PhysPlan::IndexJoin {
            kind,
            probe_keys,
            residual,
            ..
        } => format!(
            "IndexNestedLoopJoin [{kind:?}, {} keys{}]",
            probe_keys.len(),
            if residual.is_some() { ", residual" } else { "" }
        ),
        PhysPlan::OneRow => "OneRow".to_string(),
        PhysPlan::Filter { .. } => format!("Filter{mode}"),
        PhysPlan::Project { exprs, .. } => format!("Project [{} exprs]{mode}", exprs.len()),
        PhysPlan::HashJoin {
            left_keys,
            kind,
            algo,
            residual,
            ..
        } => {
            let algo_name = match algo {
                JoinAlgo::Hash => "HashJoin",
                JoinAlgo::SortMerge => "SortMergeJoin",
            };
            format!(
                "{algo_name} [{kind:?}, {} keys{}]",
                left_keys.len(),
                if residual.is_some() { ", residual" } else { "" }
            )
        }
        PhysPlan::NestedLoopJoin { kind, .. } => format!("NestedLoopJoin [{kind:?}]"),
        PhysPlan::Aggregate { keys, aggs, .. } => {
            format!("Aggregate [{} keys, {} aggs]{mode}", keys.len(), aggs.len())
        }
        PhysPlan::Window { partition, .. } => {
            format!("Window [row_number, {} partition keys]", partition.len())
        }
        PhysPlan::Sort { keys, .. } => format!("Sort [{} keys]", keys.len()),
        PhysPlan::Limit { limit, offset, .. } => {
            format!("Limit [limit={limit:?}, offset={offset}]")
        }
        PhysPlan::UnionAll { inputs } => format!("UnionAll [{} inputs]", inputs.len()),
        PhysPlan::Distinct { .. } => "Distinct".to_string(),
    }
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn render(plan: &PhysPlan, depth: usize, out: &mut String) {
    line(out, depth, &op_label(plan));
    match plan {
        PhysPlan::Scan { .. }
        | PhysPlan::VirtualScan { .. }
        | PhysPlan::IndexScan { .. }
        | PhysPlan::OneRow => {}
        PhysPlan::IndexJoin { probe, inner, .. } => {
            render(probe, depth + 1, out);
            render(inner, depth + 1, out);
        }
        PhysPlan::Filter { input, .. }
        | PhysPlan::Project { input, .. }
        | PhysPlan::Aggregate { input, .. }
        | PhysPlan::Window { input, .. }
        | PhysPlan::Sort { input, .. }
        | PhysPlan::Limit { input, .. }
        | PhysPlan::Distinct { input } => render(input, depth + 1, out),
        PhysPlan::HashJoin { left, right, .. } | PhysPlan::NestedLoopJoin { left, right, .. } => {
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        PhysPlan::UnionAll { inputs } => {
            for i in inputs {
                render(i, depth + 1, out);
            }
        }
    }
}

/// Render an executed plan's stats tree (`EXPLAIN ANALYZE`): every operator
/// line is annotated with observed input/output row counts and elapsed time.
pub fn render_analyze(stats: &OpStats) -> String {
    let mut out = String::new();
    render_stats(stats, 0, &mut out);
    out
}

/// Render a recorded span tree (`EXPLAIN (TRACE)`): one line per span with
/// plain two-space indentation (no connector glyphs), annotated with
/// duration, row count, wait class, and typed attributes.
pub fn render_trace(spans: &[SpanRec]) -> String {
    let mut out = String::new();
    for span in spans.iter().filter(|s| s.parent.is_none()) {
        render_span(spans, span, 0, &mut out);
    }
    out
}

fn render_span(spans: &[SpanRec], span: &SpanRec, depth: usize, out: &mut String) {
    let mut text = format!("{} ({}µs", span.name, span.duration_us);
    if let Some(rows) = span.rows {
        text.push_str(&format!(" rows={rows}"));
    }
    if let Some(wait) = span.wait_class {
        text.push_str(&format!(" wait={}", wait.as_str()));
    }
    let attrs = span.attrs_text();
    if !attrs.is_empty() {
        text.push(' ');
        text.push_str(&attrs);
    }
    text.push(')');
    line(out, depth, &text);
    for child in spans.iter().filter(|s| s.parent == Some(span.id)) {
        render_span(spans, child, depth + 1, out);
    }
}

fn render_stats(stats: &OpStats, depth: usize, out: &mut String) {
    let micros = stats.elapsed.as_secs_f64() * 1e6;
    let workers = if stats.workers > 1 {
        format!(" workers={}", stats.workers)
    } else {
        String::new()
    };
    line(
        out,
        depth,
        &format!(
            "{} (rows_in={} rows_out={} time={micros:.1}µs{workers})",
            stats.label, stats.rows_in, stats.rows_out
        ),
    );
    for child in &stats.children {
        render_stats(child, depth + 1, out);
    }
}
