//! `EXPLAIN`-style plan rendering.
//!
//! [`Database::explain`](crate::Database::explain) plans a query and renders
//! the physical operator tree, which is how the benchmark harness verifies
//! which join strategy a profile actually selected.

use crate::plan::{JoinAlgo, PhysPlan};

/// Render a plan as an indented operator tree.
pub fn render_plan(plan: &PhysPlan) -> String {
    let mut out = String::new();
    render(plan, 0, &mut out);
    out
}

fn line(out: &mut String, depth: usize, text: &str) {
    for _ in 0..depth {
        out.push_str("  ");
    }
    out.push_str(text);
    out.push('\n');
}

fn render(plan: &PhysPlan, depth: usize, out: &mut String) {
    match plan {
        PhysPlan::Scan { rows, width } => line(
            out,
            depth,
            &format!("Scan [{} rows × {} cols]", rows.len(), width),
        ),
        PhysPlan::OneRow => line(out, depth, "OneRow"),
        PhysPlan::Filter { input, .. } => {
            line(out, depth, "Filter");
            render(input, depth + 1, out);
        }
        PhysPlan::Project { input, exprs } => {
            line(out, depth, &format!("Project [{} exprs]", exprs.len()));
            render(input, depth + 1, out);
        }
        PhysPlan::HashJoin {
            left,
            right,
            left_keys,
            kind,
            algo,
            residual,
            ..
        } => {
            let algo_name = match algo {
                JoinAlgo::Hash => "HashJoin",
                JoinAlgo::SortMerge => "SortMergeJoin",
            };
            line(
                out,
                depth,
                &format!(
                    "{algo_name} [{kind:?}, {} keys{}]",
                    left_keys.len(),
                    if residual.is_some() { ", residual" } else { "" }
                ),
            );
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        PhysPlan::NestedLoopJoin {
            left, right, kind, ..
        } => {
            line(out, depth, &format!("NestedLoopJoin [{kind:?}]"));
            render(left, depth + 1, out);
            render(right, depth + 1, out);
        }
        PhysPlan::Aggregate { input, keys, aggs } => {
            line(
                out,
                depth,
                &format!("Aggregate [{} keys, {} aggs]", keys.len(), aggs.len()),
            );
            render(input, depth + 1, out);
        }
        PhysPlan::Window { input, partition, .. } => {
            line(
                out,
                depth,
                &format!("Window [row_number, {} partition keys]", partition.len()),
            );
            render(input, depth + 1, out);
        }
        PhysPlan::Sort { input, keys } => {
            line(out, depth, &format!("Sort [{} keys]", keys.len()));
            render(input, depth + 1, out);
        }
        PhysPlan::Limit { input, limit, offset } => {
            line(out, depth, &format!("Limit [limit={limit:?}, offset={offset}]"));
            render(input, depth + 1, out);
        }
        PhysPlan::UnionAll { inputs } => {
            line(out, depth, &format!("UnionAll [{} inputs]", inputs.len()));
            for i in inputs {
                render(i, depth + 1, out);
            }
        }
        PhysPlan::Distinct { input } => {
            line(out, depth, "Distinct");
            render(input, depth + 1, out);
        }
    }
}
