//! Injectable storage backends for the durability layer.
//!
//! [`StorageIo`] abstracts the handful of file operations the write-ahead
//! log and checkpointer need, so the same WAL code runs against real files
//! ([`FileIo`]), an in-memory filesystem with an fsync model ([`MemIo`]),
//! and a failpoint-driven wrapper that injects torn writes, I/O errors, and
//! crashes at exact write indexes ([`FaultyIo`]).

use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use crate::error::{EngineError, Result};

/// The file operations the durability layer needs. `name` is a flat file
/// name inside the backend's root (the WAL never uses subdirectories).
pub trait StorageIo: Send + Sync {
    /// Read a whole file; `Ok(None)` when it does not exist.
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>>;
    /// Append bytes, creating the file if needed.
    fn append(&self, name: &str, data: &[u8]) -> Result<()>;
    /// Make previously appended bytes durable (fsync).
    fn sync(&self, name: &str) -> Result<()>;
    /// Replace a file's contents atomically and durably (tmp + fsync +
    /// rename). Readers never observe a partial file.
    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()>;
    /// Shrink a file to `len` bytes (used to drop torn WAL suffixes).
    fn truncate(&self, name: &str, len: u64) -> Result<()>;
    /// Current size in bytes; 0 when the file does not exist.
    fn size(&self, name: &str) -> Result<u64>;
}

fn io_err(op: &str, name: &str, e: impl std::fmt::Display) -> EngineError {
    EngineError::wal(format!("{op} '{name}': {e}"))
}

/// Real-file backend rooted at a directory. Append handles are cached so the
/// per-commit hot path does not reopen the log.
pub struct FileIo {
    dir: PathBuf,
    handles: Mutex<HashMap<String, File>>,
}

impl FileIo {
    /// Open (creating if needed) a storage directory.
    pub fn new(dir: impl AsRef<Path>) -> Result<FileIo> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| io_err("create storage dir", &dir.display().to_string(), e))?;
        Ok(FileIo {
            dir,
            handles: Mutex::new(HashMap::new()),
        })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }

    /// Run `f` with the cached append handle for `name`, opening it lazily.
    fn with_handle<T>(
        &self,
        name: &str,
        f: impl FnOnce(&mut File) -> std::io::Result<T>,
    ) -> Result<T> {
        let mut handles = self.handles.lock().unwrap_or_else(|e| e.into_inner());
        if !handles.contains_key(name) {
            let file = OpenOptions::new()
                .append(true)
                .create(true)
                .open(self.path(name))
                .map_err(|e| io_err("open", name, e))?;
            handles.insert(name.to_string(), file);
        }
        f(handles.get_mut(name).expect("inserted above")).map_err(|e| io_err("write", name, e))
    }
}

impl StorageIo for FileIo {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(data) => Ok(Some(data)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(io_err("read", name, e)),
        }
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        self.with_handle(name, |f| f.write_all(data))
    }

    fn sync(&self, name: &str) -> Result<()> {
        self.with_handle(name, |f| f.sync_data())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        let run = || -> std::io::Result<()> {
            let mut f = File::create(&tmp)?;
            f.write_all(data)?;
            f.sync_all()?;
            std::fs::rename(&tmp, self.path(name))?;
            // Make the rename itself durable.
            File::open(&self.dir)?.sync_all()?;
            Ok(())
        };
        run().map_err(|e| io_err("atomic write", name, e))
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        self.with_handle(name, |f| f.set_len(len))
    }

    fn size(&self, name: &str) -> Result<u64> {
        match std::fs::metadata(self.path(name)) {
            Ok(m) => Ok(m.len()),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(io_err("stat", name, e)),
        }
    }
}

/// One in-memory file: its full contents (what the OS page cache would hold)
/// plus a durable watermark (what has reached "disk" via fsync or an atomic
/// rename).
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    synced: usize,
}

/// In-memory backend with an explicit fsync model: appended bytes live in
/// the "page cache" until [`StorageIo::sync`] advances the durable
/// watermark. [`MemIo::power_loss_files`] returns only durable bytes,
/// letting tests verify exactly which fsync policies survive power loss.
#[derive(Default)]
pub struct MemIo {
    files: Mutex<HashMap<String, MemFile>>,
}

impl MemIo {
    pub fn new() -> MemIo {
        MemIo::default()
    }

    /// Rebuild a backend from raw file contents (everything durable).
    pub fn from_files(files: HashMap<String, Vec<u8>>) -> MemIo {
        MemIo {
            files: Mutex::new(
                files
                    .into_iter()
                    .map(|(name, data)| {
                        let synced = data.len();
                        (name, MemFile { data, synced })
                    })
                    .collect(),
            ),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, MemFile>> {
        self.files.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Full current contents of every file — what survives a *process* crash
    /// (the OS page cache is intact).
    pub fn process_crash_files(&self) -> HashMap<String, Vec<u8>> {
        self.lock()
            .iter()
            .map(|(name, f)| (name.clone(), f.data.clone()))
            .collect()
    }

    /// Durable contents of every file — what survives a *power loss*
    /// (unsynced suffixes are gone).
    pub fn power_loss_files(&self) -> HashMap<String, Vec<u8>> {
        self.lock()
            .iter()
            .map(|(name, f)| (name.clone(), f.data[..f.synced].to_vec()))
            .collect()
    }
}

impl StorageIo for MemIo {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        Ok(self.lock().get(name).map(|f| f.data.clone()))
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        self.lock()
            .entry(name.to_string())
            .or_default()
            .data
            .extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, name: &str) -> Result<()> {
        if let Some(f) = self.lock().get_mut(name) {
            f.synced = f.data.len();
        }
        Ok(())
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        let synced = data.len();
        self.lock().insert(
            name.to_string(),
            MemFile {
                data: data.to_vec(),
                synced,
            },
        );
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        if let Some(f) = self.lock().get_mut(name) {
            f.data.truncate(len as usize);
            f.synced = f.synced.min(f.data.len());
        }
        Ok(())
    }

    fn size(&self, name: &str) -> Result<u64> {
        Ok(self.lock().get(name).map_or(0, |f| f.data.len() as u64))
    }
}

/// What a failpoint does when it fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The write fails cleanly; nothing reaches the file.
    Error,
    /// Only the first `n` bytes reach the file before the write fails —
    /// a torn write.
    ShortWrite(usize),
    /// The process "dies": the write is lost and every subsequent operation
    /// on this backend fails.
    Crash,
}

/// Failpoint-driven wrapper over [`MemIo`]: injects a fault at the Nth write
/// (counting both appends and atomic writes). After a [`FaultKind::Crash`],
/// every operation fails until the test "reboots" by harvesting the
/// surviving files.
///
/// Besides the one-shot exact-index failpoint ([`FaultyIo::arm`]), a
/// *transient* mode ([`FaultyIo::arm_transient`]) fails the next N
/// operations (appends, atomic writes, *and* fsyncs) and then heals — the
/// model of a disk hiccup that a bounded retry policy should ride out.
pub struct FaultyIo {
    inner: MemIo,
    fault: Mutex<Option<(u64, FaultKind)>>,
    writes: AtomicU64,
    crashed: AtomicBool,
    /// Remaining operations that fail transiently before the backend heals.
    transient: AtomicU64,
    /// Total operations failed by the transient mode (for test assertions).
    transient_fired: AtomicU64,
}

impl Default for FaultyIo {
    fn default() -> Self {
        Self::new()
    }
}

impl FaultyIo {
    pub fn new() -> FaultyIo {
        Self::from_files(HashMap::new())
    }

    pub fn from_files(files: HashMap<String, Vec<u8>>) -> FaultyIo {
        FaultyIo {
            inner: MemIo::from_files(files),
            fault: Mutex::new(None),
            writes: AtomicU64::new(0),
            crashed: AtomicBool::new(false),
            transient: AtomicU64::new(0),
            transient_fired: AtomicU64::new(0),
        }
    }

    /// Arm a failpoint: the `nth` write from now (0-based) triggers `kind`.
    pub fn arm(&self, nth: u64, kind: FaultKind) {
        *self.fault.lock().unwrap_or_else(|e| e.into_inner()) = Some((nth, kind));
        self.writes.store(0, Ordering::SeqCst);
    }

    /// Arm the transient mode: the next `n` operations (append, atomic
    /// write, or fsync) fail with a clean error, after which the backend
    /// heals and serves normally. Nothing reaches the file for a failed
    /// operation.
    pub fn arm_transient(&self, n: u64) {
        self.transient.store(n, Ordering::SeqCst);
    }

    /// Operations failed by the transient mode so far.
    pub fn transient_fired(&self) -> u64 {
        self.transient_fired.load(Ordering::SeqCst)
    }

    /// Consume one transient failure, if armed.
    fn transient_fault(&self, op: &str, name: &str) -> Result<()> {
        let mut remaining = self.transient.load(Ordering::SeqCst);
        loop {
            if remaining == 0 {
                return Ok(());
            }
            match self.transient.compare_exchange(
                remaining,
                remaining - 1,
                Ordering::SeqCst,
                Ordering::SeqCst,
            ) {
                Ok(_) => {
                    self.transient_fired.fetch_add(1, Ordering::SeqCst);
                    return Err(EngineError::wal(format!(
                        "injected transient {op} error on '{name}'"
                    )));
                }
                Err(actual) => remaining = actual,
            }
        }
    }

    /// Number of writes performed since construction or the last [`arm`].
    ///
    /// [`arm`]: FaultyIo::arm
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::SeqCst)
    }

    pub fn crashed(&self) -> bool {
        self.crashed.load(Ordering::SeqCst)
    }

    /// Files surviving a process crash (page cache intact).
    pub fn process_crash_files(&self) -> HashMap<String, Vec<u8>> {
        self.inner.process_crash_files()
    }

    /// Files surviving a power loss (only fsynced bytes).
    pub fn power_loss_files(&self) -> HashMap<String, Vec<u8>> {
        self.inner.power_loss_files()
    }

    fn check_alive(&self) -> Result<()> {
        if self.crashed() {
            Err(EngineError::wal("storage backend crashed (injected)"))
        } else {
            Ok(())
        }
    }

    /// Returns the fault to inject for this write, if the failpoint fires.
    fn next_write_fault(&self) -> Option<FaultKind> {
        let n = self.writes.fetch_add(1, Ordering::SeqCst);
        let mut fault = self.fault.lock().unwrap_or_else(|e| e.into_inner());
        match *fault {
            Some((at, kind)) if at == n => {
                *fault = None;
                Some(kind)
            }
            _ => None,
        }
    }
}

impl StorageIo for FaultyIo {
    fn read(&self, name: &str) -> Result<Option<Vec<u8>>> {
        self.check_alive()?;
        self.inner.read(name)
    }

    fn append(&self, name: &str, data: &[u8]) -> Result<()> {
        self.check_alive()?;
        self.transient_fault("append", name)?;
        match self.next_write_fault() {
            None => self.inner.append(name, data),
            Some(FaultKind::Error) => Err(EngineError::wal(format!(
                "injected write error on '{name}'"
            ))),
            Some(FaultKind::ShortWrite(n)) => {
                self.inner.append(name, &data[..n.min(data.len())])?;
                Err(EngineError::wal(format!(
                    "injected short write on '{name}' ({n} of {} bytes)",
                    data.len()
                )))
            }
            Some(FaultKind::Crash) => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(EngineError::wal("storage backend crashed (injected)"))
            }
        }
    }

    fn sync(&self, name: &str) -> Result<()> {
        self.check_alive()?;
        self.transient_fault("fsync", name)?;
        self.inner.sync(name)
    }

    fn write_atomic(&self, name: &str, data: &[u8]) -> Result<()> {
        self.check_alive()?;
        self.transient_fault("atomic write", name)?;
        match self.next_write_fault() {
            None => self.inner.write_atomic(name, data),
            // An atomic write cannot be torn: a short write hits the temp
            // file, so the visible file is simply left unchanged.
            Some(FaultKind::Error) | Some(FaultKind::ShortWrite(_)) => Err(EngineError::wal(
                format!("injected write error on '{name}'"),
            )),
            Some(FaultKind::Crash) => {
                self.crashed.store(true, Ordering::SeqCst);
                Err(EngineError::wal("storage backend crashed (injected)"))
            }
        }
    }

    fn truncate(&self, name: &str, len: u64) -> Result<()> {
        self.check_alive()?;
        self.inner.truncate(name, len)
    }

    fn size(&self, name: &str) -> Result<u64> {
        self.check_alive()?;
        self.inner.size(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_models_fsync() {
        let io = MemIo::new();
        io.append("wal", b"aaaa").unwrap();
        io.sync("wal").unwrap();
        io.append("wal", b"bbbb").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"aaaabbbb");
        assert_eq!(io.process_crash_files()["wal"], b"aaaabbbb");
        // Power loss drops the unsynced suffix.
        assert_eq!(io.power_loss_files()["wal"], b"aaaa");
        // An atomic write is durable by itself.
        io.write_atomic("cp", b"snapshot").unwrap();
        assert_eq!(io.power_loss_files()["cp"], b"snapshot");
    }

    #[test]
    fn mem_io_truncate_clamps_watermark() {
        let io = MemIo::new();
        io.append("wal", b"abcdef").unwrap();
        io.sync("wal").unwrap();
        io.truncate("wal", 2).unwrap();
        io.append("wal", b"ZZ").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"abZZ");
        assert_eq!(io.power_loss_files()["wal"], b"ab");
    }

    #[test]
    fn faulty_io_fires_once_at_exact_write() {
        let io = FaultyIo::new();
        io.arm(1, FaultKind::Error);
        io.append("wal", b"one").unwrap();
        assert!(io.append("wal", b"two").is_err());
        io.append("wal", b"three").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"onethree");
    }

    #[test]
    fn faulty_io_short_write_tears() {
        let io = FaultyIo::new();
        io.arm(0, FaultKind::ShortWrite(2));
        assert!(io.append("wal", b"abcdef").is_err());
        assert_eq!(io.read("wal").unwrap().unwrap(), b"ab");
    }

    #[test]
    fn faulty_io_crash_is_terminal() {
        let io = FaultyIo::new();
        io.append("wal", b"pre").unwrap();
        io.sync("wal").unwrap();
        io.arm(0, FaultKind::Crash);
        assert!(io.append("wal", b"post").is_err());
        assert!(io.read("wal").is_err());
        assert!(io.sync("wal").is_err());
        assert!(io.crashed());
        assert_eq!(io.power_loss_files()["wal"], b"pre");
    }

    #[test]
    fn faulty_io_transient_fails_n_then_heals() {
        let io = FaultyIo::new();
        io.arm_transient(3);
        assert!(io.append("wal", b"a").is_err());
        assert!(io.sync("wal").is_err());
        assert!(io.write_atomic("cp", b"x").is_err());
        assert_eq!(io.transient_fired(), 3);
        // Healed: nothing from the failed operations reached the files.
        io.append("wal", b"ok").unwrap();
        io.sync("wal").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"ok");
        assert_eq!(io.read("cp").unwrap(), None);
        assert!(!io.crashed());
    }

    #[test]
    fn file_io_roundtrip() {
        let dir = std::env::temp_dir().join(format!("sqlengine_fileio_{}", std::process::id()));
        let io = FileIo::new(&dir).unwrap();
        assert_eq!(io.read("wal").unwrap(), None);
        assert_eq!(io.size("wal").unwrap(), 0);
        io.append("wal", b"hello ").unwrap();
        io.append("wal", b"world").unwrap();
        io.sync("wal").unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"hello world");
        io.truncate("wal", 5).unwrap();
        assert_eq!(io.read("wal").unwrap().unwrap(), b"hello");
        assert_eq!(io.size("wal").unwrap(), 5);
        io.write_atomic("cp", b"{}").unwrap();
        assert_eq!(io.read("cp").unwrap().unwrap(), b"{}");
        std::fs::remove_dir_all(&dir).ok();
    }
}
