//! Checkpoints: a JSON image of the whole catalog plus the WAL sequence
//! number it covers.
//!
//! The table payload reuses the snapshot writer (`snapshot.rs`), extended
//! with a `seq` field and an `indexes` section — secondary indexes are part
//! of durable state (recreating them wholesale on every recovery would make
//! recovery time data-dependent), while the snapshot format proper only
//! records primary keys.
//!
//! Checkpoints are written with [`StorageIo::write_atomic`], so a reader
//! sees either the old or the new checkpoint, never a torn one. Recovery
//! pairs the checkpoint's `seq` with the frame sequence numbers in the WAL:
//! frames with `seq` below the checkpoint's are already folded in and are
//! skipped (this is what makes a crash *between* checkpoint publication and
//! WAL truncation safe).
//!
//! [`StorageIo::write_atomic`]: super::StorageIo::write_atomic

use crate::catalog::Catalog;
use crate::error::{EngineError, Result};
use crate::snapshot::{parse_json, write_json_string, Snapshot};

/// Serialize the catalog and covered sequence number.
pub(crate) fn encode_checkpoint(catalog: &Catalog, seq: u64) -> String {
    let snapshot = Snapshot::capture_catalog(catalog);
    let mut out = String::with_capacity(256);
    out.push_str("{\"seq\":");
    out.push_str(&seq.to_string());
    out.push_str(",\"tables\":");
    snapshot.write_tables(&mut out);
    out.push_str(",\"indexes\":{");
    let mut first_table = true;
    for name in catalog.table_names() {
        let table = catalog.get(&name).expect("table_names() names exist");
        if table.secondary.is_empty() {
            continue;
        }
        if !first_table {
            out.push(',');
        }
        first_table = false;
        write_json_string(&mut out, &name);
        out.push_str(":[");
        for (i, index) in table.secondary.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":");
            write_json_string(&mut out, &index.name);
            out.push_str(",\"columns\":[");
            for (j, &col) in index.key_columns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                write_json_string(&mut out, &table.schema.columns[col].name);
            }
            out.push_str("]}");
        }
        out.push(']');
    }
    out.push_str("}}");
    out
}

fn corrupt(msg: impl std::fmt::Display) -> EngineError {
    EngineError::wal(format!("corrupt checkpoint: {msg}"))
}

/// Parse a checkpoint back into `(covered_seq, catalog)`.
pub(crate) fn decode_checkpoint(json: &str) -> Result<(u64, Catalog)> {
    let doc = parse_json(json).map_err(|e| corrupt(e.message().to_string()))?;
    let seq = doc
        .get("seq")
        .and_then(|v| v.as_u64())
        .ok_or_else(|| corrupt("missing 'seq'"))?;
    let tables = doc
        .get("tables")
        .ok_or_else(|| corrupt("missing 'tables'"))?;
    let snapshot =
        Snapshot::tables_from_json(tables).map_err(|e| corrupt(e.message().to_string()))?;
    let mut catalog = Catalog::new();
    for table in snapshot
        .build_tables()
        .map_err(|e| corrupt(e.message().to_string()))?
    {
        catalog.create_table(table, false)?;
    }
    if let Some(indexes) = doc.get("indexes") {
        let per_table = indexes
            .as_object()
            .ok_or_else(|| corrupt("'indexes' is not an object"))?;
        for (table_name, list) in per_table {
            let table = catalog
                .get_mut(table_name)
                .map_err(|_| corrupt(format!("indexes refer to unknown table '{table_name}'")))?;
            let list = list
                .as_array()
                .ok_or_else(|| corrupt("index list is not an array"))?;
            for entry in list {
                let name = entry
                    .get("name")
                    .and_then(|v| v.as_str())
                    .ok_or_else(|| corrupt("index entry missing 'name'"))?;
                let columns = entry
                    .get("columns")
                    .and_then(|v| v.as_array())
                    .ok_or_else(|| corrupt("index entry missing 'columns'"))?
                    .iter()
                    .map(|c| {
                        c.as_str()
                            .map(str::to_string)
                            .ok_or_else(|| corrupt("index column is not a string"))
                    })
                    .collect::<Result<Vec<_>>>()?;
                table.create_index(name, &columns, false)?;
            }
        }
    }
    Ok((seq, catalog))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Column, Schema, Table};
    use crate::value::{DataType, Value};

    #[test]
    fn checkpoint_roundtrip_with_indexes() {
        let mut source = Catalog::new();
        let schema = Schema::new(vec![
            Column {
                name: "j".into(),
                ty: DataType::Text,
            },
            Column {
                name: "k".into(),
                ty: DataType::Integer,
            },
            Column {
                name: "w".into(),
                ty: DataType::Real,
            },
        ]);
        let mut corpus = Table::new("corpus".into(), schema, &["j".into(), "k".into()]).unwrap();
        for (j, k, w) in [("a", 1, 0.5), ("b", 2, 1.5), ("a", 2, 2.5)] {
            corpus
                .insert_row(vec![Value::text(j), Value::Int(k), Value::Float(w)], None)
                .unwrap();
        }
        corpus
            .create_index("corpus_k", &["k".into()], false)
            .unwrap();
        source.create_table(corpus, false).unwrap();
        let plain_schema = Schema::new(vec![Column {
            name: "x".into(),
            ty: DataType::Integer,
        }]);
        let mut plain = Table::new("plain".into(), plain_schema, &[]).unwrap();
        plain.insert_row(vec![Value::Int(10)], None).unwrap();
        plain.insert_row(vec![Value::Int(20)], None).unwrap();
        source.create_table(plain, false).unwrap();

        let json = encode_checkpoint(&source, 99);
        let (seq, catalog) = decode_checkpoint(&json).unwrap();
        assert_eq!(seq, 99);
        let corpus = catalog.get("corpus").unwrap();
        assert_eq!(corpus.row_count(), 3);
        assert!(corpus.primary.is_some(), "primary key survives");
        assert!(corpus.has_index("corpus_k"), "secondary index survives");
        // The rebuilt index actually resolves lookups.
        let idx = &corpus.secondary[0];
        assert_eq!(idx.map[&vec![Value::Int(2)]].len(), 2);
        assert_eq!(catalog.get("plain").unwrap().row_count(), 2);
    }

    #[test]
    fn corrupt_checkpoints_are_clean_errors() {
        for bad in [
            "",
            "{",
            "{}",
            "{\"seq\":1}",
            "{\"seq\":-4,\"tables\":{}}",
            "{\"seq\":1,\"tables\":{\"t\":{\"columns\":[[\"a\",\"Bogus\"]],\"primary_key\":[],\"rows\":[]}}}",
            "{\"seq\":1,\"tables\":{},\"indexes\":{\"missing\":[{\"name\":\"i\",\"columns\":[\"x\"]}]}}",
        ] {
            let err = decode_checkpoint(bad).expect_err(&format!("{bad:?} must fail"));
            assert!(
                matches!(err, EngineError::Wal(_)),
                "expected Wal error for {bad:?}, got {err:?}"
            );
        }
    }
}
