//! Durability: write-ahead logging, checkpointing, and crash recovery.
//!
//! The engine logs *logical* redo records: one CRC-framed batch per
//! auto-commit statement (or per explicit `COMMIT`), containing the DDL and
//! row mutations that statement performed. Because replay starts from the
//! exact catalog state the checkpoint captured and runs through the same
//! `Table` mutation code paths, row indexes inside the records are
//! deterministic and the recovered state is bit-identical to the state the
//! original process had after the last durable batch.
//!
//! Invariants:
//!
//! * WAL order equals catalog mutation order — every append happens while
//!   the writer still holds the catalog write lock.
//! * A batch is logged only for mutations that actually happened; a
//!   statement that fails halfway logs exactly its applied prefix.
//! * Recovery never fails on a torn tail: the log is truncated at the first
//!   record that does not parse or does not carry the expected sequence
//!   number. Corruption *behind* a valid record cannot be detected (CRCs are
//!   per-record), which is the standard WAL contract.
//! * A checkpoint at sequence `S` makes every frame with `seq < S`
//!   redundant; recovery skips them, which makes a crash between checkpoint
//!   publication and WAL truncation harmless.
//!
//! Fault handling on the write path: if an append fails (torn or not), the
//! WAL truncates itself back to the last durable length so the tear cannot
//! poison later records. If even that repair fails, the log is *wedged* —
//! all further durable mutations are refused with a clean error while
//! reads keep working.
//!
//! Group commit (`EngineConfig::wal_group_commit`, effective under
//! [`SyncPolicy::Always`]): instead of appending + fsyncing inline, a
//! statement *enqueues* its encoded frame under the catalog lock (so queue
//! order still equals mutation order) and receives a sequence ticket; after
//! releasing the lock it blocks in [`Wal::wait_durable`], where the first
//! waiter becomes the flush leader and writes every queued frame with a
//! single append + fsync. Overlapping writers therefore share one fsync,
//! while strictly serial traffic degenerates to exactly today's one fsync
//! per statement. Acknowledgement semantics are unchanged: a statement
//! returns only after its frame is on disk, and a crash loses only
//! unacknowledged tail frames — never a prefix-breaking hole, because
//! frames reach the file in sequence order as one contiguous group.

mod checkpoint;
mod codec;
mod storage;

pub use codec::{crc32, frame_boundaries};
pub use storage::{FaultKind, FaultyIo, FileIo, MemIo, StorageIo};

use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use crate::catalog::{Catalog, Column, Schema, Table};
use crate::error::{EngineError, Result};
use crate::exec::check_deadline;
use crate::trace::{AttrValue, TraceScope, WaitClass};
use crate::value::{DataType, Row};

/// WAL file name inside the storage root.
pub const WAL_FILE: &str = "wal.log";
/// Checkpoint file name inside the storage root.
pub const CHECKPOINT_FILE: &str = "checkpoint.json";

/// Bounded retry policy for WAL append/fsync failures
/// (`EngineConfig::wal_retry`).
///
/// A transient disk hiccup (the model [`FaultyIo::arm_transient`] injects)
/// fails an operation cleanly; with `attempts > 1` the WAL repairs the file
/// back to the last durable length and retries up to `attempts` total times,
/// sleeping `backoff * attempt_number` between tries (deterministic linear
/// backoff — no jitter, so tests reproduce exactly). The default is a single
/// attempt (no retry), preserving fail-fast semantics for fault-injection
/// tests and callers that do their own retrying.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalRetry {
    /// Total attempts per logical write (1 = no retry).
    pub attempts: u32,
    /// Base sleep between attempts; attempt `n` sleeps `backoff * n`.
    pub backoff: Duration,
}

impl Default for WalRetry {
    fn default() -> Self {
        WalRetry {
            attempts: 1,
            backoff: Duration::ZERO,
        }
    }
}

/// When the log is fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SyncPolicy {
    /// Fsync after every record batch (every auto-commit statement and
    /// every `COMMIT`). Strongest guarantee, slowest writes.
    Always,
    /// Fsync only on explicit `COMMIT` (and on checkpoints). A power loss
    /// may drop recent auto-commit statements, but acknowledged
    /// transactions survive and the log is never left inconsistent.
    #[default]
    OnCommit,
    /// Never fsync; durability is delegated to the OS page cache. Survives
    /// process crashes, not power loss.
    Never,
}

/// One logical redo operation. Rows are recorded exactly as the statement
/// submitted them (pre-coercion); replay runs them through the same
/// `Table::insert_row` / `replace_row` / `delete_rows` / `create_index`
/// code as the original execution, so coercion and index maintenance are
/// reapplied deterministically.
#[derive(Debug, Clone)]
pub(crate) enum WalOp {
    CreateTable {
        name: String,
        columns: Vec<(String, DataType)>,
        primary_key: Vec<String>,
    },
    DropTable {
        name: String,
    },
    CreateIndex {
        table: String,
        name: String,
        columns: Vec<String>,
        unique: bool,
    },
    Insert {
        table: String,
        rows: Vec<Row>,
    },
    Replace {
        table: String,
        idx: u64,
        row: Row,
    },
    Delete {
        table: String,
        idxs: Vec<u64>,
    },
}

struct WalInner {
    /// Sequence number the next batch will carry.
    next_seq: u64,
    /// Bytes of the WAL file known to be fully written (the repair target
    /// after a torn append).
    wal_len: u64,
    /// Buffered ops while an explicit transaction is open; flushed as one
    /// batch at `COMMIT`, discarded at `ROLLBACK`.
    pending: Option<Vec<WalOp>>,
    /// Set (with the cause) when a failed append could not be repaired; all
    /// further durable mutations are refused while reads keep serving —
    /// degraded read-only mode.
    wedged: Option<String>,
    /// Group-commit mode only: encoded frames (whole, in sequence order)
    /// enqueued for the next leader flush.
    group_queue: Vec<u8>,
    /// Byte length of each queued frame, for per-frame append telemetry at
    /// flush time.
    group_lens: Vec<u64>,
}

/// The write-ahead log attached to a durable [`Database`].
///
/// [`Database`]: crate::Database
pub struct Wal {
    io: Arc<dyn StorageIo>,
    sync: SyncPolicy,
    /// Checkpoint once the log exceeds this many bytes (0 disables the
    /// automatic trigger).
    checkpoint_after: u64,
    /// Group commit: `log`/`commit` enqueue their frame and hand back a
    /// ticket; [`Wal::wait_durable`] elects a flush leader that writes the
    /// whole queue with one append + one fsync. Only effective under
    /// [`SyncPolicy::Always`].
    group_commit: bool,
    /// Bounded retry policy for transient append/fsync failures.
    retry: WalRetry,
    inner: Mutex<WalInner>,
    /// Every frame with `seq < durable_before` is appended and fsynced.
    /// The fast path of [`Wal::wait_durable`] reads this without a lock.
    durable_before: std::sync::atomic::AtomicU64,
    /// Serializes group flushes (leader election). Lock order: `flush_lock`
    /// before `inner`, never the reverse; IO happens with only `flush_lock`
    /// held so writers keep enqueueing into the next group meanwhile.
    flush_lock: Mutex<()>,
    /// Engine-wide registry for append / fsync / checkpoint metrics.
    telemetry: Arc<crate::telemetry::Telemetry>,
}

impl Wal {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn new(
        io: Arc<dyn StorageIo>,
        sync: SyncPolicy,
        group_commit: bool,
        checkpoint_after: u64,
        retry: WalRetry,
        next_seq: u64,
        wal_len: u64,
        telemetry: Arc<crate::telemetry::Telemetry>,
    ) -> Wal {
        Wal {
            io,
            sync,
            group_commit: group_commit && sync == SyncPolicy::Always,
            checkpoint_after,
            retry: WalRetry {
                attempts: retry.attempts.max(1),
                backoff: retry.backoff,
            },
            inner: Mutex::new(WalInner {
                next_seq,
                wal_len,
                pending: None,
                wedged: None,
                group_queue: Vec::new(),
                group_lens: Vec::new(),
            }),
            durable_before: std::sync::atomic::AtomicU64::new(next_seq),
            flush_lock: Mutex::new(()),
            telemetry,
        }
    }

    /// Record the ops of one statement. Outside a transaction this writes
    /// (and per policy fsyncs) one batch immediately; inside a transaction
    /// the ops are buffered until `COMMIT`. Callers must still hold the
    /// catalog write lock, which is what keeps log order equal to catalog
    /// mutation order.
    ///
    /// In group-commit mode the frame is only *enqueued* here; the returned
    /// ticket must be passed to [`Wal::wait_durable`] after the catalog lock
    /// drops, and the statement is acknowledged only once that returns.
    /// `None` means the write is already as durable as the sync policy
    /// promises (or nothing needed writing).
    #[cfg_attr(not(test), allow(dead_code))] // untraced convenience used by the test suites
    pub(crate) fn log(
        &self,
        catalog: &Catalog,
        ops: Vec<WalOp>,
        deadline: Option<Instant>,
    ) -> Result<Option<u64>> {
        self.log_traced(catalog, ops, deadline, None)
    }

    /// [`Wal::log`] with an optional trace scope: WAL spans (inline fsync,
    /// retry backoff) recorded while writing parent under the statement's
    /// exec span.
    pub(crate) fn log_traced(
        &self,
        catalog: &Catalog,
        ops: Vec<WalOp>,
        deadline: Option<Instant>,
        trace: Option<&TraceScope<'_>>,
    ) -> Result<Option<u64>> {
        if ops.is_empty() {
            return Ok(None);
        }
        let mut inner = self.inner.lock();
        if let Some(pending) = &mut inner.pending {
            pending.extend(ops);
            return Ok(None);
        }
        let ticket = self.write_batch(&mut inner, &ops, false, deadline, trace)?;
        if ticket.is_none() {
            self.maybe_checkpoint(&mut inner, catalog)?;
        }
        Ok(ticket)
    }

    /// Start buffering: called at `BEGIN`.
    pub(crate) fn begin(&self) {
        let mut inner = self.inner.lock();
        if inner.pending.is_none() {
            inner.pending = Some(Vec::new());
        }
    }

    /// Flush the buffered transaction as a single batch: called at `COMMIT`.
    /// Returns a group-commit ticket like [`Wal::log`]; the optional trace
    /// scope works as in [`Wal::log_traced`].
    pub(crate) fn commit_traced(
        &self,
        catalog: &Catalog,
        deadline: Option<Instant>,
        trace: Option<&TraceScope<'_>>,
    ) -> Result<Option<u64>> {
        let mut inner = self.inner.lock();
        let Some(ops) = inner.pending.take() else {
            return Ok(None);
        };
        if ops.is_empty() {
            return Ok(None);
        }
        let ticket = self.write_batch(&mut inner, &ops, true, deadline, trace)?;
        if ticket.is_none() {
            self.maybe_checkpoint(&mut inner, catalog)?;
        }
        Ok(ticket)
    }

    /// Discard the buffered transaction: called at `ROLLBACK`. Nothing was
    /// written since `BEGIN`, so the durable state already equals the
    /// restored in-memory state.
    pub(crate) fn rollback(&self) {
        self.inner.lock().pending = None;
    }

    /// Fold the current catalog into a checkpoint and truncate the log.
    pub(crate) fn checkpoint(&self, catalog: &Catalog) -> Result<()> {
        // A group flush in flight must finish before the file is truncated
        // out from under it (lock order: flush_lock before inner).
        let _flush = self.group_commit.then(|| self.flush_lock.lock());
        let mut inner = self.inner.lock();
        self.checkpoint_locked(&mut inner, catalog)
    }

    /// Bytes currently in the WAL file (diagnostics / tests).
    pub(crate) fn wal_bytes(&self) -> u64 {
        self.inner.lock().wal_len
    }

    /// Whether the automatic checkpoint trigger has tripped. Group-commit
    /// callers check this after [`Wal::wait_durable`], once they can take
    /// the catalog lock again (the non-group path checkpoints inline).
    pub(crate) fn wants_checkpoint(&self) -> bool {
        self.checkpoint_after > 0 && self.inner.lock().wal_len >= self.checkpoint_after
    }

    /// Whether the log is wedged: degraded read-only mode, writes refused
    /// with the wedge cause while reads keep serving.
    pub(crate) fn degraded(&self) -> bool {
        self.inner.lock().wedged.is_some()
    }

    /// Fail fast when the log is wedged. Write statements call this
    /// *before* mutating the in-memory catalog, so degraded read-only mode
    /// refuses the whole statement instead of applying a change that could
    /// never become durable.
    pub(crate) fn check_writable(&self) -> Result<()> {
        match &self.inner.lock().wedged {
            Some(cause) => Err(Self::wedged_error(cause)),
            None => Ok(()),
        }
    }

    /// The error every durable mutation returns while the log is wedged.
    /// Classified as retryable ([`EngineError::Wal`]): a reopened database
    /// recovers and can serve the same statement.
    fn wedged_error(cause: &str) -> EngineError {
        EngineError::wal(format!(
            "write-ahead log is wedged ({cause}); degraded read-only mode — \
             reads keep serving, reopen the database to recover writes"
        ))
    }

    /// Block until frame `seq` is durable. The first waiter becomes the
    /// flush leader and writes the *entire* queue with one append + one
    /// fsync; waiters that arrive while a flush is in flight coalesce into
    /// the next group. Callers must not hold the catalog lock — blocking
    /// here while holding it would serialize the writers whose overlap the
    /// group exists to exploit.
    ///
    /// With a `deadline`, the wait is bounded: a waiter that cannot become
    /// leader (or finish as one) before the deadline returns
    /// [`EngineError::Timeout`]. Its frame stays queued — the next leader
    /// flushes it — and the statement is *not* acknowledged, so timing out
    /// here never loses an acked commit.
    #[cfg_attr(not(test), allow(dead_code))] // untraced convenience used by the test suites
    pub(crate) fn wait_durable(&self, seq: u64, deadline: Option<Instant>) -> Result<()> {
        self.wait_durable_traced(seq, deadline, None)
    }

    /// [`Wal::wait_durable`] with an optional trace scope. When the fast
    /// path misses (the frame is not yet durable), the whole wait is rolled
    /// up into the `fsync` wait class and — when traced — recorded as a
    /// `wal.fsync_wait` span attributed with the role this statement played
    /// (`leader` flushed the group itself; `follower` waited on another
    /// statement's flush). The fast path stays clock-free.
    pub(crate) fn wait_durable_traced(
        &self,
        seq: u64,
        deadline: Option<Instant>,
        trace: Option<&TraceScope<'_>>,
    ) -> Result<()> {
        use std::sync::atomic::Ordering;
        if self.durable_before.load(Ordering::Acquire) > seq {
            return Ok(());
        }
        let waited_from = (self.telemetry.enabled() || trace.is_some()).then(Instant::now);
        let mut led = false;
        let result = self.wait_durable_slow(seq, deadline, trace, &mut led);
        if let Some(from) = waited_from {
            if self.telemetry.enabled() {
                self.telemetry.wait_fsync_us.record(from.elapsed());
            }
            if let Some(scope) = trace {
                let role = if led { "leader" } else { "follower" };
                scope.record_wait(
                    "wal.fsync_wait",
                    WaitClass::Fsync,
                    from,
                    vec![("role", AttrValue::Text(role))],
                );
            }
        }
        result
    }

    fn wait_durable_slow(
        &self,
        seq: u64,
        deadline: Option<Instant>,
        trace: Option<&TraceScope<'_>>,
        led: &mut bool,
    ) -> Result<()> {
        use std::sync::atomic::Ordering;
        let Some(dl) = deadline else {
            // No deadline: block on the leader lock directly (the hot
            // serving path — no polling overhead).
            loop {
                if self.durable_before.load(Ordering::Acquire) > seq {
                    return Ok(());
                }
                let _leader = self.flush_lock.lock();
                if self.durable_before.load(Ordering::Acquire) > seq {
                    continue; // re-check via the fast path, then return
                }
                *led = true;
                self.flush_group(None, trace)?;
            }
        };
        loop {
            if self.durable_before.load(Ordering::Acquire) > seq {
                return Ok(());
            }
            check_deadline(Some(dl))?;
            match self.flush_lock.try_lock() {
                Some(_leader) => {
                    if self.durable_before.load(Ordering::Acquire) > seq {
                        continue;
                    }
                    *led = true;
                    self.flush_group(Some(dl), trace)?;
                }
                // Another leader is flushing; poll instead of blocking
                // unboundedly behind its IO.
                None => std::thread::sleep(Duration::from_micros(50)),
            }
        }
    }

    /// Write the queued group to storage: one append + one fsync for every
    /// frame enqueued so far, retried per [`WalRetry`] with truncate-repair
    /// between attempts. Caller holds `flush_lock`. The fsync itself feeds
    /// only the `wal_fsync` latency histogram — the leader's *wait* is
    /// already rolled up by [`Wal::wait_durable_traced`], so recording it
    /// here too would double-count.
    fn flush_group(&self, deadline: Option<Instant>, trace: Option<&TraceScope<'_>>) -> Result<()> {
        use std::sync::atomic::Ordering;
        // Steal the queue under a brief inner lock; IO runs without it.
        let (bytes, lens, hi, base_len) = {
            let mut inner = self.inner.lock();
            if let Some(cause) = &inner.wedged {
                return Err(Self::wedged_error(cause));
            }
            if inner.group_queue.is_empty() {
                // Nothing left to write (a checkpoint folded the queue).
                self.durable_before.store(inner.next_seq, Ordering::Release);
                return Ok(());
            }
            (
                std::mem::take(&mut inner.group_queue),
                std::mem::take(&mut inner.group_lens),
                inner.next_seq,
                inner.wal_len,
            )
        };
        let mut attempt = 1u32;
        let err = loop {
            let io_result = self.io.append(WAL_FILE, &bytes).and_then(|()| {
                let sync_started = self.telemetry.enabled().then(std::time::Instant::now);
                self.io.sync(WAL_FILE)?;
                if let Some(t) = sync_started {
                    self.telemetry.record_wal_fsync(t.elapsed());
                }
                Ok(())
            });
            match io_result {
                Ok(()) => {
                    let mut inner = self.inner.lock();
                    inner.wal_len = base_len + bytes.len() as u64;
                    for len in lens {
                        self.telemetry.record_wal_append(len);
                    }
                    self.durable_before.store(hi, Ordering::Release);
                    return Ok(());
                }
                Err(e) => {
                    // Cut any torn bytes off the file before deciding what
                    // comes next; an unrepairable file wedges the log.
                    if self.io.truncate(WAL_FILE, base_len).is_err() {
                        self.inner.lock().wedged =
                            Some("group flush failed and truncate repair also failed".into());
                        break e;
                    }
                    let expired = deadline.is_some_and(|d| Instant::now() >= d);
                    if attempt >= self.retry.attempts || expired {
                        break e;
                    }
                    self.telemetry.wal_retries.incr();
                    let slept_from =
                        (self.telemetry.enabled() || trace.is_some()).then(Instant::now);
                    std::thread::sleep(self.retry.backoff * attempt);
                    if let Some(from) = slept_from {
                        self.record_retry_wait(from, attempt, trace);
                    }
                    attempt += 1;
                }
            }
        };
        // Retries exhausted (or the repair wedged the log): put the group
        // back at the *front* of the queue — dropping it would leave a
        // sequence gap that recovery (rightly) treats as the end of the
        // log, silently discarding every later commit.
        let mut inner = self.inner.lock();
        if inner.wedged.is_none() {
            let mut requeued = bytes;
            requeued.extend_from_slice(&inner.group_queue);
            inner.group_queue = requeued;
            let mut relens = lens;
            relens.extend_from_slice(&inner.group_lens);
            inner.group_lens = relens;
        }
        Err(err)
    }

    /// Record one WAL retry backoff sleep into the `wal_retry` wait-class
    /// rollup and (when traced) as a `wal.retry` span.
    fn record_retry_wait(&self, from: Instant, attempt: u32, trace: Option<&TraceScope<'_>>) {
        if self.telemetry.enabled() {
            self.telemetry.wait_wal_retry_us.record(from.elapsed());
        }
        if let Some(scope) = trace {
            scope.record_wait(
                "wal.retry",
                WaitClass::WalRetry,
                from,
                vec![("attempt", AttrValue::Int(i64::from(attempt)))],
            );
        }
    }

    fn write_batch(
        &self,
        inner: &mut WalInner,
        ops: &[WalOp],
        is_commit: bool,
        deadline: Option<Instant>,
        trace: Option<&TraceScope<'_>>,
    ) -> Result<Option<u64>> {
        if let Some(cause) = &inner.wedged {
            return Err(Self::wedged_error(cause));
        }
        let frame = codec::encode_batch(inner.next_seq, ops);
        if self.group_commit {
            // Enqueue under the catalog write lock (held by the caller),
            // which keeps queue order equal to catalog mutation order; the
            // append + fsync happen in `wait_durable` after the lock drops.
            let seq = inner.next_seq;
            inner.group_lens.push(frame.len() as u64);
            inner.group_queue.extend_from_slice(&frame);
            inner.next_seq += 1;
            return Ok(Some(seq));
        }
        let want_sync = match self.sync {
            SyncPolicy::Always => true,
            SyncPolicy::OnCommit => is_commit,
            SyncPolicy::Never => false,
        };
        let mut attempt = 1u32;
        loop {
            let io_result = self.io.append(WAL_FILE, &frame).and_then(|()| {
                if !want_sync {
                    return Ok(());
                }
                let sync_started =
                    (self.telemetry.enabled() || trace.is_some()).then(std::time::Instant::now);
                self.io.sync(WAL_FILE)?;
                if let Some(t) = sync_started {
                    let took = t.elapsed();
                    if self.telemetry.enabled() {
                        self.telemetry.record_wal_fsync(took);
                        self.telemetry.wait_fsync_us.record(took);
                    }
                    if let Some(scope) = trace {
                        scope.record_wait(
                            "wal.fsync",
                            WaitClass::Fsync,
                            t,
                            vec![("role", AttrValue::Text("inline"))],
                        );
                    }
                }
                Ok(())
            });
            match io_result {
                Ok(()) => break,
                Err(e) => {
                    // A torn append (or an appended-but-unsynced frame)
                    // would make bookkeeping and file disagree; cut the
                    // file back to the last durable length.
                    if self.io.truncate(WAL_FILE, inner.wal_len).is_err() {
                        inner.wedged = Some("write failed and truncate repair also failed".into());
                        return Err(e);
                    }
                    let expired = deadline.is_some_and(|d| Instant::now() >= d);
                    if attempt >= self.retry.attempts || expired {
                        return Err(e);
                    }
                    self.telemetry.wal_retries.incr();
                    let slept_from =
                        (self.telemetry.enabled() || trace.is_some()).then(Instant::now);
                    std::thread::sleep(self.retry.backoff * attempt);
                    if let Some(from) = slept_from {
                        self.record_retry_wait(from, attempt, trace);
                    }
                    attempt += 1;
                }
            }
        }
        inner.next_seq += 1;
        inner.wal_len += frame.len() as u64;
        self.telemetry.record_wal_append(frame.len() as u64);
        Ok(None)
    }

    fn maybe_checkpoint(&self, inner: &mut WalInner, catalog: &Catalog) -> Result<()> {
        if self.checkpoint_after > 0 && inner.wal_len >= self.checkpoint_after {
            self.checkpoint_locked(inner, catalog)?;
        }
        Ok(())
    }

    fn checkpoint_locked(&self, inner: &mut WalInner, catalog: &Catalog) -> Result<()> {
        if let Some(cause) = &inner.wedged {
            return Err(Self::wedged_error(cause));
        }
        let json = checkpoint::encode_checkpoint(catalog, inner.next_seq);
        // Publication point: after this rename, every WAL frame below
        // next_seq is redundant (recovery skips them), so a crash before
        // the truncate below loses nothing.
        self.io.write_atomic(CHECKPOINT_FILE, json.as_bytes())?;
        if self.io.truncate(WAL_FILE, 0).is_err() {
            // The checkpoint is durable; stale frames are skipped by seq on
            // recovery. But our length bookkeeping no longer matches the
            // file, so refuse further writes rather than risk mis-repair.
            inner.wedged = Some("checkpoint written but WAL truncation failed".into());
            return Err(EngineError::wal(
                "checkpoint written but WAL truncation failed; reopen to recover",
            ));
        }
        inner.wal_len = 0;
        if self.group_commit {
            // Frames still queued are covered by the checkpoint — their
            // catalog mutations are part of the snapshot just published, and
            // it was written at `next_seq`, above every queued frame. Drop
            // them and acknowledge their waiting committers.
            inner.group_queue.clear();
            inner.group_lens.clear();
            self.durable_before
                .store(inner.next_seq, std::sync::atomic::Ordering::Release);
        }
        self.telemetry.record_wal_checkpoint(json.len() as u64);
        Ok(())
    }
}

/// Everything recovery reconstructs from storage.
pub(crate) struct Recovered {
    pub catalog: Catalog,
    pub next_seq: u64,
    pub wal_len: u64,
}

/// Load the latest checkpoint and replay the WAL on top of it, truncating
/// the log at the first torn or corrupt record. Never fails on a damaged
/// *tail*; fails only if storage itself errors or the checkpoint (which is
/// written atomically) is unreadable.
pub(crate) fn recover(io: &dyn StorageIo) -> Result<Recovered> {
    let (checkpoint_seq, mut catalog) = match io.read(CHECKPOINT_FILE)? {
        Some(bytes) => {
            let json = std::str::from_utf8(&bytes)
                .map_err(|_| EngineError::wal("corrupt checkpoint: invalid UTF-8"))?;
            checkpoint::decode_checkpoint(json)?
        }
        None => (0, Catalog::new()),
    };

    let wal = io.read(WAL_FILE)?.unwrap_or_default();
    let mut pos = 0usize;
    let mut valid_len = 0usize;
    let mut next_seq = checkpoint_seq;
    while let Some(frame) = codec::next_frame(&wal, pos) {
        if frame.seq < checkpoint_seq {
            // Already folded into the checkpoint (crash between checkpoint
            // publication and WAL truncation).
            pos = frame.end;
            valid_len = frame.end;
            continue;
        }
        if frame.seq != next_seq {
            // A sequence gap means the bytes here are stale or misplaced;
            // nothing after them can be trusted.
            break;
        }
        // Apply on a scratch clone so a batch that fails mid-way (which
        // recovery treats as corruption) leaves the catalog at the previous
        // batch boundary — recovered states are always commit-consistent.
        let mut scratch = catalog.clone();
        let ok = frame
            .ops
            .iter()
            .all(|op| apply_op(&mut scratch, op).is_ok());
        if !ok {
            break;
        }
        catalog = scratch;
        next_seq = frame.seq + 1;
        pos = frame.end;
        valid_len = frame.end;
    }
    if (valid_len as u64) < wal.len() as u64 {
        io.truncate(WAL_FILE, valid_len as u64)?;
    }
    Ok(Recovered {
        catalog,
        next_seq,
        wal_len: valid_len as u64,
    })
}

/// Apply one redo op to a catalog, through the same code paths the original
/// statement used.
pub(crate) fn apply_op(catalog: &mut Catalog, op: &WalOp) -> Result<()> {
    match op {
        WalOp::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            let schema = Schema::new(
                columns
                    .iter()
                    .map(|(name, ty)| Column {
                        name: name.clone(),
                        ty: *ty,
                    })
                    .collect(),
            );
            let table = Table::new(name.clone(), schema, primary_key)?;
            catalog.create_table(table, false)?;
        }
        WalOp::DropTable { name } => {
            catalog.drop_table(name, false)?;
        }
        WalOp::CreateIndex {
            table,
            name,
            columns,
            unique,
        } => {
            catalog
                .get_mut(table)?
                .create_index(name, columns, *unique)?;
        }
        WalOp::Insert { table, rows } => {
            let t = catalog.get_mut(table)?;
            for row in rows {
                t.insert_row(row.clone(), None)?;
            }
        }
        WalOp::Replace { table, idx, row } => {
            let t = catalog.get_mut(table)?;
            let idx = *idx as usize;
            if idx >= t.row_count() {
                return Err(EngineError::wal("replace index out of range"));
            }
            t.replace_row(idx, row.clone())?;
        }
        WalOp::Delete { table, idxs } => {
            let t = catalog.get_mut(table)?;
            let n = t.row_count() as u64;
            if idxs.iter().any(|&i| i >= n) {
                return Err(EngineError::wal("delete index out of range"));
            }
            t.delete_rows(idxs.iter().map(|&i| i as usize).collect())?;
        }
    }
    Ok(())
}

/// Append a freshly inserted row to `ops`, merging into a trailing
/// [`WalOp::Insert`] for the same table so bulk loads stay one op. Merging
/// only the *adjacent* op preserves ordering against interleaved
/// replace/delete ops.
pub(crate) fn push_insert(ops: &mut Vec<WalOp>, table: &str, row: Row) {
    if let Some(WalOp::Insert { table: t, rows }) = ops.last_mut() {
        if t == table {
            rows.push(row);
            return;
        }
    }
    ops.push(WalOp::Insert {
        table: table.to_string(),
        rows: vec![row],
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    fn io_with_ops(batches: &[Vec<WalOp>]) -> MemIo {
        let io = MemIo::new();
        for (seq, ops) in batches.iter().enumerate() {
            io.append(WAL_FILE, &codec::encode_batch(seq as u64, ops))
                .unwrap();
        }
        io.sync(WAL_FILE).unwrap();
        io
    }

    fn create_t() -> WalOp {
        WalOp::CreateTable {
            name: "t".into(),
            columns: vec![
                ("id".into(), DataType::Integer),
                ("v".into(), DataType::Text),
            ],
            primary_key: vec!["id".into()],
        }
    }

    fn insert_t(id: i64) -> WalOp {
        WalOp::Insert {
            table: "t".into(),
            rows: vec![vec![Value::Int(id), Value::text(format!("v{id}"))]],
        }
    }

    #[test]
    fn recover_replays_in_order() {
        let io = io_with_ops(&[vec![create_t()], vec![insert_t(1)], vec![insert_t(2)]]);
        let r = recover(&io).unwrap();
        assert_eq!(r.next_seq, 3);
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 2);
        assert_eq!(r.wal_len, io.size(WAL_FILE).unwrap());
    }

    #[test]
    fn recover_truncates_torn_tail() {
        let io = io_with_ops(&[vec![create_t()], vec![insert_t(1)]]);
        // Tear the log mid-way through a third record.
        let frame = codec::encode_batch(2, &[insert_t(2)]);
        io.append(WAL_FILE, &frame[..frame.len() - 3]).unwrap();
        let before = io.size(WAL_FILE).unwrap();
        let r = recover(&io).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
        assert_eq!(r.next_seq, 2);
        let after = io.size(WAL_FILE).unwrap();
        assert!(after < before, "torn tail must be truncated");
        assert_eq!(after, r.wal_len);
        // The truncated log now recovers cleanly and can be appended to.
        io.append(WAL_FILE, &codec::encode_batch(2, &[insert_t(2)]))
            .unwrap();
        let r2 = recover(&io).unwrap();
        assert_eq!(r2.catalog.get("t").unwrap().row_count(), 2);
    }

    #[test]
    fn recover_skips_frames_behind_checkpoint() {
        // Simulate a crash between checkpoint publication and truncation:
        // the checkpoint covers seq < 2 but the log still has seqs 0..3.
        let io = io_with_ops(&[vec![create_t()], vec![insert_t(1)], vec![insert_t(2)]]);
        let mut catalog = Catalog::new();
        apply_op(&mut catalog, &create_t()).unwrap();
        apply_op(&mut catalog, &insert_t(1)).unwrap();
        io.write_atomic(
            CHECKPOINT_FILE,
            checkpoint::encode_checkpoint(&catalog, 2).as_bytes(),
        )
        .unwrap();
        let r = recover(&io).unwrap();
        // seq 0 and 1 skipped (already in the checkpoint), seq 2 applied.
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 2);
        assert_eq!(r.next_seq, 3);
    }

    #[test]
    fn recover_stops_at_sequence_gap() {
        let io = MemIo::new();
        io.append(WAL_FILE, &codec::encode_batch(0, &[create_t()]))
            .unwrap();
        io.append(WAL_FILE, &codec::encode_batch(5, &[insert_t(1)]))
            .unwrap();
        let r = recover(&io).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 0);
        assert_eq!(r.next_seq, 1);
        // The gap frame was truncated away.
        assert_eq!(io.size(WAL_FILE).unwrap(), r.wal_len);
        let bounds = frame_boundaries(&io.read(WAL_FILE).unwrap().unwrap());
        assert_eq!(bounds.len(), 1);
    }

    #[test]
    fn recover_treats_unappliable_batch_as_corruption() {
        // Second batch inserts a duplicate primary key — it can never have
        // been produced by a healthy run, so recovery stops before it and
        // keeps the first batch's state.
        let io = io_with_ops(&[vec![create_t(), insert_t(1)], vec![insert_t(1)]]);
        let r = recover(&io).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
        assert_eq!(r.next_seq, 1);
        // A batch that fails mid-way leaves no partial effects: batch 2
        // below applies one good row then conflicts, and the good row must
        // not leak into the recovered state.
        let io = io_with_ops(&[
            vec![create_t(), insert_t(1)],
            vec![insert_t(2), insert_t(2)],
        ]);
        let r = recover(&io).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
    }

    fn plain_wal(io: Arc<dyn StorageIo>, retry: WalRetry) -> Wal {
        Wal::new(
            io,
            SyncPolicy::Always,
            false,
            0,
            retry,
            0,
            0,
            Arc::new(crate::telemetry::Telemetry::disabled()),
        )
    }

    #[test]
    fn wal_append_failure_repairs_to_last_durable_length() {
        let io = Arc::new(FaultyIo::new());
        let wal = plain_wal(Arc::clone(&io) as Arc<dyn StorageIo>, WalRetry::default());
        let catalog = Catalog::new();
        wal.log(&catalog, vec![create_t()], None).unwrap();
        let len_before = io.size(WAL_FILE).unwrap();

        // Torn append: 5 bytes land, then the write errors. (`arm` resets
        // the write counter, so index 0 is the very next write.)
        io.arm(0, FaultKind::ShortWrite(5));
        let err = wal.log(&catalog, vec![insert_t(1)], None).unwrap_err();
        assert!(matches!(err, EngineError::Wal(_)));
        assert_eq!(
            io.size(WAL_FILE).unwrap(),
            len_before,
            "torn bytes must be truncated away"
        );

        // The log still works afterwards.
        wal.log(&catalog, vec![insert_t(1)], None).unwrap();
        let r = recover(io.as_ref()).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
    }

    #[test]
    fn wal_retry_rides_out_transient_faults() {
        let io = Arc::new(FaultyIo::new());
        let wal = plain_wal(
            Arc::clone(&io) as Arc<dyn StorageIo>,
            WalRetry {
                attempts: 4,
                backoff: Duration::ZERO,
            },
        );
        let catalog = Catalog::new();
        // The next 3 operations fail (append, retried append, its fsync...),
        // then the backend heals: a 4-attempt policy must succeed without
        // surfacing an error.
        io.arm_transient(3);
        wal.log(&catalog, vec![create_t()], None).unwrap();
        assert_eq!(io.transient_fired(), 3);
        let r = recover(io.as_ref()).unwrap();
        assert!(r.catalog.get("t").is_ok());
    }

    #[test]
    fn wal_retry_exhaustion_still_repairs_and_recovers() {
        let io = Arc::new(FaultyIo::new());
        let wal = plain_wal(
            Arc::clone(&io) as Arc<dyn StorageIo>,
            WalRetry {
                attempts: 2,
                backoff: Duration::ZERO,
            },
        );
        let catalog = Catalog::new();
        wal.log(&catalog, vec![create_t()], None).unwrap();
        let len_before = io.size(WAL_FILE).unwrap();
        io.arm_transient(10); // outlives the 2-attempt policy
        let err = wal.log(&catalog, vec![insert_t(1)], None).unwrap_err();
        assert!(matches!(err, EngineError::Wal(_)));
        assert!(err.is_retryable());
        assert_eq!(io.size(WAL_FILE).unwrap(), len_before);
        assert!(!wal.degraded(), "truncate repair succeeded — not wedged");
        // Heal (disarm the remaining failures) and confirm the log works.
        io.arm_transient(0);
        wal.log(&catalog, vec![insert_t(1)], None).unwrap();
        let r = recover(io.as_ref()).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
    }

    fn group_wal(io: Arc<dyn StorageIo>) -> Wal {
        Wal::new(
            io,
            SyncPolicy::Always,
            true,
            0,
            WalRetry::default(),
            0,
            0,
            Arc::new(crate::telemetry::Telemetry::disabled()),
        )
    }

    #[test]
    fn group_commit_coalesces_queued_frames_into_one_flush() {
        let io = Arc::new(MemIo::new());
        let wal = group_wal(Arc::clone(&io) as Arc<dyn StorageIo>);
        let catalog = Catalog::new();
        let t1 = wal.log(&catalog, vec![create_t()], None).unwrap().unwrap();
        let t2 = wal.log(&catalog, vec![insert_t(1)], None).unwrap().unwrap();
        assert_eq!((t1, t2), (0, 1));
        // Nothing reaches storage until a waiter drives the flush.
        assert_eq!(io.size(WAL_FILE).unwrap(), 0);
        wal.wait_durable(t2, None).unwrap();
        let bytes = io.read(WAL_FILE).unwrap().unwrap();
        assert_eq!(frame_boundaries(&bytes).len(), 2);
        assert_eq!(wal.wal_bytes(), bytes.len() as u64);
        // The earlier ticket is durable too, without further IO.
        wal.wait_durable(t1, None).unwrap();
        let r = recover(io.as_ref()).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
        assert_eq!(r.next_seq, 2);
    }

    #[test]
    fn group_commit_flush_failure_requeues_whole_group() {
        let io = Arc::new(FaultyIo::new());
        let wal = group_wal(Arc::clone(&io) as Arc<dyn StorageIo>);
        let catalog = Catalog::new();
        let t1 = wal.log(&catalog, vec![create_t()], None).unwrap().unwrap();
        let t2 = wal.log(&catalog, vec![insert_t(1)], None).unwrap().unwrap();
        // Tear the group append mid-way; the leader must repair the file
        // and keep both frames queued (dropping them would leave a
        // recovery-fatal sequence gap for any later commit).
        io.arm(0, FaultKind::ShortWrite(7));
        let err = wal.wait_durable(t2, None).unwrap_err();
        assert!(matches!(err, EngineError::Wal(_)));
        assert_eq!(io.size(WAL_FILE).unwrap(), 0, "torn group truncated away");
        // A retry flushes the requeued group in order.
        wal.wait_durable(t1, None).unwrap();
        wal.wait_durable(t2, None).unwrap();
        let r = recover(io.as_ref()).unwrap();
        assert_eq!(r.catalog.get("t").unwrap().row_count(), 1);
        assert_eq!(r.next_seq, 2);
    }

    #[test]
    fn group_commit_checkpoint_covers_queued_frames() {
        let io = Arc::new(MemIo::new());
        let wal = group_wal(Arc::clone(&io) as Arc<dyn StorageIo>);
        let mut catalog = Catalog::new();
        apply_op(&mut catalog, &create_t()).unwrap();
        let t1 = wal.log(&catalog, vec![create_t()], None).unwrap().unwrap();
        // Checkpoint while the frame is still queued: the snapshot already
        // contains its mutation, so the queue folds into it and the waiter
        // is acknowledged without any WAL append.
        wal.checkpoint(&catalog).unwrap();
        wal.wait_durable(t1, None).unwrap();
        assert_eq!(io.size(WAL_FILE).unwrap(), 0);
        let r = recover(io.as_ref()).unwrap();
        assert!(r.catalog.get("t").is_ok());
        assert_eq!(r.next_seq, 1);
    }

    #[test]
    fn push_insert_merges_adjacent_only() {
        let mut ops = Vec::new();
        push_insert(&mut ops, "t", vec![Value::Int(1)]);
        push_insert(&mut ops, "t", vec![Value::Int(2)]);
        ops.push(WalOp::Replace {
            table: "t".into(),
            idx: 0,
            row: vec![Value::Int(9)],
        });
        push_insert(&mut ops, "t", vec![Value::Int(3)]);
        assert_eq!(ops.len(), 3);
        let WalOp::Insert { rows, .. } = &ops[0] else {
            panic!("first op should be a merged insert");
        };
        assert_eq!(rows.len(), 2);
    }
}
