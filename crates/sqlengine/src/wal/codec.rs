//! Binary encoding of WAL record batches.
//!
//! Frame layout (all integers little-endian):
//!
//! ```text
//! [magic u32 = "WAL1"] [payload_len u32] [crc32(payload) u32] [payload]
//! payload = [seq u64] [op_count u32] [op]*
//! ```
//!
//! Values are tag-prefixed; floats are stored as raw IEEE-754 bits, so
//! NaN/±infinity round-trip exactly. Decoding is fully bounds-checked: any
//! malformed byte — bad magic, impossible length, CRC mismatch, truncated
//! payload, unknown tag, trailing garbage inside the payload — makes the
//! frame unreadable, and recovery treats the log as ending at the previous
//! frame.

use crate::error::{EngineError, Result};
use crate::value::{DataType, Row, Value};

use super::WalOp;

/// `"WAL1"` as a little-endian u32.
pub(crate) const WAL_MAGIC: u32 = u32::from_le_bytes(*b"WAL1");

/// Frame header: magic + payload length + CRC.
pub(crate) const FRAME_HEADER: usize = 12;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3), table-driven
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => buf.push(0),
        Value::Int(i) => {
            buf.push(1);
            put_u64(buf, *i as u64);
        }
        Value::Float(f) => {
            buf.push(2);
            put_u64(buf, f.to_bits());
        }
        Value::Str(s) => {
            buf.push(3);
            put_str(buf, s);
        }
    }
}

fn put_row(buf: &mut Vec<u8>, row: &Row) {
    put_u32(buf, row.len() as u32);
    for v in row {
        put_value(buf, v);
    }
}

fn datatype_tag(ty: DataType) -> u8 {
    match ty {
        DataType::Integer => 0,
        DataType::Real => 1,
        DataType::Text => 2,
        DataType::Any => 3,
    }
}

fn put_op(buf: &mut Vec<u8>, op: &WalOp) {
    match op {
        WalOp::CreateTable {
            name,
            columns,
            primary_key,
        } => {
            buf.push(1);
            put_str(buf, name);
            put_u32(buf, columns.len() as u32);
            for (col, ty) in columns {
                put_str(buf, col);
                buf.push(datatype_tag(*ty));
            }
            put_u32(buf, primary_key.len() as u32);
            for pk in primary_key {
                put_str(buf, pk);
            }
        }
        WalOp::DropTable { name } => {
            buf.push(2);
            put_str(buf, name);
        }
        WalOp::CreateIndex {
            table,
            name,
            columns,
            unique,
        } => {
            buf.push(3);
            put_str(buf, table);
            put_str(buf, name);
            put_u32(buf, columns.len() as u32);
            for c in columns {
                put_str(buf, c);
            }
            buf.push(u8::from(*unique));
        }
        WalOp::Insert { table, rows } => {
            buf.push(4);
            put_str(buf, table);
            put_u32(buf, rows.len() as u32);
            for row in rows {
                put_row(buf, row);
            }
        }
        WalOp::Replace { table, idx, row } => {
            buf.push(5);
            put_str(buf, table);
            put_u64(buf, *idx);
            put_row(buf, row);
        }
        WalOp::Delete { table, idxs } => {
            buf.push(6);
            put_str(buf, table);
            put_u32(buf, idxs.len() as u32);
            for i in idxs {
                put_u64(buf, *i);
            }
        }
    }
}

/// Encode one committed batch as a CRC-framed record.
pub(crate) fn encode_batch(seq: u64, ops: &[WalOp]) -> Vec<u8> {
    let mut payload = Vec::with_capacity(64);
    put_u64(&mut payload, seq);
    put_u32(&mut payload, ops.len() as u32);
    for op in ops {
        put_op(&mut payload, op);
    }
    let mut frame = Vec::with_capacity(FRAME_HEADER + payload.len());
    put_u32(&mut frame, WAL_MAGIC);
    put_u32(&mut frame, payload.len() as u32);
    put_u32(&mut frame, crc32(&payload));
    frame.extend_from_slice(&payload);
    frame
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn corrupt(what: &str) -> EngineError {
        EngineError::wal(format!("corrupt WAL record: {what}"))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| Self::corrupt("truncated"))?;
        let out = &self.buf[self.pos..end];
        self.pos = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn str(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let bytes = self.bytes(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| Self::corrupt("invalid UTF-8"))
    }

    fn value(&mut self) -> Result<Value> {
        match self.u8()? {
            0 => Ok(Value::Null),
            1 => Ok(Value::Int(self.u64()? as i64)),
            2 => Ok(Value::Float(f64::from_bits(self.u64()?))),
            3 => Ok(Value::text(self.str()?)),
            t => Err(Self::corrupt(&format!("unknown value tag {t}"))),
        }
    }

    fn row(&mut self) -> Result<Row> {
        let n = self.u32()? as usize;
        // Each value is at least one tag byte; reject impossible counts
        // before reserving.
        if n > self.buf.len() - self.pos {
            return Err(Self::corrupt("row length exceeds record"));
        }
        let mut row = Vec::with_capacity(n);
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    fn datatype(&mut self) -> Result<DataType> {
        match self.u8()? {
            0 => Ok(DataType::Integer),
            1 => Ok(DataType::Real),
            2 => Ok(DataType::Text),
            3 => Ok(DataType::Any),
            t => Err(Self::corrupt(&format!("unknown datatype tag {t}"))),
        }
    }

    fn op(&mut self) -> Result<WalOp> {
        match self.u8()? {
            1 => {
                let name = self.str()?;
                let n_cols = self.u32()? as usize;
                if n_cols > self.buf.len() - self.pos {
                    return Err(Self::corrupt("column count exceeds record"));
                }
                let mut columns = Vec::with_capacity(n_cols);
                for _ in 0..n_cols {
                    let col = self.str()?;
                    let ty = self.datatype()?;
                    columns.push((col, ty));
                }
                let n_pk = self.u32()? as usize;
                if n_pk > self.buf.len() - self.pos {
                    return Err(Self::corrupt("key count exceeds record"));
                }
                let mut primary_key = Vec::with_capacity(n_pk);
                for _ in 0..n_pk {
                    primary_key.push(self.str()?);
                }
                Ok(WalOp::CreateTable {
                    name,
                    columns,
                    primary_key,
                })
            }
            2 => Ok(WalOp::DropTable { name: self.str()? }),
            3 => {
                let table = self.str()?;
                let name = self.str()?;
                let n = self.u32()? as usize;
                if n > self.buf.len() - self.pos {
                    return Err(Self::corrupt("column count exceeds record"));
                }
                let mut columns = Vec::with_capacity(n);
                for _ in 0..n {
                    columns.push(self.str()?);
                }
                let unique = self.u8()? != 0;
                Ok(WalOp::CreateIndex {
                    table,
                    name,
                    columns,
                    unique,
                })
            }
            4 => {
                let table = self.str()?;
                let n = self.u32()? as usize;
                if n > self.buf.len() - self.pos {
                    return Err(Self::corrupt("row count exceeds record"));
                }
                let mut rows = Vec::with_capacity(n);
                for _ in 0..n {
                    rows.push(self.row()?);
                }
                Ok(WalOp::Insert { table, rows })
            }
            5 => {
                let table = self.str()?;
                let idx = self.u64()?;
                let row = self.row()?;
                Ok(WalOp::Replace { table, idx, row })
            }
            6 => {
                let table = self.str()?;
                let n = self.u32()? as usize;
                if n > (self.buf.len() - self.pos) / 8 {
                    return Err(Self::corrupt("index count exceeds record"));
                }
                let mut idxs = Vec::with_capacity(n);
                for _ in 0..n {
                    idxs.push(self.u64()?);
                }
                Ok(WalOp::Delete { table, idxs })
            }
            t => Err(Self::corrupt(&format!("unknown op tag {t}"))),
        }
    }
}

/// A decoded frame: its sequence number, operations, and the byte offset
/// just past its end.
pub(crate) struct Frame {
    pub seq: u64,
    pub ops: Vec<WalOp>,
    pub end: usize,
}

/// Decode the frame starting at `pos`, or `None` if the bytes there are not
/// a complete, well-formed frame (end of log, torn tail, or corruption).
pub(crate) fn next_frame(buf: &[u8], pos: usize) -> Option<Frame> {
    let header = buf.get(pos..pos + FRAME_HEADER)?;
    let magic = u32::from_le_bytes(header[0..4].try_into().ok()?);
    if magic != WAL_MAGIC {
        return None;
    }
    let len = u32::from_le_bytes(header[4..8].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(header[8..12].try_into().ok()?);
    let payload = buf.get(pos + FRAME_HEADER..pos + FRAME_HEADER + len)?;
    if crc32(payload) != crc {
        return None;
    }
    let mut r = Reader::new(payload);
    let seq = r.u64().ok()?;
    let n_ops = r.u32().ok()? as usize;
    if n_ops > payload.len() {
        return None;
    }
    let mut ops = Vec::with_capacity(n_ops);
    for _ in 0..n_ops {
        ops.push(r.op().ok()?);
    }
    // The payload must be exactly consumed.
    if r.pos != payload.len() {
        return None;
    }
    Some(Frame {
        seq,
        ops,
        end: pos + FRAME_HEADER + len,
    })
}

/// The `(start, end, seq)` extents of every well-formed frame from the start
/// of `buf`, stopping at the first torn or corrupt record. Exposed for the
/// crash-consistency tests, which use it to compute how many batches a given
/// log prefix preserves.
pub fn frame_boundaries(buf: &[u8]) -> Vec<(usize, usize, u64)> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while let Some(frame) = next_frame(buf, pos) {
        out.push((pos, frame.end, frame.seq));
        pos = frame.end;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_ops() -> Vec<WalOp> {
        vec![
            WalOp::CreateTable {
                name: "t".into(),
                columns: vec![
                    ("id".into(), DataType::Integer),
                    ("w".into(), DataType::Real),
                    ("s".into(), DataType::Text),
                    ("x".into(), DataType::Any),
                ],
                primary_key: vec!["id".into()],
            },
            WalOp::Insert {
                table: "t".into(),
                rows: vec![
                    vec![
                        Value::Int(1),
                        Value::Float(f64::NAN),
                        Value::text("héllo \"quoted\""),
                        Value::Null,
                    ],
                    vec![
                        Value::Int(-7),
                        Value::Float(f64::NEG_INFINITY),
                        Value::text(""),
                        Value::Int(0),
                    ],
                ],
            },
            WalOp::CreateIndex {
                table: "t".into(),
                name: "t_s".into(),
                columns: vec!["s".into()],
                unique: false,
            },
            WalOp::Replace {
                table: "t".into(),
                idx: 1,
                row: vec![
                    Value::Int(-7),
                    Value::Float(-0.0),
                    Value::text("updated"),
                    Value::Null,
                ],
            },
            WalOp::Delete {
                table: "t".into(),
                idxs: vec![0, 1],
            },
            WalOp::DropTable { name: "t".into() },
        ]
    }

    #[test]
    fn batch_roundtrip() {
        let ops = sample_ops();
        let frame = encode_batch(42, &ops);
        let decoded = next_frame(&frame, 0).expect("frame decodes");
        assert_eq!(decoded.seq, 42);
        assert_eq!(decoded.end, frame.len());
        assert_eq!(decoded.ops.len(), ops.len());
        // Compare via re-encoding (Value::Float(NaN) != itself under
        // PartialEq, but bit patterns are preserved).
        let mut a = Vec::new();
        let mut b = Vec::new();
        for op in &ops {
            put_op(&mut a, op);
        }
        for op in &decoded.ops {
            put_op(&mut b, op);
        }
        assert_eq!(a, b);
    }

    #[test]
    fn every_prefix_is_rejected_cleanly() {
        let frame = encode_batch(7, &sample_ops());
        for cut in 0..frame.len() {
            assert!(
                next_frame(&frame[..cut], 0).is_none(),
                "torn frame of {cut}/{} bytes must not decode",
                frame.len()
            );
        }
        assert!(next_frame(&frame, 0).is_some());
    }

    #[test]
    fn bit_flips_fail_crc() {
        let frame = encode_batch(7, &sample_ops());
        // Flip one bit in every payload byte position.
        for i in FRAME_HEADER..frame.len() {
            let mut bad = frame.clone();
            bad[i] ^= 0x01;
            assert!(
                next_frame(&bad, 0).is_none(),
                "bit flip at byte {i} must invalidate the frame"
            );
        }
    }

    #[test]
    fn hostile_lengths_do_not_panic() {
        // A frame claiming a huge payload length over a short buffer.
        let mut bad = Vec::new();
        put_u32(&mut bad, WAL_MAGIC);
        put_u32(&mut bad, u32::MAX);
        put_u32(&mut bad, 0);
        bad.extend_from_slice(&[0u8; 16]);
        assert!(next_frame(&bad, 0).is_none());

        // A valid CRC over a payload with a hostile op-internal count.
        let mut payload = Vec::new();
        put_u64(&mut payload, 1); // seq
        put_u32(&mut payload, 1); // one op
        payload.push(4); // Insert
        put_str(&mut payload, "t");
        put_u32(&mut payload, u32::MAX); // row count lie
        let mut frame = Vec::new();
        put_u32(&mut frame, WAL_MAGIC);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        assert!(next_frame(&frame, 0).is_none());
    }

    #[test]
    fn frame_boundaries_stop_at_corruption() {
        let mut log = Vec::new();
        let f1 = encode_batch(0, &[WalOp::DropTable { name: "a".into() }]);
        let f2 = encode_batch(1, &[WalOp::DropTable { name: "b".into() }]);
        let f3 = encode_batch(2, &[WalOp::DropTable { name: "c".into() }]);
        log.extend_from_slice(&f1);
        log.extend_from_slice(&f2);
        log.extend_from_slice(&f3);
        let all = frame_boundaries(&log);
        assert_eq!(
            all.iter().map(|&(_, _, s)| s).collect::<Vec<_>>(),
            vec![0, 1, 2]
        );
        assert_eq!(all[2].1, log.len());

        // Corrupt the middle frame: scanning stops after the first.
        let mut torn = log.clone();
        torn[f1.len() + FRAME_HEADER] ^= 0xFF;
        let upto = frame_boundaries(&torn);
        assert_eq!(upto.len(), 1);
        assert_eq!(upto[0], (0, f1.len(), 0));
    }
}
